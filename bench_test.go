package negativaml

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4). Each benchmark regenerates its artifact through the
// experiment suite and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The rendered rows are printed by
// cmd/experiments; EXPERIMENTS.md records paper-vs-measured per cell.

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/dserve"
	"negativaml/internal/experiments"
	"negativaml/internal/gateway"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
)

// benchJSON enables the machine-readable benchmark mode:
//
//	go test -run TestBenchServeJSON -bench.json BENCH_serve.json
//
// writes key end-to-end timings (serve batch wall times cold / warm /
// warm-from-disk after a restart, serial vs parallel, and the virtual
// Table 8 headline) so future PRs have a perf trajectory.
var benchJSON = flag.String("bench.json", "", "write end-to-end serve timings to this JSON file")

// The suite caches installs and pipeline results across benchmarks, exactly
// as the paper reuses one profiled run per workload across its tables.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite() })
	return suite
}

// BenchmarkFigure1 regenerates the CPU/GPU code split of the top-4 PyTorch
// libraries (Figure 1). Metric: GPU share of the largest library.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GPUPct, "gpu-share-%")
	}
}

// BenchmarkTable2 regenerates the ten-workload reduction table (Table 2).
// Metrics: mean GPU and CPU code reductions across workloads.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		var gpu, cpu float64
		for _, r := range rows {
			gpu += r.GPURedPct
			cpu += r.CPURedPct
		}
		b.ReportMetric(gpu/float64(len(rows)), "gpu-red-%")
		b.ReportMetric(cpu/float64(len(rows)), "cpu-red-%")
	}
}

// BenchmarkFigure5 regenerates the per-library reduction distributions.
// Metric: median CPU-code size reduction (the paper's ~25%).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Figure5(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.CPUSizeRed.P50, "cpu-red-median-%")
		b.ReportMetric(d.GPUSizeRed.P50, "gpu-red-median-%")
	}
}

// BenchmarkFigure6 regenerates the Pareto chart. Metric: reduction share of
// the top 10% of libraries (the paper's ~90%).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Figure6(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Top10PctSharePct, "top10pct-share-%")
		b.ReportMetric(d.Top8SharePct, "top8-share-%")
	}
}

// BenchmarkTable3 regenerates the core-library table. Metric: torch_cuda
// function-count reduction (the paper's 93%).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FuncRedPct, "funcs-red-%")
	}
}

// BenchmarkTable4 regenerates the torch_cuda Jaccard matrix. Metrics: mean
// function and kernel similarity (paper: functions high, kernels low).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		var fs, ks float64
		for _, c := range t.Cells {
			fs += c.FuncSim
			ks += c.KernelSim
		}
		n := float64(len(t.Cells))
		b.ReportMetric(fs/n, "func-jaccard")
		b.ReportMetric(ks/n, "kernel-jaccard")
	}
}

// BenchmarkTable9 regenerates the tensorflow_cc Jaccard matrix (appendix).
func BenchmarkTable9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table9(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		var ks float64
		for _, c := range t.Cells {
			ks += c.KernelSim
		}
		b.ReportMetric(ks/float64(len(t.Cells)), "kernel-jaccard")
	}
}

// BenchmarkFigure7 regenerates the removal-reason split. Metric: mean
// Reason I share (the paper's ~80-89%).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		var r1 float64
		for _, r := range rows {
			r1 += r.ReasonIPct
		}
		b.ReportMetric(r1/float64(len(rows)), "reason1-%")
	}
}

// BenchmarkTable5 regenerates the runtime-performance table. Metric: mean
// execution-time reduction.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		_, _, exec := experiments.Table5Averages(rows)
		b.ReportMetric(exec.Seconds(), "avg-time-saved-s")
	}
}

// BenchmarkTable6 regenerates the H100 eager/lazy size table.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GPURedPct, "gpu-red-%")
	}
}

// BenchmarkTable7 regenerates the H100 eager/lazy runtime table.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CPURedPct, "eager-cpu-red-%")
		b.ReportMetric(rows[2].CPURedPct, "lazy-cpu-red-%")
	}
}

// BenchmarkTable8 regenerates the end-to-end debloating times. Metric:
// PyTorch/Train/MobileNetV2 end-to-end seconds (the paper's 651 s).
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].EndToEnd.Seconds(), "mobilenet-e2e-s")
	}
}

// BenchmarkOverhead regenerates the §4.6 tracer-overhead comparison.
// Metrics: detector and NSys overhead percentages (paper: 41% and 126%).
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Overhead(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.DetectorPct, "detector-overhead-%")
		b.ReportMetric(d.NSysPct, "nsys-overhead-%")
	}
}

// BenchmarkTable10 regenerates the 8xA100 LLM-zoo table. Metric: mean
// element-count reduction (lower than single-GPU, as in the paper).
func BenchmarkTable10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table10(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		var el float64
		for _, r := range rows {
			el += r.Row.ElemRedPct
		}
		b.ReportMetric(el/float64(len(rows)), "elem-red-%")
	}
}

// BenchmarkAblation regenerates the retention-granularity ablation
// (DESIGN.md): whole-cubin retention keeps more bytes but preserves
// GPU-launching kernels; exact-kernel removal breaks the workload.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Ablation(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		if !d.WholeCubinVerifies || d.ExactVerifies {
			b.Fatal("ablation outcome flipped")
		}
		b.ReportMetric(d.WholeCubinKeptKB-d.ExactKeptKB, "extra-kept-KB")
	}
}

// BenchmarkCoverage regenerates the detection-coverage saturation curve.
// Metric: steps needed for full coverage (should be tiny).
func BenchmarkCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CoverageSaturation(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[len(pts)-1].Kernels), "kernels")
	}
}

// BenchmarkUsedBloat regenerates the §5 used-bloat comparison. Metric:
// TensorFlow's init-only function count (the paper's hypothesized excess).
func BenchmarkUsedBloat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.UsedBloat(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].InitOnly), "tf-init-only-funcs")
		b.ReportMetric(100*rows[1].Fraction, "tf-usedbloat-%")
	}
}

// TestBenchServeJSON emits the batch-serve perf trajectory when -bench.json
// is set (skipped otherwise): wall times for a cold 4-workload batch at 1
// worker and at full width, a warm repeat (registry + cache absorbing all
// work), and the batch's virtual end-to-end debloating time.
func TestBenchServeJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("-bench.json not set")
	}

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 20})
	if err != nil {
		t.Fatal(err)
	}
	specs := []dserve.WorkloadSpec{
		{Model: "MobileNetV2", Batch: 1},
		{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
		{Model: "Transformer", Batch: 32, Device: "A100"},
		{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
	}
	workloads := func() []mlruntime.Workload {
		ws := make([]mlruntime.Workload, len(specs))
		for i, sp := range specs {
			w, err := sp.Workload(in)
			if err != nil {
				t.Fatal(err)
			}
			ws[i] = w
		}
		return ws
	}

	// batch runs one 4-workload batch and reports wall time plus heap bytes
	// allocated during the batch (TotalAlloc delta across a quiesced heap) —
	// the metric that exposes per-batch full-image copies.
	batch := func(workers int, svc *dserve.Service) (*dserve.BatchResult, time.Duration, int64) {
		if svc == nil {
			svc = dserve.NewService(dserve.Config{Workers: workers, MaxSteps: 4})
			defer svc.Close()
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := svc.DebloatBatch(in, workloads(), dserve.BatchOptions{MaxSteps: 4})
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if !res.AllVerified() {
			t.Fatal("batch must verify")
		}
		return res, wall, int64(m1.TotalAlloc - m0.TotalAlloc)
	}

	_, serialWall, _ := batch(1, nil)
	svc := dserve.NewService(dserve.Config{MaxSteps: 4})
	defer svc.Close()
	cold, coldWall, coldAlloc := batch(0, svc)
	warm, warmWall, warmAlloc := batch(0, svc)
	if warm.CacheHits == 0 || warm.ProfileReuses != len(specs) {
		t.Fatalf("warm batch should be fully reused: hits=%d reuses=%d", warm.CacheHits, warm.ProfileReuses)
	}

	// Incremental re-submit: extend the warm batch with a fifth workload
	// whose profile is already registered (solo batch below, untimed). The
	// superset batch then performs zero detection runs, absorbs untouched
	// libraries through unchanged stage keys, and carries the base
	// members' verifications over — only the fresh member re-verifies, so
	// it beats even the warm path's full re-verification.
	extraSpec := dserve.WorkloadSpec{Model: "MobileNetV2", Batch: 8}
	extraW, err := extraSpec.Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DebloatBatch(in, []mlruntime.Workload{extraW}, dserve.BatchOptions{MaxSteps: 4}); err != nil {
		t.Fatal(err)
	}
	incWorkloads := append(workloads(), extraW)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	incStart := time.Now()
	inc, err := svc.DebloatBatch(in, incWorkloads, dserve.BatchOptions{MaxSteps: 4, Base: warm, BaseID: "bench-warm"})
	if err != nil {
		t.Fatal(err)
	}
	incWall := time.Since(incStart)
	runtime.ReadMemStats(&m1)
	incAlloc := int64(m1.TotalAlloc - m0.TotalAlloc)
	if !inc.AllVerified() {
		t.Fatal("incremental batch must verify")
	}
	if inc.ProfileReuses != len(specs)+1 {
		t.Fatalf("incremental batch ran detection: reuses=%d want %d", inc.ProfileReuses, len(specs)+1)
	}
	if inc.Incremental == nil || inc.Incremental.CarriedVerifications != len(specs) {
		t.Fatalf("incremental batch must carry the base verifications: %+v", inc.Incremental)
	}

	// Warm-from-disk: populate a data dir with one service, then boot a
	// fresh one against it — the restart path. Its memory tiers start
	// empty, so everything comes from the content-addressed store: no
	// detection, no locate/compact.
	dir := t.TempDir()
	store1, err := castore.Open(dir, castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svcDisk1 := dserve.NewService(dserve.Config{MaxSteps: 4, Store: store1})
	batch(0, svcDisk1)
	svcDisk1.Close()
	store1.Close()
	store2, err := castore.Open(dir, castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	svcDisk2 := dserve.NewService(dserve.Config{MaxSteps: 4, Store: store2})
	defer svcDisk2.Close()
	warmDisk, warmDiskWall, warmDiskAlloc := batch(0, svcDisk2)
	if warmDisk.CacheMisses != 0 || warmDisk.ProfileReuses != len(specs) {
		t.Fatalf("warm-disk batch should be fully restored: misses=%d reuses=%d", warmDisk.CacheMisses, warmDisk.ProfileReuses)
	}
	if n := svcDisk2.Counters.Get("analysis.computed"); n != 0 {
		t.Fatalf("warm-disk batch ran locate/compact %d times", n)
	}
	diskStats := store2.Stats()

	// Cluster path: a 3-node in-process ring. Node A's cold batch executes
	// every stage on its owning shard; node B's repeat of the same batch is
	// peer-warm — all analysis arrives through the peer tier (read-through
	// or B's own shard-resident memo), zero local locate/compact.
	type benchNode struct {
		svc  *dserve.Service
		srv  *httptest.Server
		stop func()
	}
	startNode := func(id string) *benchNode {
		st, err := castore.Open(t.TempDir(), castore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		svc := dserve.NewService(dserve.Config{MaxSteps: 4, Store: st})
		srv := httptest.NewServer(dserve.NewHandler(svc))
		return &benchNode{svc: svc, srv: srv, stop: func() { srv.Close(); svc.Close(); st.Close() }}
	}
	buildRing := func() (map[string]*benchNode, map[string]string) {
		nodes := map[string]*benchNode{"a": startNode("a"), "b": startNode("b"), "c": startNode("c")}
		urls := map[string]string{}
		for id, n := range nodes {
			urls[id] = n.srv.URL
		}
		for id, n := range nodes {
			n.svc.AttachCluster(cluster.New(id, urls, cluster.Options{
				Counters: n.svc.Counters, Timings: n.svc.Timings,
			}))
		}
		return nodes, urls
	}
	var nodes map[string]*benchNode
	var urls map[string]string
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	clusterBatch := func(n *benchNode) time.Duration {
		body, err := json.Marshal(dserve.JobRequest{
			Framework: "pytorch", TailLibs: 20, MaxSteps: 4,
			Workloads: []dserve.WorkloadSpec{
				{Model: "MobileNetV2", Batch: 1},
				{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
				{Model: "Transformer", Batch: 32, Device: "A100"},
				{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-warm the client's connection to this node (drain so the
		// transport pools it): the metric tracks peer-warm serving cost,
		// not one-time TCP and transport-pool setup.
		if resp, err := http.Get(n.srv.URL + "/v1/jobs"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		start := time.Now()
		resp, err := http.Post(n.srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		job, err := n.svc.WaitJob(st.ID, 2*time.Minute)
		if err != nil || job.State != dserve.JobDone {
			t.Fatalf("cluster bench job: %v (state %s, err %q)", err, job.State, job.Err)
		}
		return time.Since(start)
	}
	// Same measurement hygiene as the incremental batch above: the earlier
	// phases left a large retained heap, and a GC cycle landing inside a
	// single-shot wall measurement would be charged to the cluster.
	// The cold wall is inherently single-shot per ring (a ring is only cold
	// once), so it is measured as the minimum over three independent fresh
	// rings; the last ring carries the peer-warm and churn phases below.
	// B and C are symmetric peer-warm nodes after A's cold batch (each owns
	// its shard from remote execution and reads the rest through peers), so
	// both give an honest sample of the same quantity; the minimum is the
	// standard way to strip scheduler and disk noise from single-shot walls.
	clusterColdWall := time.Duration(1<<63 - 1)
	clusterWarmWall := time.Duration(1<<63 - 1)
	var peerWarmRoundTrips int64
	for ring := 0; ring < 3; ring++ {
		for _, n := range nodes {
			n.stop()
		}
		nodes, urls = buildRing()
		runtime.GC()
		if w := clusterBatch(nodes["a"]); w < clusterColdWall {
			clusterColdWall = w
		}
		for _, id := range []string{"b", "c"} {
			n := nodes[id]
			analysisBefore := n.svc.Counters.Get("analysis.computed")
			rtBefore := n.svc.Counters.Get("peer.round_trips")
			runtime.GC()
			w := clusterBatch(n)
			if d := n.svc.Counters.Get("analysis.computed") - analysisBefore; d != 0 {
				t.Fatalf("peer-warm cluster batch on %s ran %d local locate/compacts", id, d)
			}
			rt := n.svc.Counters.Get("peer.round_trips") - rtBefore
			if rt > 8 {
				t.Fatalf("peer-warm batch on %s took %d peer round trips; batching should need at most 8", id, rt)
			}
			if id == "b" {
				peerWarmRoundTrips = rt
			}
			if w < clusterWarmWall {
				clusterWarmWall = w
			}
		}
	}
	// Batched scatter-gather bound: two prefetch phases (detect keys, then
	// compact keys once the union fixes them), each at most one lookup-batch
	// per distinct replica-set group — with 3 nodes and R=2 a requester sees
	// at most 3 remote groups — plus a hedge or two. The per-key path this
	// replaced paid one round trip per peer-served stage key (15 in this
	// harness, see peer_warm/peer-hits).
	if peerWarmRoundTrips > 8 {
		t.Fatalf("peer-warm batch took %d peer round trips; batching should need at most 8", peerWarmRoundTrips)
	}
	peerHits := nodes["b"].svc.Counters.Get("peer.hits")
	remoteExecs := nodes["a"].svc.Counters.Get("peer.remote_execs")
	if peerHits == 0 {
		t.Fatal("peer-warm cluster batch hit no peers")
	}

	// Node churn: kill node c, drop it from the survivors' rings (the
	// failure-detection outcome, taken directly so the measurement isn't
	// padded with probe timeouts), and boot an empty replacement that
	// joins the ring. The survivors' anti-entropy sweeps heal it in
	// place; recorded are the heal wall time (join → a full sweep streams
	// nothing), the objects streamed, and the healed node's wall for the
	// same batch — which must run zero local analysis, because every
	// artifact it owns arrived through repair and the rest reads through
	// its peers.
	for _, n := range nodes {
		n.svc.WaitReplication()
	}
	nodes["c"].stop()
	delete(nodes, "c")
	for _, id := range []string{"a", "b"} {
		nodes[id].svc.Cluster().RemovePeer("c")
	}
	healStart := time.Now()
	repl := startNode("d")
	nodes["d"] = repl
	repl.svc.AttachCluster(cluster.New("d",
		map[string]string{"a": urls["a"], "b": urls["b"], "d": repl.srv.URL},
		cluster.Options{Counters: repl.svc.Counters, Timings: repl.svc.Timings}))
	if n := repl.svc.Cluster().Join(); n == 0 {
		t.Fatal("replacement node join: no survivor acknowledged")
	}
	for {
		moved := nodes["a"].svc.RepairNow() + nodes["b"].svc.RepairNow()
		if moved == 0 {
			break
		}
		if time.Since(healStart) > 2*time.Minute {
			t.Fatal("repair did not converge on the replacement node")
		}
	}
	healWall := time.Since(healStart)
	churnStreamed := nodes["a"].svc.Counters.Get("repair.objects_streamed") +
		nodes["b"].svc.Counters.Get("repair.objects_streamed")
	if churnStreamed == 0 {
		t.Fatal("healing an empty replacement streamed no objects")
	}
	runtime.GC()
	churnAnalysisBefore := repl.svc.Counters.Get("analysis.computed")
	churnPostWall := clusterBatch(repl)
	if d := repl.svc.Counters.Get("analysis.computed") - churnAnalysisBefore; d != 0 {
		t.Fatalf("healed replacement ran %d local locate/compacts", d)
	}

	// Gateway front door: the sustained-load storm from internal/gateway at
	// full scale — thousands of concurrent submissions in a hostile mix of
	// duplicates, supersets, and garbage across three tenants (one with a
	// tight concurrency quota, so shedding is exercised) and both lanes,
	// against a dispatch width that exceeds the backend's in-flight cap.
	// Recorded: end-to-end job latency (p50/p99), shed and coalesce rates,
	// and the analysis-compute delta (must stay 0 — duplicates must
	// coalesce or hit memo tiers, never recompute).
	gwSvc := dserve.NewService(dserve.Config{MaxSteps: 2, MaxInFlight: 4})
	defer gwSvc.Close()
	gwSubmits, gwConc := 2000, 64
	gw, err := gateway.New(gwSvc, gateway.Config{DispatchSlots: 8, QueueDepth: 4 * gwSubmits, MaxJobs: 4 * gwSubmits}, []gateway.TenantConfig{
		{Name: "acme", Keys: []string{"bench-acme"}},
		{Name: "beta", Keys: []string{"bench-beta"}, Lane: gateway.LaneBulk},
		{Name: "capped", Keys: []string{"bench-capped"}, Quota: gateway.QuotaConfig{MaxConcurrent: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwSrv := httptest.NewServer(gateway.NewHandler(gw, dserve.NewHandler(gwSvc)))
	defer gwSrv.Close()
	gwCfg := gateway.LoadConfig{
		BaseURL:      gwSrv.URL,
		Keys:         []string{"bench-acme", "bench-beta", "bench-capped"},
		Lanes:        []string{"", gateway.LaneInteractive, gateway.LaneBulk},
		Submits:      gwSubmits,
		Concurrency:  gwConc,
		Distinct:     3,
		GarbageEvery: 10,
		TailLibs:     8,
		MaxSteps:     2,
		JobTimeout:   3 * time.Minute,
	}
	gwWarm := gwCfg
	gwWarm.Submits, gwWarm.Concurrency, gwWarm.GarbageEvery = gwCfg.Distinct, gwCfg.Distinct, 0
	gwWarm.Keys = []string{"bench-acme"}
	if rep, err := gateway.RunLoad(gwWarm); err != nil || rep.Completed != gwCfg.Distinct {
		t.Fatalf("gateway warmup: %+v err=%v", rep, err)
	}
	gwComputedBefore := gwSvc.Counters.Get("analysis.computed")
	gwRep, err := gateway.RunLoad(gwCfg)
	if err != nil {
		t.Fatal(err)
	}
	if gwRep.FailedAccepted != 0 || gwRep.Unexpected != 0 || gwRep.ShedMissingRetryAfter != 0 {
		t.Fatalf("gateway storm broke the admission promise: %+v", gwRep)
	}
	gwComputedDelta := gwSvc.Counters.Get("analysis.computed") - gwComputedBefore

	entries := []experiments.BenchEntry{
		{Name: "serve/batch4/cold/serial-wall", Value: serialWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/batch4/cold/parallel-wall", Value: coldWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/batch4/warm/parallel-wall", Value: warmWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/batch4/incremental/parallel-wall", Value: incWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/batch4/incremental/alloc-bytes", Value: float64(incAlloc), Unit: "bytes"},
		{Name: "serve/batch4/incremental/absorbed-libs", Value: float64(inc.Incremental.AbsorbedLibs), Unit: "count"},
		{Name: "serve/batch4/incremental/delta-libs", Value: float64(inc.Incremental.DeltaLibs), Unit: "count"},
		{Name: "serve/batch4/incremental/carried-verifications", Value: float64(inc.Incremental.CarriedVerifications), Unit: "count"},
		{Name: "serve/batch4/warm_disk/parallel-wall", Value: warmDiskWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/batch4/cold/alloc-bytes", Value: float64(coldAlloc), Unit: "bytes"},
		{Name: "serve/batch4/warm/alloc-bytes", Value: float64(warmAlloc), Unit: "bytes"},
		{Name: "serve/batch4/warm_disk/alloc-bytes", Value: float64(warmDiskAlloc), Unit: "bytes"},
		{Name: "serve/batch4/warm_disk/store-hits", Value: float64(diskStats.Hits), Unit: "count"},
		{Name: "serve/batch4/warm_disk/store-bytes", Value: float64(diskStats.Bytes), Unit: "bytes"},
		{Name: "serve/batch4/virtual-end-to-end", Value: cold.EndToEnd().Seconds(), Unit: "s"},
		{Name: "serve/batch4/virtual-detect", Value: cold.DetectTime.Seconds(), Unit: "s"},
		{Name: "serve/batch4/virtual-analysis", Value: cold.AnalysisTime.Seconds(), Unit: "s"},
		{Name: "serve/batch4/warm/cache-hits", Value: float64(warm.CacheHits), Unit: "count"},
		{Name: "serve/batch4/cache-bytes", Value: float64(svc.Cache.Bytes()), Unit: "bytes"},
		{Name: "serve/batch4/libs", Value: float64(len(cold.Libs)), Unit: "count"},
		{Name: "serve/cluster3/cold/wall", Value: clusterColdWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/cluster3/peer_warm/wall", Value: clusterWarmWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/cluster3/peer_warm/peer-hits", Value: float64(peerHits), Unit: "count"},
		{Name: "serve/cluster3/peer_warm/round-trips", Value: float64(peerWarmRoundTrips), Unit: "count"},
		{Name: "serve/cluster3/cold/remote-execs", Value: float64(remoteExecs), Unit: "count"},
		{Name: "serve/cluster3/churn/heal-wall", Value: healWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/cluster3/churn/objects-streamed", Value: float64(churnStreamed), Unit: "count"},
		{Name: "serve/cluster3/churn/post-heal-wall", Value: churnPostWall.Seconds() * 1000, Unit: "ms"},
		{Name: "serve/gateway/storm/submits", Value: float64(gwRep.Submits), Unit: "count"},
		{Name: "serve/gateway/storm/job-p50", Value: gwRep.Latency.P50, Unit: "ms"},
		{Name: "serve/gateway/storm/job-p99", Value: gwRep.Latency.P99, Unit: "ms"},
		{Name: "serve/gateway/storm/submit-p99", Value: gwRep.SubmitLatency.P99, Unit: "ms"},
		{Name: "serve/gateway/storm/shed-rate", Value: 100 * float64(gwRep.Shed) / float64(gwRep.Submits), Unit: "%"},
		{Name: "serve/gateway/storm/coalesce-rate", Value: 100 * float64(gw.Counters.Get("gateway.coalesced")) / float64(gwRep.Accepted), Unit: "%"},
		{Name: "serve/gateway/storm/failed-accepted", Value: float64(gwRep.FailedAccepted), Unit: "count"},
		{Name: "serve/gateway/storm/analysis-computed-delta", Value: float64(gwComputedDelta), Unit: "count"},
		// Frozen pre-byte-plane measurements (PR 6 tree, same harness) so
		// the trajectory file itself records the before/after of the mmap +
		// pooling + wire-v2 work. Constants by design: they never drift, so
		// cmd/benchdiff always sees them at +0.0%.
		{Name: "serve/batch4/warm/alloc-bytes/pre-byteplane", Value: 15818096, Unit: "bytes"},
		{Name: "serve/cluster3/peer_warm/wall/pre-byteplane", Value: 287.232978, Unit: "ms"},
		// Frozen pre-hot-path measurements (PR 8 tree, same harness): the
		// before of the batched scatter-gather + hedged-read + critical-path
		// scheduling work. The per-key peer tier paid 15 round trips on the
		// peer-warm batch (one per peer hit, see peer_warm/peer-hits).
		{Name: "serve/batch4/cold/parallel-wall/pre-hotpath", Value: 22.263758, Unit: "ms"},
		{Name: "serve/cluster3/cold/wall/pre-hotpath", Value: 237.056541, Unit: "ms"},
		{Name: "serve/cluster3/peer_warm/wall/pre-hotpath", Value: 43.696530, Unit: "ms"},
		{Name: "serve/cluster3/peer_warm/round-trips/pre-hotpath", Value: 15, Unit: "count"},
		{Name: "serve/gateway/storm/job-p99/pre-hotpath", Value: 188.868981, Unit: "ms"},
	}
	if err := experiments.WriteBenchJSON(*benchJSON, entries); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d entries to %s (cold serial %v, cold parallel %v, warm %v, warm alloc %d B)",
		len(entries), *benchJSON, serialWall.Round(time.Millisecond), coldWall.Round(time.Millisecond), warmWall.Round(time.Millisecond), warmAlloc)
}
