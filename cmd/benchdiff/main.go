// Command benchdiff gates perf regressions between two bench-trajectory
// files (the BENCH_serve.json format internal/experiments writes). It
// compares every entry whose name contains one of the watched substrings —
// lower-is-better metrics like alloc bytes and wall times — and exits
// non-zero if any regressed beyond the allowed percentage:
//
//	benchdiff -old BENCH_serve.committed.json -new BENCH_serve.json \
//	          -watch alloc-bytes,peer_warm/wall -max-regress 20
//
// Entries present in only one file are reported but never fail the gate,
// so adding or retiring metrics does not break CI; only a watched metric
// that got measurably worse does. Improvements print alongside regressions
// so the gate's output doubles as the PR's perf delta summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"negativaml/internal/experiments"
)

func main() {
	oldPath := flag.String("old", "", "baseline bench JSON (required)")
	newPath := flag.String("new", "", "candidate bench JSON (required)")
	watch := flag.String("watch", "alloc-bytes,peer_warm/wall", "comma-separated name substrings to gate (lower is better)")
	maxRegress := flag.Float64("max-regress", 20, "allowed regression in percent before failing")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}

	oldDoc, err := experiments.ReadBenchJSON(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := experiments.ReadBenchJSON(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	baseline := map[string]experiments.BenchEntry{}
	for _, e := range oldDoc.Entries {
		baseline[e.Name] = e
	}
	patterns := strings.Split(*watch, ",")
	watched := func(name string) bool {
		for _, p := range patterns {
			if p != "" && strings.Contains(name, p) {
				return true
			}
		}
		return false
	}

	failed := false
	for _, e := range newDoc.Entries {
		if !watched(e.Name) {
			continue
		}
		base, ok := baseline[e.Name]
		if !ok {
			fmt.Printf("NEW     %-50s %.0f %s (no baseline, not gated)\n", e.Name, e.Value, e.Unit)
			continue
		}
		if base.Value <= 0 {
			fmt.Printf("SKIP    %-50s baseline is %.0f, cannot compute a ratio\n", e.Name, base.Value)
			continue
		}
		delta := 100 * (e.Value - base.Value) / base.Value
		switch {
		case delta > *maxRegress:
			failed = true
			fmt.Printf("REGRESS %-50s %.0f -> %.0f %s (%+.1f%%, limit %+.0f%%)\n", e.Name, base.Value, e.Value, e.Unit, delta, *maxRegress)
		default:
			fmt.Printf("ok      %-50s %.0f -> %.0f %s (%+.1f%%)\n", e.Name, base.Value, e.Value, e.Unit, delta)
		}
	}
	for _, e := range oldDoc.Entries {
		if watched(e.Name) {
			if _, ok := func() (experiments.BenchEntry, bool) {
				for _, n := range newDoc.Entries {
					if n.Name == e.Name {
						return n, true
					}
				}
				return experiments.BenchEntry{}, false
			}(); !ok {
				fmt.Printf("GONE    %-50s was %.0f %s (retired, not gated)\n", e.Name, e.Value, e.Unit)
			}
		}
	}
	if failed {
		fmt.Println("benchdiff: watched metrics regressed beyond the limit")
		os.Exit(1)
	}
}
