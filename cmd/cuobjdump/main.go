// Command cuobjdump inspects the GPU code inside an ML shared library,
// mirroring the subset of NVIDIA's cuobjdump the paper's kernel locator
// relies on (§3.2): it lists the fatbin elements with their 1-based
// indices, architectures, file ranges, and the kernels in each cubin.
//
// Usage:
//
//	cuobjdump <library.so>             # list elements
//	cuobjdump -kernels <library.so>    # also list kernels per cubin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
)

func main() {
	kernels := flag.Bool("kernels", false, "list kernels inside each cubin")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: cuobjdump [-kernels] <library.so>")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("cuobjdump: %v", err)
	}
	lib, err := elfx.Parse(path, data)
	if err != nil {
		log.Fatalf("cuobjdump: %v", err)
	}
	fb, has, err := lib.Fatbin()
	if err != nil {
		log.Fatalf("cuobjdump: %v", err)
	}
	if !has {
		fmt.Printf("%s: no %s section (CPU-only library)\n", path, elfx.FatbinSection)
		return
	}
	secRange, _ := lib.FatbinRange()
	fmt.Printf("%s: %d region(s), %d element(s), %d bytes of GPU code at %v\n",
		path, len(fb.Regions), fb.ElementCount(), lib.GPUCodeSize(), secRange)
	for _, e := range fb.Elements() {
		kind := "CUBIN"
		if e.Kind == fatbin.KindPTX {
			kind = "PTX"
		}
		fmt.Printf("  element %3d  %-5s  %-6s  file range [%#x, %#x)  payload %d bytes\n",
			e.Index, kind, e.Arch,
			secRange.Start+e.FileRange.Start, secRange.Start+e.FileRange.End,
			len(e.Payload))
		if !*kernels || e.Kind != fatbin.KindCubin {
			continue
		}
		c, err := cubin.Parse(e.Payload)
		if err != nil {
			fmt.Printf("    (payload does not parse: %v)\n", err)
			continue
		}
		for _, k := range c.Kernels {
			role := "entry"
			if k.DeviceOnly() {
				role = "device-only"
			}
			fmt.Printf("    %-52s %-11s %5d bytes\n", k.Name, role, len(k.Code))
		}
	}
}
