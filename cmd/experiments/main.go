// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run all|fig1|table2|fig5|fig6|table3|table4|table9|fig7|table5|table6|table7|table8|overhead|table10]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"negativaml/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (comma-separated), or 'all'")
	flag.Parse()

	want := map[string]bool{}
	for _, k := range strings.Split(*run, ",") {
		want[strings.TrimSpace(k)] = true
	}
	all := want["all"]
	s := experiments.NewSuite()

	step := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	step("fig1", func() (string, error) {
		rows, err := experiments.Figure1(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure1(rows), nil
	})
	step("table2", func() (string, error) {
		rows, err := experiments.Table2(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(rows), nil
	})
	step("fig5", func() (string, error) {
		d, err := experiments.Figure5(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure5(d), nil
	})
	step("fig6", func() (string, error) {
		d, err := experiments.Figure6(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure6(d), nil
	})
	step("table3", func() (string, error) {
		rows, err := experiments.Table3(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable3(rows), nil
	})
	step("table4", func() (string, error) {
		t, err := experiments.Table4(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderJaccard(t, "Table 4"), nil
	})
	step("table9", func() (string, error) {
		t, err := experiments.Table9(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderJaccard(t, "Table 9"), nil
	})
	step("fig7", func() (string, error) {
		rows, err := experiments.Figure7(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure7(rows), nil
	})
	step("table5", func() (string, error) {
		rows, err := experiments.Table5(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderRuntime("Table 5: runtime performance (T4)", rows), nil
	})
	step("table6", func() (string, error) {
		rows, err := experiments.Table6(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable6(rows), nil
	})
	step("table7", func() (string, error) {
		rows, err := experiments.Table7(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderRuntime("Table 7: H100 runtime, eager vs lazy", rows), nil
	})
	step("table8", func() (string, error) {
		rows, err := experiments.Table8(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable8(rows), nil
	})
	step("overhead", func() (string, error) {
		d, err := experiments.Overhead(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderOverhead(d), nil
	})
	step("table10", func() (string, error) {
		rows, err := experiments.Table10(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable10(rows), nil
	})
	step("ablation", func() (string, error) {
		d, err := experiments.Ablation(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation(d), nil
	})
	step("coverage", func() (string, error) {
		pts, err := experiments.CoverageSaturation(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderCoverage(pts), nil
	})
	step("usedbloat", func() (string, error) {
		rows, err := experiments.UsedBloat(s)
		if err != nil {
			return "", err
		}
		return experiments.RenderUsedBloat(rows), nil
	})
}
