// Command mlbloat-gen generates a synthetic ML framework installation — a
// directory of ELF shared libraries with planted CPU functions and GPU
// fatbins plus an install.json manifest — for use with cmd/negativa-ml and
// cmd/cuobjdump.
//
// Usage:
//
//	mlbloat-gen -framework PyTorch -tail 100 -out ./pytorch-install
package main

import (
	"flag"
	"fmt"
	"log"

	"negativaml/internal/mlframework"
)

func main() {
	framework := flag.String("framework", mlframework.PyTorch, "framework to generate (PyTorch, TensorFlow, vLLM, Transformers)")
	tail := flag.Int("tail", 100, "number of dependency-tail libraries")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()
	if *out == "" {
		log.Fatal("mlbloat-gen: -out is required")
	}

	in, err := mlframework.Generate(mlframework.Config{Framework: *framework, TailLibs: *tail})
	if err != nil {
		log.Fatalf("mlbloat-gen: %v", err)
	}
	if err := in.WriteTo(*out); err != nil {
		log.Fatalf("mlbloat-gen: %v", err)
	}
	fmt.Printf("%s %s: %d libraries, %.1f MB -> %s\n",
		in.Framework, in.Version, len(in.LibNames),
		float64(in.TotalFileSize())/(1<<20), *out)
}
