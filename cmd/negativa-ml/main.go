// Command negativa-ml debloats the shared libraries of a generated ML
// framework installation against one workload, writing the compacted
// libraries to an output directory — the CLI face of the paper's pipeline.
//
// Usage:
//
//	negativa-ml -install ./pytorch-install -model MobileNetV2 -train \
//	            -batch 16 -epochs 3 -device T4 -out ./debloated
//
// -ingest replaces -install for trees this tool did not write (an unpacked
// wheel, a site-packages directory): files are classified by content, each
// shared object's DT_NEEDED edges are resolved into a dependency closure,
// and the closure debloats through the identical pipeline.
//
// The tool profiles the workload (kernel detector + CPU-function profiler),
// locates used code in every library, compacts, verifies the debloated
// install by re-running the workload, and prints a per-library report.
// Per-library locate/compact runs on the batch service's bounded worker
// pool; -jobs N sets the worker count (default: all CPUs).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/dserve"
	"negativaml/internal/ingest"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

func main() {
	installDir := flag.String("install", "", "framework install directory (from mlbloat-gen)")
	ingestDir := flag.String("ingest", "", "ingest an arbitrary on-disk tree (unpacked wheel / site-packages): classify files, resolve the DT_NEEDED closure, and debloat it")
	model := flag.String("model", "MobileNetV2", "model: MobileNetV2, Transformer, Llama2")
	train := flag.Bool("train", false, "train instead of inference")
	batch := flag.Int("batch", 1, "batch size")
	epochs := flag.Int("epochs", 1, "training epochs")
	device := flag.String("device", "T4", "GPU: T4, A100, H100")
	ranks := flag.Int("gpus", 1, "number of GPUs (tensor parallel for LLMs)")
	lazy := flag.Bool("lazy", false, "use lazy kernel loading")
	steps := flag.Int("steps", 50, "max profiled steps (0 = full dataset)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "concurrent locate/compact and verification workers")
	out := flag.String("out", "", "output directory for debloated libraries")
	dataDir := flag.String("data-dir", "", "persistent analysis store; repeat runs against the same install reuse profiles and locate/compact results instead of recomputing")
	diskMB := flag.Int64("disk-mb", 512, "persistent store byte budget in MiB (with -data-dir)")
	flag.Parse()
	if (*installDir == "") == (*ingestDir == "") {
		log.Fatal("negativa-ml: exactly one of -install or -ingest is required")
	}

	var install *mlframework.Install
	if *ingestDir != "" {
		res, err := ingest.Tree(*ingestDir, ingest.Options{})
		if err != nil {
			log.Fatalf("negativa-ml: ingest: %v", err)
		}
		classes := map[ingest.Class]int{}
		for _, fr := range res.Files {
			classes[fr.Class]++
		}
		fmt.Printf("ingested %s: %d files (", *ingestDir, len(res.Files))
		for i, c := range []ingest.Class{ingest.ClassSharedObject, ingest.ClassManifest, ingest.ClassScript, ingest.ClassData} {
			if i > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%s %d", c, classes[c])
		}
		fmt.Printf(")\n")
		fmt.Printf("closure: %d of %d shared objects from roots %v\n", len(res.Closure), res.SharedObjects(), res.Roots)
		unresolved := make([]string, 0, len(res.Unresolved))
		for name := range res.Unresolved {
			unresolved = append(unresolved, name)
		}
		sort.Strings(unresolved)
		for _, name := range unresolved {
			fmt.Printf("unresolved (system-provided?): %s wanted by %v\n", name, res.Unresolved[name])
		}
		install, err = res.Install()
		if err != nil {
			log.Fatalf("negativa-ml: ingest: %v", err)
		}
	} else {
		var err error
		install, err = mlframework.ReadFrom(*installDir)
		if err != nil {
			log.Fatalf("negativa-ml: %v", err)
		}
	}

	// Model/dataset/device materialization is the batch service's
	// (one implementation shared with cmd/negativa-served job specs).
	spec := dserve.WorkloadSpec{
		Model:  *model,
		Train:  *train,
		Batch:  *batch,
		Epochs: *epochs,
		Device: *device,
		GPUs:   *ranks,
		Lazy:   *lazy,
	}
	w, err := spec.Workload(install)
	if err != nil {
		log.Fatalf("negativa-ml: %v", err)
	}
	w.Name = fmt.Sprintf("%s/%s/%s", install.Framework, w.Graph.Mode(), *model)

	// Route through the batch service's bounded worker-pool executor:
	// locate/compact fan out across -jobs goroutines per library.
	maxSteps := *steps
	if maxSteps == 0 {
		maxSteps = -1 // BatchOptions: negative = full dataset
	}
	cfg := dserve.Config{Workers: *jobs}
	if *dataDir != "" {
		store, err := castore.Open(*dataDir, castore.Options{MaxBytes: *diskMB << 20})
		if err != nil {
			log.Fatalf("negativa-ml: %v", err)
		}
		defer store.Close()
		cfg.Store = store
	}
	svc := dserve.NewService(cfg)
	defer svc.Close()

	start := time.Now()
	res, err := svc.DebloatBatch(install, []mlruntime.Workload{w}, dserve.BatchOptions{MaxSteps: maxSteps})
	if err != nil {
		log.Fatalf("negativa-ml: %v", err)
	}

	agg := res.Aggregate()
	fmt.Printf("workload: %s\n", w.Name)
	fmt.Printf("libraries: %d  verified: %v  jobs: %d  wall time: %v\n", agg.Libs, res.AllVerified(), svc.Workers(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("total size:  %8.0f KB  -> %8.0f KB  (-%.0f%%)\n",
		float64(agg.FileEffective)/1024, float64(agg.FileEffectiveAfter)/1024, agg.FileReductionPct())
	fmt.Printf("CPU code:    %8.0f KB  -> %8.0f KB  (-%.0f%%)   functions %d -> %d (-%.0f%%)\n",
		float64(agg.CPUSize)/1024, float64(agg.CPUSizeAfter)/1024, agg.CPUReductionPct(),
		agg.Funcs, agg.FuncsKept, agg.FuncReductionPct())
	fmt.Printf("GPU code:    %8.0f KB  -> %8.0f KB  (-%.0f%%)   elements  %d -> %d (-%.0f%%)\n",
		float64(agg.GPUSize)/1024, float64(agg.GPUSizeAfter)/1024, agg.GPUReductionPct(),
		agg.Elems, agg.ElemsKept, agg.ElemReductionPct())
	fmt.Printf("virtual end-to-end debloating time: %.0f s (detect %.0f s + analyze %.0f s)\n",
		res.EndToEnd().Seconds(), res.DetectTime.Seconds(), res.AnalysisTime.Seconds())
	if st := svc.Store(); st != nil {
		stats := st.Stats()
		fmt.Printf("store: %d objects, %.1f MiB, %d hits / %d misses (profiles reused: %d)\n",
			stats.Objects, float64(stats.Bytes)/(1<<20), stats.Hits, stats.Misses, res.ProfileReuses)
	}
	// Per-stage memoization outcomes of the analysis plan: a repeat run
	// against a warm -data-dir shows every stage absorbed (all hits).
	fmt.Printf("stages:")
	for _, st := range []string{negativa.StageDetect, negativa.StageLibIndex, negativa.StageLocate, negativa.StageCompact, negativa.StageVerifyRun} {
		fmt.Printf("  %s %d/%d", st,
			svc.Counters.Get("stage."+st+".hits"),
			svc.Counters.Get("stage."+st+".hits")+svc.Counters.Get("stage."+st+".misses"))
	}
	fmt.Printf("  (hits/total)\n")

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatalf("negativa-ml: %v", err)
		}
		// Stream each sparse image straight to disk — no full in-memory
		// materialization of the debloated install.
		for _, lr := range res.Libs {
			f, err := os.OpenFile(filepath.Join(*out, lr.Name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				log.Fatalf("negativa-ml: write %s: %v", lr.Name, err)
			}
			_, werr := lr.Sparse.WriteTo(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				log.Fatalf("negativa-ml: write %s: %v", lr.Name, werr)
			}
		}
		fmt.Printf("debloated libraries written to %s\n", *out)
	}
}
