// Command negativa-served runs the batch-debloat service: an HTTP/JSON
// front end over internal/dserve that union-debloats one framework install
// against many workloads per job, reuses detection profiles across jobs,
// and caches per-library locate/compact results content-addressed.
//
// Usage:
//
//	negativa-served -addr :8080 -workers 8 -cache-mb 64 -steps 4 \
//	                -data-dir /var/lib/negativa -disk-mb 512
//
// With -data-dir the service is durable: detection profiles, locate/compact
// results, library images, and completed-job manifests persist to a
// crash-safe content-addressed store, and a restart against the same
// directory resumes warm — previously submitted jobs are served (status,
// report, fetch-library) without re-running detection, location, or
// compaction. -disk-mb bounds the store; least-recently-used objects not
// referenced by a retained job are evicted beyond it. Store reads are
// memory-mapped where the platform supports it; -mmap off falls back to
// buffered reads (see docs/ARCHITECTURE.md, "The byte plane").
//
// With -peers and -node-id the node joins a sharded serving plane: a
// consistent-hash ring over the peer set routes each detect/locate/compact
// stage to one owning node, where it is executed and memoized; other nodes
// read it through (and keep a local copy), so the cluster shares one
// logical cache. Every node of a symmetric deployment can pass the same
// -peers list — a node's own entry is ignored:
//
//	negativa-served -addr :8080 -node-id a \
//	    -peers a=http://h1:8080,b=http://h2:8080,c=http://h3:8080
//
// Peer failures shrink the ring and stages fall back to local compute; a
// recovered peer is readmitted after a probation period. /v1/metrics gains
// a "peer" section (hits/misses/fallbacks, per-peer health) and per-peer
// latency timings. Peers negotiate a compact sparse wire codec per request;
// -sparse-wire v1 pins this node to the fixed-width encoding in both
// directions (the escape hatch for a misbehaving mixed-version ring).
//
// The node-to-node /v1/peer/* routes answer 404 unless the node is
// clustered, and -peer-secret (the same value on every node) makes each
// peer request carry and require an X-Peer-Secret header. Without a
// secret, peer traffic is unauthenticated — isolate the peer network from
// clients.
//
// With -tenants the multi-tenant gateway fronts the service: every /v1/
// route then requires a tenant API key (Authorization: Bearer or
// X-API-Key) — /v1/peer/* is forwarded key-less on clustered nodes (peers
// authenticate with -peer-secret) and refused with 404 everywhere else —
// per-tenant quotas (concurrent batches, retained
// result bytes, stage-seconds per window) shed over-budget submissions
// with 429 + Retry-After, identical in-flight batches coalesce across
// tenants onto one backend execution, and two weighted priority lanes
// (interactive, bulk) order dispatch under contention. Job progress
// streams live over GET /v1/jobs/{id}/events (SSE or long-poll). The
// tenant file is JSON:
//
//	{"tenants": [
//	  {"name": "acme", "keys": ["key-acme-1"], "lane": "interactive",
//	   "quota": {"max_concurrent": 4, "max_result_bytes": 67108864,
//	             "stage_seconds": 120, "window_seconds": 60}},
//	  {"name": "batch-org", "keys": ["key-batch"], "lane": "bulk"}
//	]}
//
// SIGHUP re-reads the file in place — key rotation and quota changes land
// without dropping in-flight jobs. /v1/metrics gains a "gateway" section
// (admitted/shed/coalesced totals and per-lane breakdowns, queue depths,
// dispatch timings) scoped to the requesting tenant: a tenant sees its own
// counters and accounting, never another tenant's.
//
// Endpoints:
//
//	POST /v1/jobs                   submit a batch job
//	POST /v1/submit                 same, incremental-friendly: a "base"
//	                                job ID makes the batch extend a prior
//	                                one — zero detect runs, untouched
//	                                libraries absorbed, only the
//	                                union-delta locate/compact recomputed
//	GET  /v1/jobs                   list jobs
//	GET  /v1/jobs/{id}              job status
//	GET  /v1/jobs/{id}/events       live progress stream (SSE or long-poll)
//	DELETE /v1/jobs/{id}            cancel a still-queued job (gateway mode)
//	GET  /v1/jobs/{id}/report       full report of a completed job
//	GET  /v1/jobs/{id}/libs/{name}  download one debloated library
//	GET  /v1/metrics                counters, cache stats, timings
//	GET  /v1/store                  content-addressed store stats
//	POST /v1/peer/{lookup,detect,compact}   node-to-node stage routing
//	GET  /v1/peer/objects/{kind}/{key}      castore object transfer
//
// Example job body:
//
//	{
//	  "framework": "pytorch", "tail_libs": 20, "max_steps": 4,
//	  "workloads": [
//	    {"model": "MobileNetV2", "batch": 1},
//	    {"model": "MobileNetV2", "train": true, "batch": 16},
//	    {"model": "Transformer", "batch": 32, "device": "A100"},
//	    {"model": "Transformer", "train": true, "batch": 128}
//	  ]
//	}
//
// With -ingest-root the service also accepts ingestion-mode jobs: the body
// names an on-disk tree ("ingest_dir", resolved under and confined to the
// root) instead of a framework, the node classifies the tree's files,
// resolves the DT_NEEDED dependency closure, and debloats the ingested
// install through the same stage DAG, memo tiers, and cluster ring:
//
//	{"ingest_dir": "pytorch-tree", "workloads": [{"model": "MobileNetV2"}]}
//
// On SIGINT/SIGTERM the server stops accepting connections, drains in-flight
// requests, and waits for running jobs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/dserve"
	"negativaml/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent tasks across all jobs")
	cacheMB := flag.Int64("cache-mb", 64, "content-addressed result cache bound (retained MiB; entries are sparse range sets, not library copies)")
	steps := flag.Int("steps", 4, "default detection/verification step cap for jobs")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	dataDir := flag.String("data-dir", "", "persistent store directory; empty = in-memory only (no warm restart)")
	diskMB := flag.Int64("disk-mb", 512, "persistent store byte budget in MiB (with -data-dir)")
	mmap := flag.String("mmap", "on", "store read mapping: on = mmap object reads (with -data-dir), off = buffered reads")
	sparseWire := flag.String("sparse-wire", "v2", "sparse codec on peer responses this node requests: v2 = compact delta/varint, v1 = fixed-width only (with -peers)")
	nodeID := flag.String("node-id", "", "this node's name in the cluster (with -peers)")
	peers := flag.String("peers", "", "cluster peers as id=base-url,... (the whole cluster's list; this node's own entry is ignored)")
	peerSecret := flag.String("peer-secret", "", "shared cluster credential; peer requests carry and require it (with -peers)")
	replicas := flag.Int("replicas", 2, "replica owners per stage key, R (with -peers)")
	repairEvery := flag.Duration("repair-interval", time.Minute, "anti-entropy repair sweep period; 0 disables (with -peers and -data-dir)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedged replica reads: 0 = adaptive (p95 of the target peer's latency, 2ms floor), >0 raises the floor, negative disables hedging (with -peers)")
	ingestRoot := flag.String("ingest-root", "", "enable ingestion-mode jobs (\"ingest_dir\" in the submit body): requested trees resolve under and are confined to this directory")
	tenantsPath := flag.String("tenants", "", "tenant config JSON; enables the multi-tenant gateway (API keys, quotas, lanes)")
	gwDispatch := flag.Int("gw-dispatch", 4, "gateway concurrent dispatch slots (with -tenants)")
	gwQueue := flag.Int("gw-queue", 64, "gateway per-lane queue depth before load-shedding (with -tenants)")
	gwIWeight := flag.Int("gw-interactive-weight", 3, "interactive lane weight in the dispatch ratio (with -tenants)")
	gwBWeight := flag.Int("gw-bulk-weight", 1, "bulk lane weight in the dispatch ratio (with -tenants)")
	flag.Parse()

	// Reject misconfigurations loudly instead of silently coercing them to
	// defaults (Config applies defaults to zero values, which would turn a
	// typo'd "-workers 0" into NumCPU workers).
	if *workers <= 0 {
		log.Fatalf("negativa-served: -workers must be positive (got %d)", *workers)
	}
	if *cacheMB < 0 {
		log.Fatalf("negativa-served: -cache-mb must not be negative (got %d)", *cacheMB)
	}
	if *diskMB < 0 {
		log.Fatalf("negativa-served: -disk-mb must not be negative (got %d)", *diskMB)
	}
	diskSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "disk-mb" {
			diskSet = true
		}
	})
	if diskSet && *dataDir == "" {
		log.Fatal("negativa-served: -disk-mb has no effect without -data-dir")
	}
	if *mmap != "on" && *mmap != "off" {
		log.Fatalf("negativa-served: -mmap must be on or off (got %q)", *mmap)
	}
	if *sparseWire != "v1" && *sparseWire != "v2" {
		log.Fatalf("negativa-served: -sparse-wire must be v1 or v2 (got %q)", *sparseWire)
	}
	if (*peers == "") != (*nodeID == "") {
		log.Fatal("negativa-served: -peers and -node-id must be set together")
	}
	if *peerSecret != "" && *peers == "" {
		log.Fatal("negativa-served: -peer-secret has no effect without -peers")
	}
	if *replicas < 1 {
		log.Fatalf("negativa-served: -replicas must be positive (got %d)", *replicas)
	}
	if *repairEvery < 0 {
		log.Fatalf("negativa-served: -repair-interval must not be negative (got %v)", *repairEvery)
	}
	flag.Visit(func(f *flag.Flag) {
		if *peers == "" && (f.Name == "replicas" || f.Name == "repair-interval" || f.Name == "hedge-delay") {
			log.Fatalf("negativa-served: -%s has no effect without -peers", f.Name)
		}
	})
	for _, f := range []struct {
		name string
		val  int
	}{{"gw-dispatch", *gwDispatch}, {"gw-queue", *gwQueue}, {"gw-interactive-weight", *gwIWeight}, {"gw-bulk-weight", *gwBWeight}} {
		if f.val <= 0 {
			log.Fatalf("negativa-served: -%s must be positive (got %d)", f.name, f.val)
		}
	}
	var peerMap map[string]string
	if *peers != "" {
		pm, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		if _, onlySelf := pm[*nodeID]; onlySelf && len(pm) == 1 {
			log.Fatalf("negativa-served: -peers names only this node (%s)", *nodeID)
		}
		peerMap = pm
	}

	cfg := dserve.Config{
		Workers:             *workers,
		CacheBytes:          *cacheMB << 20,
		MaxSteps:            *steps,
		IngestRoot:          *ingestRoot,
		DisableSparseWireV2: *sparseWire == "v1",
	}
	if peerMap != nil {
		cfg.RepairInterval = *repairEvery
	}
	if *dataDir != "" {
		store, err := castore.Open(*dataDir, castore.Options{MaxBytes: *diskMB << 20, DisableMmap: *mmap == "off"})
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		cfg.Store = store
		st := store.Stats()
		log.Printf("negativa-served: store %s: %d objects, %.1f MiB (budget %d MiB)",
			*dataDir, st.Objects, float64(st.Bytes)/(1<<20), *diskMB)
	}
	svc := dserve.NewService(cfg)
	if *dataDir != "" {
		log.Printf("negativa-served: restored %d jobs, replayed %d profiles",
			svc.Counters.Get("jobs.restored"), svc.Counters.Get("registry.replayed"))
	}
	if peerMap != nil {
		c := cluster.New(*nodeID, peerMap, cluster.Options{
			ReplicaSets:       *replicas,
			HeartbeatInterval: 2 * time.Second,
			HedgeDelay:        *hedgeDelay,
			Counters:          svc.Counters,
			Timings:           svc.Timings,
			Secret:            *peerSecret,
		})
		svc.AttachCluster(c)
		log.Printf("negativa-served: node %s in a %d-node ring (%v), R=%d", *nodeID, len(c.Nodes()), c.Nodes(), *replicas)
		// Announce ourselves: peers that already dropped a previous
		// incarnation of this node (or never knew it) admit it immediately
		// instead of discovering it through gossip.
		go func() {
			if n := c.Join(); n > 0 {
				log.Printf("negativa-served: join acknowledged by %d peers", n)
			}
		}()
	}
	handler := http.Handler(dserve.NewHandler(svc))
	var gw *gateway.Gateway
	if *tenantsPath != "" {
		tenants, err := gateway.LoadTenants(*tenantsPath)
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		gw, err = gateway.New(svc, gateway.Config{
			DispatchSlots:     *gwDispatch,
			QueueDepth:        *gwQueue,
			InteractiveWeight: *gwIWeight,
			BulkWeight:        *gwBWeight,
			PeerPassthrough:   peerMap != nil,
		}, tenants)
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		if peerMap != nil && *peerSecret == "" {
			log.Printf("negativa-served: warning: -tenants with -peers but no -peer-secret; the forwarded /v1/peer/* surface is unauthenticated — keep it network-isolated from clients")
		}
		handler = gateway.NewHandler(gw, handler)
		log.Printf("negativa-served: gateway: %d tenants, %d dispatch slots, interactive:bulk %d:%d",
			len(tenants), *gwDispatch, *gwIWeight, *gwBWeight)

		// SIGHUP re-reads the tenant file: key rotation and quota changes
		// land without dropping in-flight jobs.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				tenants, err := gateway.LoadTenants(*tenantsPath)
				if err != nil {
					log.Printf("negativa-served: tenant reload rejected: %v", err)
					continue
				}
				if err := gw.SetTenants(tenants); err != nil {
					log.Printf("negativa-served: tenant reload rejected: %v", err)
					continue
				}
				log.Printf("negativa-served: reloaded %d tenants", len(tenants))
			}
		}()
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		log.Printf("negativa-served: listening on %s (%d workers, %d MiB result cache)", *addr, svc.Workers(), *cacheMB)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("negativa-served: %v", err)
	case s := <-sig:
		log.Printf("negativa-served: %v: draining for up to %v", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("negativa-served: shutdown: %v", err)
	}
	if gw != nil {
		gw.Close() // shed queued units, stop event pumps
	}
	if peerMap != nil {
		// Graceful departure: hand primary-owned objects to the ring's next
		// owners, announce the leave, stop the membership plane. Peers drop
		// this node immediately instead of discovering the absence through
		// failed requests.
		svc.LeaveCluster()
	}
	svc.Close() // wait for running jobs
	if cfg.Store != nil {
		cfg.Store.Close()
	}
	log.Printf("negativa-served: done (%d jobs completed)", svc.Counters.Get("jobs.completed"))
}
