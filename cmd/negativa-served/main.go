// Command negativa-served runs the batch-debloat service: an HTTP/JSON
// front end over internal/dserve that union-debloats one framework install
// against many workloads per job, reuses detection profiles across jobs,
// and caches per-library locate/compact results content-addressed.
//
// Usage:
//
//	negativa-served -addr :8080 -workers 8 -cache-mb 64 -steps 4 \
//	                -data-dir /var/lib/negativa -disk-mb 512
//
// With -data-dir the service is durable: detection profiles, locate/compact
// results, library images, and completed-job manifests persist to a
// crash-safe content-addressed store, and a restart against the same
// directory resumes warm — previously submitted jobs are served (status,
// report, fetch-library) without re-running detection, location, or
// compaction. -disk-mb bounds the store; least-recently-used objects not
// referenced by a retained job are evicted beyond it.
//
// With -peers and -node-id the node joins a sharded serving plane: a
// consistent-hash ring over the peer set routes each detect/locate/compact
// stage to one owning node, where it is executed and memoized; other nodes
// read it through (and keep a local copy), so the cluster shares one
// logical cache. Every node of a symmetric deployment can pass the same
// -peers list — a node's own entry is ignored:
//
//	negativa-served -addr :8080 -node-id a \
//	    -peers a=http://h1:8080,b=http://h2:8080,c=http://h3:8080
//
// Peer failures shrink the ring and stages fall back to local compute; a
// recovered peer is readmitted after a probation period. /v1/metrics gains
// a "peer" section (hits/misses/fallbacks, per-peer health) and per-peer
// latency timings.
//
// Endpoints:
//
//	POST /v1/jobs                   submit a batch job
//	POST /v1/submit                 same, incremental-friendly: a "base"
//	                                job ID makes the batch extend a prior
//	                                one — zero detect runs, untouched
//	                                libraries absorbed, only the
//	                                union-delta locate/compact recomputed
//	GET  /v1/jobs                   list jobs
//	GET  /v1/jobs/{id}              job status
//	GET  /v1/jobs/{id}/report       full report of a completed job
//	GET  /v1/jobs/{id}/libs/{name}  download one debloated library
//	GET  /v1/metrics                counters, cache stats, timings
//	GET  /v1/store                  content-addressed store stats
//	POST /v1/peer/{lookup,detect,compact}   node-to-node stage routing
//	GET  /v1/peer/objects/{kind}/{key}      castore object transfer
//
// Example job body:
//
//	{
//	  "framework": "pytorch", "tail_libs": 20, "max_steps": 4,
//	  "workloads": [
//	    {"model": "MobileNetV2", "batch": 1},
//	    {"model": "MobileNetV2", "train": true, "batch": 16},
//	    {"model": "Transformer", "batch": 32, "device": "A100"},
//	    {"model": "Transformer", "train": true, "batch": 128}
//	  ]
//	}
//
// On SIGINT/SIGTERM the server stops accepting connections, drains in-flight
// requests, and waits for running jobs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/dserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent tasks across all jobs")
	cacheMB := flag.Int64("cache-mb", 64, "content-addressed result cache bound (retained MiB; entries are sparse range sets, not library copies)")
	steps := flag.Int("steps", 4, "default detection/verification step cap for jobs")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	dataDir := flag.String("data-dir", "", "persistent store directory; empty = in-memory only (no warm restart)")
	diskMB := flag.Int64("disk-mb", 512, "persistent store byte budget in MiB (with -data-dir)")
	nodeID := flag.String("node-id", "", "this node's name in the cluster (with -peers)")
	peers := flag.String("peers", "", "cluster peers as id=base-url,... (the whole cluster's list; this node's own entry is ignored)")
	flag.Parse()

	// Reject misconfigurations loudly instead of silently coercing them to
	// defaults (Config applies defaults to zero values, which would turn a
	// typo'd "-workers 0" into NumCPU workers).
	if *workers <= 0 {
		log.Fatalf("negativa-served: -workers must be positive (got %d)", *workers)
	}
	if *cacheMB < 0 {
		log.Fatalf("negativa-served: -cache-mb must not be negative (got %d)", *cacheMB)
	}
	if *diskMB < 0 {
		log.Fatalf("negativa-served: -disk-mb must not be negative (got %d)", *diskMB)
	}
	diskSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "disk-mb" {
			diskSet = true
		}
	})
	if diskSet && *dataDir == "" {
		log.Fatal("negativa-served: -disk-mb has no effect without -data-dir")
	}
	if (*peers == "") != (*nodeID == "") {
		log.Fatal("negativa-served: -peers and -node-id must be set together")
	}
	var peerMap map[string]string
	if *peers != "" {
		pm, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		if _, onlySelf := pm[*nodeID]; onlySelf && len(pm) == 1 {
			log.Fatalf("negativa-served: -peers names only this node (%s)", *nodeID)
		}
		peerMap = pm
	}

	cfg := dserve.Config{
		Workers:    *workers,
		CacheBytes: *cacheMB << 20,
		MaxSteps:   *steps,
	}
	if *dataDir != "" {
		store, err := castore.Open(*dataDir, castore.Options{MaxBytes: *diskMB << 20})
		if err != nil {
			log.Fatalf("negativa-served: %v", err)
		}
		cfg.Store = store
		st := store.Stats()
		log.Printf("negativa-served: store %s: %d objects, %.1f MiB (budget %d MiB)",
			*dataDir, st.Objects, float64(st.Bytes)/(1<<20), *diskMB)
	}
	svc := dserve.NewService(cfg)
	if *dataDir != "" {
		log.Printf("negativa-served: restored %d jobs, replayed %d profiles",
			svc.Counters.Get("jobs.restored"), svc.Counters.Get("registry.replayed"))
	}
	if peerMap != nil {
		c := cluster.New(*nodeID, peerMap, cluster.Options{Counters: svc.Counters, Timings: svc.Timings})
		svc.AttachCluster(c)
		log.Printf("negativa-served: node %s in a %d-node ring (%v)", *nodeID, len(c.Nodes()), c.Nodes())
	}
	srv := &http.Server{Addr: *addr, Handler: dserve.NewHandler(svc)}

	errc := make(chan error, 1)
	go func() {
		log.Printf("negativa-served: listening on %s (%d workers, %d MiB result cache)", *addr, svc.Workers(), *cacheMB)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("negativa-served: %v", err)
	case s := <-sig:
		log.Printf("negativa-served: %v: draining for up to %v", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("negativa-served: shutdown: %v", err)
	}
	svc.Close() // wait for running jobs
	if cfg.Store != nil {
		cfg.Store.Close()
	}
	log.Printf("negativa-served: done (%d jobs completed)", svc.Counters.Get("jobs.completed"))
}
