// Example batch-serve drives the batch-debloat service over its real HTTP
// API: it starts negativa-served's handler on a loopback listener, submits
// a four-workload batch over one PyTorch install, polls to completion,
// prints the union-debloat report, then resubmits the same job to show the
// profile registry and content-addressed cache absorbing all the work.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"negativaml/internal/dserve"
)

func main() {
	svc := dserve.NewService(dserve.Config{Workers: 8, MaxSteps: 4})
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, dserve.NewHandler(svc))
	base := "http://" + ln.Addr().String()
	fmt.Printf("batch-debloat service on %s\n\n", base)

	req := dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  20,
		Workloads: []dserve.WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
		},
		MaxSteps: 4,
	}

	run := func(label string) {
		id := submit(base, req)
		st := poll(base, id)
		if st.State != "done" {
			log.Fatalf("%s: job %s: %s (%s)", label, id, st.State, st.Error)
		}
		var rep map[string]any
		getJSON(base+"/v1/jobs/"+id+"/report", &rep)
		totals := rep["totals"].(map[string]any)
		fmt.Printf("%s: job %s\n", label, id)
		fmt.Printf("  union: %v\n", rep["union_workload"])
		fmt.Printf("  libraries: %.0f  file reduction: %.0f%%  cache hits/misses: %.0f/%.0f  profile reuses: %.0f\n",
			totals["libs"], totals["file_red_pct"], rep["cache_hits"], rep["cache_misses"], rep["profile_reuses"])
		fmt.Printf("  virtual end-to-end: %.0f s  wall: %.0f ms\n",
			rep["end_to_end_virtual_ms"].(float64)/1000, rep["wall_ms"])
		for _, w := range rep["workloads"].([]any) {
			wm := w.(map[string]any)
			fmt.Printf("    %-42v verified=%v reused=%v\n", wm["name"], wm["verified"], wm["profile_reused"])
		}
		fmt.Println()
	}

	run("cold batch")
	run("repeat batch")

	var m map[string]any
	getJSON(base+"/v1/metrics", &m)
	out, _ := json.MarshalIndent(m["counters"], "", "  ")
	fmt.Printf("service counters:\n%s\n", out)
}

func submit(base string, req dserve.JobRequest) string {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit rejected: %s: %s", resp.Status, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		log.Fatal(err)
	}
	return st.ID
}

type status struct {
	State string `json:"state"`
	Error string `json:"error"`
}

func poll(base, id string) status {
	for {
		var st status
		getJSON(base+"/v1/jobs/"+id, &st)
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatal(err)
	}
}
