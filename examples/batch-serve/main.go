// Example batch-serve drives the batch-debloat service over its real HTTP
// API: it starts negativa-served's handler on a loopback listener with a
// persistent data dir, submits a four-workload batch over one PyTorch
// install, polls to completion, prints the union-debloat report, resubmits
// the same job to show the profile registry and content-addressed cache
// absorbing all the work — then shuts the service down, boots a second one
// on the same data dir, and fetches the first boot's job warm from disk:
// byte-identical library, zero locate/compact runs.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/dserve"
)

func main() {
	dataDir, err := os.MkdirTemp("", "negativa-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	// serve boots one service + listener against the shared data dir and
	// returns its base URL plus a shutdown func — the "process" we restart.
	serve := func() (string, func()) {
		store, err := castore.Open(dataDir, castore.Options{MaxBytes: 512 << 20})
		if err != nil {
			log.Fatal(err)
		}
		svc := dserve.NewService(dserve.Config{Workers: 8, MaxSteps: 4, Store: store})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, dserve.NewHandler(svc))
		return "http://" + ln.Addr().String(), func() {
			ln.Close()
			svc.Close()
			store.Close() // release the data-dir lock for the next boot
		}
	}

	base, shutdown := serve()
	fmt.Printf("batch-debloat service on %s (data dir %s)\n\n", base, dataDir)

	req := dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  20,
		Workloads: []dserve.WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
		},
		MaxSteps: 4,
	}

	run := func(base, label string) string {
		id := submit(base, req)
		st := poll(base, id)
		if st.State != "done" {
			log.Fatalf("%s: job %s: %s (%s)", label, id, st.State, st.Error)
		}
		var rep map[string]any
		getJSON(base+"/v1/jobs/"+id+"/report", &rep)
		totals := rep["totals"].(map[string]any)
		fmt.Printf("%s: job %s\n", label, id)
		fmt.Printf("  union: %v\n", rep["union_workload"])
		fmt.Printf("  libraries: %.0f  file reduction: %.0f%%  cache hits/misses: %.0f/%.0f  profile reuses: %.0f\n",
			totals["libs"], totals["file_red_pct"], rep["cache_hits"], rep["cache_misses"], rep["profile_reuses"])
		fmt.Printf("  virtual end-to-end: %.0f s  wall: %.0f ms\n",
			rep["end_to_end_virtual_ms"].(float64)/1000, rep["wall_ms"])
		for _, w := range rep["workloads"].([]any) {
			wm := w.(map[string]any)
			fmt.Printf("    %-42v verified=%v reused=%v\n", wm["name"], wm["verified"], wm["profile_reused"])
		}
		fmt.Println()
		return id
	}

	jobID := run(base, "cold batch")
	run(base, "repeat batch")

	// ---- Incremental re-submit: extend the first job's workload set. ----
	// Register the added workload's profile with a solo job first, then
	// POST /v1/submit with base=jobID: the superset batch performs zero
	// detection runs, absorbs untouched libraries through their unchanged
	// stage keys, and carries the base members' verifications over.
	extra := dserve.WorkloadSpec{Model: "Llama2", Name: "pytorch/extra/Llama2"}
	soloReq := req
	soloReq.Workloads = []dserve.WorkloadSpec{extra}
	poll(base, submit(base, soloReq))

	incReq := req
	incReq.Workloads = append(append([]dserve.WorkloadSpec{}, req.Workloads...), extra)
	incReq.Base = jobID
	incID := submitTo(base, "/v1/submit", incReq)
	if st := poll(base, incID); st.State != "done" {
		log.Fatalf("incremental job %s: %s (%s)", incID, st.State, st.Error)
	}
	var incRep struct {
		Incremental *dserve.IncrementalStats `json:"incremental"`
		DetectMS    float64                  `json:"detect_virtual_ms"`
		WallMS      float64                  `json:"wall_ms"`
	}
	getJSON(base+"/v1/jobs/"+incID+"/report", &incRep)
	fmt.Printf("incremental batch: job %s (base %s)\n", incID, jobID)
	if inc := incRep.Incremental; inc != nil {
		fmt.Printf("  absorbed libs: %d  delta libs: %d  carried verifications: %d\n",
			inc.AbsorbedLibs, inc.DeltaLibs, inc.CarriedVerifications)
	}
	fmt.Printf("  fresh detection: %.0f ms (want 0 — every profile reused)  wall: %.0f ms\n\n",
		incRep.DetectMS, incRep.WallMS)

	const libName = "libtorch_cuda.so"
	firstBoot := fetch(base, jobID, libName)

	// ---- Restart: same data dir, fresh process state. ----
	shutdown()
	fmt.Println("service shut down; rebooting on the same data dir...")
	base2, shutdown2 := serve()
	defer shutdown2()

	var m map[string]any
	getJSON(base2+"/v1/metrics", &m)
	counters := m["counters"].(map[string]any)
	fmt.Printf("second boot: restored %v jobs, replayed %v profiles\n",
		counters["jobs.restored"], counters["registry.replayed"])

	// The first boot's job serves warm: no detection, no locate/compact —
	// status, report, and libraries all come from the store.
	warm := fetch(base2, jobID, libName)
	getJSON(base2+"/v1/metrics", &m)
	counters = m["counters"].(map[string]any)
	var sv struct {
		Stats castore.Stats `json:"stats"`
	}
	getJSON(base2+"/v1/store", &sv)
	fmt.Printf("warm fetch of %s from job %s: %d bytes, identical=%v\n",
		libName, jobID, len(warm), bytes.Equal(firstBoot, warm))
	fmt.Printf("locate/compact runs on second boot: %v (want <nil> or 0)\n", counters["analysis.computed"])
	fmt.Printf("store: %d objects, %.1f MiB, %d hits, %d retained by jobs\n",
		sv.Stats.Objects, float64(sv.Stats.Bytes)/(1<<20), sv.Stats.Hits, sv.Stats.Retained)
}

func fetch(base, id, name string) []byte {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/libs/" + name)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("fetch %s/%s: %s: %s", id, name, resp.Status, body)
	}
	return body
}

func submit(base string, req dserve.JobRequest) string {
	return submitTo(base, "/v1/jobs", req)
}

func submitTo(base, path string, req dserve.JobRequest) string {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit rejected: %s: %s", resp.Status, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		log.Fatal(err)
	}
	return st.ID
}

type status struct {
	State string `json:"state"`
	Error string `json:"error"`
}

func poll(base, id string) status {
	for {
		var st status
		getJSON(base+"/v1/jobs/"+id, &st)
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatal(err)
	}
}
