// Example cluster runs a 3-node sharded serving plane in one process:
// three full dserve services, each with its own persistent castore and
// loopback HTTP listener, joined by a consistent-hash ring. It then shows
// the cluster's three behaviors end to end:
//
//  1. Node A computes a batch — each detect/locate/compact stage executes
//     on (and is memoized by) its owning shard, so the work spreads over
//     the ring even for a single submission.
//  2. The same batch submitted to node B completes with zero local
//     locate/compact: every stage reads through to its owner (peer.hits)
//     and the fetched artifacts land in B's own castore.
//  3. Node C is killed; a fresh batch still completes — the ring shrinks
//     and C-owned stages fall back to local compute (peer.fallbacks).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/dserve"
)

type node struct {
	id   string
	base string
	svc  *dserve.Service
	stop func()
}

// startNode boots one cluster member: service + castore + HTTP listener.
func startNode(id string) *node {
	dataDir, err := os.MkdirTemp("", "negativa-"+id+"-*")
	if err != nil {
		log.Fatal(err)
	}
	store, err := castore.Open(dataDir, castore.Options{MaxBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	svc := dserve.NewService(dserve.Config{Workers: 4, MaxSteps: 4, Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: dserve.NewHandler(svc)}
	go hs.Serve(ln)
	return &node{
		id:   id,
		base: "http://" + ln.Addr().String(),
		svc:  svc,
		// hs.Close (not just ln.Close) so established keep-alive
		// connections die with the node — peers must see a dead socket,
		// like a real process kill, not a half-alive server answering
		// over pooled connections.
		stop: func() {
			hs.Close()
			svc.Close()
			store.Close()
			os.RemoveAll(dataDir)
		},
	}
}

func postJSON(url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runBatch submits a batch to a node and polls it to completion.
func runBatch(n *node, req dserve.JobRequest) (id string, wall time.Duration) {
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	start := time.Now()
	if err := postJSON(n.base+"/v1/jobs", req, &st); err != nil {
		log.Fatal(err)
	}
	for st.State != "done" && st.State != "failed" {
		time.Sleep(5 * time.Millisecond)
		if err := getJSON(n.base+"/v1/jobs/"+st.ID, &st); err != nil {
			log.Fatal(err)
		}
	}
	if st.State == "failed" {
		log.Fatalf("job on node %s failed: %s", n.id, st.Error)
	}
	return st.ID, time.Since(start)
}

func main() {
	// Boot three nodes, then join them into one ring. Every node gets the
	// same peer list; its own entry is ignored — exactly how a symmetric
	// production deployment passes one -peers flag to negativa-served.
	nodes := []*node{startNode("a"), startNode("b"), startNode("c")}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	peers := map[string]string{}
	for _, n := range nodes {
		peers[n.id] = n.base
	}
	for _, n := range nodes {
		n.svc.AttachCluster(cluster.New(n.id, peers, cluster.Options{
			Counters: n.svc.Counters,
			Timings:  n.svc.Timings,
		}))
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	fmt.Printf("3-node ring: a=%s b=%s c=%s\n\n", a.base, b.base, c.base)

	req := dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  20,
		Workloads: []dserve.WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
		},
		MaxSteps: 4,
	}

	// ---- 1. Cold batch on node A: stages execute on their owning shards.
	idA, wallA := runBatch(a, req)
	fmt.Printf("node a: cold batch %s in %v\n", idA, wallA.Round(time.Millisecond))
	fmt.Printf("  remote stage executions issued by a: %d (local analysis: %d)\n",
		a.svc.Counters.Get("peer.remote_execs"), a.svc.Counters.Get("analysis.computed"))
	for _, n := range []*node{b, c} {
		fmt.Printf("  node %s served as owning shard: %d compacts, %d detects\n",
			n.id, n.svc.Counters.Get("peer.served_compacts"), n.svc.Counters.Get("peer.served_detects"))
	}

	// ---- 2. Same batch on node B: pure cluster reuse. analysisBefore
	// excludes the compacts B already executed as owning shard during A's
	// batch — the delta is what B's own submission cost locally.
	analysisBefore := b.svc.Counters.Get("analysis.computed")
	idB, wallB := runBatch(b, req)
	fmt.Printf("\nnode b: same batch %s in %v\n", idB, wallB.Round(time.Millisecond))
	fmt.Printf("  peer.hits=%d peer.misses=%d local analysis this batch=%d (0 = fully absorbed)\n",
		b.svc.Counters.Get("peer.hits"), b.svc.Counters.Get("peer.misses"),
		b.svc.Counters.Get("analysis.computed")-analysisBefore)
	fmt.Printf("  b's castore now holds %d objects (read-through replicates toward demand)\n",
		b.svc.Store().Stats().Objects)

	// ---- 3. Kill node C: the ring degrades, batches keep completing.
	c.stop()
	nodes = nodes[:2]
	fresh := req
	fresh.Framework = "tensorflow" // new install → every stage key is fresh
	idA2, wallA2 := runBatch(a, fresh)
	fmt.Printf("\nnode a after killing c: fresh batch %s in %v\n", idA2, wallA2.Round(time.Millisecond))
	fmt.Printf("  peer.fallbacks=%d ring=%v\n",
		a.svc.Counters.Get("peer.fallbacks"), a.svc.Cluster().Nodes())

	var metrics struct {
		Peer map[string]any `json:"peer"`
	}
	if err := getJSON(a.base+"/v1/metrics", &metrics); err != nil {
		log.Fatal(err)
	}
	out, _ := json.MarshalIndent(metrics.Peer, "  ", "  ")
	fmt.Printf("\nnode a /v1/metrics peer section:\n  %s\n", out)
}
