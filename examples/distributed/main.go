// Distributed LLM inference (§4.5, Table 10): tensor-parallel decoding on
// 8x A100 touches rank-specialized collective kernels and Ampere-tuned
// per-variant cubins, so more GPU elements survive debloating than on a
// single GPU — the paper's lower element-count reduction for distributed
// runs.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"negativaml"
)

func debloatLlama(ranks int) *negativaml.DebloatResult {
	install, err := negativaml.GenerateInstall(negativaml.VLLM, 122)
	if err != nil {
		log.Fatal(err)
	}
	devices := make([]negativaml.Device, ranks)
	for i := range devices {
		devices[i] = negativaml.A100
	}
	w := negativaml.Workload{
		Name:           fmt.Sprintf("vLLM/Inference/Llama2-%dxA100", ranks),
		Install:        install,
		Graph:          negativaml.Llama2(true, ranks),
		Devices:        devices,
		Mode:           negativaml.EagerLoading,
		Data:           negativaml.ManualInput,
		PerItemCompute: 150 * time.Millisecond,
	}
	res, err := negativaml.Debloat(w, negativaml.DebloatOptions{MaxSteps: 8})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verified {
		log.Fatalf("%s failed verification", w.Name)
	}
	return res
}

func main() {
	single := debloatLlama(1)
	dist := debloatLlama(8)

	s1, s8 := single.Aggregate(), dist.Aggregate()
	fmt.Printf("%-22s %14s %14s\n", "", "1x A100", "8x A100")
	fmt.Printf("%-22s %13.0f%% %13.0f%%\n", "element reduction", s1.ElemReductionPct(), s8.ElemReductionPct())
	fmt.Printf("%-22s %13.0f%% %13.0f%%\n", "GPU size reduction", s1.GPUReductionPct(), s8.GPUReductionPct())
	fmt.Printf("%-22s %13d %13d\n", "elements kept", s1.ElemsKept, s8.ElemsKept)

	// The extra survivors are the per-rank collective kernels in libnccl.
	nccl := dist.Lib("libnccl.so.2")
	var ranks []string
	for _, k := range nccl.UsedKernels {
		if i := strings.LastIndex(k, "_r"); i > 0 {
			ranks = append(ranks, k[i+1:])
		}
	}
	fmt.Printf("\nlibnccl.so.2 under 8-way tensor parallelism: %d used kernels across ranks %v\n",
		len(nccl.UsedKernels), dedupe(ranks))
	fmt.Printf("distributed inference keeps %d more elements than single-GPU (paper: Table 10)\n",
		s8.ElemsKept-s1.ElemsKept)
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
