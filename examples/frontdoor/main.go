// Example frontdoor demonstrates the multi-tenant gateway over the batch-
// debloat service: two tenants — interactive "acme" and bulk "batch-org",
// each with its own API key and quota — submit through the authenticated
// front door. The run shows an unauthenticated request refused, identical
// batches from both tenants coalescing onto one backend execution, live
// per-stage progress streamed over the events endpoint, a quota-exceeded
// submission shed with 429 + Retry-After, and the per-tenant gateway
// counters from /v1/metrics.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"negativaml/internal/dserve"
	"negativaml/internal/gateway"
)

const (
	acmeKey  = "key-acme-demo"
	batchKey = "key-batch-demo"
)

func main() {
	// Boot the service with the gateway in front, as negativa-served
	// -tenants does: acme is an interactive tenant on a small
	// stage-seconds budget; batch-org rides the bulk lane uncapped.
	svc := dserve.NewService(dserve.Config{Workers: 8, MaxSteps: 2})
	defer svc.Close()
	gw, err := gateway.New(svc, gateway.Config{}, []gateway.TenantConfig{
		{Name: "acme", Keys: []string{acmeKey}, Lane: gateway.LaneInteractive,
			// 10ms of analysis wall time per 2-second window: the first
			// batch exhausts it, so the follow-up submission is shed.
			Quota: gateway.QuotaConfig{StageSeconds: 0.01, WindowSeconds: 2}},
		{Name: "batch-org", Keys: []string{batchKey}, Lane: gateway.LaneBulk},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, gateway.NewHandler(gw, dserve.NewHandler(svc)))
	base := "http://" + ln.Addr().String()
	fmt.Printf("front door on %s — tenants: acme (interactive, 10ms stage budget / 2s), batch-org (bulk)\n\n", base)

	// A deliberately heavy batch: four workloads over a 20-library tail
	// keeps the analysis busy long enough to watch it stream.
	req := dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  20,
		MaxSteps:  4,
		Workloads: []dserve.WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 32},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 3},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 3},
		},
	}

	// 1. No key, no service.
	resp := post(base+"/v1/jobs", "", req)
	fmt.Printf("no API key            → %s\n", resp.Status)
	resp.Body.Close()

	// 2. Both tenants submit the identical batch back-to-back: the second
	// submission coalesces onto the first's in-flight execution — one
	// backend batch feeds both riders.
	acmeJob := submit(base, acmeKey, req)
	batchJob := submit(base, batchKey, req)
	fmt.Printf("acme submits          → %s (lane %s)\n", acmeJob.ID, acmeJob.Lane)
	fmt.Printf("batch-org submits     → %s (lane %s, coalesced=%v)\n", batchJob.ID, batchJob.Lane, batchJob.Coalesced)

	// 3. Live progress: long-poll acme's event stream to the terminal event.
	fmt.Printf("\nstreaming %s:\n", acmeJob.ID)
	after := -1
	for done := false; !done; {
		var ev struct {
			Events []dserve.JobEvent `json:"events"`
			Done   bool              `json:"done"`
		}
		getJSON(base+fmt.Sprintf("/v1/jobs/%s/events?after=%d&timeout_ms=2000", acmeJob.ID, after), acmeKey, &ev)
		for _, e := range ev.Events {
			after = e.Seq
			switch e.Type {
			case dserve.EventStage:
				fmt.Printf("  stage %-28s %d/%d\n", e.Stage, e.StagesDone, e.StagesTotal)
			case dserve.EventState:
				fmt.Printf("  state %s\n", e.State)
			}
		}
		done = ev.Done
	}

	// Both riders finished off the one shared execution.
	var acmeFinal, batchFinal gwView
	getJSON(base+"/v1/jobs/"+acmeJob.ID, acmeKey, &acmeFinal)
	getJSON(base+"/v1/jobs/"+batchJob.ID, batchKey, &batchFinal)
	fmt.Printf("\nacme job %s: %s (progress %.0f%%)\n", acmeFinal.ID, acmeFinal.State, 100*acmeFinal.Progress)
	fmt.Printf("batch-org job %s: %s — same backend execution: %v\n",
		batchFinal.ID, batchFinal.State, acmeFinal.Upstream == batchFinal.Upstream)

	// 4. That batch spent far more than acme's 10ms stage budget, so
	// acme's next submission inside the window is shed with 429 +
	// Retry-After. batch-org has no such quota and sails through.
	over := dserve.JobRequest{
		Framework: "tensorflow",
		TailLibs:  8,
		Workloads: []dserve.WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	}
	resp = post(base+"/v1/jobs", acmeKey, over)
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	fmt.Printf("\nacme over budget      → %s, Retry-After: %ds\n", resp.Status, retryAfter)
	fmt.Printf("                        %s", shedBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		log.Fatalf("expected a 429 shed, got %s", resp.Status)
	}
	okJob := submit(base, batchKey, over)
	waitDone(base, batchKey, okJob.ID)
	fmt.Printf("batch-org same batch  → %s accepted and completed\n", okJob.ID)

	// 5. The window rolls; the shed batch is welcome after Retry-After.
	time.Sleep(time.Duration(retryAfter)*time.Second + 100*time.Millisecond)
	retry := submit(base, acmeKey, over)
	waitDone(base, acmeKey, retry.ID)
	fmt.Printf("acme retries          → %s accepted and completed\n", retry.ID)

	// 6. The gateway section of /v1/metrics tells the whole story — scoped
	// to the asking tenant: each sees the shared aggregates plus only its
	// own tenant.* counters, never the other's.
	var metrics struct {
		Gateway struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"gateway"`
	}
	getJSON(base+"/v1/metrics", acmeKey, &metrics)
	fmt.Println("\ngateway counters as acme sees them:")
	for _, k := range []string{"gateway.admitted", "gateway.coalesced", "gateway.shed",
		"tenant.acme.admitted", "tenant.acme.shed"} {
		fmt.Printf("  %-28s %d\n", k, metrics.Gateway.Counters[k])
	}
	if _, leaked := metrics.Gateway.Counters["tenant.batch-org.admitted"]; leaked {
		log.Fatal("acme's metrics view leaked batch-org's counters")
	}
	metrics.Gateway.Counters = nil // a fresh decode, not a merge
	getJSON(base+"/v1/metrics", batchKey, &metrics)
	fmt.Println("gateway counters as batch-org sees them:")
	for _, k := range []string{"tenant.batch-org.admitted", "tenant.batch-org.coalesced"} {
		fmt.Printf("  %-28s %d\n", k, metrics.Gateway.Counters[k])
	}
}

// gwView is the slice of the gateway's job status this example reads.
type gwView struct {
	ID        string  `json:"id"`
	Lane      string  `json:"lane"`
	State     string  `json:"state"`
	Coalesced bool    `json:"coalesced"`
	Progress  float64 `json:"progress"`
	Upstream  string  `json:"upstream"`
}

func post(url, key string, body any) *http.Response {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

func submit(base, key string, req dserve.JobRequest) gwView {
	resp := post(base+"/v1/jobs", key, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var v gwView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func getJSON(url, key string, out any) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func waitDone(base, key, id string) {
	for deadline := time.Now().Add(2 * time.Minute); time.Now().Before(deadline); {
		var v gwView
		getJSON(base+"/v1/jobs/"+id, key, &v)
		if v.State == dserve.JobDone || v.State == dserve.JobFailed {
			if v.State != dserve.JobDone {
				log.Fatalf("job %s failed", id)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("job %s never finished", id)
}
