// LLM inference on an H100 under eager vs lazy kernel loading (§4.5,
// Tables 6 and 7): lazy loading already avoids paging GPU code the
// workload never touches, so debloating helps it less — exactly the
// paper's finding.
//
//	go run ./examples/llm-lazy
package main

import (
	"fmt"
	"log"
	"time"

	"negativaml"
)

func run(mode negativaml.LoadMode) {
	install, err := negativaml.GenerateInstall(negativaml.VLLM, 155)
	if err != nil {
		log.Fatal(err)
	}
	w := negativaml.Workload{
		Name:           "vLLM/Inference/Llama2",
		Install:        install,
		Graph:          negativaml.Llama2(true, 1),
		Devices:        []negativaml.Device{negativaml.H100},
		Mode:           mode,
		Data:           negativaml.ManualInput,
		PerItemCompute: 320 * time.Millisecond,
	}

	orig, err := negativaml.RunWorkload(w, negativaml.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := negativaml.Debloat(w, negativaml.DebloatOptions{})
	if err != nil {
		log.Fatal(err)
	}
	deb := res.VerifyResult

	cpuRed := 100 * float64(orig.PeakCPUBytes-deb.PeakCPUBytes) / float64(orig.PeakCPUBytes)
	timeRed := 100 * float64(orig.ExecTime-deb.ExecTime) / float64(orig.ExecTime)
	fmt.Printf("%-5s loading: exec %5.1f s -> %5.1f s (-%4.1f%%)  peak CPU %7.0f KB -> %7.0f KB (-%4.1f%%)  verified=%v\n",
		mode, orig.ExecTime.Seconds(), deb.ExecTime.Seconds(), timeRed,
		float64(orig.PeakCPUBytes)/1024, float64(deb.PeakCPUBytes)/1024, cpuRed, res.Verified)
}

func main() {
	fmt.Println("vLLM Llama2 inference on 1x H100, original vs debloated libraries:")
	run(negativaml.EagerLoading)
	run(negativaml.LazyLoading)
	fmt.Println("\nlazy loading narrows the gap: unused kernels were never paged in,")
	fmt.Println("so the remaining benefit comes from the CPU-side code and file size.")
}
