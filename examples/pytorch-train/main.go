// PyTorch training: the paper's flagship workload (PyTorch / Train /
// MobileNetV2 on CIFAR10, Table 1 row 1) end to end, including the
// detection-overhead comparison of §4.6.
//
//	go run ./examples/pytorch-train
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"negativaml"
)

func main() {
	install, err := negativaml.GenerateInstall(negativaml.PyTorch, 100)
	if err != nil {
		log.Fatal(err)
	}
	w := negativaml.Workload{
		Name:           "PyTorch/Train/MobileNetV2",
		Install:        install,
		Graph:          negativaml.MobileNetV2(true, 16),
		Devices:        []negativaml.Device{negativaml.T4},
		Mode:           negativaml.EagerLoading,
		Data:           negativaml.CIFAR10,
		Epochs:         3,
		PerItemCompute: 1030 * time.Microsecond,
	}

	// Phase 1+2+3+4: the full pipeline over the full training run (three
	// epochs over CIFAR10 — coverage would saturate in a handful of steps,
	// but the end-to-end timing of Table 8 wants the real run).
	res, err := negativaml.Debloat(w, negativaml.DebloatOptions{VerifySteps: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: verified=%v\n", w.Name, res.Verified)
	fmt.Printf("virtual end-to-end debloating time: %.0f s (paper: 651 s)\n", res.EndToEnd.Seconds())

	// What the detector saw in the core library.
	core := res.Lib("libtorch_cuda.so")
	fmt.Printf("\nlibtorch_cuda.so: %d kernels and %d CPU functions in use\n",
		len(core.UsedKernels), len(core.UsedFuncs))
	kernels := append([]string(nil), core.UsedKernels...)
	sort.Strings(kernels)
	for i, k := range kernels {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(kernels)-6)
			break
		}
		fmt.Printf("  %s\n", k)
	}
	fmt.Printf("reductions: file %.0f%%, CPU %.0f%%, funcs %.0f%%, GPU %.0f%%, elements %.0f%%\n",
		core.FileReductionPct(), core.CPUReductionPct(), core.FuncReductionPct(),
		core.GPUReductionPct(), core.ElemReductionPct())

	// §4.6: profile-tool overhead on this workload.
	base, err := negativaml.RunWorkload(w, negativaml.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	det := res.DetectTime
	fmt.Printf("\ntracer overhead: original %.0f s, with kernel detector %.0f s (+%.0f%%; paper: +41%%)\n",
		base.ExecTime.Seconds(), det.Seconds(),
		100*float64(det-base.ExecTime)/float64(base.ExecTime))
}
