// Quickstart: generate a small PyTorch install, debloat it against a
// MobileNetV2 inference workload, and print what Negativa-ML removed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"negativaml"
)

func main() {
	// A PyTorch installation with a 20-library dependency tail. Every
	// library is a real ELF file with CPU functions in .text and GPU code
	// in .nv_fatbin.
	install, err := negativaml.GenerateInstall(negativaml.PyTorch, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s %s: %d shared libraries, %.1f MB\n",
		install.Framework, install.Version, len(install.LibNames),
		float64(install.TotalFileSize())/(1<<20))

	// The workload: MobileNetV2 inference, batch 1, on a T4 (Table 1).
	w := negativaml.Workload{
		Name:           "PyTorch/Inference/MobileNetV2",
		Install:        install,
		Graph:          negativaml.MobileNetV2(false, 1),
		Devices:        []negativaml.Device{negativaml.T4},
		Mode:           negativaml.EagerLoading,
		Data:           negativaml.CIFAR10,
		PerItemCompute: 5 * time.Millisecond,
	}

	// Run it once, untouched, for the baseline metrics.
	orig, err := negativaml.RunWorkload(w, negativaml.RunOptions{MaxSteps: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original run:  %6.1f s, peak CPU %6.0f KB, peak GPU %6.0f KB\n",
		orig.ExecTime.Seconds(), float64(orig.PeakCPUBytes)/1024, float64(orig.PeakGPUBytes)/1024)

	// Debloat: profile the workload, locate used kernels and functions,
	// compact every library, verify.
	res, err := negativaml.Debloat(w, negativaml.DebloatOptions{MaxSteps: 50})
	if err != nil {
		log.Fatal(err)
	}
	agg := res.Aggregate()
	fmt.Printf("debloated %d libraries (verified: %v):\n", agg.Libs, res.Verified)
	fmt.Printf("  total size reduced %4.0f%%\n", agg.FileReductionPct())
	fmt.Printf("  CPU code   reduced %4.0f%%  (%d of %d functions removed)\n",
		agg.CPUReductionPct(), agg.Funcs-agg.FuncsKept, agg.Funcs)
	fmt.Printf("  GPU code   reduced %4.0f%%  (%d of %d elements removed)\n",
		agg.GPUReductionPct(), agg.Elems-agg.ElemsKept, agg.Elems)

	// Re-run on the debloated libraries: same outputs, fewer resources.
	deb := res.VerifyResult
	fmt.Printf("debloated run: %6.1f s, peak CPU %6.0f KB, peak GPU %6.0f KB\n",
		deb.ExecTime.Seconds(), float64(deb.PeakCPUBytes)/1024, float64(deb.PeakGPUBytes)/1024)
	if deb.Digest == orig.Digest {
		fmt.Println("outputs identical — debloating preserved correctness")
	}
}
