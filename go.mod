module negativaml

go 1.22
