package bufpool

import (
	"bytes"
	"math/bits"
	"sync"
)

const (
	// minClassBits is the smallest pooled size class (4 KiB): smaller
	// requests round up rather than fragmenting the pools.
	minClassBits = 12
	// maxClassBits is the largest pooled size class (16 MiB): bigger
	// requests are served by plain allocation and never pooled, so one
	// oversized object cannot park tens of megabytes in a pool.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// maxPooledBuffer bounds the capacity of a *bytes.Buffer accepted
	// back by PutBuffer.
	maxPooledBuffer = 4 << 20
)

// classes[i] pools []byte arrays of exactly 1<<(minClassBits+i) bytes.
// Pools store *[]byte (not []byte) to avoid an allocation per Put.
var classes [numClasses]sync.Pool

func init() {
	for i := range classes {
		size := 1 << (minClassBits + i)
		classes[i].New = func() any {
			b := make([]byte, size)
			return &b
		}
	}
}

// classFor returns the pool index serving a request of n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a scratch slice with len == n. The contents are
// unspecified (the slice may have been used before); callers that need
// zeroed memory must clear it themselves. Pass the returned slice —
// resliced to any length — back to Put when done.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	bp := classes[c].Get().(*[]byte)
	return (*bp)[:n]
}

// Put recycles a slice obtained from Get. Slices whose backing array is
// not a pooled size class (e.g. oversized Get results, or foreign
// slices) are dropped silently, so Put is always safe to call.
func Put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	// Only accept exact class-sized arrays: anything else came from the
	// make() fallback or from a caller's own allocation.
	if c&(c-1) != 0 {
		return
	}
	idx := bits.Len(uint(c)) - 1 - minClassBits
	if idx < 0 || idx >= numClasses {
		return
	}
	full := b[:c]
	classes[idx].Put(&full)
}

// bufferPool recycles bytes.Buffer values for encoders.
var bufferPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuffer returns an empty *bytes.Buffer from the pool.
func GetBuffer() *bytes.Buffer {
	return bufferPool.Get().(*bytes.Buffer)
}

// PutBuffer resets and recycles a buffer obtained from GetBuffer.
// Buffers that grew beyond maxPooledBuffer are dropped so a single
// large body does not pin its memory in the pool.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufferPool.Put(b)
}
