package bufpool

import (
	"bytes"
	"sync"
	"testing"
)

func TestGetLenAndClassRounding(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int
	}{
		{1, 4096},
		{4096, 4096},
		{4097, 8192},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 2 << 20},
		{16 << 20, 16 << 20},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d) len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Get(%d) cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizedNotPooled(t *testing.T) {
	n := (16 << 20) + 1
	b := Get(n)
	if len(b) != n || cap(b) != n {
		t.Fatalf("oversized Get: len=%d cap=%d", len(b), cap(b))
	}
	Put(b) // must not panic or pollute a class pool
}

func TestPutForeignSliceIsDropped(t *testing.T) {
	Put(nil)
	Put(make([]byte, 100))     // non-power-of-two cap
	Put(make([]byte, 0, 2048)) // power-of-two but below min class
	// A subsequent Get must still return a correctly sized buffer.
	b := Get(4096)
	if len(b) != 4096 || cap(b) != 4096 {
		t.Fatalf("pool polluted: len=%d cap=%d", len(b), cap(b))
	}
	Put(b)
}

func TestReuseAfterPut(t *testing.T) {
	b := Get(8192)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(8192)
	// Contents are unspecified but the array should be a recycled one of
	// the right shape; most importantly len must be exact.
	if len(c) != 8192 || cap(c) != 8192 {
		t.Fatalf("reuse: len=%d cap=%d", len(c), cap(c))
	}
	Put(c)
}

func TestResliceThenPut(t *testing.T) {
	b := Get(1 << 16)
	Put(b[:10]) // Put accepts any reslice of a pooled array
	c := Get(1 << 16)
	if len(c) != 1<<16 {
		t.Fatalf("len = %d after reslice Put", len(c))
	}
	Put(c)
}

func TestBufferPool(t *testing.T) {
	buf := GetBuffer()
	buf.WriteString("hello")
	PutBuffer(buf)
	buf2 := GetBuffer()
	if buf2.Len() != 0 {
		t.Fatalf("recycled buffer not reset: %q", buf2.Bytes())
	}
	PutBuffer(buf2)
	// Oversized buffers are dropped, never recycled with their capacity.
	big := GetBuffer()
	big.Write(bytes.Repeat([]byte{1}, maxPooledBuffer+1))
	PutBuffer(big)
	PutBuffer(nil) // must not panic
}

func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := Get(4096 + i*137)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Error("scratch buffer corrupted mid-use")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

func BenchmarkGetPut64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(64 << 10)
		buf[0] = 1
		Put(buf)
	}
}
