// Package bufpool is the shared scratch-buffer layer for the byte plane.
//
// Every hot path that moves object bytes between tiers — castore
// Export/Import, peer object streaming, sparse-image materialization,
// cluster request encoding, gateway event fan-out — needs transient
// buffers whose lifetime is one call. Allocating them per call is the
// single largest source of garbage on the serving path; this package
// centralizes them in size-classed sync.Pools so steady-state serving
// recycles the same few buffers instead of growing the heap.
//
// Two families are provided:
//
//   - Get/Put hand out []byte scratch buffers in power-of-two size
//     classes (4 KiB … 16 MiB). Get(n) returns a slice with len == n
//     backed by a pooled array; Put recycles it. Requests beyond the
//     largest class fall through to plain allocation and are not pooled.
//   - GetBuffer/PutBuffer hand out *bytes.Buffer values for encoders
//     (JSON bodies, codec frames). Buffers that have grown beyond
//     maxPooledBuffer are dropped on Put so a single huge body cannot
//     pin memory in the pool forever.
//
// All pools are safe for concurrent use. Callers must not retain a
// buffer (or any subslice of it) after Put — the next Get may hand the
// same array to another goroutine.
package bufpool
