package castore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"negativaml/internal/bufpool"
	"negativaml/internal/metrics"
)

// Object file layout: a fixed header followed by the payload.
//
//	magic   u32  ("NCS1")
//	version u16
//	flags   u16  (reserved, zero)
//	length  u64  payload length in bytes
//	sum     [32] SHA-256 of the payload
const (
	objectMagic   uint32 = 0x3153434e // "NCS1" little-endian
	objectVersion uint16 = 1
	headerSize           = 48
)

// HeaderSize is the length of the integrity header prefixed to every
// object, on disk and on the wire (Export/Import): an exported object
// occupies its payload size plus HeaderSize bytes.
const HeaderSize = headerSize

// Options configure a store.
type Options struct {
	// MaxBytes bounds the store's total payload bytes; 0 means unbounded.
	// Retained (refcounted) objects and the most-recently-used object are
	// never evicted, so the real floor is the retained working set (and a
	// single over-budget object still stores successfully).
	MaxBytes int64
	// DisableMmap forces OpenMapped onto the portable os.ReadFile fallback
	// even where mmap is available (the -mmap=off server flag). Builds
	// tagged castore_nommap are always on the fallback regardless.
	DisableMmap bool
	// Counters, when non-nil, mirrors store.hits / store.misses /
	// store.puts / store.evictions / store.corrupt and tracks store.bytes
	// as a gauge.
	Counters *metrics.CounterSet
	// BeforeRename, when non-nil, runs after the temp file is written and
	// fsynced but before the atomic rename — the crash-injection point for
	// consistency tests. Returning an error aborts the Put, leaving the
	// temp file behind exactly as a crash would.
	BeforeRename func(kind, key string) error
}

// Stats is a point-in-time view of the store.
type Stats struct {
	Objects   int   `json:"objects"`
	Bytes     int64 `json:"bytes"`
	Retained  int   `json:"retained"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
}

// VerifyReport summarizes a Verify scan.
type VerifyReport struct {
	Scanned int `json:"scanned"`
	OK      int `json:"ok"`
	Removed int `json:"removed"`
}

type objKey struct{ kind, key string }

type object struct {
	id   objKey
	size int64 // payload bytes
	refs int
	el   *list.Element
}

// Store is a disk-backed content-addressed object store. All methods are
// safe for concurrent use within one process; across processes the data
// dir is exclusive — Open takes an advisory lock and fails if another live
// process holds the directory (two stores over one tree would fight over
// tmp cleanup, eviction, and byte accounting).
type Store struct {
	dir string
	opt Options
	// lockf holds the advisory data-dir lock for the store's lifetime.
	lockf *os.File

	mu      sync.Mutex
	objects map[objKey]*object
	lru     list.List // front = most recently used
	bytes   int64
	// madeDirs remembers kind/shard directories already created, so the
	// Put hot path skips MkdirAll's per-component mkdir syscalls after the
	// first object lands in a shard. Guarded by mu.
	madeDirs map[string]struct{}
	// dirtyFiles and dirtyDirs collect the object files and directories
	// whose durability fsyncs Put deferred — files for their data, dirs
	// for the publishing renames. SyncDirs group-commits both sets in one
	// overlapped sweep (data before directory entries) instead of Put
	// paying two blocking fsyncs per object. Guarded by mu.
	dirtyFiles map[string]struct{}
	dirtyDirs  map[string]struct{}
	// syncMu serializes the fsync sweeps, held across the dirty-set
	// snapshot and the flushes: a background sweep (maybeBackgroundSync)
	// may be mid-flight when a commit point calls SyncDirs, and the
	// barrier must not return until that sweep's files are durable too —
	// a manifest may reference them. Ordered before mu; never acquire it
	// while holding mu.
	syncMu sync.Mutex
	// bgSyncing gates at most one background sweep at a time.
	bgSyncing atomic.Bool
	// orphanRefs holds the reference counts of objects that were removed
	// while retained (corruption forces removal regardless of pins). The
	// holders' eventual Releases drain this map instead of touching a
	// later re-Put object under the same key — a stale release must never
	// strip another owner's pin.
	orphanRefs map[objKey]int

	hits, misses, puts, evictions, corrupt int64
}

// Open opens (creating if needed) a store rooted at dir. Leftover temp
// files from interrupted writes are removed, and the object index is
// rebuilt from disk with recency seeded from file modification times.
// Structurally invalid files (bad magic, truncated header, size mismatch)
// are deleted; checksum validation is deferred to Get and Verify.
func Open(dir string, opt Options) (*Store, error) {
	s := &Store{dir: dir, opt: opt, objects: map[objKey]*object{}, orphanRefs: map[objKey]int{}, madeDirs: map[string]struct{}{}, dirtyFiles: map[string]struct{}{}, dirtyDirs: map[string]struct{}{}}
	if err := os.MkdirAll(s.tmpDir(), 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	// Exclusive data-dir lock: a second opener (another process, or a
	// second store in this one) would clear this store's in-flight temp
	// files and run its own eviction against a divergent index. The lock
	// is advisory and released automatically if the process dies.
	lockf, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	if err := flockExclusive(lockf); err != nil {
		lockf.Close()
		return nil, fmt.Errorf("castore: data dir %s is in use by another store: %w", dir, err)
	}
	s.lockf = lockf
	// Clear interrupted writes: anything in tmp/ never reached its final
	// name, so it is by definition incomplete.
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("castore: %w", err)
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(s.tmpDir(), e.Name()))
	}
	if err := s.index(); err != nil {
		s.Close()
		return nil, err
	}
	if s.opt.Counters != nil {
		s.opt.Counters.Add("store.bytes", s.bytes)
	}
	return s, nil
}

// Close releases the data-dir lock so another store may open the
// directory. It does not flush anything — every Put is already durable.
// Idempotent; the store must not be used after Close.
func (s *Store) Close() {
	s.SyncDirs()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockf != nil {
		funlock(s.lockf)
		s.lockf.Close()
		s.lockf = nil
	}
}

// index walks the object tree and rebuilds the in-memory index ordered by
// modification time (oldest = least recently used).
func (s *Store) index() error {
	type found struct {
		id    objKey
		size  int64
		mtime int64
	}
	var all []found
	root := s.dir
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		kind, key, ok := splitObjectPath(rel)
		if !ok {
			return nil // tmp files and strays are not objects
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		hdr, herr := readHeaderFile(path)
		if herr != nil || hdr.length != info.Size()-headerSize {
			// Structurally broken: remove now so the index never lies
			// about what a Get can serve.
			os.Remove(path)
			s.corrupt++
			s.count("store.corrupt", 1)
			return nil
		}
		all = append(all, found{id: objKey{kind, key}, size: hdr.length, mtime: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("castore: index: %w", err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for _, f := range all {
		o := &object{id: f.id, size: f.size}
		o.el = s.lru.PushFront(o)
		s.objects[f.id] = o
		s.bytes += f.size
	}
	return nil
}

type header struct {
	length int64
	sum    [sha256.Size]byte
}

func readHeaderFile(path string) (header, error) {
	f, err := os.Open(path)
	if err != nil {
		return header{}, err
	}
	defer f.Close()
	var buf [headerSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return header{}, err
	}
	return parseHeader(buf[:])
}

func parseHeader(buf []byte) (header, error) {
	le := binary.LittleEndian
	if len(buf) < headerSize || le.Uint32(buf[0:]) != objectMagic {
		return header{}, fmt.Errorf("castore: bad object magic")
	}
	if v := le.Uint16(buf[4:]); v != objectVersion {
		return header{}, fmt.Errorf("castore: unsupported object version %d", v)
	}
	h := header{length: int64(le.Uint64(buf[8:]))}
	if h.length < 0 {
		return header{}, fmt.Errorf("castore: negative object length")
	}
	copy(h.sum[:], buf[16:48])
	return h, nil
}

func makeHeader(payload []byte) []byte {
	le := binary.LittleEndian
	buf := make([]byte, headerSize)
	le.PutUint32(buf[0:], objectMagic)
	le.PutUint16(buf[4:], objectVersion)
	le.PutUint64(buf[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:48], sum[:])
	return buf
}

func (s *Store) tmpDir() string { return filepath.Join(s.dir, "tmp") }

// validName restricts kinds and keys to path-safe characters so (kind, key)
// maps to a filename without escapes.
func validName(n string) bool {
	if n == "" || len(n) > 128 {
		return false
	}
	for i := 0; i < len(n); i++ {
		c := n[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
			if c == '.' && (i == 0 || n[i-1] == '.') {
				return false // no leading dot, no ".."
			}
		default:
			return false
		}
	}
	return true
}

// objectPath fans keys out over a 256-way prefix directory so no directory
// grows unboundedly.
func (s *Store) objectPath(kind, key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, kind, shard, key)
}

// splitObjectPath inverts objectPath for a path relative to the root.
func splitObjectPath(rel string) (kind, key string, ok bool) {
	parts := []string{}
	for dir := rel; dir != "."; {
		d, f := filepath.Split(dir)
		parts = append([]string{f}, parts...)
		dir = filepath.Clean(d)
		if d == "" {
			break
		}
	}
	if len(parts) != 3 || parts[0] == "tmp" {
		return "", "", false
	}
	if !validName(parts[0]) || !validName(parts[2]) {
		return "", "", false
	}
	return parts[0], parts[2], true
}

func (s *Store) count(name string, delta int64) {
	if s.opt.Counters != nil {
		s.opt.Counters.Add(name, delta)
	}
}

// addBytes adjusts the byte total and its gauge. Callers hold s.mu.
func (s *Store) addBytes(delta int64) {
	s.bytes += delta
	s.count("store.bytes", delta)
}

// Has reports whether the object is present (without touching recency).
func (s *Store) Has(kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[objKey{kind, key}]
	return ok
}

// Put stores an object via temp write + atomic rename. Re-putting an
// existing (kind, key) is a no-op — objects are content-addressed, so
// identical keys hold identical payloads. The expensive part (staging the
// temp file) runs outside the store lock, so concurrent Puts and Gets
// proceed in parallel; only the publishing rename and the index update are
// serialized. Both fsyncs that harden the object against power loss — the
// data flush and the directory-entry flush — are deferred to the next
// SyncDirs (or Close): between commit points a power cut can lose or tear
// a recently put object, but SyncDirs flushes data before directory
// entries, so once a commit point returns every published object is
// complete and durable. Callers that publish a reference to the object
// (a manifest) call SyncDirs first, which is what keeps a torn object
// unreachable: no manifest ever points at bytes that were not flushed.
// A process crash (as opposed to power loss) tears nothing — the rename
// is atomic and the page cache survives the process.
func (s *Store) Put(kind, key string, payload []byte) error {
	if !validName(kind) || !validName(key) {
		return fmt.Errorf("castore: invalid object name %s/%s", kind, key)
	}
	id := objKey{kind, key}
	s.mu.Lock()
	if o, ok := s.objects[id]; ok {
		s.lru.MoveToFront(o.el)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	final := s.objectPath(kind, key)
	if err := s.ensureDir(filepath.Dir(final)); err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	tmp, err := os.CreateTemp(s.tmpDir(), key+".*")
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	// Header+payload into the temp file, then a single atomic rename
	// publishes the object. No fsync here — the data flush rides the next
	// SyncDirs commit point, where it overlaps with every other deferred
	// flush instead of stalling each Put individually.
	werr := func() error {
		if _, err := tmp.Write(makeHeader(payload)); err != nil {
			return err
		}
		_, err := tmp.Write(payload)
		return err
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("castore: put %s/%s: %w", kind, key, werr)
	}
	return s.publishTemp(kind, key, tmp.Name(), int64(len(payload)))
}

// publishTemp promotes a fully staged temp file into a published object:
// the crash-injection hook, the duplicate check, the atomic rename, and
// the index/accounting update. It consumes the temp file — renamed on
// success, removed when a concurrent writer already published the same
// (content-addressed, so identical) object or the rename fails, and
// deliberately left behind when the BeforeRename hook aborts: that is the
// crash the hook simulates, and Open sweeps the tmp dir at boot. Shared
// by Put (staging from memory) and Import (staging from a peer stream).
func (s *Store) publishTemp(kind, key, tmpName string, size int64) error {
	id := objKey{kind, key}
	final := s.objectPath(kind, key)
	if s.opt.BeforeRename != nil {
		// Crash injection: abort with the staged temp file left behind,
		// exactly the state a kill between staging and rename produces.
		if err := s.opt.BeforeRename(kind, key); err != nil {
			return fmt.Errorf("castore: put %s/%s: %w", kind, key, err)
		}
	}
	s.mu.Lock()
	if o, ok := s.objects[id]; ok {
		// A concurrent writer published the same object while we staged
		// ours; identical content, so drop the duplicate temp file.
		s.lru.MoveToFront(o.el)
		s.mu.Unlock()
		os.Remove(tmpName)
		return nil
	}
	if err := os.Rename(tmpName, final); err != nil {
		s.mu.Unlock()
		os.Remove(tmpName)
		return fmt.Errorf("castore: put %s/%s: %w", kind, key, err)
	}
	o := &object{id: id, size: size}
	o.el = s.lru.PushFront(o)
	s.objects[id] = o
	s.addBytes(o.size)
	s.puts++
	s.count("store.puts", 1)
	// Neither fsync orders against anything a reader sees, so both are
	// deferred into the dirty sets and group-committed by the next
	// SyncDirs — a burst of Puts pays one overlapped flush sweep, not two
	// blocking fsyncs per object.
	s.dirtyFiles[final] = struct{}{}
	s.dirtyDirs[filepath.Dir(final)] = struct{}{}
	dirty := len(s.dirtyFiles) + len(s.dirtyDirs)
	s.evictOverLocked()
	s.mu.Unlock()
	if dirty >= backgroundSyncThreshold {
		s.maybeBackgroundSync()
	}
	return nil
}

// backgroundSyncThreshold is the dirty-set size past which a Put kicks an
// opportunistic background group-commit, so durability I/O overlaps the
// batch that is still producing objects instead of accumulating into the
// terminal SyncDirs sweep on the job's critical path.
const backgroundSyncThreshold = 24

// maybeBackgroundSync starts one asynchronous group-commit sweep unless
// one is already running. Strictly an advance of work SyncDirs would do:
// syncMu is held from before the dirty snapshot until the sweep finishes,
// so a concurrent commit-point SyncDirs either waits out the background
// sweep or snapshots the files itself — it never returns while a
// snapshotted file's fsync is outstanding.
func (s *Store) maybeBackgroundSync() {
	if !s.bgSyncing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.bgSyncing.Store(false)
		s.SyncDirs()
	}()
}

// SyncDirs flushes every fsync Put deferred — the group-commit barrier.
// Call it at durability commit points: after a batch of Puts whose
// visibility a later write will assert (a job manifest referencing freshly
// spilled objects), and before Close returns. Object data is flushed
// before directory entries, so a completed SyncDirs never leaves a durable
// rename pointing at undurable bytes. Failures are ignored for the same
// reason syncAll's are.
func (s *Store) SyncDirs() {
	// syncMu is held across snapshot AND sweep, acquired before mu. If the
	// snapshot were taken first, a background sweep could empty the dirty
	// sets, get descheduled before reaching syncMu, and let a concurrent
	// commit-point SyncDirs snapshot nothing, win syncMu, and return while
	// the sweep's fsyncs had not even started — a caller would publish a
	// manifest referencing undurable objects. Taken in this order, a commit
	// barrier either blocks behind the in-flight sweep or still sees the
	// files in its own snapshot; both are safe.
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	files := make([]string, 0, len(s.dirtyFiles))
	for f := range s.dirtyFiles {
		files = append(files, f)
	}
	clear(s.dirtyFiles)
	dirs := make([]string, 0, len(s.dirtyDirs))
	for d := range s.dirtyDirs {
		dirs = append(dirs, d)
	}
	clear(s.dirtyDirs)
	s.mu.Unlock()
	if len(files)+len(dirs) == 0 {
		return
	}
	// A large dirty set is cheaper to flush wholesale than path by path:
	// one sync(2) is a single journal commit covering every deferred file
	// and rename, where per-path fsync pays a commit each. Small sets stay
	// per-path to avoid flushing unrelated system-wide dirty pages.
	if len(files)+len(dirs) >= bulkSyncThreshold && bulkSync() {
		return
	}
	syncAll(files)
	syncAll(dirs)
}

// bulkSyncThreshold is the deferred-path count at which SyncDirs prefers
// one whole-system sync over per-path fsyncs.
const bulkSyncThreshold = 16

// ensureDir creates a kind/shard directory once per store lifetime. An
// externally deleted directory surfaces as the subsequent rename's error,
// the same failure mode MkdirAll-per-Put had for a deletion racing the
// rename itself.
func (s *Store) ensureDir(dir string) error {
	s.mu.Lock()
	_, ok := s.madeDirs[dir]
	s.mu.Unlock()
	if ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	s.madeDirs[dir] = struct{}{}
	s.mu.Unlock()
	return nil
}

// syncAll fsyncs the paths with bounded parallelism: the flushes are
// independent disk waits, so a commit point pays roughly the slowest one,
// not the sum. Failures are ignored — a path may have been evicted since
// it went dirty, and not every filesystem supports directory fsync; the
// manifest-after-SyncDirs ordering bounds what a lost flush can cost.
func syncAll(paths []string) {
	if len(paths) == 0 {
		return
	}
	// Concurrent fsyncs of distinct files mostly coalesce into shared
	// journal commits, so wide fan-out turns ~N commits into a handful.
	workers := 32
	if len(paths) < workers {
		workers = len(paths)
	}
	ch := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				f, err := os.Open(p)
				if err != nil {
					continue
				}
				f.Sync()
				f.Close()
			}
		}()
	}
	for _, p := range paths {
		ch <- p
	}
	close(ch)
	wg.Wait()
}

// Get returns the object's payload, verifying its checksum and refreshing
// its recency. A corrupt object is deleted and reported as a miss — the
// caller recomputes, exactly as for an absent object. The read and the
// checksum run outside the store lock so concurrent Gets of large images
// do not serialize.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	id := objKey{kind, key}
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.misses++
		s.count("store.misses", 1)
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()

	payload, err := readObject(s.objectPath(kind, key))

	s.mu.Lock()
	defer s.mu.Unlock()
	cur, present := s.objects[id]
	if err != nil {
		// If the same object is still indexed, the read failure means
		// corruption; if it vanished (evicted under us) this is a plain
		// miss.
		if present && cur == o {
			s.removeLocked(cur)
			s.corrupt++
			s.count("store.corrupt", 1)
		}
		s.misses++
		s.count("store.misses", 1)
		return nil, false
	}
	if present {
		s.lru.MoveToFront(cur.el)
	}
	s.hits++
	s.count("store.hits", 1)
	return payload, true
}

// verifyObject integrity-checks one object file without materializing it:
// the payload streams through the checksum in pooled chunks, so a Verify
// scan's memory stays bounded regardless of object size.
func verifyObject(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdrBuf [headerSize]byte
	if _, err := io.ReadFull(f, hdrBuf[:]); err != nil {
		return err
	}
	hdr, err := parseHeader(hdrBuf[:])
	if err != nil {
		return err
	}
	h := sha256.New()
	buf := bufpool.Get(64 << 10)
	n, err := io.CopyBuffer(h, f, buf)
	bufpool.Put(buf)
	if err != nil {
		return err
	}
	if n != hdr.length {
		return fmt.Errorf("castore: truncated object")
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	if sum != hdr.sum {
		return fmt.Errorf("castore: checksum mismatch")
	}
	return nil
}

// readObject reads and integrity-checks one object file.
func readObject(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	payload := data[headerSize:]
	if int64(len(payload)) != hdr.length {
		return nil, fmt.Errorf("castore: truncated object")
	}
	if sha256.Sum256(payload) != hdr.sum {
		return nil, fmt.Errorf("castore: checksum mismatch")
	}
	return payload, nil
}

// Retain pins the object against eviction, reporting whether it exists.
// Pins are in-memory only; the owner re-establishes them on boot.
func (s *Store) Retain(kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[objKey{kind, key}]
	if !ok {
		return false
	}
	o.refs++
	return true
}

// Release drops one pin; at zero the object becomes evictable (it is not
// deleted eagerly — the byte budget decides). A release of an object that
// was force-removed while retained (corruption) drains the orphaned count
// rather than the refs of any object later re-stored under the same key.
func (s *Store) Release(kind, key string) {
	id := objKey{kind, key}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.orphanRefs[id]; n > 0 {
		if n == 1 {
			delete(s.orphanRefs, id)
		} else {
			s.orphanRefs[id] = n - 1
		}
		return
	}
	if o, ok := s.objects[id]; ok && o.refs > 0 {
		o.refs--
	}
	s.evictOverLocked()
}

// Delete removes an object regardless of recency (pinned objects are left
// alone).
func (s *Store) Delete(kind, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.objects[objKey{kind, key}]; ok && o.refs == 0 {
		s.removeLocked(o)
	}
}

// removeLocked drops the object from the index and disk. An object removed
// while retained (only corruption forces that) parks its refs as orphans so
// the holders' releases stay balanced. Callers hold s.mu.
func (s *Store) removeLocked(o *object) {
	s.lru.Remove(o.el)
	delete(s.objects, o.id)
	s.addBytes(-o.size)
	if o.refs > 0 {
		s.orphanRefs[o.id] += o.refs
	}
	os.Remove(s.objectPath(o.id.kind, o.id.key))
}

// evictOverLocked deletes least-recently-used unreferenced objects until
// the byte budget fits. The most-recently-used object is never evicted —
// otherwise a single payload larger than the budget would be dropped
// immediately after its own successful Put, silently defeating durability;
// instead one oversized object overshoots the budget until something
// replaces it (mirroring dserve's ResultCache). Callers hold s.mu.
func (s *Store) evictOverLocked() {
	if s.opt.MaxBytes <= 0 {
		return
	}
	el := s.lru.Back()
	for s.bytes > s.opt.MaxBytes && el != nil && el != s.lru.Front() {
		o := el.Value.(*object)
		el = el.Prev()
		if o.refs > 0 {
			continue
		}
		s.removeLocked(o)
		s.evictions++
		s.count("store.evictions", 1)
	}
}

// Walk calls fn for every stored key of the kind, in unspecified order.
// The key set is snapshotted up front and fn runs unlocked, so fn may call
// back into the store (boot-time replay does: Get, Delete); keys added or
// removed concurrently may or may not be visited.
func (s *Store) Walk(kind string, fn func(key string, size int64) error) error {
	s.mu.Lock()
	keys := make([]*object, 0, len(s.objects))
	for id, o := range s.objects {
		if id.kind == kind {
			keys = append(keys, o)
		}
	}
	s.mu.Unlock()
	for _, o := range keys {
		if err := fn(o.id.key, o.size); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of store effectiveness and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	retained := 0
	for _, o := range s.objects {
		if o.refs > 0 {
			retained++
		}
	}
	return Stats{
		Objects: len(s.objects), Bytes: s.bytes, Retained: retained,
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Corrupt: s.corrupt,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Verify integrity-checks every object, removing any whose checksum fails.
// After a crash, Open's tmp cleanup plus a Verify scan restore the
// invariant that every indexed object is complete and correct. Each object
// streams through the checksum in pooled chunks — a scan's memory is
// bounded by one chunk, not by the largest stored object.
func (s *Store) Verify() VerifyReport {
	s.mu.Lock()
	objs := make([]*object, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, o)
	}
	s.mu.Unlock()

	var rep VerifyReport
	for _, o := range objs {
		rep.Scanned++
		err := verifyObject(s.objectPath(o.id.kind, o.id.key))
		if err == nil {
			rep.OK++
			continue
		}
		s.mu.Lock()
		if cur, ok := s.objects[o.id]; ok && cur == o {
			s.removeLocked(o)
			s.corrupt++
			s.count("store.corrupt", 1)
		}
		s.mu.Unlock()
		rep.Removed++
	}
	return rep
}
