package castore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"negativaml/internal/metrics"
)

func keyOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func mustPut(t *testing.T, s *Store, kind string, payload []byte) string {
	t.Helper()
	key := keyOf(payload)
	if err := s.Put(kind, key, payload); err != nil {
		t.Fatalf("put %s/%s: %v", kind, key, err)
	}
	return key
}

func TestPutGetRoundTrip(t *testing.T) {
	counters := metrics.NewCounterSet()
	s, err := Open(t.TempDir(), Options{Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fatbin")
	key := mustPut(t, s, "lib", payload)

	got, ok := s.Get("lib", key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = %q, %v; want original payload", got, ok)
	}
	if _, ok := s.Get("lib", keyOf([]byte("absent"))); ok {
		t.Fatal("get of absent key succeeded")
	}
	if !s.Has("lib", key) || s.Has("sparse", key) {
		t.Fatal("Has disagrees with contents")
	}
	// Re-putting the same object is a no-op, not a second copy.
	if err := s.Put("lib", key, payload); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Objects != 1 || st.Bytes != int64(len(payload)) || st.Puts != 1 {
		t.Fatalf("stats after re-put: %+v", st)
	}
	if counters.Get("store.hits") != 1 || counters.Get("store.misses") != 1 {
		t.Fatalf("counter mirror: hits=%d misses=%d", counters.Get("store.hits"), counters.Get("store.misses"))
	}
	if counters.Get("store.bytes") != int64(len(payload)) {
		t.Fatalf("store.bytes gauge = %d", counters.Get("store.bytes"))
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "a/b", "a b", "../x", ".hidden", "a..b"} {
		if err := s.Put(bad, "abcd", []byte("x")); err == nil {
			t.Errorf("kind %q accepted", bad)
		}
		if err := s.Put("lib", bad, []byte("x")); err == nil {
			t.Errorf("key %q accepted", bad)
		}
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-long-payload")}
	keys := make([]string, len(payloads))
	var total int64
	for i, p := range payloads {
		keys[i] = mustPut(t, s, "lib", p)
		total += int64(len(p))
	}

	s.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.Objects != len(payloads) || st.Bytes != total {
		t.Fatalf("reopened stats = %+v, want %d objects / %d bytes", st, len(payloads), total)
	}
	for i, key := range keys {
		got, ok := re.Get("lib", key)
		if !ok || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("reopened get %s = %q, %v", key, got, ok)
		}
	}
	if rep := re.Verify(); rep.Scanned != len(payloads) || rep.Removed != 0 {
		t.Fatalf("verify after clean reopen: %+v", rep)
	}
}

func TestByteBudgetEvictionLRU(t *testing.T) {
	// Budget fits exactly two 8-byte payloads.
	s, err := Open(t.TempDir(), Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, "lib", []byte("aaaaaaaa"))
	b := mustPut(t, s, "lib", []byte("bbbbbbbb"))
	if _, ok := s.Get("lib", a); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c := mustPut(t, s, "lib", []byte("cccccccc"))
	if s.Has("lib", b) {
		t.Fatal("LRU object b survived eviction")
	}
	if !s.Has("lib", a) || !s.Has("lib", c) {
		t.Fatal("recently used objects were evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetainBlocksEviction(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, "lib", []byte("aaaaaaaa"))
	if !s.Retain("lib", a) {
		t.Fatal("retain of present object failed")
	}
	b := mustPut(t, s, "lib", []byte("bbbbbbbb"))
	c := mustPut(t, s, "lib", []byte("cccccccc"))
	// a is the LRU but pinned: b must go instead.
	if !s.Has("lib", a) {
		t.Fatal("retained object was evicted")
	}
	if s.Has("lib", b) {
		t.Fatal("unpinned LRU object b survived")
	}
	if s.Retain("lib", "feedfeed") {
		t.Fatal("retain of absent object succeeded")
	}
	d := mustPut(t, s, "lib", []byte("dddddddd")) // over budget, a pinned, c evicted
	if !s.Has("lib", a) || s.Has("lib", c) {
		t.Fatal("pin not honored while over budget")
	}
	// Releasing the pin makes a evictable again: the next over-budget Put
	// takes it (it is the LRU).
	s.Release("lib", a)
	e := mustPut(t, s, "lib", []byte("eeeeeeee"))
	if s.Has("lib", a) {
		t.Fatal("released LRU object not evicted under budget pressure")
	}
	if !s.Has("lib", d) || !s.Has("lib", e) {
		t.Fatal("recent objects evicted instead of the released LRU")
	}
}

// TestCrashMidWrite kills the store between the durable temp write and the
// atomic rename, then reopens: the store must see either the complete entry
// or none, and a Verify scan must come back clean.
func TestCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected crash")
	crash, err := Open(dir, Options{
		BeforeRename: func(kind, key string) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("artifact that never lands")
	key := keyOf(payload)
	if err := crash.Put("lib", key, payload); !errors.Is(err, boom) {
		t.Fatalf("put under failpoint = %v, want injected crash", err)
	}
	// The temp file is left behind — exactly the post-crash disk state.
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(tmps) != 1 {
		t.Fatalf("want 1 leftover temp file, got %d (%v)", len(tmps), err)
	}

	crash.Close() // the "crashed" process is gone; its dir lock with it
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Has("lib", key) {
		t.Fatal("reopened store sees the half-written entry")
	}
	if _, ok := re.Get("lib", key); ok {
		t.Fatal("reopened store served the half-written entry")
	}
	if rep := re.Verify(); rep.Scanned != 0 || rep.Removed != 0 {
		t.Fatalf("verify after crash: %+v, want clean empty scan", rep)
	}
	tmps, _ = os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatal("reopen did not clear interrupted temp files")
	}
	// The same Put now completes and round-trips.
	if err := re.Put("lib", key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := re.Get("lib", key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("retry after crash did not round-trip")
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("soon to be flipped")
	key := mustPut(t, s, "lib", payload)
	path := filepath.Join(dir, "lib", key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("lib", key); ok {
		t.Fatal("corrupt object served")
	}
	if s.Has("lib", key) {
		t.Fatal("corrupt object not removed on detection")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}

	// Same flip, detected by Verify instead of Get.
	key2 := mustPut(t, s, "lib", []byte("second victim"))
	path2 := filepath.Join(dir, "lib", key2[:2], key2)
	raw2, _ := os.ReadFile(path2)
	raw2[headerSize] ^= 0x01
	os.WriteFile(path2, raw2, 0o644)
	if rep := s.Verify(); rep.Scanned != 1 || rep.Removed != 1 {
		t.Fatalf("verify = %+v, want 1 scanned / 1 removed", rep)
	}
	if s.Has("lib", key2) {
		t.Fatal("verify left the corrupt object indexed")
	}

	// A truncated object is dropped at Open time (structural check).
	key3 := mustPut(t, s, "lib", []byte("third victim, truncated"))
	path3 := filepath.Join(dir, "lib", key3[:2], key3)
	os.Truncate(path3, headerSize+4)
	s.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Has("lib", key3) {
		t.Fatal("truncated object survived reopen")
	}
}

// TestOversizedObjectSurvivesItsOwnPut: a payload larger than the whole
// budget must still store successfully (the budget overshoots by one
// object) rather than being evicted by its own Put.
func TestOversizedObjectSurvivesItsOwnPut(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	big := []byte("twenty bytes long!!!")
	key := mustPut(t, s, "lib", big)
	if !s.Has("lib", key) {
		t.Fatal("oversized object evicted by its own Put")
	}
	if got, ok := s.Get("lib", key); !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized object not served")
	}
	// A newer object displaces it once it becomes the LRU.
	small := mustPut(t, s, "lib", []byte("tiny"))
	if s.Has("lib", key) {
		t.Fatal("oversized LRU object survived replacement")
	}
	if !s.Has("lib", small) {
		t.Fatal("replacement object missing")
	}
}

// TestDataDirExclusive: a data dir admits one live store at a time; the
// lock releases on Close (and, in a real crash, on process exit).
func TestDataDirExclusive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second, err := Open(dir, Options{}); err == nil {
		second.Close()
		t.Fatal("second store opened a locked data dir")
	}
	s.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
	re.Close() // idempotent
}

// TestStaleReleaseAfterCorruptRemoval: removing a retained-but-corrupt
// object orphans its refs; the original holder's Release must drain the
// orphan count, not strip the pin of a fresh object re-stored under the
// same key by a new owner.
func TestStaleReleaseAfterCorruptRemoval(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("shared im")
	key := mustPut(t, s, "lib", payload)
	if !s.Retain("lib", key) { // holder A
		t.Fatal("retain failed")
	}
	// Corrupt the object on disk: the next Get force-removes it despite
	// the pin, orphaning A's reference.
	path := filepath.Join(dir, "lib", key[:2], key)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if _, ok := s.Get("lib", key); ok {
		t.Fatal("corrupt object served")
	}

	// The object is recomputed and re-stored; holder B pins the fresh copy.
	if err := s.Put("lib", key, payload); err != nil {
		t.Fatal(err)
	}
	if !s.Retain("lib", key) {
		t.Fatal("retain of fresh object failed")
	}
	// A's stale release lands: it must consume the orphaned ref.
	s.Release("lib", key)
	// Budget pressure: B's pin must still hold.
	mustPut(t, s, "lib", []byte("pressure1"))
	mustPut(t, s, "lib", []byte("pressure2"))
	if !s.Has("lib", key) {
		t.Fatal("fresh object evicted — stale release stripped the new owner's pin")
	}
	// B's own release makes it evictable for real.
	s.Release("lib", key)
	mustPut(t, s, "lib", []byte("pressure3"))
	if s.Has("lib", key) {
		t.Fatal("object survived eviction after its real owner released it")
	}
}

func TestWalk(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		want[mustPut(t, s, "profile", []byte(fmt.Sprintf("profile-%d", i)))] = true
	}
	mustPut(t, s, "lib", []byte("other kind"))
	got := map[string]bool{}
	err = s.Walk("profile", func(key string, size int64) error {
		got[key] = true
		if size <= 0 {
			t.Errorf("walk reported size %d", size)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("walk saw %d keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("walk missed %s", k)
		}
	}
}

// TestConcurrentAccess is the race-detector workout: concurrent puts, gets,
// pins, and walks over a shared bounded store.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("worker-%d-item-%d", g, i%10))
				key := keyOf(payload)
				if err := s.Put("lib", key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get("lib", key); ok && !bytes.Equal(got, payload) {
					t.Error("payload mismatch under concurrency")
					return
				}
				if s.Retain("lib", key) {
					s.Release("lib", key)
				}
				s.Walk("lib", func(string, int64) error { return nil })
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if rep := s.Verify(); rep.Removed != 0 {
		t.Fatalf("verify after concurrent load: %+v", rep)
	}
}

// TestSyncDirsSnapshotsUnderSweepLock pins the group-commit barrier's
// lock ordering: the dirty-set snapshot happens only while syncMu is
// held. If a sweep (the background one, say) could snapshot-and-clear
// before taking the sweep lock, a concurrent commit-point SyncDirs would
// see an empty dirty set, win the lock, and return while that sweep's
// fsyncs had not started — publishing a manifest over undurable objects.
func TestSyncDirsSnapshotsUnderSweepLock(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "lib", []byte("durable before the manifest"))

	s.syncMu.Lock() // stand in for an in-flight sweep owning the barrier
	done := make(chan struct{})
	go func() {
		s.SyncDirs()
		close(done)
	}()
	for i := 0; i < 20; i++ {
		time.Sleep(time.Millisecond)
		s.mu.Lock()
		n := len(s.dirtyFiles)
		s.mu.Unlock()
		if n == 0 {
			s.syncMu.Unlock()
			t.Fatal("SyncDirs snapshotted the dirty set before holding the sweep lock")
		}
		select {
		case <-done:
			s.syncMu.Unlock()
			t.Fatal("SyncDirs returned while the sweep lock was held")
		default:
		}
	}
	s.syncMu.Unlock()
	<-done
	s.mu.Lock()
	left := len(s.dirtyFiles) + len(s.dirtyDirs)
	s.mu.Unlock()
	if left != 0 {
		t.Fatalf("dirty entries left after SyncDirs: %d", left)
	}
}
