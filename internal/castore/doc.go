// Package castore is a crash-safe, disk-backed content-addressed store for
// the debloating pipeline's derived artifacts: library images, sparse-image
// range sets, verified usage profiles, library reports, and job manifests.
//
// Objects are addressed by (kind, key) where kind namespaces the artifact
// type and key is a content digest (or a stable identifier for manifests).
// Every object is written crash-safely — payload plus an integrity header go
// to a temp file, the file is fsynced, then atomically renamed into place —
// so after a crash the store holds either the complete object or nothing;
// Verify scans the whole store and removes anything that fails its checksum.
//
// The store is byte-budgeted: beyond MaxBytes, the least-recently-used
// unreferenced objects are deleted. Reference counts (Retain/Release) are an
// in-memory overlay rebuilt by the owner on boot — the serving layer pins
// the objects its restored jobs still need, and everything else is fair
// game for eviction.
package castore
