//go:build !unix

package castore

import "os"

// Non-unix platforms get no advisory locking: the data dir's exclusivity
// is then the operator's responsibility (documented on Store).
func flockExclusive(*os.File) error { return nil }

func funlock(*os.File) {}
