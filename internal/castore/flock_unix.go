//go:build unix

package castore

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f. The
// kernel releases it automatically when the process exits, so a crashed
// store never wedges its data dir.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func funlock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
