package castore

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
)

// Mapped is a read-only view of one stored object's payload, served from
// the OS page cache via mmap where the platform supports it (with a heap
// fallback otherwise — see mmap_fallback.go and Options.DisableMmap). The
// object is pinned against eviction for the lifetime of the view: Close
// drops the pin and unmaps. Data must not be accessed, retained, or
// resliced after Close — the pages may be gone.
type Mapped struct {
	store     *Store
	kind, key string
	raw       []byte // full mapping (header + payload); nil when heap-backed
	data      []byte // payload view into raw (or the heap copy)
	once      sync.Once
}

// Data returns the payload view. Treat it as immutable: the bytes alias a
// shared file mapping.
func (m *Mapped) Data() []byte { return m.data }

// Size returns the payload length in bytes.
func (m *Mapped) Size() int64 { return int64(len(m.data)) }

// Close unmaps the view and releases the eviction pin. Idempotent and safe
// for concurrent use; Data is invalid afterwards.
func (m *Mapped) Close() {
	m.once.Do(func() {
		if m.raw != nil {
			munmapFile(m.raw)
			m.raw = nil
		}
		m.data = nil
		m.store.Release(m.kind, m.key)
	})
}

// OpenMapped returns a pinned, integrity-checked view of the object's
// payload without materializing it on the heap: on platforms with mmap
// support the bytes are served straight from the page cache, so repeated
// opens of hot objects (sparse lib images, reports) cost no allocation and
// no copy. The checksum is verified on every open — same contract as Get —
// and a corrupt object is removed and reported as a miss.
//
// The returned view pins the object: eviction and Delete skip pinned
// objects, so the mapping can never be unlinked-and-reused mid-response.
// Callers must Close it (typically scoped to one response or one parsed
// Library's lifetime).
//
// The heap fallback (non-unix builds, the castore_nommap build tag, or
// Options.DisableMmap) keeps the identical contract with os.ReadFile
// behind it.
func (s *Store) OpenMapped(kind, key string) (*Mapped, bool) {
	id := objKey{kind, key}
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.misses++
		s.count("store.misses", 1)
		s.mu.Unlock()
		return nil, false
	}
	// Pin before dropping the lock so eviction cannot unlink the file
	// between the index lookup and the map.
	o.refs++
	s.lru.MoveToFront(o.el)
	s.mu.Unlock()

	m, err := s.openMapping(kind, key)

	s.mu.Lock()
	if err != nil {
		// Same corruption contract as Get: if the object is still the one
		// we indexed, remove it; the caller recomputes as for a miss.
		// removeLocked parks our pin in orphanRefs; the Release below
		// drains it.
		if cur, present := s.objects[id]; present && cur == o {
			s.removeLocked(cur)
			s.corrupt++
			s.count("store.corrupt", 1)
		}
		s.misses++
		s.count("store.misses", 1)
		s.mu.Unlock()
		s.Release(kind, key)
		return nil, false
	}
	s.hits++
	s.count("store.hits", 1)
	s.mu.Unlock()
	return m, true
}

// openMapping maps (or, on the fallback path, reads) the object file and
// verifies its integrity header and checksum. The caller holds a pin.
func (s *Store) openMapping(kind, key string) (*Mapped, error) {
	path := s.objectPath(kind, key)
	var raw []byte
	var heap bool
	if mmapSupported && !s.opt.DisableMmap {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size() < headerSize {
			f.Close()
			return nil, fmt.Errorf("castore: truncated object")
		}
		raw, err = mmapFile(f, int(st.Size()))
		f.Close() // the mapping outlives the descriptor
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		raw, err = os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		heap = true
	}
	fail := func(err error) (*Mapped, error) {
		if !heap {
			munmapFile(raw)
		}
		return nil, err
	}
	hdr, err := parseHeader(raw)
	if err != nil {
		return fail(err)
	}
	payload := raw[headerSize:]
	if int64(len(payload)) != hdr.length {
		return fail(fmt.Errorf("castore: truncated object"))
	}
	if sha256.Sum256(payload) != hdr.sum {
		return fail(fmt.Errorf("castore: checksum mismatch"))
	}
	m := &Mapped{store: s, kind: kind, key: key, data: payload}
	if !heap {
		m.raw = raw
	}
	return m, nil
}
