//go:build !unix || castore_nommap

package castore

import "os"

// mmapSupported is false on platforms without the mmap implementation and
// under the castore_nommap build tag: OpenMapped serves heap-backed views
// via os.ReadFile with the identical pin/verify contract.
const mmapSupported = false

// mmapFile is never called when mmapSupported is false; it exists so the
// shared OpenMapped code compiles on every platform.
func mmapFile(f *os.File, size int) ([]byte, error) {
	panic("castore: mmapFile called on a platform without mmap support")
}

func munmapFile(b []byte) {}
