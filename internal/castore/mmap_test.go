package castore

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestOpenMappedRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := bytes.Repeat([]byte("mapped-bytes"), 1000)
	if err := s.Put("lib", "aa11", payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.OpenMapped("lib", "aa11")
	if !ok {
		t.Fatal("OpenMapped miss for stored object")
	}
	if !bytes.Equal(m.Data(), payload) {
		t.Fatal("mapped payload differs from stored payload")
	}
	if m.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", m.Size(), len(payload))
	}
	m.Close()
	m.Close() // idempotent
}

func TestOpenMappedMiss(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.OpenMapped("lib", "absent"); ok {
		t.Fatal("OpenMapped hit for absent object")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestOpenMappedPinsAgainstEviction is the pin-scoped-unmap contract: while
// a mapping is open, the byte budget cannot evict its object; after Close
// it can.
func TestOpenMappedPinsAgainstEviction(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", "pinned", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	m, ok := s.OpenMapped("k", "pinned")
	if !ok {
		t.Fatal("OpenMapped miss")
	}
	// Two more puts would evict "pinned" (now LRU) if it were unpinned.
	if err := s.Put("k", "newer1", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "newer2", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("k", "pinned") {
		t.Fatal("mapped object was evicted while pinned")
	}
	if !bytes.Equal(m.Data(), []byte("0123456789abcdef")) {
		t.Fatal("mapped view corrupted across eviction pressure")
	}
	m.Close()
	// Unpinned now: the next put pushes it out.
	if err := s.Put("k", "newer3", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if s.Has("k", "pinned") {
		t.Fatal("object survived eviction after its mapping closed")
	}
}

func TestOpenMappedCorruptObjectRemoved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", "bad1", []byte("soon to be corrupt")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk.
	path := s.objectPath("k", "bad1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.OpenMapped("k", "bad1"); ok {
		t.Fatal("OpenMapped served a corrupt object")
	}
	if s.Has("k", "bad1") {
		t.Fatal("corrupt object still indexed after OpenMapped")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	// The failed open's pin must not leak: a fresh Put under the same key
	// starts with zero refs and is evictable/deletable.
	if err := s.Put("k", "bad1", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s.Delete("k", "bad1")
	if s.Has("k", "bad1") {
		t.Fatal("re-put object undeletable: orphaned pin leaked onto it")
	}
}

func TestOpenMappedDisableMmapFallback(t *testing.T) {
	s, err := Open(t.TempDir(), Options{DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := []byte("fallback path payload")
	if err := s.Put("k", "fb", payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.OpenMapped("k", "fb")
	if !ok {
		t.Fatal("fallback OpenMapped miss")
	}
	if m.raw != nil {
		t.Fatal("DisableMmap view still mmap-backed")
	}
	if !bytes.Equal(m.Data(), payload) {
		t.Fatal("fallback payload mismatch")
	}
	m.Close()
}

// TestOpenMappedConcurrent hammers concurrent opens, reads, and closes of
// the same objects against eviction pressure — the shape the race detector
// checks in CI.
func TestOpenMappedConcurrent(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 4096)
		if err := s.Put("k", fmt.Sprintf("obj%d", i), payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(payloads)
				m, ok := s.OpenMapped("k", fmt.Sprintf("obj%d", k))
				if !ok {
					continue
				}
				if !bytes.Equal(m.Data(), payloads[k]) {
					t.Errorf("goroutine %d: mapped payload mismatch for obj%d", g, k)
					m.Close()
					return
				}
				m.Close()
			}
		}(g)
	}
	wg.Wait()
	if rep := s.Verify(); rep.Removed != 0 {
		t.Fatalf("Verify removed %d objects after concurrent mapping", rep.Removed)
	}
}
