//go:build unix && !castore_nommap

package castore

import (
	"os"
	"syscall"
)

// mmapSupported selects the page-cache-backed OpenMapped path. Building
// with -tags castore_nommap forces the portable os.ReadFile fallback on
// every platform (useful under sanitizers that do not model mmap, and for
// exercising the fallback in CI).
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: the returned slice
// is a window onto the page cache, not a heap copy.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile. Errors are ignored — the
// only failure mode is an invalid address, which would mean the slice was
// not a live mapping in the first place.
func munmapFile(b []byte) {
	syscall.Munmap(b)
}
