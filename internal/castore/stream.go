package castore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrUnknownObject is returned by Export and Stat for a (kind, key) the
// store does not hold.
var ErrUnknownObject = errors.New("castore: unknown object")

// maxImportBytes bounds one imported payload. Exported objects carry their
// length in the header, which arrives from the network before any payload
// byte — the cap keeps a corrupt or hostile header from provisioning an
// absurd buffer.
const maxImportBytes = 1 << 30

// Stat returns the payload size of a stored object without touching its
// recency (the companion to Has for callers that need a Content-Length).
func (s *Store) Stat(kind, key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[objKey{kind, key}]
	if !ok {
		return 0, false
	}
	return o.size, true
}

// Export streams a stored object to w in its durable wire format — the
// 48-byte integrity header followed by the payload, exactly the on-disk
// layout — and returns the bytes written. The receiver verifies the
// checksum on Import, so Export does not re-read the payload to validate
// it first; a corrupt object is caught on the importing side and served
// locally as a miss on the next Get. Exporting refreshes the object's
// recency and counts as a hit (it is a read serving real demand).
func (s *Store) Export(kind, key string, w io.Writer) (int64, error) {
	id := objKey{kind, key}
	s.mu.Lock()
	o, ok := s.objects[id]
	if ok {
		s.lru.MoveToFront(o.el)
	}
	s.mu.Unlock()
	if !ok {
		s.mu.Lock()
		s.misses++
		s.count("store.misses", 1)
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s/%s", ErrUnknownObject, kind, key)
	}
	f, err := os.Open(s.objectPath(kind, key))
	if err != nil {
		return 0, fmt.Errorf("castore: export %s/%s: %w", kind, key, err)
	}
	defer f.Close()
	n, err := io.Copy(w, f)
	if err != nil {
		return n, fmt.Errorf("castore: export %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	s.hits++
	s.count("store.hits", 1)
	s.mu.Unlock()
	return n, nil
}

// Import reads one exported object (header + payload) from r, verifies the
// checksum against the header, and stores it under (kind, key) with Put's
// full crash-safety. The wire format carrying its own integrity header
// means a peer transfer is end-to-end verified: a payload corrupted in
// flight — or served corrupt by the exporter — is rejected here and never
// enters the store. Returns the payload size.
func (s *Store) Import(kind, key string, r io.Reader) (int64, error) {
	var hdrBuf [headerSize]byte
	if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
		return 0, fmt.Errorf("castore: import %s/%s: header: %w", kind, key, err)
	}
	hdr, err := parseHeader(hdrBuf[:])
	if err != nil {
		return 0, fmt.Errorf("castore: import %s/%s: %w", kind, key, err)
	}
	if hdr.length > maxImportBytes {
		return 0, fmt.Errorf("castore: import %s/%s: object of %d bytes exceeds the import bound", kind, key, hdr.length)
	}
	payload := make([]byte, hdr.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, fmt.Errorf("castore: import %s/%s: payload: %w", kind, key, err)
	}
	if sha256.Sum256(payload) != hdr.sum {
		return 0, fmt.Errorf("castore: import %s/%s: checksum mismatch", kind, key)
	}
	if err := s.Put(kind, key, payload); err != nil {
		return 0, err
	}
	return hdr.length, nil
}
