package castore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"negativaml/internal/bufpool"
)

// ErrUnknownObject is returned by Export and Stat for a (kind, key) the
// store does not hold.
var ErrUnknownObject = errors.New("castore: unknown object")

// maxImportBytes bounds one imported payload. Exported objects carry their
// length in the header, which arrives from the network before any payload
// byte — the cap keeps a corrupt or hostile header from provisioning an
// absurd buffer.
const maxImportBytes = 1 << 30

// Frame wraps a payload in the store's integrity wire format — the same
// 48-byte header + payload layout Export streams — for callers that ship
// derived (transcoded) bytes over the object-transfer route rather than a
// stored file.
func Frame(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, makeHeader(payload)...)
	return append(out, payload...)
}

// Unframe verifies an integrity-framed object (header + payload, the
// Export/Frame wire format) and returns its payload, aliasing data. It is
// the in-memory counterpart of Import for callers that must transform the
// payload before storing it.
func Unframe(data []byte) ([]byte, error) {
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	payload := data[headerSize:]
	if int64(len(payload)) != hdr.length {
		return nil, fmt.Errorf("castore: truncated object")
	}
	if sha256.Sum256(payload) != hdr.sum {
		return nil, fmt.Errorf("castore: checksum mismatch")
	}
	return payload, nil
}

// Stat returns the payload size of a stored object without touching its
// recency (the companion to Has for callers that need a Content-Length).
func (s *Store) Stat(kind, key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[objKey{kind, key}]
	if !ok {
		return 0, false
	}
	return o.size, true
}

// Export streams a stored object to w in its durable wire format — the
// 48-byte integrity header followed by the payload, exactly the on-disk
// layout — and returns the bytes written. The receiver verifies the
// checksum on Import, so Export does not re-read the payload to validate
// it first; a corrupt object is caught on the importing side and served
// locally as a miss on the next Get. Exporting refreshes the object's
// recency and counts as a hit (it is a read serving real demand).
func (s *Store) Export(kind, key string, w io.Writer) (int64, error) {
	id := objKey{kind, key}
	s.mu.Lock()
	o, ok := s.objects[id]
	if ok {
		s.lru.MoveToFront(o.el)
	}
	s.mu.Unlock()
	if !ok {
		s.mu.Lock()
		s.misses++
		s.count("store.misses", 1)
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s/%s", ErrUnknownObject, kind, key)
	}
	f, err := os.Open(s.objectPath(kind, key))
	if err != nil {
		return 0, fmt.Errorf("castore: export %s/%s: %w", kind, key, err)
	}
	defer f.Close()
	// Pooled copy chunk: io.Copy would allocate a fresh 32 KiB buffer per
	// export, and peer object streaming exports in bursts. The wrapper
	// hides *os.File's WriterTo so CopyBuffer actually uses our buffer —
	// the WriterTo fast path only helps when the destination is a raw
	// socket, which an HTTP response writer is not.
	buf := bufpool.Get(64 << 10)
	n, err := io.CopyBuffer(w, struct{ io.Reader }{f}, buf)
	bufpool.Put(buf)
	if err != nil {
		return n, fmt.Errorf("castore: export %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	s.hits++
	s.count("store.hits", 1)
	s.mu.Unlock()
	return n, nil
}

// Import reads one exported object (header + payload) from r, verifies the
// checksum against the header, and stores it under (kind, key) with Put's
// full crash-safety. The wire format carrying its own integrity header
// means a peer transfer is end-to-end verified: a payload corrupted in
// flight — or served corrupt by the exporter — is rejected here and never
// enters the store. Returns the payload size.
//
// The payload streams straight into a temp file (hashing as it goes)
// rather than buffering in memory, so an import costs one 64 KiB chunk
// regardless of object size. Any mid-stream failure — short read,
// checksum mismatch, write error — removes the temp file before
// returning: an aborted import leaves no partial state anywhere, which
// the anti-entropy repair plane depends on (a repair push severed by a
// dying peer must not leave debris that the next repair round, or Open's
// boot sweep, has to reason about).
func (s *Store) Import(kind, key string, r io.Reader) (int64, error) {
	if !validName(kind) || !validName(key) {
		return 0, fmt.Errorf("castore: invalid object name %s/%s", kind, key)
	}
	var hdrBuf [headerSize]byte
	if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
		return 0, fmt.Errorf("castore: import %s/%s: header: %w", kind, key, err)
	}
	hdr, err := parseHeader(hdrBuf[:])
	if err != nil {
		return 0, fmt.Errorf("castore: import %s/%s: %w", kind, key, err)
	}
	if hdr.length > maxImportBytes {
		return 0, fmt.Errorf("castore: import %s/%s: object of %d bytes exceeds the import bound", kind, key, hdr.length)
	}
	if err := s.ensureDir(filepath.Dir(s.objectPath(kind, key))); err != nil {
		return 0, fmt.Errorf("castore: %w", err)
	}
	tmp, err := os.CreateTemp(s.tmpDir(), key+".*")
	if err != nil {
		return 0, fmt.Errorf("castore: %w", err)
	}
	fail := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	// The temp file holds the durable layout — header then payload — so a
	// verified stage publishes with a bare rename. The header was already
	// parsed; write it back verbatim.
	if _, err := tmp.Write(hdrBuf[:]); err != nil {
		return fail(fmt.Errorf("castore: import %s/%s: %w", kind, key, err))
	}
	h := sha256.New()
	buf := bufpool.Get(64 << 10)
	n, cpErr := io.CopyBuffer(io.MultiWriter(tmp, h), io.LimitReader(r, hdr.length), buf)
	bufpool.Put(buf)
	if cpErr != nil {
		return fail(fmt.Errorf("castore: import %s/%s: payload: %w", kind, key, cpErr))
	}
	if n != hdr.length {
		return fail(fmt.Errorf("castore: import %s/%s: payload: %w", kind, key, io.ErrUnexpectedEOF))
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	if sum != hdr.sum {
		return fail(fmt.Errorf("castore: import %s/%s: checksum mismatch", kind, key))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("castore: import %s/%s: %w", kind, key, err)
	}
	if err := s.publishTemp(kind, key, tmp.Name(), hdr.length); err != nil {
		return 0, err
	}
	return hdr.length, nil
}
