package castore

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	payload := bytes.Repeat([]byte("negativa"), 1000)
	if err := src.Put("lib", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Stat("lib", "abc123"); !ok {
		t.Fatal("Stat missed a stored object")
	}

	var wire bytes.Buffer
	n, err := src.Export("lib", "abc123", &wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload))+headerSize {
		t.Fatalf("exported %d bytes, want %d", n, len(payload)+headerSize)
	}

	got, err := dst.Import("lib", "abc123", &wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(len(payload)) {
		t.Fatalf("imported %d payload bytes, want %d", got, len(payload))
	}
	back, ok := dst.Get("lib", "abc123")
	if !ok || !bytes.Equal(back, payload) {
		t.Fatal("imported object does not round-trip byte-identically")
	}
}

func TestExportUnknownObject(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Export("lib", "nope", &bytes.Buffer{}); err == nil {
		t.Fatal("export of an absent object must fail")
	}
	if _, ok := s.Stat("lib", "nope"); ok {
		t.Fatal("Stat invented an object")
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	dst, _ := Open(t.TempDir(), Options{})
	defer dst.Close()
	if err := src.Put("lib", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := src.Export("lib", "k", &wire); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: the checksum must catch it.
	b := wire.Bytes()
	b[len(b)-1] ^= 0xff
	if _, err := dst.Import("lib", "k", bytes.NewReader(b)); err == nil {
		t.Fatal("import accepted a corrupted payload")
	}
	if dst.Has("lib", "k") {
		t.Fatal("corrupt import reached the store")
	}

	// Truncated stream.
	if _, err := dst.Import("lib", "k", strings.NewReader("short")); err == nil {
		t.Fatal("import accepted a truncated stream")
	}

	// Oversized header length.
	hdr := makeHeader([]byte("x"))
	hdr[8] = 0xff
	hdr[9] = 0xff
	hdr[10] = 0xff
	hdr[11] = 0xff
	hdr[12] = 0x40 // > maxImportBytes
	if _, err := dst.Import("lib", "k", bytes.NewReader(append(hdr, 'x'))); err == nil {
		t.Fatal("import accepted an oversized header")
	}
}

// tmpEntries lists what an aborted import may have left in the staging
// directory.
func tmpEntries(t *testing.T, s *Store) []string {
	t.Helper()
	ents, err := os.ReadDir(s.tmpDir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestImportAbortLeavesNoPartialState is the repair-plane contract: an
// import severed mid-stream — truncation, corruption, or a reader error —
// must remove its temp file and publish nothing, and a clean retry of the
// same object must then succeed.
func TestImportAbortLeavesNoPartialState(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	dir := t.TempDir()
	dst, _ := Open(dir, Options{})
	defer dst.Close()

	payload := bytes.Repeat([]byte("replica"), 4096)
	if err := src.Put("lib", "obj1", payload); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := src.Export("lib", "obj1", &wire); err != nil {
		t.Fatal(err)
	}
	good := wire.Bytes()

	// Sever the stream at several depths into the payload: after the
	// header, mid-payload, and one byte short of complete.
	for _, cut := range []int{headerSize, headerSize + 1, headerSize + len(payload)/2, len(good) - 1} {
		if _, err := dst.Import("lib", "obj1", bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("import of a stream cut at %d bytes succeeded", cut)
		}
		if left := tmpEntries(t, dst); len(left) != 0 {
			t.Fatalf("truncated import (cut %d) left temp debris: %v", cut, left)
		}
		if dst.Has("lib", "obj1") {
			t.Fatalf("truncated import (cut %d) published the object", cut)
		}
	}

	// Corrupt a byte mid-payload: full-length stream, checksum mismatch.
	bad := append([]byte(nil), good...)
	bad[headerSize+100] ^= 0x01
	if _, err := dst.Import("lib", "obj1", bytes.NewReader(bad)); err == nil {
		t.Fatal("import accepted a corrupt stream")
	}
	if left := tmpEntries(t, dst); len(left) != 0 {
		t.Fatalf("corrupt import left temp debris: %v", left)
	}

	// Nothing partial may have reached the object tree either.
	if p := dst.objectPath("lib", "obj1"); fileExists(p) {
		t.Fatal("aborted imports published a file")
	}

	// After all those aborts, a clean retry succeeds and round-trips.
	if _, err := dst.Import("lib", "obj1", bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	back, ok := dst.Get("lib", "obj1")
	if !ok || !bytes.Equal(back, payload) {
		t.Fatal("retry after aborted imports does not round-trip")
	}
	if left := tmpEntries(t, dst); len(left) != 0 {
		t.Fatalf("successful import left temp debris: %v", left)
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// TestImportDuplicateDropsTemp: importing an object the store already
// holds must consume the stream's temp state without disturbing the
// existing object.
func TestImportDuplicateDropsTemp(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	dst, _ := Open(t.TempDir(), Options{})
	defer dst.Close()
	payload := []byte("already-here")
	if err := src.Put("lib", "dup", payload); err != nil {
		t.Fatal(err)
	}
	if err := dst.Put("lib", "dup", payload); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := src.Export("lib", "dup", &wire); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import("lib", "dup", &wire); err != nil {
		t.Fatal(err)
	}
	if left := tmpEntries(t, dst); len(left) != 0 {
		t.Fatalf("duplicate import left temp debris: %v", left)
	}
	if back, ok := dst.Get("lib", "dup"); !ok || !bytes.Equal(back, payload) {
		t.Fatal("duplicate import disturbed the stored object")
	}
}
