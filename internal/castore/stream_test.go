package castore

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	payload := bytes.Repeat([]byte("negativa"), 1000)
	if err := src.Put("lib", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Stat("lib", "abc123"); !ok {
		t.Fatal("Stat missed a stored object")
	}

	var wire bytes.Buffer
	n, err := src.Export("lib", "abc123", &wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload))+headerSize {
		t.Fatalf("exported %d bytes, want %d", n, len(payload)+headerSize)
	}

	got, err := dst.Import("lib", "abc123", &wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(len(payload)) {
		t.Fatalf("imported %d payload bytes, want %d", got, len(payload))
	}
	back, ok := dst.Get("lib", "abc123")
	if !ok || !bytes.Equal(back, payload) {
		t.Fatal("imported object does not round-trip byte-identically")
	}
}

func TestExportUnknownObject(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Export("lib", "nope", &bytes.Buffer{}); err == nil {
		t.Fatal("export of an absent object must fail")
	}
	if _, ok := s.Stat("lib", "nope"); ok {
		t.Fatal("Stat invented an object")
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	src, _ := Open(t.TempDir(), Options{})
	defer src.Close()
	dst, _ := Open(t.TempDir(), Options{})
	defer dst.Close()
	if err := src.Put("lib", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := src.Export("lib", "k", &wire); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: the checksum must catch it.
	b := wire.Bytes()
	b[len(b)-1] ^= 0xff
	if _, err := dst.Import("lib", "k", bytes.NewReader(b)); err == nil {
		t.Fatal("import accepted a corrupted payload")
	}
	if dst.Has("lib", "k") {
		t.Fatal("corrupt import reached the store")
	}

	// Truncated stream.
	if _, err := dst.Import("lib", "k", strings.NewReader("short")); err == nil {
		t.Fatal("import accepted a truncated stream")
	}

	// Oversized header length.
	hdr := makeHeader([]byte("x"))
	hdr[8] = 0xff
	hdr[9] = 0xff
	hdr[10] = 0xff
	hdr[11] = 0xff
	hdr[12] = 0x40 // > maxImportBytes
	if _, err := dst.Import("lib", "k", bytes.NewReader(append(hdr, 'x'))); err == nil {
		t.Fatal("import accepted an oversized header")
	}
}
