//go:build linux

package castore

import "syscall"

// bulkSync flushes every dirty page on the system with one sync(2) call —
// synchronous on Linux since 2.6.39 — and reports that it did. For a large
// dirty set this is one journal commit where per-path fsync pays one per
// file; the flushed set is a strict superset of what SyncDirs owes, so the
// durability contract (data and renames durable at commit points) holds.
func bulkSync() bool {
	syscall.Sync()
	return true
}
