//go:build !linux

package castore

// bulkSync reports that no whole-system flush is available; SyncDirs falls
// back to per-path fsync.
func bulkSync() bool {
	return false
}
