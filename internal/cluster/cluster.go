package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"negativaml/internal/bufpool"
	"negativaml/internal/metrics"
)

// Options configure a Cluster.
type Options struct {
	// Replicas is the number of virtual ring points per node (default
	// DefaultReplicas).
	Replicas int
	// FailureThreshold is the number of consecutive transport failures
	// after which a peer is marked down and removed from the ring
	// (default 2).
	FailureThreshold int
	// Probation is how long a downed peer stays off the ring before the
	// next ownership lookup readmits it for another try (default 15s).
	Probation time.Duration
	// Timeout bounds each peer request (default 10s).
	Timeout time.Duration
	// Counters, when non-nil, mirrors transport-level series:
	// peer.requests, peer.transport_errors, peer.marked_down,
	// peer.readmitted.
	Counters *metrics.CounterSet
	// Timings, when non-nil, records per-peer request latency under
	// peer.<node-id>.
	Timings *metrics.TimingSet
	// Client overrides the HTTP client (tests); Timeout is applied to the
	// default client only. The default client rides a dedicated
	// http.Transport tuned for the peer plane: keep-alive connection
	// pooling sized for concurrent stage fan-out (the stock transport
	// keeps only 2 idle connections per host, so bursts of peer lookups
	// re-dial constantly).
	Client *http.Client
	// Headers are applied to every outgoing peer request — the capability
	// advertisement channel (e.g. the sparse wire-codec version header).
	// Static per node, so negotiation costs nothing per request.
	Headers map[string]string
	// Secret, when non-empty, is the cluster's shared peer credential:
	// every outgoing peer request carries it in the PeerSecretHeader, and
	// the receiving node's /v1/peer/* handlers refuse requests without it.
	// All nodes of one cluster must configure the same value. Without a
	// secret the peer surface is unauthenticated and must be network-
	// isolated from client traffic.
	Secret string
}

// PeerSecretHeader carries the cluster's shared secret on node-to-node
// requests (see Options.Secret).
const PeerSecretHeader = "X-Peer-Secret"

// PeerError is an application-level error returned by a peer's HTTP API
// (status >= 400 with a JSON error body). It does not count against the
// peer's transport health — the peer is alive and answering.
type PeerError struct {
	Peer   string
	Status int
	Msg    string
}

// Error implements the error interface.
func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: %d: %s", e.Peer, e.Status, e.Msg)
}

// PeerStatus is one peer's health snapshot.
type PeerStatus struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Down bool   `json:"down"`
	// ConsecutiveFailures is the current unbroken failure run; Requests and
	// TransportErrors are lifetime totals.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	Requests            int64 `json:"requests"`
	TransportErrors     int64 `json:"transport_errors"`
	// MeanLatencyMS is the mean wall time of this peer's requests.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// Stats is a point-in-time view of cluster membership and peer health.
type Stats struct {
	Self string `json:"self"`
	// RingNodes are the nodes currently on the ring (self plus live peers).
	RingNodes []string     `json:"ring_nodes"`
	Peers     []PeerStatus `json:"peers"`
}

type peerState struct {
	id, url   string
	fails     int
	down      bool
	downUntil time.Time

	requests, transportErrs int64
	totalLatency            time.Duration
}

// Cluster tracks the membership of a dserve peer group: a consistent-hash
// ring over the live nodes (self included), per-peer health, and the HTTP
// transport the serving plane's peer tier rides on.
//
// Failure handling is deliberately local and lazy — there is no gossip or
// heartbeat plane. A peer that fails FailureThreshold consecutive requests
// is marked down and the ring shrinks around it (its keys redistribute to
// the survivors); after Probation the next ownership lookup readmits it
// for another try. Application-level errors (a peer answering 4xx/5xx) are
// not transport failures: the peer is alive, only the request was bad.
type Cluster struct {
	self string
	opt  Options

	client *http.Client

	mu    sync.Mutex
	peers map[string]*peerState
	ring  *Ring
	// headers are the static per-request headers (Options.Headers plus
	// anything set later via SetHeader) — the capability advertisement
	// channel.
	headers map[string]string
}

// New builds a cluster for node `self` over the peer set (node ID → base
// URL). A peers entry for self is ignored, so every node of a symmetric
// deployment can share one -peers string. The ring initially contains self
// and every peer.
func New(self string, peers map[string]string, opt Options) *Cluster {
	if opt.FailureThreshold < 1 {
		opt.FailureThreshold = 2
	}
	if opt.Probation <= 0 {
		opt.Probation = 15 * time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 10 * time.Second
	}
	c := &Cluster{self: self, opt: opt, peers: map[string]*peerState{}}
	c.client = opt.Client
	if c.client == nil {
		// Dedicated transport: the peer tier fans a batch's stages out
		// concurrently, and net/http's default 2 idle connections per host
		// would close and re-dial most of them between waves. Generous
		// idle pools turn the steady state into pure keep-alive reuse.
		c.client = &http.Client{
			Timeout: opt.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	c.headers = map[string]string{}
	for k, v := range opt.Headers {
		c.headers[k] = v
	}
	for id, url := range peers {
		if id == self || id == "" {
			continue
		}
		c.peers[id] = &peerState{id: id, url: strings.TrimRight(url, "/")}
	}
	c.rebuildRingLocked()
	return c
}

// SetHeader adds (or, with an empty value, removes) a static header sent
// on every outgoing peer request. The serving plane uses it to advertise
// protocol capabilities — e.g. the sparse wire-codec version — when it
// attaches to the cluster.
func (c *Cluster) SetHeader(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if value == "" {
		delete(c.headers, key)
		return
	}
	c.headers[key] = value
}

// applyHeaders stamps the static per-request headers onto req.
func (c *Cluster) applyHeaders(req *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
}

// ParsePeers parses a "-peers" flag value: comma-separated id=base-url
// pairs, e.g. "a=http://h1:8080,b=http://h2:8080".
func ParsePeers(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: malformed peer %q (want id=base-url)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		out[id] = url
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	return out, nil
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Secret returns the cluster's shared peer credential ("" when the
// cluster runs unauthenticated). The serving plane's peer handlers use it
// to verify incoming node-to-node requests.
func (c *Cluster) Secret() string { return c.opt.Secret }

// rebuildRingLocked recomputes the ring from self plus every live peer.
// Callers hold c.mu.
func (c *Cluster) rebuildRingLocked() {
	nodes := []string{c.self}
	for id, p := range c.peers {
		if !p.down {
			nodes = append(nodes, id)
		}
	}
	c.ring = NewRing(nodes, c.opt.Replicas)
}

// Owner returns the live node owning the key. remote is true when the
// owner is a peer rather than this node — the caller should route the
// stage there. Downed peers whose probation has expired are readmitted to
// the ring here, so recovery needs no background goroutine: the next
// lookup that would have involved them tries them again.
func (c *Cluster) Owner(key string) (node string, remote bool) {
	c.mu.Lock()
	changed := false
	now := time.Now()
	for _, p := range c.peers {
		if p.down && now.After(p.downUntil) {
			p.down = false
			p.fails = 0
			changed = true
			c.count("peer.readmitted", 1)
		}
	}
	if changed {
		c.rebuildRingLocked()
	}
	ring := c.ring
	c.mu.Unlock()

	owner, ok := ring.Owner(key)
	if !ok || owner == c.self {
		return c.self, false
	}
	return owner, true
}

// Nodes returns the ring's current members (self plus live peers).
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// Stats snapshots membership and per-peer health for /v1/metrics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Self: c.self, RingNodes: c.ring.Nodes()}
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.peers[id]
		ps := PeerStatus{
			ID: p.id, URL: p.url, Down: p.down,
			ConsecutiveFailures: p.fails,
			Requests:            p.requests,
			TransportErrors:     p.transportErrs,
		}
		if p.requests > 0 {
			ps.MeanLatencyMS = float64(p.totalLatency) / float64(p.requests) / float64(time.Millisecond)
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

func (c *Cluster) count(name string, delta int64) {
	if c.opt.Counters != nil {
		c.opt.Counters.Add(name, delta)
	}
}

// peerURL resolves a peer's base URL.
func (c *Cluster) peerURL(id string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	if !ok {
		return "", fmt.Errorf("cluster: unknown peer %q", id)
	}
	return p.url, nil
}

// observe records one request's outcome against the peer's health and the
// latency series. A transport failure (err != nil) counts toward the
// consecutive-failure run; at the threshold the peer is marked down and
// the ring rebuilt without it.
func (c *Cluster) observe(id string, dur time.Duration, transportErr bool) {
	if c.opt.Timings != nil {
		c.opt.Timings.Observe("peer."+id, dur)
	}
	c.count("peer.requests", 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	if !ok {
		return
	}
	p.requests++
	p.totalLatency += dur
	if !transportErr {
		p.fails = 0
		return
	}
	p.transportErrs++
	p.fails++
	c.count("peer.transport_errors", 1)
	if p.fails >= c.opt.FailureThreshold && !p.down {
		p.down = true
		p.downUntil = time.Now().Add(c.opt.Probation)
		c.rebuildRingLocked()
		c.count("peer.marked_down", 1)
	}
}

// PostJSON POSTs a JSON body to a peer's path and decodes the JSON
// response into out (which may be nil). A non-2xx status decodes the
// peer's {"error": ...} body into a *PeerError; transport failures count
// against the peer's health, application errors do not.
//
// The request body is encoded once into a pooled buffer: Content-Length is
// set from it (so the peer can preallocate), GetBody replays the same
// bytes on any transport-level retry instead of re-marshalling, and the
// buffer returns to the pool when the exchange finishes — steady-state
// peer traffic produces no per-call encoding garbage.
func (c *Cluster) PostJSON(peer, path string, in, out any) error {
	buf := bufpool.GetBuffer()
	defer bufpool.PutBuffer(buf)
	if err := json.NewEncoder(buf).Encode(in); err != nil {
		return fmt.Errorf("cluster: encode %s request: %w", path, err)
	}
	body := buf.Bytes()
	url, err := c.peerURL(peer)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	req.ContentLength = int64(len(body))
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opt.Secret != "" {
		req.Header.Set(PeerSecretHeader, c.opt.Secret)
	}
	c.applyHeaders(req)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.observe(peer, time.Since(start), true)
		return fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		perr := &PeerError{Peer: peer, Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			perr.Msg = eb.Error
		}
		c.observe(peer, time.Since(start), false)
		return perr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// An unparsable success body means the peer is misbehaving at
			// the protocol level; treat it like a transport failure so a
			// wedged peer eventually leaves the ring.
			c.observe(peer, time.Since(start), true)
			return fmt.Errorf("cluster: peer %s: decode %s response: %w", peer, path, err)
		}
	}
	c.observe(peer, time.Since(start), false)
	return nil
}

// GetStream GETs a peer path and returns the raw response body stream for
// the caller to consume and close — the castore object-transfer path. A
// non-2xx status is returned as *PeerError with the body drained.
func (c *Cluster) GetStream(peer, path string) (io.ReadCloser, error) {
	rc, _, err := c.GetStreamHeader(peer, path)
	return rc, err
}

// GetStreamHeader is GetStream plus the response headers, for protocols
// whose body encoding is negotiated per request (the sparse wire codec on
// the object-transfer route).
func (c *Cluster) GetStreamHeader(peer, path string) (io.ReadCloser, http.Header, error) {
	url, err := c.peerURL(peer)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(http.MethodGet, url+path, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	if c.opt.Secret != "" {
		req.Header.Set(PeerSecretHeader, c.opt.Secret)
	}
	c.applyHeaders(req)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.observe(peer, time.Since(start), true)
		return nil, nil, fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	if resp.StatusCode/100 != 2 {
		perr := &PeerError{Peer: peer, Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			perr.Msg = eb.Error
		}
		resp.Body.Close()
		c.observe(peer, time.Since(start), false)
		return nil, nil, perr
	}
	// Latency is observed at header time; the stream itself is the
	// caller's to pace.
	c.observe(peer, time.Since(start), false)
	return resp.Body, resp.Header, nil
}
