package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"negativaml/internal/bufpool"
	"negativaml/internal/metrics"
)

// Options configure a Cluster.
type Options struct {
	// Replicas is the number of virtual ring points per node (default
	// DefaultReplicas).
	Replicas int
	// ReplicaSets is R, the number of distinct ring successors that own
	// each key (default 2). The first owner is the primary — the shard that
	// executes misses — and the rest are replicas the primary's artifacts
	// are copied to, so one node's death loses no cached work.
	ReplicaSets int
	// FailureThreshold is the number of consecutive transport failures
	// after which a peer is marked down and removed from the ring
	// (default 2). A peer with a shorter failure run is suspect: still on
	// the ring, but the heartbeat plane probes it preferentially.
	FailureThreshold int
	// Probation is the backoff between probes of a downed peer (default
	// 15s). Expiry makes the peer eligible for a background probe; only a
	// probe that succeeds readmits it to the ring.
	Probation time.Duration
	// HeartbeatInterval, when positive, starts the active failure-detection
	// plane: a background loop that pings every peer each interval,
	// piggybacking membership (so joins gossip through the cluster) and
	// driving the suspect → down → readmitted transitions without waiting
	// for request traffic. Zero disables the loop; health then updates only
	// from request outcomes and lookup-triggered probes.
	HeartbeatInterval time.Duration
	// Timeout bounds each peer request (default 10s).
	Timeout time.Duration
	// Counters, when non-nil, mirrors transport-level series:
	// peer.requests, peer.transport_errors, peer.marked_down,
	// peer.readmitted, peer.probes, peer.probe_failures,
	// peer.gossip_learned.
	Counters *metrics.CounterSet
	// Timings, when non-nil, records per-peer request latency under
	// peer.<node-id>.
	Timings *metrics.TimingSet
	// Client overrides the HTTP client (tests); Timeout is applied to the
	// default client only. The default client rides a dedicated
	// http.Transport tuned for the peer plane: keep-alive connection
	// pooling sized for concurrent stage fan-out (the stock transport
	// keeps only 2 idle connections per host, so bursts of peer lookups
	// re-dial constantly).
	Client *http.Client
	// Headers are applied to every outgoing peer request — the capability
	// advertisement channel (e.g. the sparse wire-codec version header).
	// Static per node, so negotiation costs nothing per request.
	Headers map[string]string
	// Secret, when non-empty, is the cluster's shared peer credential:
	// every outgoing peer request carries it in the PeerSecretHeader, and
	// the receiving node's /v1/peer/* handlers refuse requests without it.
	// All nodes of one cluster must configure the same value. Without a
	// secret the peer surface is unauthenticated and must be network-
	// isolated from client traffic.
	Secret string
	// HedgeDelay tunes hedged replica reads (HedgedCall). Zero means
	// adaptive with the DefaultHedgeFloor floor: the hedge fires after the
	// primary replica's observed p95 latency. Positive raises that floor
	// (and is the whole delay for peers with no latency history yet).
	// Negative disables hedging entirely.
	HedgeDelay time.Duration
	// HedgeMaxPct caps hedges at this percentage of in-flight hedged reads
	// (default 25): under fan-out, at most one read in four may carry a
	// second outstanding request, so hedging cannot double cluster load
	// exactly when the cluster is busiest. At least one hedge is always
	// allowed.
	HedgeMaxPct int
}

// DefaultHedgeFloor is the minimum hedge delay when Options.HedgeDelay is
// zero: short enough to rescue a stalled read, long enough that a healthy
// same-rack round trip wins first and the hedge never fires.
const DefaultHedgeFloor = 2 * time.Millisecond

// PeerSecretHeader carries the cluster's shared secret on node-to-node
// requests (see Options.Secret).
const PeerSecretHeader = "X-Peer-Secret"

// Membership-plane paths. The serving layer mounts handlers at these
// routes (wired to HandleHeartbeat, AddPeer, RemovePeer); the cluster's
// own probes, Join, and Leave post to them on peers.
const (
	// PingPath is the heartbeat/probe route: a HeartbeatRequest in, a
	// HeartbeatResponse out. Answering 2xx is what readmits a downed peer.
	PingPath = "/v1/peer/ping"
	// JoinPath announces a node (JoinRequest) to a peer, which adds it to
	// its membership and answers with its own (JoinResponse).
	JoinPath = "/v1/peer/join"
	// LeavePath retires a node (LeaveRequest): the receiver removes it and
	// tombstones the ID so gossip cannot resurrect it.
	LeavePath = "/v1/peer/leave"
)

// HeartbeatRequest is one piggybacked heartbeat: the sender identifies
// itself and shares its live-member view, so membership gossips along the
// ping plane.
type HeartbeatRequest struct {
	From string `json:"from"`
	URL  string `json:"url,omitempty"`
	// Nodes is the sender's live membership (id → base URL), self included.
	Nodes map[string]string `json:"nodes,omitempty"`
}

// HeartbeatResponse carries the receiver's live membership back.
type HeartbeatResponse struct {
	Nodes map[string]string `json:"nodes,omitempty"`
}

// JoinRequest announces a node to a peer.
type JoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// JoinResponse is the receiver's live membership, so a joiner learns the
// whole cluster from any one member.
type JoinResponse struct {
	Nodes map[string]string `json:"nodes,omitempty"`
}

// LeaveRequest retires a node by ID.
type LeaveRequest struct {
	ID string `json:"id"`
}

// PeerError is an application-level error returned by a peer's HTTP API
// (status >= 400 with a JSON error body). It does not count against the
// peer's transport health — the peer is alive and answering.
type PeerError struct {
	Peer   string
	Status int
	Msg    string
}

// Error implements the error interface.
func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: %d: %s", e.Peer, e.Status, e.Msg)
}

// PeerStatus is one peer's health snapshot.
type PeerStatus struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Down bool   `json:"down"`
	// Suspect marks a peer inside a failure run that has not yet reached
	// the down threshold: still on the ring, probed preferentially.
	Suspect bool `json:"suspect"`
	// ConsecutiveFailures is the current unbroken failure run; Requests and
	// TransportErrors are lifetime totals.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	Requests            int64 `json:"requests"`
	TransportErrors     int64 `json:"transport_errors"`
	// MeanLatencyMS is the mean wall time of this peer's requests.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// Stats is a point-in-time view of cluster membership and peer health.
type Stats struct {
	Self string `json:"self"`
	// ReplicaSets is R — how many ring successors own each key.
	ReplicaSets int `json:"replica_sets"`
	// RingNodes are the nodes currently on the ring (self plus live peers).
	RingNodes []string     `json:"ring_nodes"`
	Peers     []PeerStatus `json:"peers"`
}

// latWindow is how many recent successful-request latencies each peer
// retains for quantile estimation (the hedge-delay source). Small on
// purpose: the hedge should track the peer's current behavior, not its
// lifetime average.
const latWindow = 64

type peerState struct {
	id, url   string
	fails     int
	down      bool
	downUntil time.Time

	requests, transportErrs int64
	totalLatency            time.Duration
	// latSamples is a ring of the last latWindow successful-request
	// latencies; latN counts how many slots are filled (saturating at
	// latWindow), latIdx is the next write position.
	latSamples [latWindow]time.Duration
	latN       int
	latIdx     int
}

// recordLatency appends one successful-request latency to the ring.
func (p *peerState) recordLatency(d time.Duration) {
	p.latSamples[p.latIdx] = d
	p.latIdx = (p.latIdx + 1) % latWindow
	if p.latN < latWindow {
		p.latN++
	}
}

// latencyP95 estimates the 95th percentile of the ring (0 when empty).
func (p *peerState) latencyP95() time.Duration {
	if p.latN == 0 {
		return 0
	}
	samples := make([]time.Duration, p.latN)
	copy(samples, p.latSamples[:p.latN])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (p.latN*95 + 99) / 100 // ceil(n * 0.95)
	if idx > 0 {
		idx--
	}
	return samples[idx]
}

// Cluster tracks the membership of a dserve peer group: a consistent-hash
// ring over the live nodes (self included), per-peer health, and the HTTP
// transport the serving plane's peer tier rides on.
//
// Each key has ReplicaSets owners — the primary executes misses, the rest
// replicate its artifacts. Health runs in three states: a peer inside a
// failure run shorter than FailureThreshold is suspect (on the ring,
// probed preferentially by the heartbeat plane); at the threshold it is
// down and the ring shrinks around it (its keys redistribute to the
// survivors). A downed peer is readmitted only after a background probe of
// PingPath succeeds — never synchronously at a lookup — so a dead peer
// cannot thrash the ring by being optimistically retried on every key.
// Membership is dynamic: Join/Leave announce explicit transitions, and
// heartbeats piggyback each side's live-member view so additions gossip
// through the cluster; an ID retired via Leave is tombstoned and gossip
// cannot resurrect it. Application-level errors (a peer answering
// 4xx/5xx) are not transport failures: the peer is alive, only the
// request was bad.
type Cluster struct {
	self    string
	selfURL string
	opt     Options

	client *http.Client

	stop      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	peers map[string]*peerState
	ring  *Ring
	// probing tracks in-flight background probes (single-flight per peer).
	probing map[string]bool
	// tombstones are IDs retired via Leave/RemovePeer: gossip and
	// heartbeats cannot re-add them; only an explicit join clears one.
	tombstones map[string]struct{}
	// exRings caches rings with one node excluded (the post-leave
	// ownership view handoff routes by); invalidated on every rebuild.
	exRings map[string]*Ring
	// headers are the static per-request headers (Options.Headers plus
	// anything set later via SetHeader) — the capability advertisement
	// channel.
	headers map[string]string

	// inflightReads / inflightHedges back the hedge budget: hedges are
	// admitted only while they stay under HedgeMaxPct of in-flight hedged
	// reads, so tail-chasing cannot double cluster load under fan-out.
	inflightReads  atomic.Int64
	inflightHedges atomic.Int64
}

// New builds a cluster for node `self` over the peer set (node ID → base
// URL). A peers entry for self is not a peer but does teach the node its
// own advertised URL (what Join announces and heartbeats piggyback), so
// every node of a symmetric deployment can share one -peers string. The
// ring initially contains self and every peer. With HeartbeatInterval set
// the active failure-detection loop starts immediately; stop it with
// Close.
func New(self string, peers map[string]string, opt Options) *Cluster {
	if opt.ReplicaSets < 1 {
		opt.ReplicaSets = 2
	}
	if opt.FailureThreshold < 1 {
		opt.FailureThreshold = 2
	}
	if opt.Probation <= 0 {
		opt.Probation = 15 * time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 10 * time.Second
	}
	if opt.HedgeMaxPct <= 0 {
		opt.HedgeMaxPct = 25
	}
	c := &Cluster{
		self:       self,
		opt:        opt,
		peers:      map[string]*peerState{},
		probing:    map[string]bool{},
		tombstones: map[string]struct{}{},
		stop:       make(chan struct{}),
	}
	c.client = opt.Client
	if c.client == nil {
		// Dedicated transport: the peer tier fans a batch's stages out
		// concurrently, and net/http's default 2 idle connections per host
		// would close and re-dial most of them between waves. Generous
		// idle pools turn the steady state into pure keep-alive reuse.
		c.client = &http.Client{
			Timeout: opt.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	c.headers = map[string]string{}
	for k, v := range opt.Headers {
		c.headers[k] = v
	}
	for id, url := range peers {
		if id == "" {
			continue
		}
		if id == self {
			c.selfURL = strings.TrimRight(url, "/")
			continue
		}
		c.peers[id] = &peerState{id: id, url: strings.TrimRight(url, "/")}
	}
	c.rebuildRingLocked()
	if opt.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// Close stops the heartbeat loop (if any). Idempotent; in-flight probes
// finish on their own.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
}

// SetHeader adds (or, with an empty value, removes) a static header sent
// on every outgoing peer request. The serving plane uses it to advertise
// protocol capabilities — e.g. the sparse wire-codec version — when it
// attaches to the cluster.
func (c *Cluster) SetHeader(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if value == "" {
		delete(c.headers, key)
		return
	}
	c.headers[key] = value
}

// applyHeaders stamps the static per-request headers onto req.
func (c *Cluster) applyHeaders(req *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
}

// ParsePeers parses a "-peers" flag value: comma-separated id=base-url
// pairs, e.g. "a=http://h1:8080,b=http://h2:8080".
func ParsePeers(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: malformed peer %q (want id=base-url)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		out[id] = url
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	return out, nil
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Secret returns the cluster's shared peer credential ("" when the
// cluster runs unauthenticated). The serving plane's peer handlers use it
// to verify incoming node-to-node requests.
func (c *Cluster) Secret() string { return c.opt.Secret }

// ReplicaSets returns R, the per-key owner count.
func (c *Cluster) ReplicaSets() int { return c.opt.ReplicaSets }

// rebuildRingLocked recomputes the ring from self plus every live peer.
// Callers hold c.mu.
func (c *Cluster) rebuildRingLocked() {
	nodes := []string{c.self}
	for id, p := range c.peers {
		if !p.down {
			nodes = append(nodes, id)
		}
	}
	c.ring = NewRing(nodes, c.opt.Replicas)
	c.exRings = nil
}

// Owner returns the live node owning the key — the primary of its replica
// set. remote is true when the owner is a peer rather than this node — the
// caller should route the stage there.
func (c *Cluster) Owner(key string) (node string, remote bool) {
	owners := c.Owners(key)
	if len(owners) == 0 || owners[0] == c.self {
		return c.self, false
	}
	return owners[0], true
}

// Owners returns the key's live replica set in ring order: up to
// ReplicaSets distinct nodes, the primary first. Downed peers whose
// probation has expired get a background probe kicked here (single-flight,
// never blocking the lookup) — the lazy complement of the heartbeat plane,
// so heartbeat-less deployments still converge.
func (c *Cluster) Owners(key string) []string {
	c.mu.Lock()
	c.kickProbesLocked(time.Now())
	ring := c.ring
	r := c.opt.ReplicaSets
	c.mu.Unlock()
	return ring.Owners(key, r)
}

// OwnersExcluding returns the key's owners on the ring as it will be once
// the named node has left — the ownership view a leaving node hands its
// keys off to. The excluded ring is cached until membership changes.
func (c *Cluster) OwnersExcluding(id, key string) []string {
	c.mu.Lock()
	ring := c.exRings[id]
	if ring == nil {
		nodes := make([]string, 0, c.ring.Len())
		for _, n := range c.ring.Nodes() {
			if n != id {
				nodes = append(nodes, n)
			}
		}
		ring = NewRing(nodes, c.opt.Replicas)
		if c.exRings == nil {
			c.exRings = map[string]*Ring{}
		}
		c.exRings[id] = ring
	}
	r := c.opt.ReplicaSets
	c.mu.Unlock()
	return ring.Owners(key, r)
}

// SortByLatency orders peer IDs in place into the replica read-through
// order: healthy peers with latency history first (by mean, ascending),
// then healthy-but-unmeasured peers, then suspects (mid failure run), then
// downed peers. Health outranks speed — a suspect replica, however fast it
// used to be, must never be the first read target while a healthy one
// exists, or a single stalled peer charges every read its full timeout
// before the fallback. IDs not in the peer table (self) sort as healthy
// and instant.
func (c *Cluster) SortByLatency(ids []string) {
	type rank struct {
		class int // 0 healthy-measured (or self), 1 healthy-unmeasured, 2 suspect, 3 down
		mean  time.Duration
	}
	c.mu.Lock()
	ranks := make(map[string]rank, len(ids))
	for _, id := range ids {
		p, ok := c.peers[id]
		if !ok {
			ranks[id] = rank{class: 0}
			continue
		}
		r := rank{}
		switch {
		case p.down:
			r.class = 3
		case p.fails > 0:
			r.class = 2
		case p.requests > 0:
			r.class = 0
			r.mean = p.totalLatency / time.Duration(p.requests)
		default:
			r.class = 1
		}
		ranks[id] = r
	}
	c.mu.Unlock()
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ranks[ids[i]], ranks[ids[j]]
		if a.class != b.class {
			return a.class < b.class
		}
		return a.mean < b.mean
	})
}

// Nodes returns the ring's current members (self plus live peers).
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// Membership snapshots the live member set (id → base URL), self included
// when its URL is known — what heartbeats piggyback and joins answer with.
// Downed peers are excluded: gossiping a dead address around the cluster
// would make every member probe it independently.
func (c *Cluster) Membership() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.membershipLocked()
}

func (c *Cluster) membershipLocked() map[string]string {
	out := make(map[string]string, len(c.peers)+1)
	if c.selfURL != "" {
		out[c.self] = c.selfURL
	}
	for id, p := range c.peers {
		if !p.down {
			out[id] = p.url
		}
	}
	return out
}

// AddPeer adds a node to the membership (or refreshes its URL), clearing
// any tombstone — an explicit join overrides a past leave — and readmits
// it if it was down: a join announcement is the node itself claiming
// liveness, the same evidence a successful probe provides.
func (c *Cluster) AddPeer(id, url string) {
	if id == "" || id == c.self {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tombstones, id)
	if p, ok := c.peers[id]; ok {
		if url != "" {
			p.url = strings.TrimRight(url, "/")
		}
		if p.down {
			p.down = false
			p.fails = 0
			c.count("peer.readmitted", 1)
		}
		c.rebuildRingLocked()
		return
	}
	c.peers[id] = &peerState{id: id, url: strings.TrimRight(url, "/")}
	c.rebuildRingLocked()
}

// RemovePeer drops a node from the membership and tombstones its ID so
// gossip cannot re-add it. Only an explicit join clears the tombstone.
func (c *Cluster) RemovePeer(id string) {
	if id == "" || id == c.self {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tombstones[id] = struct{}{}
	if _, ok := c.peers[id]; !ok {
		return
	}
	delete(c.peers, id)
	c.rebuildRingLocked()
}

// learnPeers merges a gossiped membership view: unknown, untombstoned IDs
// are added as live peers. Known peers are left alone — their health is
// this node's own observation, not the gossiper's.
func (c *Cluster) learnPeers(nodes map[string]string) {
	if len(nodes) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	added := false
	for id, url := range nodes {
		if id == "" || id == c.self || url == "" {
			continue
		}
		if _, dead := c.tombstones[id]; dead {
			continue
		}
		if _, known := c.peers[id]; known {
			continue
		}
		c.peers[id] = &peerState{id: id, url: strings.TrimRight(url, "/")}
		c.count("peer.gossip_learned", 1)
		added = true
	}
	if added {
		c.rebuildRingLocked()
	}
}

// HandleHeartbeat processes one inbound heartbeat: the sender's membership
// view is merged (gossip), its URL refreshed, and — if this node had
// marked the sender down — an immediate background probe is kicked, since
// inbound traffic is strong evidence the peer is back but only our own
// successful probe proves the return path works. The response carries this
// node's live membership.
func (c *Cluster) HandleHeartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.learnPeers(req.Nodes)
	c.mu.Lock()
	if p, ok := c.peers[req.From]; ok {
		if req.URL != "" {
			p.url = strings.TrimRight(req.URL, "/")
		}
		if p.down && !c.probing[req.From] {
			p.downUntil = time.Now()
			c.probing[req.From] = true
			go c.probeAndSettle(req.From)
		}
	} else if req.From != "" && req.From != c.self && req.URL != "" {
		if _, dead := c.tombstones[req.From]; !dead {
			c.peers[req.From] = &peerState{id: req.From, url: strings.TrimRight(req.URL, "/")}
			c.rebuildRingLocked()
			c.count("peer.gossip_learned", 1)
		}
	}
	resp := HeartbeatResponse{Nodes: c.membershipLocked()}
	c.mu.Unlock()
	return resp
}

// Join announces this node to every known peer (JoinPath) and merges each
// answer's membership, so one reachable member is enough to learn the
// whole cluster. Returns how many peers acknowledged; failures are normal
// during a rolling start and the heartbeat plane finishes the job.
func (c *Cluster) Join() int {
	c.mu.Lock()
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	acked := 0
	for _, id := range ids {
		var jr JoinResponse
		if err := c.PostJSON(id, JoinPath, JoinRequest{ID: c.self, URL: c.selfURL}, &jr); err != nil {
			continue
		}
		acked++
		c.learnPeers(jr.Nodes)
	}
	return acked
}

// Leave announces this node's retirement to every live peer (LeavePath),
// best-effort. Callers that hold replicated state hand it off first (the
// serving plane's LeaveCluster does).
func (c *Cluster) Leave() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.peers))
	for id, p := range c.peers {
		if !p.down {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	for _, id := range ids {
		c.PostJSON(id, LeavePath, LeaveRequest{ID: c.self}, nil)
	}
}

// ---- Failure detection: heartbeats, probes, readmission ----

// heartbeatLoop is the active failure-detection plane: each tick probes
// every peer not already being probed and not inside probation backoff,
// piggybacking membership both ways.
func (c *Cluster) heartbeatLoop() {
	t := time.NewTicker(c.opt.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			now := time.Now()
			var targets []string
			for id, p := range c.peers {
				if c.probing[id] || (p.down && now.Before(p.downUntil)) {
					continue
				}
				c.probing[id] = true
				targets = append(targets, id)
			}
			c.mu.Unlock()
			for _, id := range targets {
				go c.probeAndSettle(id)
			}
		}
	}
}

// kickProbesLocked launches a background probe for every downed peer whose
// probation has expired. Readmission only ever follows a successful probe —
// a lookup merely triggers the attempt, so a still-dead peer can never
// rejoin the ring and charge a stage another failure run (the flapping-
// peer fix). Callers hold c.mu.
func (c *Cluster) kickProbesLocked(now time.Time) {
	for id, p := range c.peers {
		if p.down && now.After(p.downUntil) && !c.probing[id] {
			c.probing[id] = true
			go c.probeAndSettle(id)
		}
	}
}

// probeAndSettle runs one background probe (the caller has claimed the
// peer's probing slot) and settles a downed peer's fate: success readmits
// it to the ring, failure extends its probation. Probes of live peers need
// no settling — the transport's observe already drove any state change.
func (c *Cluster) probeAndSettle(id string) {
	ok := c.probe(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.probing, id)
	p, exists := c.peers[id]
	if !exists || !p.down {
		return
	}
	if ok {
		p.down = false
		p.fails = 0
		c.rebuildRingLocked()
		c.count("peer.readmitted", 1)
	} else {
		p.downUntil = time.Now().Add(c.opt.Probation)
	}
}

// probe sends one heartbeat to the peer. Only a 2xx PingPath answer counts
// as success: a transport failure means the peer is unreachable, and an
// application error (a node up but refusing its peer surface) is not a
// peer worth routing stages to either.
func (c *Cluster) probe(id string) bool {
	c.count("peer.probes", 1)
	req := HeartbeatRequest{From: c.self, URL: c.selfURL, Nodes: c.Membership()}
	var resp HeartbeatResponse
	if err := c.PostJSON(id, PingPath, req, &resp); err != nil {
		c.count("peer.probe_failures", 1)
		return false
	}
	c.learnPeers(resp.Nodes)
	return true
}

// Stats snapshots membership and per-peer health for /v1/metrics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Self: c.self, ReplicaSets: c.opt.ReplicaSets, RingNodes: c.ring.Nodes()}
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.peers[id]
		ps := PeerStatus{
			ID: p.id, URL: p.url, Down: p.down,
			Suspect:             !p.down && p.fails > 0,
			ConsecutiveFailures: p.fails,
			Requests:            p.requests,
			TransportErrors:     p.transportErrs,
		}
		if p.requests > 0 {
			ps.MeanLatencyMS = float64(p.totalLatency) / float64(p.requests) / float64(time.Millisecond)
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

func (c *Cluster) count(name string, delta int64) {
	if c.opt.Counters != nil {
		c.opt.Counters.Add(name, delta)
	}
}

// peerURL resolves a peer's base URL.
func (c *Cluster) peerURL(id string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	if !ok {
		return "", fmt.Errorf("cluster: unknown peer %q", id)
	}
	return p.url, nil
}

// observe records one request's outcome against the peer's health and the
// latency series. A transport failure (err != nil) counts toward the
// consecutive-failure run; at the threshold the peer is marked down and
// the ring rebuilt without it.
func (c *Cluster) observe(id string, dur time.Duration, transportErr bool) {
	if c.opt.Timings != nil {
		c.opt.Timings.Observe("peer."+id, dur)
	}
	c.count("peer.requests", 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	if !ok {
		return
	}
	p.requests++
	p.totalLatency += dur
	if !transportErr {
		p.fails = 0
		p.recordLatency(dur)
		return
	}
	p.transportErrs++
	p.fails++
	c.count("peer.transport_errors", 1)
	if p.fails >= c.opt.FailureThreshold && !p.down {
		p.down = true
		p.downUntil = time.Now().Add(c.opt.Probation)
		c.rebuildRingLocked()
		c.count("peer.marked_down", 1)
	}
}

// PostJSON POSTs a JSON body to a peer's path and decodes the JSON
// response into out (which may be nil). A non-2xx status decodes the
// peer's {"error": ...} body into a *PeerError; transport failures count
// against the peer's health, application errors do not.
//
// The request body is encoded once into a pooled buffer: Content-Length is
// set from it (so the peer can preallocate), GetBody replays the same
// bytes on any transport-level retry instead of re-marshalling, and the
// buffer returns to the pool when the exchange finishes — steady-state
// peer traffic produces no per-call encoding garbage.
func (c *Cluster) PostJSON(peer, path string, in, out any) error {
	return c.PostJSONCtx(context.Background(), peer, path, in, out)
}

// PostJSONCtx is PostJSON under a caller context — the hedged-read path's
// cancellation channel. A request whose context was cancelled does not
// touch the peer's health or latency accounting: losing a hedge race says
// nothing about the peer, and charging it a transport failure would let
// hedging itself mark healthy peers down.
func (c *Cluster) PostJSONCtx(ctx context.Context, peer, path string, in, out any) error {
	buf := bufpool.GetBuffer()
	defer bufpool.PutBuffer(buf)
	if err := json.NewEncoder(buf).Encode(in); err != nil {
		return fmt.Errorf("cluster: encode %s request: %w", path, err)
	}
	body := buf.Bytes()
	url, err := c.peerURL(peer)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	req.ContentLength = int64(len(body))
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opt.Secret != "" {
		req.Header.Set(PeerSecretHeader, c.opt.Secret)
	}
	c.applyHeaders(req)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("cluster: peer %s: %w", peer, ctx.Err())
		}
		c.observe(peer, time.Since(start), true)
		return fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		perr := &PeerError{Peer: peer, Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			perr.Msg = eb.Error
		}
		c.observe(peer, time.Since(start), false)
		return perr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("cluster: peer %s: %w", peer, ctx.Err())
			}
			// An unparsable success body means the peer is misbehaving at
			// the protocol level; treat it like a transport failure so a
			// wedged peer eventually leaves the ring.
			c.observe(peer, time.Since(start), true)
			return fmt.Errorf("cluster: peer %s: decode %s response: %w", peer, path, err)
		}
	}
	c.observe(peer, time.Since(start), false)
	return nil
}

// ---- Hedged replica reads ----

// hedgeDelayFor derives the delay before a read against the peer grows a
// hedge: the peer's observed p95 latency (a request slower than 19 of 20
// recent ones is likely stalled), floored by Options.HedgeDelay or
// DefaultHedgeFloor so a sub-millisecond-fast ring doesn't hedge every
// read on scheduling jitter.
func (c *Cluster) hedgeDelayFor(peer string) time.Duration {
	floor := c.opt.HedgeDelay
	if floor == 0 {
		floor = DefaultHedgeFloor
	}
	c.mu.Lock()
	p, ok := c.peers[peer]
	var p95 time.Duration
	if ok {
		p95 = p.latencyP95()
	}
	c.mu.Unlock()
	if p95 < floor {
		return floor
	}
	return p95
}

// hedgeAdmit reports whether a new hedge fits the budget: hedges may not
// exceed HedgeMaxPct of in-flight hedged reads (always admitting at least
// one). The caller must release the slot via inflightHedges.Add(-1) when
// the hedge completes.
func (c *Cluster) hedgeAdmit() bool {
	limit := c.inflightReads.Load() * int64(c.opt.HedgeMaxPct) / 100
	if limit < 1 {
		limit = 1
	}
	for {
		cur := c.inflightHedges.Load()
		if cur >= limit {
			return false
		}
		if c.inflightHedges.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// hedgeResult carries one attempt's outcome back to HedgedCall.
type hedgeResult struct {
	v      any
	ok     bool
	err    error
	peer   string
	hedged bool
}

// HedgedCall runs attempt against peers[0] and, if no answer lands within
// a latency-derived hedge delay (hedgeDelayFor), races a second attempt
// against peers[1] — the tail-at-scale defense: a stalled primary costs
// the hedge delay plus the replica's round trip, not the full timeout.
// The first attempt to return ok wins and the loser's context is
// cancelled. attempt must honor ctx (route reads through PostJSONCtx) and
// report ok=false for an application-level miss; a miss or error returns
// without hedging further — replica iteration beyond the first two peers
// stays the caller's loop. Metrics: peer.hedge_fired / peer.hedge_won /
// peer.hedge_cancelled. Returns the winning value and peer, or ok=false
// when neither attempt satisfied.
func (c *Cluster) HedgedCall(peers []string, attempt func(ctx context.Context, peer string) (any, bool, error)) (v any, peer string, ok bool) {
	if len(peers) == 0 {
		return nil, "", false
	}
	c.inflightReads.Add(1)
	defer c.inflightReads.Add(-1)

	results := make(chan hedgeResult, 2)
	var cancels []context.CancelFunc
	launch := func(p string, hedged bool) {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		go func() {
			v, ok, err := attempt(ctx, p)
			if hedged {
				// Release the budget slot here, not in the reader: a hedge
				// abandoned after the primary wins is never read.
				c.inflightHedges.Add(-1)
			}
			results <- hedgeResult{v: v, ok: ok, err: err, peer: p, hedged: hedged}
		}()
	}
	// Cancel every launched context on the way out — the winner's (a no-op
	// once its attempt returned) and the loser's, which aborts its in-flight
	// request.
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch(peers[0], false)

	canHedge := c.opt.HedgeDelay >= 0 && len(peers) > 1
	var timer *time.Timer
	var fire <-chan time.Time
	if canHedge {
		timer = time.NewTimer(c.hedgeDelayFor(peers[0]))
		defer timer.Stop()
		fire = timer.C
	}

	outstanding := 1
	hedgeLaunched := false
	for {
		select {
		case <-fire:
			fire = nil
			if c.hedgeAdmit() {
				hedgeLaunched = true
				c.count("peer.hedge_fired", 1)
				launch(peers[1], true)
				outstanding++
			}
		case r := <-results:
			outstanding--
			if r.ok {
				if outstanding > 0 {
					c.count("peer.hedge_cancelled", 1)
				}
				if r.hedged {
					c.count("peer.hedge_won", 1)
				}
				return r.v, r.peer, true
			}
			if !hedgeLaunched {
				// Primary answered (miss or error) before any hedge fired:
				// return immediately, the caller's replica loop continues.
				return nil, r.peer, false
			}
			if outstanding == 0 {
				return nil, r.peer, false
			}
		}
	}
}

// PutStream PUTs a raw octet stream to a peer path — the replication and
// repair push path (the wire mirror of GetStream). length sets
// Content-Length when known (>= 0); -1 streams chunked. A non-2xx status
// is returned as *PeerError.
func (c *Cluster) PutStream(peer, path string, body io.Reader, length int64) error {
	url, err := c.peerURL(peer)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, url+path, body)
	if err != nil {
		return fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	if length >= 0 {
		req.ContentLength = length
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if c.opt.Secret != "" {
		req.Header.Set(PeerSecretHeader, c.opt.Secret)
	}
	c.applyHeaders(req)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.observe(peer, time.Since(start), true)
		return fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		perr := &PeerError{Peer: peer, Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			perr.Msg = eb.Error
		}
		c.observe(peer, time.Since(start), false)
		return perr
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	c.observe(peer, time.Since(start), false)
	return nil
}

// GetStream GETs a peer path and returns the raw response body stream for
// the caller to consume and close — the castore object-transfer path. A
// non-2xx status is returned as *PeerError with the body drained.
func (c *Cluster) GetStream(peer, path string) (io.ReadCloser, error) {
	rc, _, err := c.GetStreamHeader(peer, path)
	return rc, err
}

// GetStreamHeader is GetStream plus the response headers, for protocols
// whose body encoding is negotiated per request (the sparse wire codec on
// the object-transfer route).
func (c *Cluster) GetStreamHeader(peer, path string) (io.ReadCloser, http.Header, error) {
	url, err := c.peerURL(peer)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(http.MethodGet, url+path, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: build %s request: %w", path, err)
	}
	if c.opt.Secret != "" {
		req.Header.Set(PeerSecretHeader, c.opt.Secret)
	}
	c.applyHeaders(req)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.observe(peer, time.Since(start), true)
		return nil, nil, fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	if resp.StatusCode/100 != 2 {
		perr := &PeerError{Peer: peer, Status: resp.StatusCode}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil {
			perr.Msg = eb.Error
		}
		resp.Body.Close()
		c.observe(peer, time.Since(start), false)
		return nil, nil, perr
	}
	// Latency is observed at header time; the stream itself is the
	// caller's to pace.
	c.observe(peer, time.Since(start), false)
	return resp.Body, resp.Header, nil
}
