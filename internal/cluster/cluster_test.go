package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"negativaml/internal/metrics"
)

func TestParsePeers(t *testing.T) {
	m, err := ParsePeers("a=http://h1:8080, b=http://h2:8080 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["a"] != "http://h1:8080" || m["b"] != "http://h2:8080" {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "justanode", "a=", "=url", "a=u,a=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestNewDropsSelfEntry(t *testing.T) {
	c := New("b", map[string]string{"a": "http://h1", "b": "http://h2", "c": "http://h3"}, Options{})
	nodes := c.Nodes()
	if len(nodes) != 3 || !slices.Contains(nodes, "b") {
		t.Fatalf("ring nodes = %v", nodes)
	}
	if len(c.Stats().Peers) != 2 {
		t.Fatalf("self must not be its own peer: %+v", c.Stats().Peers)
	}
}

func TestOwnerSelfVsRemote(t *testing.T) {
	c := New("a", map[string]string{"b": "http://h2"}, Options{})
	sawSelf, sawRemote := false, false
	for i := 0; i < 200 && !(sawSelf && sawRemote); i++ {
		owner, remote := c.Owner(string(rune('a'+i%26)) + "key" + string(rune('0'+i%10)))
		if remote {
			if owner != "b" {
				t.Fatalf("remote owner %q", owner)
			}
			sawRemote = true
		} else {
			if owner != "a" {
				t.Fatalf("self owner %q", owner)
			}
			sawSelf = true
		}
	}
	if !sawSelf || !sawRemote {
		t.Fatal("2-node ring should split ownership")
	}
}

// TestPeerFailureShrinksRingAndProbationReadmits drives the degradation
// cycle: transport failures mark the peer down (ring shrinks to self),
// probation expiry readmits it.
func TestPeerFailureShrinksRingAndProbationReadmits(t *testing.T) {
	counters := metrics.NewCounterSet()
	// An address nothing listens on: every request is a transport error.
	c := New("a", map[string]string{"b": "http://127.0.0.1:1"}, Options{
		FailureThreshold: 2,
		Probation:        50 * time.Millisecond,
		Timeout:          200 * time.Millisecond,
		Counters:         counters,
	})
	for i := 0; i < 2; i++ {
		if err := c.PostJSON("b", "/x", map[string]int{}, nil); err == nil {
			t.Fatal("expected transport error")
		}
	}
	if nodes := c.Nodes(); len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring should have shrunk to self, got %v", nodes)
	}
	st := c.Stats()
	if !st.Peers[0].Down || st.Peers[0].TransportErrors != 2 {
		t.Fatalf("peer status %+v", st.Peers[0])
	}
	if counters.Get("peer.marked_down") != 1 {
		t.Fatalf("marked_down = %d", counters.Get("peer.marked_down"))
	}
	// Before probation expires every key is self-owned.
	if owner, remote := c.Owner("anything"); remote || owner != "a" {
		t.Fatalf("downed peer still owns keys: %s", owner)
	}
	time.Sleep(60 * time.Millisecond)
	c.Owner("poke") // readmission happens on lookup
	if nodes := c.Nodes(); len(nodes) != 2 {
		t.Fatalf("peer not readmitted after probation: %v", nodes)
	}
	if counters.Get("peer.readmitted") != 1 {
		t.Fatalf("readmitted = %d", counters.Get("peer.readmitted"))
	}
}

// TestPostJSONAppErrorDoesNotCountAgainstHealth: a peer answering 4xx is
// alive — it must stay on the ring.
func TestPostJSONAppErrorDoesNotCountAgainstHealth(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"error": "nope"})
	}))
	defer srv.Close()
	c := New("a", map[string]string{"b": srv.URL}, Options{FailureThreshold: 1})
	err := c.PostJSON("b", "/x", map[string]int{}, nil)
	perr, ok := err.(*PeerError)
	if !ok || perr.Status != http.StatusConflict || perr.Msg != "nope" {
		t.Fatalf("err = %v", err)
	}
	if nodes := c.Nodes(); len(nodes) != 2 {
		t.Fatalf("app error shrank the ring: %v", nodes)
	}
}

func TestPostJSONRoundTripAndLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in map[string]int
		json.NewDecoder(r.Body).Decode(&in)
		json.NewEncoder(w).Encode(map[string]int{"echo": in["v"] + 1})
	}))
	defer srv.Close()
	timings := metrics.NewTimingSet()
	c := New("a", map[string]string{"b": srv.URL}, Options{Timings: timings})
	var out map[string]int
	if err := c.PostJSON("b", "/x", map[string]int{"v": 41}, &out); err != nil {
		t.Fatal(err)
	}
	if out["echo"] != 42 {
		t.Fatalf("out = %v", out)
	}
	if timings.Summary("peer.b").N != 1 {
		t.Fatal("per-peer latency not observed")
	}
	if st := c.Stats(); st.Peers[0].Requests != 1 || st.Peers[0].MeanLatencyMS <= 0 {
		t.Fatalf("peer stats %+v", st.Peers[0])
	}
	if err := c.PostJSON("ghost", "/x", nil, nil); err == nil {
		t.Fatal("unknown peer must error")
	}
}

func TestGetStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such object"})
			return
		}
		w.Write([]byte("payload-bytes"))
	}))
	defer srv.Close()
	c := New("a", map[string]string{"b": srv.URL}, Options{})
	rc, err := c.GetStream("b", "/obj")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := rc.Read(buf)
	rc.Close()
	if string(buf[:n]) != "payload-bytes" {
		t.Fatalf("stream read %q", buf[:n])
	}
	if _, err := c.GetStream("b", "/missing"); err == nil {
		t.Fatal("missing object must error")
	} else if perr, ok := err.(*PeerError); !ok || perr.Status != 404 {
		t.Fatalf("err = %v", err)
	}
}
