package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"negativaml/internal/metrics"
)

func TestParsePeers(t *testing.T) {
	m, err := ParsePeers("a=http://h1:8080, b=http://h2:8080 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["a"] != "http://h1:8080" || m["b"] != "http://h2:8080" {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "justanode", "a=", "=url", "a=u,a=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestNewDropsSelfEntry(t *testing.T) {
	c := New("b", map[string]string{"a": "http://h1", "b": "http://h2", "c": "http://h3"}, Options{})
	nodes := c.Nodes()
	if len(nodes) != 3 || !slices.Contains(nodes, "b") {
		t.Fatalf("ring nodes = %v", nodes)
	}
	if len(c.Stats().Peers) != 2 {
		t.Fatalf("self must not be its own peer: %+v", c.Stats().Peers)
	}
}

func TestOwnerSelfVsRemote(t *testing.T) {
	c := New("a", map[string]string{"b": "http://h2"}, Options{})
	sawSelf, sawRemote := false, false
	for i := 0; i < 200 && !(sawSelf && sawRemote); i++ {
		owner, remote := c.Owner(string(rune('a'+i%26)) + "key" + string(rune('0'+i%10)))
		if remote {
			if owner != "b" {
				t.Fatalf("remote owner %q", owner)
			}
			sawRemote = true
		} else {
			if owner != "a" {
				t.Fatalf("self owner %q", owner)
			}
			sawSelf = true
		}
	}
	if !sawSelf || !sawRemote {
		t.Fatal("2-node ring should split ownership")
	}
}

// TestPeerFailureShrinksRingAndProbationReadmits drives the full
// degradation cycle: transport failures mark the peer down (ring shrinks
// to self), probation expiry alone does NOT readmit it — only a
// successful background probe of PingPath does, once the peer is actually
// back.
func TestPeerFailureShrinksRingAndProbationReadmits(t *testing.T) {
	// Reserve a port, then close the listener: the peer address is real
	// but dead, and can be revived later on the same address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	counters := metrics.NewCounterSet()
	c := New("a", map[string]string{"b": "http://" + addr}, Options{
		FailureThreshold: 2,
		Probation:        30 * time.Millisecond,
		Timeout:          500 * time.Millisecond,
		Counters:         counters,
	})
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := c.PostJSON("b", "/x", map[string]int{}, nil); err == nil {
			t.Fatal("expected transport error")
		}
	}
	if nodes := c.Nodes(); len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring should have shrunk to self, got %v", nodes)
	}
	st := c.Stats()
	if !st.Peers[0].Down || st.Peers[0].TransportErrors != 2 {
		t.Fatalf("peer status %+v", st.Peers[0])
	}
	if counters.Get("peer.marked_down") != 1 {
		t.Fatalf("marked_down = %d", counters.Get("peer.marked_down"))
	}
	// While the peer is still dead, probation expiry plus lookups must
	// never readmit it: lookups only kick background probes, and those
	// probes keep failing.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		if owner, remote := c.Owner("anything"); remote || owner != "a" {
			t.Fatalf("dead peer readmitted to ring: owner %s", owner)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := counters.Get("peer.readmitted"); got != 0 {
		t.Fatalf("readmitted a dead peer %d times", got)
	}
	if counters.Get("peer.probes") == 0 {
		t.Fatal("no background probes were attempted")
	}

	// Revive the peer on the same address, answering the ping route; the
	// next probe succeeds and readmits it.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PingPath, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HeartbeatResponse{})
	})
	go http.Serve(ln2, mux)

	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		c.Owner("poke") // kicks a background probe once probation expires
		if len(c.Nodes()) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if nodes := c.Nodes(); len(nodes) != 2 {
		t.Fatalf("revived peer not readmitted: %v", nodes)
	}
	if counters.Get("peer.readmitted") != 1 {
		t.Fatalf("readmitted = %d", counters.Get("peer.readmitted"))
	}
}

// TestFlappingPeerCannotThrashRing is the regression for the old
// lookup-time readmission: with a dead peer and tiny probation, hammering
// ownership lookups must never put the peer back on the ring, no matter
// how many probation windows expire.
func TestFlappingPeerCannotThrashRing(t *testing.T) {
	counters := metrics.NewCounterSet()
	c := New("a", map[string]string{"b": "http://127.0.0.1:1"}, Options{
		FailureThreshold: 1,
		Probation:        2 * time.Millisecond,
		Timeout:          200 * time.Millisecond,
		Counters:         counters,
	})
	defer c.Close()
	if err := c.PostJSON("b", "/x", map[string]int{}, nil); err == nil {
		t.Fatal("expected transport error")
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		if owners := c.Owners(fmt.Sprintf("key-%d", i)); len(owners) != 1 || owners[0] != "a" {
			t.Fatalf("flapping peer thrashed back onto the ring: %v", owners)
		}
	}
	if got := counters.Get("peer.readmitted"); got != 0 {
		t.Fatalf("dead peer readmitted %d times", got)
	}
	if counters.Get("peer.probes") == 0 {
		t.Fatal("lookups should have kicked background probes")
	}
}

// TestPostJSONAppErrorDoesNotCountAgainstHealth: a peer answering 4xx is
// alive — it must stay on the ring.
func TestPostJSONAppErrorDoesNotCountAgainstHealth(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"error": "nope"})
	}))
	defer srv.Close()
	c := New("a", map[string]string{"b": srv.URL}, Options{FailureThreshold: 1})
	err := c.PostJSON("b", "/x", map[string]int{}, nil)
	perr, ok := err.(*PeerError)
	if !ok || perr.Status != http.StatusConflict || perr.Msg != "nope" {
		t.Fatalf("err = %v", err)
	}
	if nodes := c.Nodes(); len(nodes) != 2 {
		t.Fatalf("app error shrank the ring: %v", nodes)
	}
}

func TestPostJSONRoundTripAndLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in map[string]int
		json.NewDecoder(r.Body).Decode(&in)
		json.NewEncoder(w).Encode(map[string]int{"echo": in["v"] + 1})
	}))
	defer srv.Close()
	timings := metrics.NewTimingSet()
	c := New("a", map[string]string{"b": srv.URL}, Options{Timings: timings})
	var out map[string]int
	if err := c.PostJSON("b", "/x", map[string]int{"v": 41}, &out); err != nil {
		t.Fatal(err)
	}
	if out["echo"] != 42 {
		t.Fatalf("out = %v", out)
	}
	if timings.Summary("peer.b").N != 1 {
		t.Fatal("per-peer latency not observed")
	}
	if st := c.Stats(); st.Peers[0].Requests != 1 || st.Peers[0].MeanLatencyMS <= 0 {
		t.Fatalf("peer stats %+v", st.Peers[0])
	}
	if err := c.PostJSON("ghost", "/x", nil, nil); err == nil {
		t.Fatal("unknown peer must error")
	}
}

func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) = %v", key, owners)
		}
		primary, _ := r.Owner(key)
		if owners[0] != primary {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], primary)
		}
		// Asking for more owners than nodes returns every node once.
		all := r.Owners(key, 5)
		if len(all) != 3 {
			t.Fatalf("Owners(%q, 5) = %v", key, all)
		}
		seen := map[string]bool{}
		for _, n := range all {
			seen[n] = true
		}
		if len(seen) != 3 {
			t.Fatalf("Owners returned duplicates: %v", all)
		}
	}
	if got := NewRing(nil, 0).Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v", got)
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v", got)
	}
}

func TestSortByLatency(t *testing.T) {
	c := New("a", map[string]string{"b": "http://h2", "c": "http://h3"}, Options{})
	defer c.Close()
	c.observe("b", 10*time.Millisecond, false)
	c.observe("c", 1*time.Millisecond, false)
	ids := []string{"b", "c"}
	c.SortByLatency(ids)
	if ids[0] != "c" || ids[1] != "b" {
		t.Fatalf("latency order %v", ids)
	}
	// A peer with no history sorts first (optimistic).
	ids = []string{"b", "d", "c"}
	c.SortByLatency(ids)
	if ids[0] != "d" {
		t.Fatalf("unknown peer should sort first: %v", ids)
	}
}

// membershipServer wires a test HTTP server to a late-bound cluster's
// membership handlers, mirroring what the serving plane mounts.
func membershipServer(t *testing.T, cp **Cluster) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PingPath, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode((*cp).HandleHeartbeat(req))
	})
	mux.HandleFunc("POST "+JoinPath, func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		json.NewDecoder(r.Body).Decode(&req)
		(*cp).AddPeer(req.ID, req.URL)
		json.NewEncoder(w).Encode(JoinResponse{Nodes: (*cp).Membership()})
	})
	mux.HandleFunc("POST "+LeavePath, func(w http.ResponseWriter, r *http.Request) {
		var req LeaveRequest
		json.NewDecoder(r.Body).Decode(&req)
		(*cp).RemovePeer(req.ID)
		json.NewEncoder(w).Encode(map[string]bool{"removed": true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func waitNodes(t *testing.T, c *Cluster, want []string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if slices.Equal(c.Nodes(), want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("nodes = %v, want %v", c.Nodes(), want)
}

// TestJoinLeaveGossip exercises the membership plane end to end: an
// explicit join spreads through heartbeat gossip to members the joiner
// never contacted, and a leave tombstones the ID so gossip cannot
// resurrect it.
func TestJoinLeaveGossip(t *testing.T) {
	var ca, cb, cc *Cluster
	srvA := membershipServer(t, &ca)
	srvB := membershipServer(t, &cb)
	srvC := membershipServer(t, &cc)
	opt := Options{HeartbeatInterval: 20 * time.Millisecond, Timeout: time.Second}

	// a boots alone, knowing only its own URL.
	ca = New("a", map[string]string{"a": srvA.URL}, opt)
	defer ca.Close()
	// b joins via a.
	cb = New("b", map[string]string{"b": srvB.URL, "a": srvA.URL}, opt)
	defer cb.Close()
	if acked := cb.Join(); acked != 1 {
		t.Fatalf("b.Join acked %d", acked)
	}
	waitNodes(t, ca, []string{"a", "b"})

	// c joins via b only; a must learn c through gossip.
	cc = New("c", map[string]string{"c": srvC.URL, "b": srvB.URL}, opt)
	defer cc.Close()
	cc.Join()
	waitNodes(t, ca, []string{"a", "b", "c"})
	waitNodes(t, cc, []string{"a", "b", "c"})

	// b leaves: a and c drop it, and its ID is tombstoned — heartbeats
	// from the departed node must not re-add it.
	cb.Leave()
	cb.Close()
	waitNodes(t, ca, []string{"a", "c"})
	waitNodes(t, cc, []string{"a", "c"})
	time.Sleep(100 * time.Millisecond) // several gossip rounds
	if nodes := ca.Nodes(); !slices.Equal(nodes, []string{"a", "c"}) {
		t.Fatalf("tombstoned peer resurrected: %v", nodes)
	}
}

func TestPutStream(t *testing.T) {
	var gotBody string
	var gotLen int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			t.Errorf("method %s", r.Method)
		}
		if r.URL.Path == "/reject" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad object"})
			return
		}
		b, _ := io.ReadAll(r.Body)
		gotBody, gotLen = string(b), r.ContentLength
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := New("a", map[string]string{"b": srv.URL}, Options{})
	defer c.Close()
	payload := "framed-object-bytes"
	if err := c.PutStream("b", "/obj", strings.NewReader(payload), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if gotBody != payload || gotLen != int64(len(payload)) {
		t.Fatalf("peer saw body %q len %d", gotBody, gotLen)
	}
	err := c.PutStream("b", "/reject", strings.NewReader("x"), 1)
	perr, ok := err.(*PeerError)
	if !ok || perr.Status != http.StatusBadRequest || perr.Msg != "bad object" {
		t.Fatalf("err = %v", err)
	}
}

func TestGetStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no such object"})
			return
		}
		w.Write([]byte("payload-bytes"))
	}))
	defer srv.Close()
	c := New("a", map[string]string{"b": srv.URL}, Options{})
	rc, err := c.GetStream("b", "/obj")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := rc.Read(buf)
	rc.Close()
	if string(buf[:n]) != "payload-bytes" {
		t.Fatalf("stream read %q", buf[:n])
	}
	if _, err := c.GetStream("b", "/missing"); err == nil {
		t.Fatal("missing object must error")
	} else if perr, ok := err.(*PeerError); !ok || perr.Status != 404 {
		t.Fatalf("err = %v", err)
	}
}

// TestSortByLatencyHealthOutranksSpeed is the suspect-ordering regression
// test: a suspect peer (mid failure run, not yet down), however fast its
// history, must never sort ahead of a healthy replica — and an unmeasured
// healthy peer still outranks it too, because "no history" beats "currently
// failing". Downed peers sort last of all.
func TestSortByLatencyHealthOutranksSpeed(t *testing.T) {
	c := New("self", map[string]string{
		"slowhealthy": "http://h1", "fastsuspect": "http://h2",
		"unmeasured": "http://h3", "dead": "http://h4",
	}, Options{FailureThreshold: 3})
	defer c.Close()

	// A slow but healthy peer; a fast peer mid failure run; a dead one.
	c.observe("slowhealthy", 50*time.Millisecond, false)
	c.observe("fastsuspect", 1*time.Millisecond, false)
	c.observe("fastsuspect", 1*time.Millisecond, true)
	for i := 0; i < 3; i++ {
		c.observe("dead", 1*time.Millisecond, true)
	}

	ids := []string{"dead", "fastsuspect", "slowhealthy", "unmeasured"}
	c.SortByLatency(ids)
	want := []string{"slowhealthy", "unmeasured", "fastsuspect", "dead"}
	if !slices.Equal(ids, want) {
		t.Fatalf("order %v, want %v", ids, want)
	}
	// The regression in one line: while any healthy replica exists, no
	// suspect is the first read target.
	if ids[0] == "fastsuspect" || ids[0] == "dead" {
		t.Fatalf("suspect peer ranked first: %v", ids)
	}
}

// TestHedgedCallRescuesStalledPrimary: the hedge fires after the delay,
// the fast replica wins, and the stalled primary's context is cancelled.
func TestHedgedCallRescuesStalledPrimary(t *testing.T) {
	counters := metrics.NewCounterSet()
	c := New("self", map[string]string{"slow": "http://h1", "fast": "http://h2"},
		Options{HedgeDelay: 5 * time.Millisecond, Counters: counters})
	defer c.Close()

	primaryCancelled := make(chan bool, 1)
	attempt := func(ctx context.Context, peer string) (any, bool, error) {
		if peer == "fast" {
			return "fast-value", true, nil
		}
		select {
		case <-ctx.Done():
			primaryCancelled <- true
			return nil, false, ctx.Err()
		case <-time.After(2 * time.Second):
			primaryCancelled <- false
			return "slow-value", true, nil
		}
	}
	start := time.Now()
	v, peer, ok := c.HedgedCall([]string{"slow", "fast"}, attempt)
	if !ok || peer != "fast" || v != "fast-value" {
		t.Fatalf("HedgedCall = %v, %q, %v", v, peer, ok)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("hedged read took %v; the stalled primary charged its full wait", wall)
	}
	if got := counters.Get("peer.hedge_fired"); got != 1 {
		t.Fatalf("hedge_fired = %d, want 1", got)
	}
	if got := counters.Get("peer.hedge_won"); got != 1 {
		t.Fatalf("hedge_won = %d, want 1", got)
	}
	if got := counters.Get("peer.hedge_cancelled"); got != 1 {
		t.Fatalf("hedge_cancelled = %d, want 1", got)
	}
	select {
	case cancelled := <-primaryCancelled:
		if !cancelled {
			t.Fatal("stalled primary ran to completion instead of being cancelled")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled primary never observed its cancellation")
	}
}

// TestHedgedCallPrimaryMissReturnsWithoutHedging: an application-level
// miss from the primary comes back before the hedge delay — the caller's
// replica loop handles the next peer, no hedge fires.
func TestHedgedCallPrimaryMissReturnsWithoutHedging(t *testing.T) {
	counters := metrics.NewCounterSet()
	c := New("self", map[string]string{"a": "http://h1", "b": "http://h2"},
		Options{HedgeDelay: 50 * time.Millisecond, Counters: counters})
	defer c.Close()

	var calls atomic.Int64
	_, _, ok := c.HedgedCall([]string{"a", "b"}, func(ctx context.Context, peer string) (any, bool, error) {
		calls.Add(1)
		return nil, false, nil
	})
	if ok {
		t.Fatal("miss reported as a win")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("primary miss launched %d attempts, want 1", n)
	}
	if got := counters.Get("peer.hedge_fired"); got != 0 {
		t.Fatalf("hedge_fired = %d, want 0", got)
	}
}

// TestHedgedCallDisabled: a negative HedgeDelay turns hedging off — the
// slow primary is simply awaited.
func TestHedgedCallDisabled(t *testing.T) {
	counters := metrics.NewCounterSet()
	c := New("self", map[string]string{"a": "http://h1", "b": "http://h2"},
		Options{HedgeDelay: -1, Counters: counters})
	defer c.Close()

	v, peer, ok := c.HedgedCall([]string{"a", "b"}, func(ctx context.Context, peer string) (any, bool, error) {
		time.Sleep(20 * time.Millisecond)
		return "v", true, nil
	})
	if !ok || peer != "a" || v != "v" {
		t.Fatalf("HedgedCall = %v, %q, %v", v, peer, ok)
	}
	if got := counters.Get("peer.hedge_fired"); got != 0 {
		t.Fatalf("hedging disabled but hedge_fired = %d", got)
	}
}
