// Package cluster shards the batch-debloat serving plane across dserve
// peers with a consistent-hash ring keyed by stage content keys.
//
// # Why content keys shard well
//
// Every expensive stage of the analysis pipeline (detect, locate, compact)
// already has a content-derived cache key (internal/negativa stage keys),
// and every stage value is immutable once computed. Hashing those keys
// onto a ring gives each stage a small, deterministic owner set, which
// makes the owners' memos the cluster-wide points of reuse: any node may
// accept a batch, but a stage is executed — and memoized — on its owning
// shard, so N nodes share one logical cache without coordination,
// invalidation, or consensus. Replication happens by demand and by
// write-back: a node that reads a stage value through an owner keeps a
// local copy (memory + castore), and a freshly computed value is pushed to
// the other owners of its key (internal/dserve's replication plane).
//
// # What this package provides
//
//   - Ring: an immutable consistent-hash ring (virtual nodes, 64-bit
//     SHA-256 positions). Membership changes build a new ring; lookups are
//     lock-free. Owners(key, n) returns the n distinct clockwise
//     successors of a key — its replica set, primary first.
//   - Cluster: live membership over a Ring — self plus a peer set that can
//     grow (join, gossip) and shrink (leave, failure) at runtime — with
//     per-peer health tracking and the HTTP transport the serving plane's
//     peer tier uses (PostJSON for stage lookups and remote execution,
//     GetStream/PutStream for castore object transfer).
//
// # Failure model
//
// Health is observed from two sources: the requests the serving plane was
// making anyway, and (when Options.HeartbeatInterval is set) a periodic
// heartbeat probe to every peer. A peer that fails FailureThreshold
// consecutive transport-level requests is marked down and the ring shrinks
// around it — its keys redistribute to the survivors, and stages whose
// owners are unreachable simply fall back to local compute (correctness
// never depends on a peer; the peer tier is an optimization layered over a
// node that is fully capable alone). A peer partway into a failure run is
// reported as suspect but stays on the ring. After a probation period the
// peer is probed in the background; only a successful probe readmits it —
// an ownership lookup never does — so a flapping peer cannot thrash the
// ring. Application-level errors (4xx/5xx with a JSON error body) do not
// count against health: the peer is alive, the request was just refused.
//
// # Membership plane
//
// Heartbeats piggyback the sender's live membership view and answer with
// the receiver's, so additions spread by gossip. Membership changes can
// also be explicit: Join announces this node to every configured peer
// (merging their views back), and Leave retires it. A removed or departed
// peer ID is tombstoned so stale gossip cannot resurrect it; only a fresh
// explicit AddPeer/join admits it again.
//
// The serving-plane integration — the /v1/peer/* routes, the replica-read
// stage memo (memory → castore → replica owners), write-back replication,
// anti-entropy repair, and the peer.*/repair.* metrics — lives in
// internal/dserve.
package cluster
