// Package cluster shards the batch-debloat serving plane across dserve
// peers with a consistent-hash ring keyed by stage content keys.
//
// # Why content keys shard well
//
// Every expensive stage of the analysis pipeline (detect, locate, compact)
// already has a content-derived cache key (internal/negativa stage keys),
// and every stage value is immutable once computed. Hashing those keys
// onto a ring gives each stage exactly one owning node, which makes the
// owner's memo the cluster-wide point of reuse: any node may accept a
// batch, but a stage is executed — and memoized — on its owning shard, so
// N nodes share one logical cache without coordination, invalidation, or
// consensus. Replication happens by demand: a node that reads a stage
// value through its owner keeps a local copy (memory + castore), so hot
// artifacts migrate toward the traffic that wants them.
//
// # What this package provides
//
//   - Ring: an immutable consistent-hash ring (virtual nodes, 64-bit
//     SHA-256 positions). Membership changes build a new ring; lookups are
//     lock-free.
//   - Cluster: live membership over a Ring — self plus a fixed peer set —
//     with per-peer health tracking and the HTTP transport the serving
//     plane's peer tier uses (PostJSON for stage lookups and remote
//     execution, GetStream for castore object transfer).
//
// # Failure model
//
// There is no gossip or heartbeat plane; health is observed from the
// requests the serving plane was making anyway. A peer that fails
// FailureThreshold consecutive transport-level requests is marked down and
// the ring shrinks around it — its keys redistribute to the survivors, and
// stages whose owner is unreachable simply fall back to local compute
// (correctness never depends on a peer; the peer tier is an optimization
// layered over a node that is fully capable alone). After a probation
// period the next ownership lookup readmits the peer for another try.
// Application-level errors (4xx/5xx with a JSON error body) do not count
// against health: the peer is alive, the request was just refused.
//
// The serving-plane integration — the /v1/peer/* routes, the three-tier
// stage memo (memory → castore → owning peer), and the peer.* metrics —
// lives in internal/dserve.
package cluster
