package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of virtual points each node contributes to
// a Ring when the caller does not choose one. More replicas smooth the key
// distribution (and the re-distribution when a node leaves) at the cost of
// a larger sorted point slice; 64 keeps per-node load within a few percent
// of uniform for small clusters.
const DefaultReplicas = 64

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring: each node contributes
// `replicas` virtual points on a 64-bit hash circle, and a key is owned by
// the node of the first point at or clockwise-after the key's hash.
// Immutability is the concurrency story — membership changes build a new
// Ring (cheap at cluster sizes measured in nodes, not thousands), so
// lookups never take a lock.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given nodes with `replicas` virtual
// points per node (values < 1 take DefaultReplicas). Duplicate node names
// are collapsed; the node order does not affect ownership.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hashString(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions across nodes are vanishingly rare but must not
		// make ownership depend on insertion order.
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r
}

// hashString maps a string to its position on the hash circle. SHA-256
// (truncated to 64 bits) rather than a fast non-cryptographic hash: stage
// keys are already hex digests and node names are operator-chosen, so the
// well-mixed distribution matters more than lookup nanoseconds.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node that owns the key — the first virtual point at or
// clockwise-after the key's hash, wrapping at the top of the circle. ok is
// false only for an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Owners returns up to n distinct nodes owning the key, in ring order: the
// first is the primary (what Owner returns), the rest are the successor
// nodes clockwise from it — the replica set a key's artifacts live on. A
// ring with fewer than n nodes returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Nodes returns the ring's distinct member names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }
