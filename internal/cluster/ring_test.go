package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 0)
	b := NewRing([]string{"c", "a", "b"}, 0) // order must not matter
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("compact/%04d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("owner lookup failed on non-empty ring")
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %s: owner depends on insertion order: %s vs %s", key, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r := NewRing([]string{"solo"}, 0)
	if o, ok := r.Owner("anything"); !ok || o != "solo" {
		t.Fatalf("single-node ring: got %q, %v", o, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingDuplicatesCollapse(t *testing.T) {
	r := NewRing([]string{"a", "a", "b", ""}, 8)
	if r.Len() != 2 {
		t.Fatalf("want 2 distinct nodes, got %d (%v)", r.Len(), r.Nodes())
	}
}

// TestRingDistribution checks virtual nodes spread keys roughly evenly: no
// node of a 3-node ring should own less than half or more than double its
// fair share over a large key set.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		o, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[o]++
	}
	fair := n / 3
	for node, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): distribution too skewed", node, c, n, fair)
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hashing property: removing
// one node of three must move (roughly) only that node's keys — keys owned
// by the survivors keep their owner.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, 0)
	small := NewRing([]string{"a", "b"}, 0)
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := full.Owner(key)
		after, _ := small.Owner(key)
		if before == "c" {
			continue // c's keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving nodes changed owner when c left", moved)
	}
}
