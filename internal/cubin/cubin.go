package cubin

import (
	"encoding/binary"
	"fmt"
	"sort"

	"negativaml/internal/gpuarch"
)

// Magic identifies a cubin blob ("CUBN" little-endian).
const Magic uint32 = 0x4e425543

// FormatVersion is the version written into new cubins.
const FormatVersion uint16 = 1

// Header layout constants (bytes).
const (
	headerSize      = 40
	kernelEntrySize = 32
)

// Kernel flags.
const (
	// FlagEntry marks a CPU-launching kernel: host code launches it through
	// cuModuleGetFunction + cuLaunchKernel.
	FlagEntry uint32 = 1 << 0
	// FlagDeviceOnly marks a GPU-launching kernel: it is only ever launched
	// from device code (dynamic parallelism) and never passes through
	// cuModuleGetFunction. The kernel detector cannot observe it.
	FlagDeviceOnly uint32 = 1 << 1
)

// Kernel is one kernel inside a cubin.
type Kernel struct {
	Name     string
	Code     []byte
	Flags    uint32
	Launches []int // indices (within the same cubin) of kernels this kernel launches from device code
}

// Entry reports whether the kernel is CPU-launchable.
func (k *Kernel) Entry() bool { return k.Flags&FlagEntry != 0 }

// DeviceOnly reports whether the kernel is only launched from device code.
func (k *Kernel) DeviceOnly() bool { return k.Flags&FlagDeviceOnly != 0 }

// Cubin is a parsed or under-construction kernel container.
type Cubin struct {
	Arch    gpuarch.SM
	Kernels []Kernel
}

// New returns an empty cubin for the given architecture.
func New(arch gpuarch.SM) *Cubin {
	return &Cubin{Arch: arch}
}

// AddKernel appends a kernel and returns its index.
func (c *Cubin) AddKernel(k Kernel) int {
	c.Kernels = append(c.Kernels, k)
	return len(c.Kernels) - 1
}

// KernelNames returns the kernel names in table order.
func (c *Cubin) KernelNames() []string {
	names := make([]string, len(c.Kernels))
	for i, k := range c.Kernels {
		names[i] = k.Name
	}
	return names
}

// EntryKernels returns the names of CPU-launching kernels.
func (c *Cubin) EntryKernels() []string {
	var names []string
	for _, k := range c.Kernels {
		if k.Entry() {
			names = append(names, k.Name)
		}
	}
	return names
}

// FindKernel returns the index of the kernel with the given name, or -1.
func (c *Cubin) FindKernel(name string) int {
	for i, k := range c.Kernels {
		if k.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the structural invariants the rest of the system relies on:
// unique kernel names, in-range call edges, and the same-cubin launch
// invariant (trivially satisfied because edges are indices, but edges from a
// kernel to itself are rejected, as are entry kernels that are also marked
// device-only).
func (c *Cubin) Validate() error {
	if !c.Arch.Valid() {
		return fmt.Errorf("cubin: invalid arch %d", c.Arch)
	}
	seen := make(map[string]bool, len(c.Kernels))
	for i, k := range c.Kernels {
		if k.Name == "" {
			return fmt.Errorf("cubin: kernel %d has empty name", i)
		}
		if seen[k.Name] {
			return fmt.Errorf("cubin: duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		if k.Entry() && k.DeviceOnly() {
			return fmt.Errorf("cubin: kernel %q is both entry and device-only", k.Name)
		}
		if !k.Entry() && !k.DeviceOnly() {
			return fmt.Errorf("cubin: kernel %q has neither entry nor device-only flag", k.Name)
		}
		for _, tgt := range k.Launches {
			if tgt < 0 || tgt >= len(c.Kernels) {
				return fmt.Errorf("cubin: kernel %q launches out-of-range index %d", k.Name, tgt)
			}
			if tgt == i {
				return fmt.Errorf("cubin: kernel %q launches itself", k.Name)
			}
		}
	}
	return nil
}

// CallGraphFrom returns the set of kernel indices reachable from root
// (inclusive) following Launches edges — the kernel call graph of §3.2.
func (c *Cubin) CallGraphFrom(root int) []int {
	if root < 0 || root >= len(c.Kernels) {
		return nil
	}
	seen := map[int]bool{root: true}
	stack := []int{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tgt := range c.Kernels[n].Launches {
			if !seen[tgt] {
				seen[tgt] = true
				stack = append(stack, tgt)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// CodeSize returns the total size of kernel code in the cubin.
func (c *Cubin) CodeSize() int {
	n := 0
	for _, k := range c.Kernels {
		n += len(k.Code)
	}
	return n
}

// Marshal serializes the cubin. Layout:
//
//	header (40B): magic u32 | version u16 | arch u16 | kernelCount u32 |
//	              strTabOff u32 | strTabSize u32 | codeOff u32 | codeSize u32 |
//	              callTabOff u32 | callTabCount u32 | reserved u32
//	kernel table: kernelCount × 32B entries:
//	              nameOff u32 | nameLen u32 | codeOff u32 | codeSize u32 |
//	              flags u32 | callOff u32 | callCount u32 | reserved u32
//	call table:   callTabCount × u32 kernel indices
//	string table: concatenated names (no separators; entries carry offsets)
//	code blob:    concatenated kernel code
func (c *Cubin) Marshal() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	le := binary.LittleEndian

	var strTab []byte
	var code []byte
	var callTab []uint32

	type rawEntry struct {
		nameOff, nameLen, codeOff, codeSize, flags, callOff, callCount uint32
	}
	entries := make([]rawEntry, len(c.Kernels))
	for i, k := range c.Kernels {
		entries[i] = rawEntry{
			nameOff:   uint32(len(strTab)),
			nameLen:   uint32(len(k.Name)),
			codeOff:   uint32(len(code)),
			codeSize:  uint32(len(k.Code)),
			flags:     k.Flags,
			callOff:   uint32(len(callTab)),
			callCount: uint32(len(k.Launches)),
		}
		strTab = append(strTab, k.Name...)
		code = append(code, k.Code...)
		for _, tgt := range k.Launches {
			callTab = append(callTab, uint32(tgt))
		}
	}

	ktSize := len(c.Kernels) * kernelEntrySize
	callOff := headerSize + ktSize
	strOff := callOff + 4*len(callTab)
	codeOff := strOff + len(strTab)
	total := codeOff + len(code)

	buf := make([]byte, total)
	le.PutUint32(buf[0:], Magic)
	le.PutUint16(buf[4:], FormatVersion)
	le.PutUint16(buf[6:], uint16(c.Arch))
	le.PutUint32(buf[8:], uint32(len(c.Kernels)))
	le.PutUint32(buf[12:], uint32(strOff))
	le.PutUint32(buf[16:], uint32(len(strTab)))
	le.PutUint32(buf[20:], uint32(codeOff))
	le.PutUint32(buf[24:], uint32(len(code)))
	le.PutUint32(buf[28:], uint32(callOff))
	le.PutUint32(buf[32:], uint32(len(callTab)))
	// buf[36:40] reserved, zero.

	for i, e := range entries {
		off := headerSize + i*kernelEntrySize
		le.PutUint32(buf[off+0:], e.nameOff)
		le.PutUint32(buf[off+4:], e.nameLen)
		le.PutUint32(buf[off+8:], e.codeOff)
		le.PutUint32(buf[off+12:], e.codeSize)
		le.PutUint32(buf[off+16:], e.flags)
		le.PutUint32(buf[off+20:], e.callOff)
		le.PutUint32(buf[off+24:], e.callCount)
	}
	for i, v := range callTab {
		le.PutUint32(buf[callOff+4*i:], v)
	}
	copy(buf[strOff:], strTab)
	copy(buf[codeOff:], code)
	return buf, nil
}

// Parse decodes a cubin blob produced by Marshal.
func Parse(data []byte) (*Cubin, error) {
	le := binary.LittleEndian
	if len(data) < headerSize {
		return nil, fmt.Errorf("cubin: blob too short (%d bytes)", len(data))
	}
	if le.Uint32(data[0:]) != Magic {
		return nil, fmt.Errorf("cubin: bad magic %#x", le.Uint32(data[0:]))
	}
	if v := le.Uint16(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("cubin: unsupported version %d", v)
	}
	arch := gpuarch.SM(le.Uint16(data[6:]))
	count := int(le.Uint32(data[8:]))
	strOff := int(le.Uint32(data[12:]))
	strSize := int(le.Uint32(data[16:]))
	codeOff := int(le.Uint32(data[20:]))
	codeSize := int(le.Uint32(data[24:]))
	callOff := int(le.Uint32(data[28:]))
	callCount := int(le.Uint32(data[32:]))

	if count < 0 || count > 1<<20 {
		return nil, fmt.Errorf("cubin: implausible kernel count %d", count)
	}
	ktEnd := headerSize + count*kernelEntrySize
	if ktEnd > len(data) ||
		callOff+4*callCount > len(data) ||
		strOff+strSize > len(data) ||
		codeOff+codeSize > len(data) {
		return nil, fmt.Errorf("cubin: truncated blob (%d bytes)", len(data))
	}

	c := &Cubin{Arch: arch, Kernels: make([]Kernel, count)}
	for i := 0; i < count; i++ {
		off := headerSize + i*kernelEntrySize
		nameOff := int(le.Uint32(data[off+0:]))
		nameLen := int(le.Uint32(data[off+4:]))
		kCodeOff := int(le.Uint32(data[off+8:]))
		kCodeSize := int(le.Uint32(data[off+12:]))
		flags := le.Uint32(data[off+16:])
		cOff := int(le.Uint32(data[off+20:]))
		cCount := int(le.Uint32(data[off+24:]))

		if nameOff+nameLen > strSize || kCodeOff+kCodeSize > codeSize || cOff+cCount > callCount {
			return nil, fmt.Errorf("cubin: kernel %d references out-of-range data", i)
		}
		name := string(data[strOff+nameOff : strOff+nameOff+nameLen])
		// Zero-copy: kernel code aliases the blob (capacity-clamped). The
		// blob must stay alive and unmutated while the Cubin is in use;
		// every consumer treats Code as read-only.
		codeBytes := data[codeOff+kCodeOff : codeOff+kCodeOff+kCodeSize : codeOff+kCodeOff+kCodeSize]
		var launches []int
		if cCount > 0 {
			launches = make([]int, 0, cCount)
		}
		for j := 0; j < cCount; j++ {
			launches = append(launches, int(le.Uint32(data[callOff+4*(cOff+j):])))
		}
		c.Kernels[i] = Kernel{Name: name, Code: codeBytes, Flags: flags, Launches: launches}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("cubin: parsed blob invalid: %w", err)
	}
	return c, nil
}

// IsCubin reports whether data plausibly begins with a cubin header. It is
// used by module loaders to skip zeroed (compacted) payloads cheaply.
func IsCubin(data []byte) bool {
	return len(data) >= headerSize && binary.LittleEndian.Uint32(data) == Magic
}
