package cubin

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"negativaml/internal/gpuarch"
)

func sample() *Cubin {
	c := New(gpuarch.SM75)
	// matmul launches two device-only helpers; one helper launches the other.
	c.AddKernel(Kernel{Name: "matmul_f32", Code: []byte{1, 2, 3, 4}, Flags: FlagEntry, Launches: []int{1, 2}})
	c.AddKernel(Kernel{Name: "reduce_partial", Code: []byte{5, 6}, Flags: FlagDeviceOnly, Launches: []int{2}})
	c.AddKernel(Kernel{Name: "reduce_final", Code: []byte{7}, Flags: FlagDeviceOnly})
	c.AddKernel(Kernel{Name: "conv2d_k3", Code: []byte{8, 9, 10}, Flags: FlagEntry})
	return c
}

func TestRoundTrip(t *testing.T) {
	c := sample()
	blob, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Arch != c.Arch {
		t.Errorf("arch = %s, want %s", got.Arch, c.Arch)
	}
	if !reflect.DeepEqual(got.Kernels, c.Kernels) {
		t.Errorf("kernels mismatch:\n got %+v\nwant %+v", got.Kernels, c.Kernels)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Cubin)
	}{
		{"empty name", func(c *Cubin) { c.Kernels[0].Name = "" }},
		{"duplicate name", func(c *Cubin) { c.Kernels[1].Name = c.Kernels[0].Name }},
		{"both flags", func(c *Cubin) { c.Kernels[0].Flags = FlagEntry | FlagDeviceOnly }},
		{"no flags", func(c *Cubin) { c.Kernels[0].Flags = 0 }},
		{"out of range edge", func(c *Cubin) { c.Kernels[0].Launches = []int{99} }},
		{"negative edge", func(c *Cubin) { c.Kernels[0].Launches = []int{-1} }},
		{"self launch", func(c *Cubin) { c.Kernels[0].Launches = []int{0} }},
		{"bad arch", func(c *Cubin) { c.Arch = 3 }},
	}
	for _, tc := range cases {
		c := sample()
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
		if _, err := c.Marshal(); err == nil {
			t.Errorf("%s: Marshal should fail", tc.name)
		}
	}
}

func TestCallGraphFrom(t *testing.T) {
	c := sample()
	got := c.CallGraphFrom(0)
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CallGraphFrom(0) = %v, want %v", got, want)
	}
	if got := c.CallGraphFrom(3); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("CallGraphFrom(3) = %v, want [3]", got)
	}
	if c.CallGraphFrom(-1) != nil || c.CallGraphFrom(99) != nil {
		t.Error("out-of-range root should return nil")
	}
}

func TestCallGraphCycle(t *testing.T) {
	c := New(gpuarch.SM80)
	c.AddKernel(Kernel{Name: "a", Flags: FlagEntry, Launches: []int{1}})
	c.AddKernel(Kernel{Name: "b", Flags: FlagDeviceOnly, Launches: []int{2}})
	c.AddKernel(Kernel{Name: "c", Flags: FlagDeviceOnly, Launches: []int{1}}) // cycle b<->c
	got := c.CallGraphFrom(0)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("cycle traversal = %v, want [0 1 2]", got)
	}
}

func TestEntryKernelsAndFind(t *testing.T) {
	c := sample()
	entries := c.EntryKernels()
	want := []string{"matmul_f32", "conv2d_k3"}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("EntryKernels = %v, want %v", entries, want)
	}
	if i := c.FindKernel("reduce_final"); i != 2 {
		t.Errorf("FindKernel(reduce_final) = %d, want 2", i)
	}
	if i := c.FindKernel("nope"); i != -1 {
		t.Errorf("FindKernel(nope) = %d, want -1", i)
	}
}

func TestParseErrors(t *testing.T) {
	c := sample()
	blob, _ := c.Marshal()

	if _, err := Parse(blob[:10]); err == nil {
		t.Error("short blob should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := Parse(bad); err == nil {
		t.Error("bad magic should fail")
	}
	badVer := append([]byte(nil), blob...)
	badVer[4] = 99
	if _, err := Parse(badVer); err == nil {
		t.Error("bad version should fail")
	}
	trunc := append([]byte(nil), blob...)
	if _, err := Parse(trunc[:len(trunc)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestIsCubin(t *testing.T) {
	blob, _ := sample().Marshal()
	if !IsCubin(blob) {
		t.Error("IsCubin(valid) = false")
	}
	if IsCubin(make([]byte, 64)) {
		t.Error("IsCubin(zeros) = true")
	}
	if IsCubin(nil) {
		t.Error("IsCubin(nil) = true")
	}
}

func TestCodeSize(t *testing.T) {
	c := sample()
	if got := c.CodeSize(); got != 10 {
		t.Errorf("CodeSize = %d, want 10", got)
	}
}

// randomCubin builds a structurally valid random cubin for property testing.
func randomCubin(r *rand.Rand) *Cubin {
	arch := gpuarch.AllShipped[r.Intn(len(gpuarch.AllShipped))]
	c := New(arch)
	n := 1 + r.Intn(20)
	for i := 0; i < n; i++ {
		k := Kernel{
			Name: "k" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10)),
			Code: make([]byte, r.Intn(64)),
		}
		r.Read(k.Code)
		if r.Intn(2) == 0 {
			k.Flags = FlagEntry
		} else {
			k.Flags = FlagDeviceOnly
		}
		// Edges only to other kernels.
		for j := 0; j < n; j++ {
			if j != i && r.Intn(8) == 0 {
				k.Launches = append(k.Launches, j)
			}
		}
		c.AddKernel(k)
	}
	return c
}

// Property: Marshal then Parse is the identity on valid cubins.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCubin(r)
		blob, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(blob)
		if err != nil {
			return false
		}
		b2, err := got.Marshal()
		if err != nil {
			return false
		}
		return bytes.Equal(blob, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every kernel reachable from an entry kernel is inside the cubin
// (the same-cubin invariant the locator relies on).
func TestQuickCallGraphClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCubin(r)
		for i, k := range c.Kernels {
			if !k.Entry() {
				continue
			}
			for _, idx := range c.CallGraphFrom(i) {
				if idx < 0 || idx >= len(c.Kernels) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
