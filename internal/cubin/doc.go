// Package cubin implements a CUDA-binary-like kernel container.
//
// A cubin holds the compiled device code for a set of kernels that were
// compiled together. The format here is a compact, fully specified stand-in
// for NVIDIA's (undocumented) cubin ELF: a fixed header, a kernel table, an
// intra-cubin call table, a string table, and a code blob.
//
// The property the debloater relies on (paper §3.2) is structural: if kernel
// A launches kernel B from device code, A and B were compiled into the same
// cubin. The builder in this package enforces that invariant — call-graph
// edges can only reference kernels within the same cubin — so retaining a
// whole cubin retains every kernel call graph rooted in it.
package cubin
