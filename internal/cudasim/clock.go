package cudasim

import "time"

// Clock is the deterministic virtual clock every simulated cost is charged
// to. All "execution time" the experiments report is virtual time.
type Clock struct {
	now time.Duration
}

// Advance moves the clock forward. Negative durations are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

// MemTracker accounts current and peak usage of one memory pool.
type MemTracker struct {
	Cur  int64
	Peak int64
}

// Alloc adds n bytes and updates the peak.
func (m *MemTracker) Alloc(n int64) {
	m.Cur += n
	if m.Cur > m.Peak {
		m.Peak = m.Cur
	}
}

// Free releases n bytes (clamped at zero).
func (m *MemTracker) Free(n int64) {
	m.Cur -= n
	if m.Cur < 0 {
		m.Cur = 0
	}
}

// CostModel holds the virtual-time cost constants. The defaults are
// calibrated (DESIGN.md §4) so baseline workloads land near the paper's
// reported wall-clock numbers; EXPERIMENTS.md records the outcome.
type CostModel struct {
	// CPULoadPerByte is charged per resident byte when a shared library is
	// mapped and paged in (zero pages are free — that is what compaction
	// saves).
	CPULoadPerByte time.Duration
	// GPULoadPerByte is charged per byte of device code copied to the GPU.
	GPULoadPerByte time.Duration
	// GetFunctionCost is the fixed cost of cuModuleGetFunction.
	GetFunctionCost time.Duration
	// LaunchCost is the fixed cost of one host-side kernel launch.
	LaunchCost time.Duration
	// ChildLaunchCost is the cost of one device-side (GPU-launching) child
	// kernel launch.
	ChildLaunchCost time.Duration
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		CPULoadPerByte:  1200 * time.Nanosecond,
		GPULoadPerByte:  300 * time.Nanosecond,
		GetFunctionCost: 20 * time.Microsecond,
		LaunchCost:      8 * time.Microsecond,
		ChildLaunchCost: 2 * time.Microsecond,
	}
}
