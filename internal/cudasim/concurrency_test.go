package cudasim

// Goroutine-safety contract the batch service (internal/dserve) relies on:
// a Driver and its Contexts/Modules are confined to one goroutine (each
// workload run constructs its own driver), while *elfx.Library values are
// immutable after parsing and may be shared read-only by any number of
// concurrently running drivers. These tests exercise that contract under
// the race detector (go test -race ./internal/cudasim/...).

import (
	"sync"
	"testing"

	"negativaml/internal/gpuarch"
)

// TestConcurrentDriversSharedLibrary runs many independent drivers against
// one shared parsed library — the exact sharing pattern of a batch job,
// where every member workload's detection and verification runs load
// modules from the same install concurrently.
func TestConcurrentDriversSharedLibrary(t *testing.T) {
	lib := buildLib(t, "libshared.so", gpuarch.SM75, gpuarch.SM80, gpuarch.SM90)

	const goroutines = 16
	type outcome struct {
		loadedBytes int64
		launches    int64
	}
	results := make([]outcome, goroutines)
	errs := make([]error, goroutines)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := NewDefault()
			mode := EagerLoading
			if g%2 == 1 {
				mode = LazyLoading
			}
			ctx := d.NewContext(gpuarch.T4, mode)
			m, err := ctx.LoadModule(lib)
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < 8; i++ {
				fn, err := m.GetFunction("matmul")
				if err != nil {
					errs[g] = err
					return
				}
				if err := d.Launch(fn); err != nil {
					errs[g] = err
					return
				}
			}
			results[g] = outcome{loadedBytes: m.LoadedGPUBytes(), launches: d.KernelLaunch}
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g, r := range results {
		if r.launches != 8 {
			t.Errorf("goroutine %d: launches = %d, want 8", g, r.launches)
		}
		// Eager loads both sm_75 cubins (350 bytes); lazy only matmul's (150).
		want := int64(350)
		if g%2 == 1 {
			want = 150
		}
		if r.loadedBytes != want {
			t.Errorf("goroutine %d: loaded GPU bytes = %d, want %d", g, r.loadedBytes, want)
		}
	}
}

// TestConcurrentModuleLoadsSameContextSerialized documents the other half of
// the contract: operations on one driver must not be issued from multiple
// goroutines without external serialization. The batch service never does
// this — it is listed here as the boundary of the guarantee, with the
// supported pattern (driver per goroutine) asserted above.
func TestConcurrentModuleLoadsSameContextSerialized(t *testing.T) {
	lib := buildLib(t, "libserial.so", gpuarch.SM75)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			if _, err := ctx.LoadModule(lib); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := len(ctx.Modules()); got != 4 {
		t.Errorf("modules = %d, want 4", got)
	}
}
