// Package cudasim simulates the CUDA driver stack the paper's tool observes:
// devices, contexts, module loading from .nv_fatbin sections (eager and lazy
// kernel loading modes), cuModuleGetFunction, kernel launches with
// device-side child launches, plus CPU/GPU memory accounting and a virtual
// clock.
//
// Two behaviours of the real driver are load-bearing for the paper and are
// reproduced exactly:
//
//  1. Only fatbin elements whose compute-capability matches the device
//     architecture can ever be loaded into GPU memory (§3.2) — elements for
//     other architectures are dead weight (Reason I bloat).
//  2. cuModuleGetFunction receives the kernel name and is invoked once per
//     kernel, no matter how many times the kernel is launched (§3.1). Child
//     (GPU-launching) kernels never pass through it.
package cudasim
