package cudasim

import (
	"fmt"
	"time"

	"negativaml/internal/cubin"
	"negativaml/internal/cupti"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// LoadMode selects when device code is copied to the GPU.
type LoadMode int

const (
	// EagerLoading loads every arch-matching cubin at module-load time
	// (CUDA's historical default).
	EagerLoading LoadMode = iota
	// LazyLoading defers loading a cubin until one of its kernels is first
	// requested via cuModuleGetFunction (CUDA_MODULE_LOADING=LAZY).
	LazyLoading
)

func (m LoadMode) String() string {
	if m == LazyLoading {
		return "lazy"
	}
	return "eager"
}

// Driver is the simulated CUDA driver. It owns the virtual clock, the host
// memory pool, the CUPTI registry, and the device contexts.
type Driver struct {
	Clock    Clock
	Cost     CostModel
	Hooks    cupti.Registry
	CPU      MemTracker
	contexts []*Context

	// Stats.
	APICalls     int64
	KernelLaunch int64
	ChildLaunch  int64
}

// Context is one device's execution context.
type Context struct {
	drv     *Driver
	Device  gpuarch.Device
	GPU     MemTracker
	Mode    LoadMode
	modules []*Module
}

// Module is a shared library loaded into a context.
type Module struct {
	ctx  *Context
	Lib  *elfx.Library
	Mode LoadMode

	// cubins holds the arch-matching, parseable cubins by element index.
	cubins map[int]*loadedCubin
	// byKernel maps kernel name -> element index of its cubin.
	byKernel map[string]int
	// handles caches function handles; cuModuleGetFunction fires only on
	// first resolution, matching the driver behaviour the detector relies on.
	handles map[string]*Function

	// ResidentCPU is the host-resident byte count charged for this module.
	ResidentCPU int64
}

type loadedCubin struct {
	cb     *cubin.Cubin
	loaded bool
}

// Function is a kernel handle returned by GetFunction.
type Function struct {
	Module  *Module
	Name    string
	element int
	kernel  int
	lc      *loadedCubin
	// children is the number of device-side kernels reachable from this
	// kernel's call graph, precomputed at resolution time so launches stay
	// allocation-free. childrenOK records whether all of their code is
	// present; launching with missing children traps.
	children   int
	childrenOK bool
}

// New returns a driver with the given cost model.
func New(cost CostModel) *Driver {
	return &Driver{Cost: cost}
}

// NewDefault returns a driver with the calibrated default cost model.
func NewDefault() *Driver { return New(DefaultCostModel()) }

// NewContext creates an execution context on a device.
func (d *Driver) NewContext(dev gpuarch.Device, mode LoadMode) *Context {
	ctx := &Context{drv: d, Device: dev, Mode: mode}
	d.contexts = append(d.contexts, ctx)
	return ctx
}

// Contexts returns all device contexts.
func (d *Driver) Contexts() []*Context { return d.contexts }

// apiCall charges the per-call instrumentation cost and dispatches hooks.
func (d *Driver) apiCall(data *cupti.CallbackData) {
	d.APICalls++
	if d.Hooks.Active() {
		d.Clock.Advance(d.Hooks.InstrumentationCost())
		d.Clock.Advance(d.Hooks.Dispatch(data))
	}
}

// LoadModule maps a shared library into the context (cuModuleLoad).
//
// Host side: the library's resident bytes are charged to CPU memory and the
// page-in cost to the clock. Under lazy loading the fatbin section is not
// paged in (only element headers are touched), so compacted GPU code that
// was zeroed does not cost host memory either way.
//
// Device side: arch-matching cubin elements are indexed; under eager loading
// their code is copied to the GPU immediately. Elements whose payloads were
// zeroed by compaction fail the cubin magic probe and are skipped, exactly
// as the real driver skips removed elements.
func (ctx *Context) LoadModule(lib *elfx.Library) (*Module, error) {
	d := ctx.drv
	m := &Module{
		ctx:      ctx,
		Lib:      lib,
		Mode:     ctx.Mode,
		cubins:   make(map[int]*loadedCubin),
		byKernel: make(map[string]int),
	}

	// ---- Host-side residency ----
	// Residency is byte-granular: at the repository's 1 MB -> 1 KB scale a
	// real 4 KiB page is ~4 simulated bytes, so counting non-zero bytes is
	// the scale-correct model of "pages that are actually backed". Zeroed
	// (compacted) ranges cost neither memory nor page-in time.
	fbRange, hasFB := lib.FatbinRange()
	var fb *fatbin.FatBin
	if hasFB {
		var err error
		fb, _, err = lib.Fatbin()
		if err != nil {
			return nil, fmt.Errorf("cudasim: load %s: %w", lib.Name, err)
		}
	}
	var resident int64
	if ctx.Mode == EagerLoading || !hasFB {
		resident = elfx.NonZeroBytes(lib.Data)
	} else {
		// Lazy: fatbin payloads are not paged in; only the region and
		// element headers are touched while indexing the module.
		resident = elfx.NonZeroBytes(lib.Data) - elfx.NonZeroBytesIn(lib.Data, fbRange)
		resident += int64(len(fb.Regions))*24 + int64(fb.ElementCount())*48
		if resident < 0 {
			resident = 0
		}
		// Lazy can never page in more than eager would.
		if eager := elfx.NonZeroBytes(lib.Data); resident > eager {
			resident = eager
		}
	}
	m.ResidentCPU = resident
	d.CPU.Alloc(resident)
	d.Clock.Advance(time.Duration(resident) * d.Cost.CPULoadPerByte)

	// ---- Device-side indexing ----
	if hasFB {
		for _, e := range fb.Elements() {
			if e.Kind != fatbin.KindCubin || e.Arch != ctx.Device.Arch {
				continue
			}
			if !cubin.IsCubin(e.Payload) {
				continue // zeroed by compaction
			}
			cb, err := cubin.Parse(e.Payload)
			if err != nil {
				continue // damaged payload is treated as removed
			}
			lc := &loadedCubin{cb: cb}
			m.cubins[e.Index] = lc
			for _, k := range cb.Kernels {
				m.byKernel[k.Name] = e.Index
			}
			if ctx.Mode == EagerLoading {
				m.loadCubin(lc)
			}
		}
	}

	m.handles = make(map[string]*Function)
	ctx.modules = append(ctx.modules, m)
	d.apiCall(&cupti.CallbackData{
		Domain: cupti.DomainDriverAPI,
		CBID:   cupti.CBIDModuleLoad,
		Module: lib.Name,
		Bytes:  lib.FileSize(),
	})
	return m, nil
}

func residentIn(data []byte, r fatbin.Range) int64 {
	if r.Start < 0 || r.End > int64(len(data)) {
		return 0
	}
	return elfx.ResidentBytes(data[r.Start:r.End])
}

// loadCubin copies a cubin's code to the GPU, charging memory and time.
func (m *Module) loadCubin(lc *loadedCubin) {
	if lc.loaded {
		return
	}
	lc.loaded = true
	size := int64(lc.cb.CodeSize())
	m.ctx.GPU.Alloc(size)
	m.ctx.drv.Clock.Advance(time.Duration(size) * m.ctx.drv.Cost.GPULoadPerByte)
}

// GetFunction resolves a kernel by name (cuModuleGetFunction).
//
// The first resolution of each kernel goes through the driver: the CUPTI
// hook fires with the kernel name, and under lazy loading the kernel's cubin
// is loaded. Subsequent resolutions return the cached handle without driver
// involvement — mirroring how frameworks cache CUfunction handles so the
// driver function runs once per kernel (§3.1).
func (m *Module) GetFunction(name string) (*Function, error) {
	if fn, ok := m.handles[name]; ok {
		return fn, nil
	}
	d := m.ctx.drv
	d.Clock.Advance(d.Cost.GetFunctionCost)
	d.apiCall(&cupti.CallbackData{
		Domain: cupti.DomainDriverAPI,
		CBID:   cupti.CBIDModuleGetFunction,
		Module: m.Lib.Name,
		Kernel: name,
	})
	elemIdx, ok := m.byKernel[name]
	if !ok {
		return nil, fmt.Errorf("cudasim: %s: no kernel %q for %s", m.Lib.Name, name, m.ctx.Device.Arch)
	}
	lc := m.cubins[elemIdx]
	kIdx := lc.cb.FindKernel(name)
	k := &lc.cb.Kernels[kIdx]
	if !k.Entry() {
		return nil, fmt.Errorf("cudasim: kernel %q is device-only and cannot be resolved from the host", name)
	}
	if m.Mode == LazyLoading {
		m.loadCubin(lc)
	}
	// Validate the kernel and its device-side call graph: launching code
	// that was zeroed out (over-aggressive debloating) traps on a real GPU,
	// so it must fail here too. Whole-cubin retention guarantees this never
	// fires for the real pipeline; the exact-kernel ablation trips it.
	if !codeAlive(k.Code) {
		return nil, fmt.Errorf("cudasim: kernel %q has zeroed code (corrupted by compaction)", name)
	}
	graph := lc.cb.CallGraphFrom(kIdx)
	childrenOK := true
	for _, idx := range graph {
		if idx != kIdx && !codeAlive(lc.cb.Kernels[idx].Code) {
			childrenOK = false
			break
		}
	}
	fn := &Function{
		Module:     m,
		Name:       name,
		element:    elemIdx,
		kernel:     kIdx,
		lc:         lc,
		children:   len(graph) - 1,
		childrenOK: childrenOK,
	}
	m.handles[name] = fn
	return fn, nil
}

// codeAlive reports whether kernel code is present (empty code is treated
// as alive; only fully zeroed code counts as removed).
func codeAlive(code []byte) bool {
	return len(code) == 0 || fatbin.AnyNonZero(code)
}

// HasKernel reports whether the module exposes the kernel for this device
// architecture (without resolving it).
func (m *Module) HasKernel(name string) bool {
	_, ok := m.byKernel[name]
	return ok
}

// LoadedGPUBytes returns the device-code bytes currently on the GPU for this
// module.
func (m *Module) LoadedGPUBytes() int64 {
	var n int64
	for _, lc := range m.cubins {
		if lc.loaded {
			n += int64(lc.cb.CodeSize())
		}
	}
	return n
}

// Launch executes a kernel (cuLaunchKernel), following its device-side
// call graph: child launches cost time but never fire host-side hooks for
// cuModuleGetFunction and are not distinguishable to the detector.
func (d *Driver) Launch(fn *Function) error {
	if fn.lc == nil || !fn.lc.loaded {
		return fmt.Errorf("cudasim: kernel %q launched before its cubin was loaded", fn.Name)
	}
	d.KernelLaunch++
	d.Clock.Advance(d.Cost.LaunchCost)
	if d.Hooks.Active() {
		d.apiCall(&cupti.CallbackData{
			Domain: cupti.DomainDriverAPI,
			CBID:   cupti.CBIDLaunchKernel,
			Module: fn.Module.Lib.Name,
			Kernel: fn.Name,
		})
	} else {
		d.APICalls++
	}
	// Device-side children (dynamic parallelism).
	if fn.children > 0 {
		if !fn.childrenOK {
			return fmt.Errorf("cudasim: kernel %q trapped: device-side child kernel code was removed", fn.Name)
		}
		d.ChildLaunch += int64(fn.children)
		d.Clock.Advance(time.Duration(fn.children) * d.Cost.ChildLaunchCost)
	}
	return nil
}

// AllocGPU allocates device memory on the context (cuMemAlloc).
func (ctx *Context) AllocGPU(n int64) {
	ctx.GPU.Alloc(n)
	ctx.drv.apiCall(&cupti.CallbackData{Domain: cupti.DomainDriverAPI, CBID: cupti.CBIDMemAlloc, Bytes: n})
}

// FreeGPU releases device memory (cuMemFree).
func (ctx *Context) FreeGPU(n int64) {
	ctx.GPU.Free(n)
	ctx.drv.apiCall(&cupti.CallbackData{Domain: cupti.DomainDriverAPI, CBID: cupti.CBIDMemFree, Bytes: n})
}

// AllocCPU allocates host memory (runtime heap, tensors, framework state).
func (d *Driver) AllocCPU(n int64) { d.CPU.Alloc(n) }

// FreeCPU releases host memory.
func (d *Driver) FreeCPU(n int64) { d.CPU.Free(n) }

// UnloadModule releases a module's host residency (cuModuleUnload).
func (ctx *Context) UnloadModule(m *Module) {
	for i, mod := range ctx.modules {
		if mod == m {
			ctx.modules = append(ctx.modules[:i], ctx.modules[i+1:]...)
			break
		}
	}
	ctx.drv.CPU.Free(m.ResidentCPU)
	for _, lc := range m.cubins {
		if lc.loaded {
			ctx.GPU.Free(int64(lc.cb.CodeSize()))
			lc.loaded = false
		}
	}
}

// Modules returns the modules loaded in the context.
func (ctx *Context) Modules() []*Module { return ctx.modules }
