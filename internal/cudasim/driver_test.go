package cudasim

import (
	"bytes"
	"testing"
	"time"

	"negativaml/internal/cubin"
	"negativaml/internal/cupti"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// buildLib builds a library with one function and cubins for several arches.
// Each arch gets one cubin with kernels "matmul" (entry, launching "child")
// and "child" (device-only), plus a second cubin with kernel "conv".
func buildLib(t *testing.T, name string, arches ...gpuarch.SM) *elfx.Library {
	t.Helper()
	b := elfx.NewBuilder(name)
	b.AddFunction("host_dispatch", 64)
	fb := &fatbin.FatBin{}
	reg := fb.AddRegion()
	for _, a := range arches {
		c1 := cubin.New(a)
		c1.AddKernel(cubin.Kernel{Name: "matmul", Code: bytes.Repeat([]byte{0x90}, 100), Flags: cubin.FlagEntry, Launches: []int{1}})
		c1.AddKernel(cubin.Kernel{Name: "child", Code: bytes.Repeat([]byte{0x90}, 50), Flags: cubin.FlagDeviceOnly})
		blob1, err := c1.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: a, Payload: blob1})

		c2 := cubin.New(a)
		c2.AddKernel(cubin.Kernel{Name: "conv", Code: bytes.Repeat([]byte{0x90}, 200), Flags: cubin.FlagEntry})
		blob2, err := c2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: a, Payload: blob2})
	}
	fbBytes, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b.SetFatbin(fbBytes)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := elfx.Parse(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestEagerLoadingLoadsMatchingArchOnly(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75, gpuarch.SM80, gpuarch.SM90)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading) // sm_75

	m, err := ctx.LoadModule(lib)
	if err != nil {
		t.Fatal(err)
	}
	// Only the two sm_75 cubins (100+50 and 200 bytes) loaded.
	if got := m.LoadedGPUBytes(); got != 350 {
		t.Errorf("loaded GPU bytes = %d, want 350", got)
	}
	if ctx.GPU.Peak != 350 {
		t.Errorf("GPU peak = %d, want 350", ctx.GPU.Peak)
	}
	if !m.HasKernel("matmul") || !m.HasKernel("conv") || !m.HasKernel("child") {
		t.Error("arch-matching kernels should be indexed")
	}
}

func TestLazyLoadingDefersUntilGetFunction(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75, gpuarch.SM80)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, LazyLoading)

	m, err := ctx.LoadModule(lib)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LoadedGPUBytes(); got != 0 {
		t.Errorf("lazy load should defer, got %d bytes", got)
	}
	if _, err := m.GetFunction("matmul"); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadedGPUBytes(); got != 150 {
		t.Errorf("after GetFunction(matmul): %d bytes, want 150 (only its cubin)", got)
	}
	if _, err := m.GetFunction("conv"); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadedGPUBytes(); got != 350 {
		t.Errorf("after GetFunction(conv): %d bytes, want 350", got)
	}
}

func TestLazyCPUResidencySkipsFatbin(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75, gpuarch.SM80, gpuarch.SM90, gpuarch.SM86)
	dEager := NewDefault()
	dEager.NewContext(gpuarch.T4, EagerLoading).LoadModule(lib)
	dLazy := NewDefault()
	dLazy.NewContext(gpuarch.T4, LazyLoading).LoadModule(lib)
	if dLazy.CPU.Peak >= dEager.CPU.Peak {
		t.Errorf("lazy CPU residency (%d) should be below eager (%d)", dLazy.CPU.Peak, dEager.CPU.Peak)
	}
}

func TestGetFunctionFiresHookOncePerKernel(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	m, _ := ctx.LoadModule(lib)

	var calls []string
	sub := &cupti.Subscriber{Name: "t"}
	sub.EnableCallback(cupti.CBIDModuleGetFunction)
	d.Hooks.Subscribe(sub, func(data *cupti.CallbackData) { calls = append(calls, data.Kernel) })

	for i := 0; i < 5; i++ {
		fn, err := m.GetFunction("matmul")
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Launch(fn); err != nil {
			t.Fatal(err)
		}
	}
	if len(calls) != 1 || calls[0] != "matmul" {
		t.Errorf("cuModuleGetFunction hook fired %d times (%v), want once", len(calls), calls)
	}
	if d.KernelLaunch != 5 {
		t.Errorf("launches = %d, want 5", d.KernelLaunch)
	}
	// Each launch of matmul triggers one device-side child launch.
	if d.ChildLaunch != 5 {
		t.Errorf("child launches = %d, want 5", d.ChildLaunch)
	}
}

func TestGetFunctionErrors(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	m, _ := ctx.LoadModule(lib)

	if _, err := m.GetFunction("nope"); err == nil {
		t.Error("unknown kernel should fail")
	}
	if _, err := m.GetFunction("child"); err == nil {
		t.Error("device-only kernel should not resolve from host")
	}
}

func TestArchMismatchModuleHasNoKernels(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM80) // A100-only code
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	m, err := ctx.LoadModule(lib)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasKernel("matmul") {
		t.Error("sm_80 cubin must not be visible on sm_75 device")
	}
	if m.LoadedGPUBytes() != 0 {
		t.Error("no GPU bytes should load for mismatched arch")
	}
}

func TestZeroedElementSkipped(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75)
	// Zero the conv cubin payload (element 2).
	fb, _, err := lib.Fatbin()
	if err != nil {
		t.Fatal(err)
	}
	fbRange, _ := lib.FatbinRange()
	for _, e := range fb.Elements() {
		if e.Index == 2 {
			elfx.ZeroRange(lib.Data, fatbin.Range{
				Start: fbRange.Start + e.PayloadRange.Start,
				End:   fbRange.Start + e.PayloadRange.End,
			})
		}
	}
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	m, err := ctx.LoadModule(lib)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasKernel("conv") {
		t.Error("zeroed cubin's kernels should be gone")
	}
	if !m.HasKernel("matmul") {
		t.Error("surviving cubin's kernels should remain")
	}
	if got := m.LoadedGPUBytes(); got != 150 {
		t.Errorf("loaded = %d, want 150", got)
	}
}

func TestLaunchBeforeLoadFails(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, LazyLoading)
	m, _ := ctx.LoadModule(lib)
	fn, err := m.GetFunction("matmul")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: unload to simulate launching with stale handle.
	ctx.UnloadModule(m)
	if err := d.Launch(fn); err == nil {
		t.Error("launch after unload should fail")
	}
}

func TestClockAdvancesOnLoadAndLaunch(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75)
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	t0 := d.Clock.Now()
	m, _ := ctx.LoadModule(lib)
	t1 := d.Clock.Now()
	if t1 <= t0 {
		t.Error("module load should cost time")
	}
	fn, _ := m.GetFunction("matmul")
	t2 := d.Clock.Now()
	if t2 <= t1 {
		t.Error("GetFunction should cost time")
	}
	d.Launch(fn)
	if d.Clock.Now() <= t2 {
		t.Error("launch should cost time")
	}
}

func TestDebloatedLibraryLoadsFasterAndSmaller(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75, gpuarch.SM80, gpuarch.SM86, gpuarch.SM90)

	run := func(l *elfx.Library) (time.Duration, int64) {
		d := NewDefault()
		ctx := d.NewContext(gpuarch.T4, EagerLoading)
		if _, err := ctx.LoadModule(l); err != nil {
			t.Fatal(err)
		}
		return d.Clock.Now(), d.CPU.Peak
	}
	origTime, origMem := run(lib)

	// Debloat: zero the payloads of all non-sm_75 elements, keeping region
	// and element headers intact (what the compactor does).
	data := append([]byte(nil), lib.Data...)
	dl, _ := elfx.Parse(lib.Name, data)
	fb, _, _ := dl.Fatbin()
	fbRange, _ := dl.FatbinRange()
	for _, e := range fb.Elements() {
		if e.Arch != gpuarch.SM75 {
			elfx.ZeroRange(dl.Data, fatbin.Range{
				Start: fbRange.Start + e.PayloadRange.Start,
				End:   fbRange.Start + e.PayloadRange.End,
			})
		}
	}
	debTime, debMem := run(dl)

	if debTime >= origTime {
		t.Errorf("debloated load time %v should be below original %v", debTime, origTime)
	}
	if debMem >= origMem {
		t.Errorf("debloated CPU mem %d should be below original %d", debMem, origMem)
	}
}

func TestMemTrackerAndClock(t *testing.T) {
	var m MemTracker
	m.Alloc(100)
	m.Alloc(50)
	m.Free(120)
	if m.Cur != 30 || m.Peak != 150 {
		t.Errorf("cur=%d peak=%d, want 30/150", m.Cur, m.Peak)
	}
	m.Free(1000)
	if m.Cur != 0 {
		t.Errorf("cur=%d, want clamp to 0", m.Cur)
	}
	var c Clock
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if c.Now() != time.Second {
		t.Errorf("clock = %v, want 1s", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("reset failed")
	}
}

func TestMultiDeviceContexts(t *testing.T) {
	lib := buildLib(t, "libk.so", gpuarch.SM75, gpuarch.SM80)
	d := NewDefault()
	for i := 0; i < 8; i++ {
		ctx := d.NewContext(gpuarch.A100, EagerLoading)
		m, err := ctx.LoadModule(lib)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.LoadedGPUBytes(); got != 350 {
			t.Fatalf("rank %d loaded %d, want 350", i, got)
		}
	}
	if len(d.Contexts()) != 8 {
		t.Errorf("contexts = %d, want 8", len(d.Contexts()))
	}
}

func TestAllocFree(t *testing.T) {
	d := NewDefault()
	ctx := d.NewContext(gpuarch.T4, EagerLoading)
	ctx.AllocGPU(1000)
	ctx.FreeGPU(400)
	if ctx.GPU.Cur != 600 || ctx.GPU.Peak != 1000 {
		t.Errorf("GPU cur=%d peak=%d", ctx.GPU.Cur, ctx.GPU.Peak)
	}
	d.AllocCPU(500)
	d.FreeCPU(100)
	if d.CPU.Cur != 400 {
		t.Errorf("CPU cur=%d", d.CPU.Cur)
	}
}
