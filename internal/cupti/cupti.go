package cupti

import "time"

// Domain identifies a callback domain.
type Domain int

// Callback domains (only the driver API domain is used here).
const (
	DomainDriverAPI Domain = iota + 1
)

// CBID identifies a driver API callback site.
type CBID int

// Driver API callback sites.
const (
	CBIDModuleLoad CBID = iota + 1
	CBIDModuleGetFunction
	CBIDLaunchKernel
	CBIDMemAlloc
	CBIDMemFree
)

func (c CBID) String() string {
	switch c {
	case CBIDModuleLoad:
		return "cuModuleLoad"
	case CBIDModuleGetFunction:
		return "cuModuleGetFunction"
	case CBIDLaunchKernel:
		return "cuLaunchKernel"
	case CBIDMemAlloc:
		return "cuMemAlloc"
	case CBIDMemFree:
		return "cuMemFree"
	}
	return "unknown"
}

// CallbackData is delivered to subscribers at each subscribed site.
type CallbackData struct {
	Domain Domain
	CBID   CBID
	// Module is the name of the shared library the module was loaded from.
	Module string
	// Kernel is the kernel name for CBIDModuleGetFunction / CBIDLaunchKernel.
	Kernel string
	// Bytes is the size for CBIDMemAlloc / CBIDMemFree / CBIDModuleLoad.
	Bytes int64
}

// Callback is a subscriber's callback function.
type Callback func(*CallbackData)

// Subscriber is one attached tool (detector, tracer, …).
type Subscriber struct {
	// Name labels the subscriber in reports.
	Name string
	// PerRecordCost is the simulated time charged for each delivered
	// callback (buffer write, string copy, …).
	PerRecordCost time.Duration
	// InstrumentationCost is the simulated time charged to *every* driver
	// API call while this subscriber is attached, whether or not the call
	// site is subscribed — modeling the interposition layer CUPTI injects.
	InstrumentationCost time.Duration

	callback Callback
	sites    map[CBID]bool
}

// Registry dispatches driver events to subscribers. The zero value is ready
// to use. Registry is not safe for concurrent use; the simulated driver is
// single-threaded by design.
type Registry struct {
	subs []*Subscriber
}

// Subscribe attaches a subscriber with its callback. Call EnableCallback to
// select sites.
func (r *Registry) Subscribe(s *Subscriber, cb Callback) {
	s.callback = cb
	if s.sites == nil {
		s.sites = make(map[CBID]bool)
	}
	r.subs = append(r.subs, s)
}

// Unsubscribe detaches a subscriber.
func (r *Registry) Unsubscribe(s *Subscriber) {
	for i, sub := range r.subs {
		if sub == s {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			return
		}
	}
}

// EnableCallback subscribes s to a callback site.
func (s *Subscriber) EnableCallback(id CBID) {
	if s.sites == nil {
		s.sites = make(map[CBID]bool)
	}
	s.sites[id] = true
}

// Active reports whether any subscriber is attached.
func (r *Registry) Active() bool { return len(r.subs) > 0 }

// InstrumentationCost returns the total per-driver-call instrumentation cost
// across attached subscribers.
func (r *Registry) InstrumentationCost() time.Duration {
	var d time.Duration
	for _, s := range r.subs {
		d += s.InstrumentationCost
	}
	return d
}

// Dispatch delivers data to every subscriber listening on its CBID and
// returns the total per-record cost incurred.
func (r *Registry) Dispatch(data *CallbackData) time.Duration {
	var cost time.Duration
	for _, s := range r.subs {
		if s.sites[data.CBID] {
			s.callback(data)
			cost += s.PerRecordCost
		}
	}
	return cost
}
