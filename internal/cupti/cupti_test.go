package cupti

import (
	"testing"
	"time"
)

func TestDispatchOnlySubscribedSites(t *testing.T) {
	var r Registry
	var got []CBID
	s := &Subscriber{Name: "t", PerRecordCost: 5 * time.Microsecond}
	r.Subscribe(s, func(d *CallbackData) { got = append(got, d.CBID) })
	s.EnableCallback(CBIDModuleGetFunction)

	cost := r.Dispatch(&CallbackData{CBID: CBIDModuleGetFunction, Kernel: "k"})
	if cost != 5*time.Microsecond {
		t.Errorf("cost = %v, want 5µs", cost)
	}
	cost = r.Dispatch(&CallbackData{CBID: CBIDLaunchKernel, Kernel: "k"})
	if cost != 0 {
		t.Errorf("unsubscribed site cost = %v, want 0", cost)
	}
	if len(got) != 1 || got[0] != CBIDModuleGetFunction {
		t.Errorf("delivered = %v", got)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	var r Registry
	n1, n2 := 0, 0
	s1 := &Subscriber{Name: "a", PerRecordCost: time.Microsecond, InstrumentationCost: 2 * time.Microsecond}
	s2 := &Subscriber{Name: "b", PerRecordCost: 3 * time.Microsecond, InstrumentationCost: 4 * time.Microsecond}
	r.Subscribe(s1, func(*CallbackData) { n1++ })
	r.Subscribe(s2, func(*CallbackData) { n2++ })
	s1.EnableCallback(CBIDLaunchKernel)
	s2.EnableCallback(CBIDLaunchKernel)

	if !r.Active() {
		t.Error("registry should be active")
	}
	if got := r.InstrumentationCost(); got != 6*time.Microsecond {
		t.Errorf("instrumentation = %v, want 6µs", got)
	}
	cost := r.Dispatch(&CallbackData{CBID: CBIDLaunchKernel})
	if cost != 4*time.Microsecond {
		t.Errorf("record cost = %v, want 4µs", cost)
	}
	if n1 != 1 || n2 != 1 {
		t.Errorf("deliveries = %d, %d", n1, n2)
	}

	r.Unsubscribe(s1)
	r.Dispatch(&CallbackData{CBID: CBIDLaunchKernel})
	if n1 != 1 || n2 != 2 {
		t.Errorf("after unsubscribe: %d, %d", n1, n2)
	}
	r.Unsubscribe(s2)
	if r.Active() {
		t.Error("registry should be inactive")
	}
}

func TestUnsubscribeUnknown(t *testing.T) {
	var r Registry
	r.Unsubscribe(&Subscriber{}) // must not panic
}

func TestCBIDString(t *testing.T) {
	cases := map[CBID]string{
		CBIDModuleLoad:        "cuModuleLoad",
		CBIDModuleGetFunction: "cuModuleGetFunction",
		CBIDLaunchKernel:      "cuLaunchKernel",
		CBIDMemAlloc:          "cuMemAlloc",
		CBIDMemFree:           "cuMemFree",
		CBID(99):              "unknown",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", id, got, want)
		}
	}
}
