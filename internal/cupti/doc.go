// Package cupti provides a CUPTI-like callback interface over the simulated
// CUDA driver.
//
// NVIDIA's CUPTI lets tools subscribe to driver API callback sites. The
// paper's kernel detector (§3.1) is a CUPTI hook on cuModuleGetFunction:
// that driver function receives the kernel name and is called once per
// kernel regardless of how many times the kernel later launches, which makes
// it the ideal once-per-kernel detection point. Profilers like NSys instead
// record every kernel launch, which is why their overhead is much higher
// (§4.6).
//
// Attaching any subscriber enables driver-wide instrumentation: every driver
// API call pays a small instrumentation cost, and each delivered callback
// pays the subscriber's per-record cost. Both costs are charged to the
// simulated clock by the driver, so tracing overhead is an emergent,
// measurable quantity.
package cupti
