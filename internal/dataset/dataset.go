package dataset

import "hash/fnv"

// Dataset describes one dataset split layout.
type Dataset struct {
	Name       string
	TrainItems int
	TestItems  int
	// ItemBytes is the host working-set per in-flight item (scaled units).
	ItemBytes int64
}

// Catalog entries matching Table 1.
var (
	// CIFAR10: 50,000 train / 10,000 test images (Krizhevsky et al., 2009).
	CIFAR10 = Dataset{Name: "CIFAR10", TrainItems: 50000, TestItems: 10000, ItemBytes: 4}
	// Multi30k: ~29,000 train / 1,000 test sentence pairs.
	Multi30k = Dataset{Name: "Multi30k", TrainItems: 29000, TestItems: 1000, ItemBytes: 2}
	// WMT14: ~4.5M train sentence pairs; the paper trains one epoch.
	WMT14 = Dataset{Name: "WMT14", TrainItems: 4500000, TestItems: 3000, ItemBytes: 2}
	// ManualInput: the paper's LLM prompt; decoding generates 64 tokens.
	ManualInput = Dataset{Name: "Manual Input", TrainItems: 0, TestItems: 64, ItemBytes: 1}
)

// Steps returns the number of optimizer/inference steps for the dataset
// split, batch size, and epoch count (epochs apply to training only).
func (d Dataset) Steps(train bool, batch, epochs int) int {
	if batch < 1 {
		batch = 1
	}
	items := d.TestItems
	if train {
		items = d.TrainItems
	}
	steps := (items + batch - 1) / batch
	if train {
		if epochs < 1 {
			epochs = 1
		}
		steps *= epochs
	}
	return steps
}

// ItemDigest returns a deterministic pseudo-content hash for item i, mixed
// into workload output digests so a debloated run must reproduce the exact
// per-item results of the original run.
func (d Dataset) ItemDigest(i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(d.Name))
	var buf [8]byte
	for s := 0; s < 8; s++ {
		buf[s] = byte(i >> (8 * s))
	}
	h.Write(buf[:])
	return h.Sum64()
}
