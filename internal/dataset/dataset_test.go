package dataset

import "testing"

func TestSteps(t *testing.T) {
	cases := []struct {
		d      Dataset
		train  bool
		batch  int
		epochs int
		want   int
	}{
		{CIFAR10, true, 16, 3, 9375},   // 50000/16=3125 * 3
		{CIFAR10, false, 1, 0, 10000},  // test set, batch 1
		{Multi30k, true, 128, 3, 681},  // ceil(29000/128)=227 * 3
		{Multi30k, false, 32, 0, 32},   // ceil(1000/32)
		{WMT14, true, 128, 1, 35157},   // ceil(4.5M/128)
		{ManualInput, false, 1, 0, 64}, // 64 decoded tokens
		{CIFAR10, true, 0, 0, 50000},   // batch clamps to 1, epochs to 1
	}
	for _, c := range cases {
		if got := c.d.Steps(c.train, c.batch, c.epochs); got != c.want {
			t.Errorf("%s Steps(train=%v,b=%d,e=%d) = %d, want %d",
				c.d.Name, c.train, c.batch, c.epochs, got, c.want)
		}
	}
}

func TestItemDigestDeterministicAndDistinct(t *testing.T) {
	a := CIFAR10.ItemDigest(7)
	b := CIFAR10.ItemDigest(7)
	if a != b {
		t.Error("digest must be deterministic")
	}
	if CIFAR10.ItemDigest(8) == a {
		t.Error("different items should digest differently")
	}
	if Multi30k.ItemDigest(7) == a {
		t.Error("different datasets should digest differently")
	}
}

func TestCatalogSane(t *testing.T) {
	for _, d := range []Dataset{CIFAR10, Multi30k, WMT14, ManualInput} {
		if d.Name == "" || d.TestItems <= 0 || d.ItemBytes <= 0 {
			t.Errorf("%+v: incomplete dataset", d)
		}
	}
}
