// Package dataset provides synthetic stand-ins for the datasets of Table 1:
// CIFAR10, Multi30k, WMT14, and the manual LLM prompts. The debloater never
// looks at data content — only iteration counts and working-set sizes affect
// the simulation — so each dataset is its cardinality plus a deterministic
// item-digest function used for output verification.
package dataset
