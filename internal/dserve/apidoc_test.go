package dserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"negativaml/internal/cluster"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// docBlock is one annotated JSON example from docs/API.md.
type docBlock struct {
	json   []byte
	subset bool
}

var apidocMarker = regexp.MustCompile(`<!--\s*apidoc:\s*([a-z0-9-]+)\s+(request|response)(\s+subset)?\s*-->`)

// parseAPIDoc extracts every `<!-- apidoc: <id> <request|response>
// [subset] -->`-annotated JSON fence from docs/API.md.
func parseAPIDoc(t *testing.T) map[string]docBlock {
	t.Helper()
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	blocks := map[string]docBlock{}
	lines := strings.Split(string(raw), "\n")
	for i := 0; i < len(lines); i++ {
		m := apidocMarker.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		key := m[1] + " " + m[2]
		subset := strings.TrimSpace(m[3]) == "subset"
		// Find the fenced json block that follows the marker.
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || strings.TrimSpace(lines[j]) != "```json" {
			t.Fatalf("docs/API.md: marker %q is not followed by a ```json fence", key)
		}
		var body []string
		for j++; j < len(lines) && strings.TrimSpace(lines[j]) != "```"; j++ {
			body = append(body, lines[j])
		}
		if _, dup := blocks[key]; dup {
			t.Fatalf("docs/API.md: duplicate apidoc block %q", key)
		}
		blocks[key] = docBlock{json: []byte(strings.Join(body, "\n")), subset: subset}
		i = j
	}
	return blocks
}

func jsonTypeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	default:
		return "null"
	}
}

// shapeDiff structurally compares a documented example against a live
// payload: every documented key must exist in the live value with the same
// JSON type, recursing into objects and first array elements; unless
// subset, every live key must be documented too. null acts as a wildcard.
func shapeDiff(path string, doc, live any, subset bool, probs *[]string) {
	if doc == nil || live == nil {
		return
	}
	switch d := doc.(type) {
	case map[string]any:
		l, ok := live.(map[string]any)
		if !ok {
			*probs = append(*probs, fmt.Sprintf("%s: documented as object, live is %s", path, jsonTypeName(live)))
			return
		}
		for k, dv := range d {
			lv, ok := l[k]
			if !ok {
				*probs = append(*probs, fmt.Sprintf("%s.%s: documented but absent from the live response", path, k))
				continue
			}
			shapeDiff(path+"."+k, dv, lv, subset, probs)
		}
		if !subset {
			for k := range l {
				if _, ok := d[k]; !ok {
					*probs = append(*probs, fmt.Sprintf("%s.%s: present in the live response but undocumented", path, k))
				}
			}
		}
	case []any:
		l, ok := live.([]any)
		if !ok {
			*probs = append(*probs, fmt.Sprintf("%s: documented as array, live is %s", path, jsonTypeName(live)))
			return
		}
		if len(d) > 0 && len(l) > 0 {
			shapeDiff(path+"[0]", d[0], l[0], subset, probs)
		}
	default:
		if dt, lt := jsonTypeName(doc), jsonTypeName(live); dt != lt {
			*probs = append(*probs, fmt.Sprintf("%s: documented as %s, live is %s", path, dt, lt))
		}
	}
}

// TestAPIDocExamples keeps docs/API.md honest: every request example is
// replayed verbatim against a live two-node service, every response
// example is shape-compared against what the service actually returned,
// and both directions of completeness are enforced — an undocumented
// scenario fails, and so does a documented example the test does not
// exercise.
func TestAPIDocExamples(t *testing.T) {
	blocks := parseAPIDoc(t)
	// The ingest root (shared by both nodes) holds the tree the
	// submit-ingest example names, written before the nodes boot.
	ingestRoot := t.TempDir()
	treeIn, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := treeIn.WriteTo(filepath.Join(ingestRoot, "pytorch-tree")); err != nil {
		t.Fatal(err)
	}
	nodes := startClusterCfg(t, func(id string, cfg *Config) { cfg.IngestRoot = ingestRoot }, "a", "b")
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	a := nodes["a"]
	actual := map[string][]byte{}

	httpJSON := func(method, path string, body []byte, wantStatus int) []byte {
		t.Helper()
		req, err := http.NewRequest(method, a.srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, out)
		}
		return out
	}

	// ---- error shape ----
	actual["error response"] = httpJSON(http.MethodGet, "/v1/jobs/job-9999", nil, http.StatusNotFound)

	// ---- submit + poll ----
	submitReq, ok := blocks["submit request"]
	if !ok {
		t.Fatal("docs/API.md lacks the submit request example")
	}
	actual["submit request"] = submitReq.json
	sub := httpJSON(http.MethodPost, "/v1/jobs", submitReq.json, http.StatusAccepted)
	actual["submit response"] = sub
	var st jobStatus
	if err := json.Unmarshal(sub, &st); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, a.srv, st.ID)
	if done.State != JobDone {
		t.Fatalf("doc-example job failed: %s", done.Error)
	}

	actual["job-status response"] = httpJSON(http.MethodGet, "/v1/jobs/"+st.ID, nil, http.StatusOK)
	actual["jobs-list response"] = httpJSON(http.MethodGet, "/v1/jobs", nil, http.StatusOK)
	actual["job-report response"] = httpJSON(http.MethodGet, "/v1/jobs/"+st.ID+"/report", nil, http.StatusOK)

	// ---- incremental re-submit ----
	incReq, ok := blocks["submit-incremental request"]
	if !ok {
		t.Fatal("docs/API.md lacks the submit-incremental request example")
	}
	actual["submit-incremental request"] = incReq.json
	incSub := httpJSON(http.MethodPost, "/v1/submit", incReq.json, http.StatusAccepted)
	actual["submit-incremental response"] = incSub
	var incSt jobStatus
	if err := json.Unmarshal(incSub, &incSt); err != nil {
		t.Fatal(err)
	}
	if incDone := pollDone(t, a.srv, incSt.ID); incDone.State != JobDone {
		t.Fatalf("doc-example incremental job failed: %s", incDone.Error)
	}
	actual["incremental-report response"] = httpJSON(http.MethodGet, "/v1/jobs/"+incSt.ID+"/report", nil, http.StatusOK)

	// ---- ingestion mode ----
	// The doc example's ingest_dir is relative to the node's ingest root,
	// so it replays verbatim: the test wrote "pytorch-tree" under the root
	// every node was booted with.
	ingReq, ok := blocks["submit-ingest request"]
	if !ok {
		t.Fatal("docs/API.md lacks the submit-ingest request example")
	}
	actual["submit-ingest request"] = ingReq.json
	ingSub := httpJSON(http.MethodPost, "/v1/submit", ingReq.json, http.StatusAccepted)
	actual["submit-ingest response"] = ingSub
	var ingSt jobStatus
	if err := json.Unmarshal(ingSub, &ingSt); err != nil {
		t.Fatal(err)
	}
	if ingDone := pollDone(t, a.srv, ingSt.ID); ingDone.State != JobDone {
		t.Fatalf("doc-example ingest job failed: %s", ingDone.Error)
	}

	// ---- metrics + store ----
	actual["metrics response"] = httpJSON(http.MethodGet, "/v1/metrics", nil, http.StatusOK)
	actual["store response"] = httpJSON(http.MethodGet, "/v1/store", nil, http.StatusOK)

	// ---- peer routes ----
	lookupReq, ok := blocks["peer-lookup request"]
	if !ok {
		t.Fatal("docs/API.md lacks the peer-lookup request example")
	}
	actual["peer-lookup request"] = lookupReq.json
	actual["peer-lookup response"] = httpJSON(http.MethodPost, "/v1/peer/lookup", lookupReq.json, http.StatusOK)

	batchLookupReq, ok := blocks["peer-lookup-batch request"]
	if !ok {
		t.Fatal("docs/API.md lacks the peer-lookup-batch request example")
	}
	actual["peer-lookup-batch request"] = batchLookupReq.json
	actual["peer-lookup-batch response"] = httpJSON(http.MethodPost, "/v1/peer/lookup-batch", batchLookupReq.json, http.StatusOK)

	// peer-detect and peer-compact need content-correct inputs (the server
	// verifies fingerprints and stage keys), so the test builds the real
	// request and the doc example is shape-checked against what was sent.
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 6})
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{Model: "MobileNetV2", Batch: 1}
	wl, err := spec.Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	detReq, err := json.Marshal(peerDetectRequest{
		InstallFP: InstallFingerprint(in),
		Identity:  WorkloadIdentity(wl, 2),
		Framework: "pytorch", TailLibs: 6, MaxSteps: 2, Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-detect request"] = detReq
	actual["peer-detect response"] = httpJSON(http.MethodPost, "/v1/peer/detect", detReq, http.StatusOK)

	profile, err := negativa.DetectUsage(wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	libName := "libtorch_cuda.so"
	lib := in.Library(libName)
	archs := negativa.DeviceArchs(wl.Devices)
	key := negativa.CompactKey(negativa.LocateKey(lib, profile.UsedFuncs[libName], profile.UsedKernels[libName], archs))
	compactReq := peerCompactRequest{
		Key: key.Hash, LibName: libName, LibDigest: digestHex(lib), Lib: lib.Data,
		UsedFuncs: profile.UsedFuncs[libName], UsedKernels: profile.UsedKernels[libName],
	}
	for _, ar := range archs {
		compactReq.Archs = append(compactReq.Archs, uint32(ar))
	}
	compactBody, err := json.Marshal(compactReq)
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-compact request"] = compactBody
	actual["peer-compact response"] = httpJSON(http.MethodPost, "/v1/peer/compact", compactBody, http.StatusOK)

	// ---- membership plane ----
	// The ping/join/leave requests are built live (real URLs) so the doc
	// examples are shape-checked without poisoning node A's membership view
	// with unreachable placeholder addresses.
	liveNodes := map[string]string{"a": nodes["a"].srv.URL, "b": nodes["b"].srv.URL}
	pingBody, err := json.Marshal(cluster.HeartbeatRequest{From: "b", URL: nodes["b"].srv.URL, Nodes: liveNodes})
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-ping request"] = pingBody
	actual["peer-ping response"] = httpJSON(http.MethodPost, "/v1/peer/ping", pingBody, http.StatusOK)

	joinBody, err := json.Marshal(cluster.JoinRequest{ID: "c", URL: nodes["b"].srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-join request"] = joinBody
	actual["peer-join response"] = httpJSON(http.MethodPost, "/v1/peer/join", joinBody, http.StatusOK)

	leaveBody, err := json.Marshal(cluster.LeaveRequest{ID: "c"})
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-leave request"] = leaveBody
	actual["peer-leave response"] = httpJSON(http.MethodPost, "/v1/peer/leave", leaveBody, http.StatusOK)

	statBody, err := json.Marshal(peerStatRequest{Objects: []peerObjectRef{{Kind: "lib", Key: "absent0"}}})
	if err != nil {
		t.Fatal(err)
	}
	actual["peer-stat request"] = statBody
	actual["peer-stat response"] = httpJSON(http.MethodPost, "/v1/peer/stat", statBody, http.StatusOK)

	// ---- shape comparison, both completeness directions ----
	var keys []string
	for k := range actual {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var problems []string
	for _, k := range keys {
		blk, ok := blocks[k]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: exercised by the test but has no apidoc example in docs/API.md", k))
			continue
		}
		var docV, liveV any
		if err := json.Unmarshal(blk.json, &docV); err != nil {
			problems = append(problems, fmt.Sprintf("%s: example is not valid JSON: %v", k, err))
			continue
		}
		if err := json.Unmarshal(actual[k], &liveV); err != nil {
			t.Fatalf("%s: live payload is not valid JSON: %v", k, err)
		}
		shapeDiff(k, docV, liveV, blk.subset, &problems)
	}
	for k := range blocks {
		// gw--prefixed blocks document the multi-tenant gateway, which wraps
		// this package; they are enforced by internal/gateway's apidoc test.
		if strings.HasPrefix(k, "gw-") {
			continue
		}
		if _, ok := actual[k]; !ok {
			problems = append(problems, fmt.Sprintf("%s: documented in docs/API.md but not exercised by this test", k))
		}
	}
	if len(problems) > 0 {
		t.Fatalf("docs/API.md is out of sync with the live API:\n  %s", strings.Join(problems, "\n  "))
	}
}
