package dserve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
)

// libDigests memoizes each library's content hash per *elfx.Library —
// libraries are immutable after parsing (the package's concurrency
// contract), so warm batches need not re-hash full library bytes on every
// CacheKey computation.
var libDigests = newBoundedMemo(4096)

func libDigest(lib *elfx.Library) [sha256.Size]byte {
	return libDigests.get(lib, func() any { return sha256.Sum256(lib.Data) }).([sha256.Size]byte)
}

// CacheKey derives the content address of one locate+compact computation:
// SHA-256 over the library's content digest, the used CPU-function and
// kernel sets, and the target architectures (canonicalized by sorting).
// The library name is deliberately excluded — identical libraries shared
// across installs (the dependency tail) hit the cache no matter which
// install or job they arrive through; hits re-label the report with the
// requesting library's name.
func CacheKey(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) string {
	h := sha256.New()
	d := libDigest(lib)
	h.Write(d[:])
	sep := []byte{0}
	writeList := func(tag byte, items []string) {
		h.Write([]byte{0xff, tag})
		for _, s := range items {
			h.Write([]byte(s))
			h.Write(sep)
		}
	}
	// Used-symbol sets arrive sorted from DetectUsage/MergeProfiles; sorting
	// is their canonical form, so the hash is order-independent by contract.
	writeList(1, usedFuncs)
	writeList(2, usedKernels)
	// Architectures only influence fatbin element retention; for CPU-only
	// libraries (the dependency tail) the result is arch-independent, so
	// excluding archs lets heterogeneous-device batches share tail entries.
	if _, hasFB := lib.FatbinRange(); hasFB {
		sorted := append([]gpuarch.SM(nil), archs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		h.Write([]byte{0xff, 3})
		var b [4]byte
		for _, a := range sorted {
			binary.LittleEndian.PutUint32(b[:], uint32(a))
			h.Write(b[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// ResultCache is the content-addressed locate+compact cache with LRU
// eviction. Stored values are immutable: hits hand out the shared report
// and compacted image, which callers must treat as read-only. Concurrent
// misses on the same key may compute the result twice; both Puts store
// identical content, so the race is benign.
type ResultCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	lru      list.List // front = most recently used
	hits     int64
	misses   int64
	evicted  int64
	counters *metrics.CounterSet
}

type cacheEntry struct {
	key string
	ld  *negativa.LibDebloat
}

// NewResultCache returns a cache bounded to max entries (max < 1 is treated
// as 1). counters, when non-nil, mirrors cache.hits / cache.misses /
// cache.evictions for the service metrics endpoint.
func NewResultCache(max int, counters *metrics.CounterSet) *ResultCache {
	if max < 1 {
		max = 1
	}
	return &ResultCache{
		max:      max,
		entries:  map[string]*list.Element{},
		counters: counters,
	}
}

func (c *ResultCache) count(name string, p *int64) {
	*p++
	if c.counters != nil {
		c.counters.Add(name, 1)
	}
}

// Get returns the cached result for the key, refreshing its recency.
func (c *ResultCache) Get(key string) (*negativa.LibDebloat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.count("cache.misses", &c.misses)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.count("cache.hits", &c.hits)
	return el.Value.(*cacheEntry).ld, true
}

// Put stores a result, evicting least-recently-used entries beyond the
// bound. Re-putting an existing key refreshes its recency.
func (c *ResultCache) Put(key string, ld *negativa.LibDebloat) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).ld = ld
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, ld: ld})
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.count("cache.evictions", &c.evicted)
	}
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of cache effectiveness.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, Evictions: c.evicted}
}
