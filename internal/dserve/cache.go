package dserve

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"negativaml/internal/castore"
	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
)

// CacheKey derives the content address of one locate+compact computation —
// the shared hash of the locate and compact stage keys
// (negativa.LocateKey / negativa.CompactKey). The library name is
// deliberately excluded: identical libraries shared across installs (the
// dependency tail) hit the cache no matter which install or job they
// arrive through; hits re-label the report with the requesting library's
// name.
func CacheKey(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) string {
	return negativa.LocateKey(lib, usedFuncs, usedKernels, archs).Hash
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// ResultCache is the content-addressed locate+compact cache with LRU
// eviction bounded by retained bytes, not entry count: entries are sparse
// (a range set plus the report), so their real heap cost varies by orders
// of magnitude and a byte bound is the honest knob. A sparse entry keeps
// its original library image alive, so the cache also charges each
// distinct referenced image once (refcounted across entries) — the bound
// covers everything the cache alone can pin after the owning install is
// evicted. Stored values are immutable: hits hand out the shared report
// and sparse image, which callers must treat as read-only. Concurrent
// misses on the same key may compute the result twice; both Puts store
// identical content, so the race is benign.
type ResultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      list.List // front = most recently used
	// libRefs counts entries referencing each distinct library image;
	// the image's bytes are charged while the count is non-zero.
	libRefs  map[[sha256.Size]byte]int
	hits     int64
	misses   int64
	evicted  int64
	counters *metrics.CounterSet

	// store, when attached, is the disk-backed second tier: Put spills
	// results to it and GetOrLoad falls back to it on memory misses, so a
	// restarted service (or one whose memory tier evicted an entry) serves
	// warm without re-running locate/compact.
	store *castore.Store
	// spillCh feeds the write-behind worker: Put hands the disk spill to
	// it instead of fsyncing on the serve path. A full queue falls back to
	// an inline spill (backpressure), so disk writes never outrun the
	// worker unboundedly. Guarded by mu; nil once CloseSpill has run.
	spillCh chan spillJob
	spillWG sync.WaitGroup
	// inlineSpills counts backpressure spills currently running outside
	// the worker (queue full, or worker stopped). They are invisible to
	// the channel's barrier ordering, so Flush and CloseSpill wait on this
	// count — via inlineDone, signalled at zero — in addition to the
	// worker's ack. Guarded by mu.
	inlineSpills int
	inlineDone   *sync.Cond
}

// spillJob is one queued write-behind spill; a job with ack set is a
// Flush barrier — the worker closes ack instead of writing.
type spillJob struct {
	key string
	ld  *negativa.LibDebloat
	ack chan struct{}
}

type cacheEntry struct {
	key  string
	ld   *negativa.LibDebloat
	size int64
	// libDigest / libSize identify the original image the sparse report
	// references (hasLib false for reports without one, e.g. in tests).
	libDigest [sha256.Size]byte
	libSize   int64
	hasLib    bool
}

// entrySize charges an entry with the bytes its sparse report itself pins
// (key string + report + range set); the referenced library image is
// charged separately, once per distinct image, via libRefs.
func entrySize(key string, ld *negativa.LibDebloat) int64 {
	return int64(len(key)) + 64 + ld.Report.RetainedBytes()
}

// NewResultCache returns a cache bounded to maxBytes of retained entries
// (values < 1 are treated as 1 byte, i.e. effectively a single-entry
// scratch). counters, when non-nil, mirrors cache.hits / cache.misses /
// cache.evictions, and tracks cache.bytes as a gauge, for the service
// metrics endpoint.
func NewResultCache(maxBytes int64, counters *metrics.CounterSet) *ResultCache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &ResultCache{
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		libRefs:  map[[sha256.Size]byte]int{},
		counters: counters,
	}
	c.inlineDone = sync.NewCond(&c.mu)
	return c
}

func (c *ResultCache) count(name string, p *int64) {
	*p++
	if c.counters != nil {
		c.counters.Add(name, 1)
	}
}

// addBytes adjusts the retained-byte gauge.
func (c *ResultCache) addBytes(delta int64) {
	c.bytes += delta
	if c.counters != nil {
		c.counters.Add("cache.bytes", delta)
	}
}

// AttachStore wires the disk-backed second tier in and starts the
// write-behind spill worker. Call before serving; the cache never
// detaches a store.
func (c *ResultCache) AttachStore(st *castore.Store) {
	c.mu.Lock()
	c.store = st
	if c.spillCh == nil {
		c.spillCh = make(chan spillJob, 64)
		c.spillWG.Add(1)
		go c.spillLoop(st, c.spillCh)
	}
	c.mu.Unlock()
}

// spillConcurrency bounds in-flight write-behind spills. Each spill is a
// handful of fsyncs; issuing a few concurrently lets the device coalesce
// flushes instead of paying every sync's full latency serially.
const spillConcurrency = 4

// spillLoop is the write-behind dispatcher: it drains queued spills into
// the store, off the serve path, running up to spillConcurrency at once.
// A Flush barrier waits for everything dispatched before it — the
// dispatcher reads nothing further until the ack is released, so barrier
// ordering holds. A failed spill only costs durability — the memory tier
// already took the entry — so it is counted, not fatal.
func (c *ResultCache) spillLoop(st *castore.Store, ch chan spillJob) {
	defer c.spillWG.Done()
	sem := make(chan struct{}, spillConcurrency)
	var inflight sync.WaitGroup
	for j := range ch {
		if j.ack != nil {
			inflight.Wait()
			close(j.ack)
			continue
		}
		inflight.Add(1)
		sem <- struct{}{}
		go func(j spillJob) {
			defer func() { <-sem; inflight.Done() }()
			if err := spillResult(st, j.key, j.ld); err != nil && c.counters != nil {
				c.counters.Add("cache.spill_errors", 1)
			}
		}(j)
	}
	inflight.Wait()
}

// Flush blocks until every spill queued before the call has reached the
// store — including inline backpressure spills that bypassed the worker
// queue, which the channel barrier alone cannot see. Shutdown and tests
// use it; the serving path never waits on disk. Must not race CloseSpill.
func (c *ResultCache) Flush() {
	c.mu.Lock()
	if c.spillCh != nil {
		// The barrier send happens under mu so CloseSpill cannot close the
		// channel out from under it; the worker never takes mu, so the
		// send always drains even when the queue is momentarily full.
		ack := make(chan struct{})
		c.spillCh <- spillJob{ack: ack}
		c.mu.Unlock()
		<-ack
		c.mu.Lock()
	}
	// Inline spills started before this call hold the count; waiting for
	// zero closes the barrier's blind spot. Inline spills that start
	// after Flush was called may also be waited on — stricter than
	// required, and harmless.
	for c.inlineSpills > 0 {
		c.inlineDone.Wait()
	}
	c.mu.Unlock()
}

// CloseSpill drains the spill queue — and any inline backpressure spills
// in flight — then stops the worker. The cache remains usable afterwards:
// later Puts spill inline, as they do when the queue is full.
func (c *ResultCache) CloseSpill() {
	c.mu.Lock()
	ch := c.spillCh
	c.spillCh = nil
	c.mu.Unlock()
	if ch != nil {
		close(ch)
		c.spillWG.Wait()
	}
	c.mu.Lock()
	for c.inlineSpills > 0 {
		c.inlineDone.Wait()
	}
	c.mu.Unlock()
}

// Get returns the cached result for the key, refreshing its recency.
func (c *ResultCache) Get(key string) (*negativa.LibDebloat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.count("cache.misses", &c.misses)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.count("cache.hits", &c.hits)
	return el.Value.(*cacheEntry).ld, true
}

// Contains reports whether the key is resident in the memory tier,
// without touching recency or the hit/miss counters — the batch
// prefetch's local-presence probe must not skew the cache's observed
// behavior.
func (c *ResultCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// HasStored reports whether the attached store holds the key's persisted
// result (metadata plus the encoded sparse range set), without decoding
// anything. Keys replication pushed to this node probe true, so the batch
// prefetch skips re-fetching what LoadStored will serve without a round
// trip.
func (c *ResultCache) HasStored(key string) bool {
	c.mu.Lock()
	st := c.store
	c.mu.Unlock()
	if st == nil {
		return false
	}
	return st.Has(kindResult, key) && st.Has(kindSparse, key)
}

// GetOrLoad is the two-tier lookup: memory first, then the attached store
// (decoding the persisted range set against the caller's live library),
// then a miss. Disk hits are promoted into the memory tier. lib anchors the
// reconstruction; a stored result whose digest does not match it is ignored.
func (c *ResultCache) GetOrLoad(key string, lib *elfx.Library) (*negativa.LibDebloat, bool) {
	if ld, ok := c.Get(key); ok {
		return ld, true
	}
	return c.LoadStored(key, lib)
}

// LoadStored is the disk tier alone: the attached store's persisted range
// set is decoded against the caller's live library and promoted into the
// memory tier. Callers that need to distinguish memory hits from disk
// restores (the stage memo's source attribution) call Get then LoadStored;
// everyone else uses GetOrLoad.
func (c *ResultCache) LoadStored(key string, lib *elfx.Library) (*negativa.LibDebloat, bool) {
	c.mu.Lock()
	st := c.store
	c.mu.Unlock()
	if st == nil || lib == nil {
		return nil, false
	}
	ld, ok := loadResult(st, key, lib)
	if !ok {
		return nil, false
	}
	c.put(key, ld, false) // promote without re-spilling what we just read
	return ld, true
}

// retainLib charges the entry's referenced library image on its first
// reference; releaseLib refunds it on the last.
func (c *ResultCache) retainLib(ent *cacheEntry) {
	if !ent.hasLib {
		return
	}
	c.libRefs[ent.libDigest]++
	if c.libRefs[ent.libDigest] == 1 {
		c.addBytes(ent.libSize)
	}
}

func (c *ResultCache) releaseLib(ent *cacheEntry) {
	if !ent.hasLib {
		return
	}
	c.libRefs[ent.libDigest]--
	if c.libRefs[ent.libDigest] == 0 {
		delete(c.libRefs, ent.libDigest)
		c.addBytes(-ent.libSize)
	}
}

// evictOver drops least-recently-used entries until the retained bytes fit
// the bound; the most recent entry is never evicted, so one oversized
// result still caches.
func (c *ResultCache) evictOver() {
	for c.bytes > c.maxBytes && len(c.entries) > 1 {
		oldest := c.lru.Back()
		ent := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, ent.key)
		c.addBytes(-ent.size)
		c.releaseLib(ent)
		c.count("cache.evictions", &c.evicted)
	}
}

// Put stores a result, evicting least-recently-used entries until the
// retained bytes fit the bound, and spills it to the attached store so the
// result survives both memory eviction and restarts. Re-putting an existing
// key refreshes its recency (and re-checks the bound if the size changed).
func (c *ResultCache) Put(key string, ld *negativa.LibDebloat) {
	c.put(key, ld, true)
}

// enqueueSpill hands the entry to the write-behind worker. The send
// happens under mu (non-blocking) so it cannot race CloseSpill closing
// the channel; a full queue or a stopped worker falls back to an inline
// spill outside the lock — castore does its own locking and file I/O.
// The inline path registers itself in inlineSpills before dropping mu, so
// a Flush or CloseSpill barrier taken at any point after the fallback
// decision cannot ack until this spill has landed.
func (c *ResultCache) enqueueSpill(key string, ld *negativa.LibDebloat) {
	c.mu.Lock()
	st := c.store
	enqueued := false
	if st != nil && c.spillCh != nil {
		select {
		case c.spillCh <- spillJob{key: key, ld: ld}:
			enqueued = true
		default:
		}
	}
	if st == nil || enqueued {
		c.mu.Unlock()
		return
	}
	c.inlineSpills++
	c.mu.Unlock()
	if err := spillResult(st, key, ld); err != nil && c.counters != nil {
		c.counters.Add("cache.spill_errors", 1)
	}
	c.mu.Lock()
	c.inlineSpills--
	if c.inlineSpills == 0 {
		c.inlineDone.Broadcast()
	}
	c.mu.Unlock()
}

func (c *ResultCache) put(key string, ld *negativa.LibDebloat, spill bool) {
	if spill && ld.Report != nil && ld.Report.Sparse != nil {
		c.enqueueSpill(key, ld)
	}
	ent := &cacheEntry{key: key, ld: ld, size: entrySize(key, ld)}
	if sp := ld.Report.Sparse; sp != nil {
		lib := sp.Lib()
		ent.libDigest = lib.ContentDigest()
		ent.libSize = lib.FileSize()
		ent.hasLib = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.addBytes(ent.size - old.size)
		c.retainLib(ent)
		c.releaseLib(old)
		el.Value = ent
		c.lru.MoveToFront(el)
		c.evictOver()
		return
	}
	c.entries[key] = c.lru.PushFront(ent)
	c.addBytes(ent.size)
	c.retainLib(ent)
	c.evictOver()
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the retained bytes currently charged to the cache.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of cache effectiveness.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Bytes: c.bytes, Hits: c.hits, Misses: c.misses, Evictions: c.evicted}
}
