package dserve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
)

// smallLib builds a tiny CPU-only library for cache tests.
func smallLib(t *testing.T, name string, funcs ...string) *elfx.Library {
	t.Helper()
	b := elfx.NewBuilder(name)
	for _, f := range funcs {
		b.AddFunction(f, 32)
	}
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := elfx.Parse(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// gpuLib builds a tiny library carrying one cubin, for arch-sensitivity
// tests.
func gpuLib(t *testing.T, name string) *elfx.Library {
	t.Helper()
	b := elfx.NewBuilder(name)
	b.AddFunction("host", 32)
	c := cubin.New(gpuarch.SM75)
	c.AddKernel(cubin.Kernel{Name: "k", Code: bytes.Repeat([]byte{0x90}, 64), Flags: cubin.FlagEntry})
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fb := &fatbin.FatBin{}
	fb.AddRegion().AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	fbBytes, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b.SetFatbin(fbBytes)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := elfx.Parse(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestCacheKeyContentAddressing(t *testing.T) {
	libA := smallLib(t, "liba.so", "f1", "f2")
	sameBytes := smallLib(t, "liba.so", "f1", "f2")
	renamed, err := elfx.Parse("libother.so", libA.Data)
	if err != nil {
		t.Fatal(err)
	}

	k1 := CacheKey(libA, []string{"f1"}, nil, []gpuarch.SM{gpuarch.SM75})
	if k2 := CacheKey(sameBytes, []string{"f1"}, nil, []gpuarch.SM{gpuarch.SM75}); k2 != k1 {
		t.Error("identical bytes + symbols must produce identical keys")
	}
	// The key addresses content, not the library name — tail libraries
	// shared across installs hit regardless of which install asks.
	if k3 := CacheKey(renamed, []string{"f1"}, nil, []gpuarch.SM{gpuarch.SM75}); k3 != k1 {
		t.Error("library name must not affect the key")
	}
	if k4 := CacheKey(libA, []string{"f2"}, nil, []gpuarch.SM{gpuarch.SM75}); k4 == k1 {
		t.Error("different used-function sets must produce different keys")
	}
	if k5 := CacheKey(libA, []string{"f1"}, []string{"k"}, []gpuarch.SM{gpuarch.SM75}); k5 == k1 {
		t.Error("used kernels must be part of the key")
	}
	// CPU-only libraries are arch-independent: heterogeneous-device batches
	// share their cache entries.
	if k6 := CacheKey(libA, []string{"f1"}, nil, []gpuarch.SM{gpuarch.SM80}); k6 != k1 {
		t.Error("architectures must not affect CPU-only library keys")
	}

	// GPU-carrying libraries are arch-sensitive, with canonicalized order.
	g := gpuLib(t, "libgpu.so")
	g1 := CacheKey(g, nil, []string{"k"}, []gpuarch.SM{gpuarch.SM75})
	if g2 := CacheKey(g, nil, []string{"k"}, []gpuarch.SM{gpuarch.SM80}); g2 == g1 {
		t.Error("architectures must be part of GPU-library keys")
	}
	g3 := CacheKey(g, nil, []string{"k"}, []gpuarch.SM{gpuarch.SM80, gpuarch.SM75})
	g4 := CacheKey(g, nil, []string{"k"}, []gpuarch.SM{gpuarch.SM75, gpuarch.SM80})
	if g3 != g4 {
		t.Error("architecture order must not affect the key")
	}
	// Symbols must not smear across list boundaries.
	k9 := CacheKey(libA, []string{"f1", "f2"}, nil, nil)
	k10 := CacheKey(libA, []string{"f1"}, []string{"f2"}, nil)
	if k9 == k10 {
		t.Error("function and kernel lists must be domain-separated")
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	counters := metrics.NewCounterSet()
	mk := func(name string) *negativa.LibDebloat {
		return &negativa.LibDebloat{Report: &negativa.LibraryReport{Name: name}}
	}
	// Byte-bounded: room for two typical entries plus slack, so the third
	// insert forces an LRU eviction.
	unit := entrySize("k1", mk("a"))
	c := NewResultCache(2*unit+unit/2, counters)

	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("k1", mk("a"))
	c.Put("k2", mk("b"))
	if got := c.Bytes(); got != 2*unit {
		t.Fatalf("retained bytes = %d, want %d", got, 2*unit)
	}
	if ld, ok := c.Get("k1"); !ok || ld.Report.Name != "a" {
		t.Fatal("k1 must hit after Put")
	}

	// k1 was just used, so inserting k3 evicts k2 (LRU).
	c.Put("k3", mk("c"))
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should have been evicted (least recently used)")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("k1 should have survived eviction")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("k3 should be present")
	}

	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	if st.Bytes != c.Bytes() || st.Bytes <= 0 {
		t.Errorf("stats bytes = %d, live = %d", st.Bytes, c.Bytes())
	}
	// hits: k1, k1, k3 = 3; misses: k1(initial), k2(after evict) = 2.
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
	if counters.Get("cache.hits") != st.Hits || counters.Get("cache.misses") != st.Misses || counters.Get("cache.evictions") != st.Evictions {
		t.Errorf("counter mirror out of sync: %v vs %+v", counters.Snapshot(), st)
	}
	if counters.Get("cache.bytes") != st.Bytes {
		t.Errorf("cache.bytes gauge = %d, want %d", counters.Get("cache.bytes"), st.Bytes)
	}

	// Re-putting an existing key must not grow or evict.
	c.Put("k3", mk("c2"))
	if c.Len() != 2 {
		t.Errorf("len = %d after re-put, want 2", c.Len())
	}
	if ld, _ := c.Get("k3"); ld.Report.Name != "c2" {
		t.Error("re-put must replace the value")
	}
}

func TestCacheChargesReferencedImagesOnce(t *testing.T) {
	lib := smallLib(t, "liba.so", "f1", "f2")
	mk := func(funcs ...string) *negativa.LibDebloat {
		ld, err := negativa.LocateAndCompactLib(lib, funcs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ld
	}
	c := NewResultCache(1<<20, nil)
	c.Put("k1", mk("f1"))
	withOne := c.Bytes()
	if withOne <= lib.FileSize() {
		t.Fatalf("bytes = %d must include the referenced image (%d)", withOne, lib.FileSize())
	}
	// A second entry over the same image must not charge the image again.
	c.Put("k2", mk("f2"))
	if grew := c.Bytes() - withOne; grew >= lib.FileSize() {
		t.Fatalf("second entry grew bytes by %d — image charged twice", grew)
	}
	// Shrinking the bound below the image evicts down to one entry but the
	// survivor still pins (and charges) the image.
	small := NewResultCache(lib.FileSize()/2, nil)
	small.Put("k1", mk("f1"))
	small.Put("k2", mk("f2"))
	if small.Len() != 1 {
		t.Fatalf("len = %d, want 1 under a bound smaller than the image", small.Len())
	}
	if small.Bytes() <= lib.FileSize() {
		t.Fatalf("bytes = %d must still charge the surviving entry's image", small.Bytes())
	}
}

func TestCacheRePutRechecksBound(t *testing.T) {
	mk := func(name string, kernels int) *negativa.LibDebloat {
		lr := &negativa.LibraryReport{Name: name}
		for i := 0; i < kernels; i++ {
			lr.UsedKernels = append(lr.UsedKernels, "kernel_with_a_long_name")
		}
		return &negativa.LibDebloat{Report: lr}
	}
	unit := entrySize("k1", mk("a", 0))
	c := NewResultCache(3*unit, nil)
	c.Put("k1", mk("a", 0))
	c.Put("k2", mk("b", 0))
	// Re-putting k2 with a much larger payload must evict k1, not leave
	// the cache over its bound.
	c.Put("k2", mk("b", 200))
	if c.Bytes() > 3*unit+entrySize("k2", mk("b", 200)) {
		t.Fatalf("bytes = %d way over bound after re-put", c.Bytes())
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted by the oversized re-put")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("re-put entry must survive")
	}
}

func TestCacheOversizedEntryStillCaches(t *testing.T) {
	c := NewResultCache(1, nil) // 1 byte: every entry is oversized
	ld := &negativa.LibDebloat{Report: &negativa.LibraryReport{Name: "big"}}
	c.Put("k", ld)
	if got, ok := c.Get("k"); !ok || got != ld {
		t.Fatal("the newest entry must never be evicted by its own Put")
	}
	c.Put("k2", ld)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (previous oversized entry evicted)", c.Len())
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 must be present")
	}
}

// spillableResult builds a LibDebloat carrying a sparse image, so Put
// takes the disk-spill path.
func spillableResult(t *testing.T, name string) *negativa.LibDebloat {
	t.Helper()
	lib := smallLib(t, name, "f1", "f2")
	return &negativa.LibDebloat{Report: &negativa.LibraryReport{
		Name:   name,
		Sparse: negativa.NewSparseImage(lib, nil),
	}}
}

// TestCacheFlushWaitsForInlineSpill is the barrier-blind-spot regression:
// once CloseSpill has stopped the worker, Puts spill inline, and a Flush
// issued while such a spill is mid-write must not ack until it lands.
func TestCacheFlushWaitsForInlineSpill(t *testing.T) {
	gate := make(chan struct{})
	var entered sync.Once
	enteredCh := make(chan struct{})
	st, err := castore.Open(t.TempDir(), castore.Options{
		BeforeRename: func(kind, key string) error {
			entered.Do(func() { close(enteredCh) })
			<-gate
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	c := NewResultCache(1<<20, nil)
	c.AttachStore(st)
	c.CloseSpill() // stop the worker: every later Put spills inline

	ld := spillableResult(t, "libinline.so")
	key := CacheKey(ld.Report.Sparse.Lib(), []string{"f1"}, nil, nil)
	putDone := make(chan struct{})
	go func() {
		c.Put(key, ld)
		close(putDone)
	}()
	<-enteredCh // the inline spill is now mid-write, blocked in castore

	flushDone := make(chan struct{})
	go func() {
		c.Flush()
		close(flushDone)
	}()
	select {
	case <-flushDone:
		t.Fatal("Flush acked while an inline spill was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	<-putDone
	<-flushDone
	if !st.Has(kindResult, key) {
		t.Fatal("Flush returned but the spilled result is not in the store")
	}
}

// TestCacheCloseSpillDrainsQueueAndInline floods the write-behind queue
// until Puts fall back to inline spills, then closes the spill plane:
// CloseSpill must drain every queued job and wait out every inline spill —
// nothing enqueued before the close may be dropped. Run under -race (the
// CI race gate covers this package).
func TestCacheCloseSpillDrainsQueueAndInline(t *testing.T) {
	gate := make(chan struct{})
	st, err := castore.Open(t.TempDir(), castore.Options{
		BeforeRename: func(kind, key string) error {
			<-gate
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	c := NewResultCache(1<<22, nil)
	c.AttachStore(st)

	// 4 spills wedge the workers, 64 fill the queue, the rest go inline.
	const total = 76
	ld := spillableResult(t, "libflood.so")
	keys := make([]string, total)
	var puts sync.WaitGroup
	for i := 0; i < total; i++ {
		keys[i] = fmt.Sprintf("%s-%03d", CacheKey(ld.Report.Sparse.Lib(), []string{"f1"}, nil, nil)[:16], i)
		puts.Add(1)
		go func(k string) {
			defer puts.Done()
			c.Put(k, ld)
		}(keys[i])
	}

	// Give the flood a moment to wedge, then release the store and close
	// the spill plane concurrently with the still-running Puts.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	puts.Wait()
	c.CloseSpill()

	for _, k := range keys {
		if !st.Has(kindResult, k) {
			t.Fatalf("key %s was dropped by CloseSpill", k)
		}
	}
}
