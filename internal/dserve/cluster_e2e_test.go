package dserve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
)

// testNode is one in-process cluster member: a full service with its own
// castore behind a real HTTP server.
type testNode struct {
	id    string
	svc   *Service
	srv   *httptest.Server
	store *castore.Store
}

func (n *testNode) close() {
	n.srv.Close()
	n.svc.Close()
	n.store.Close()
}

// startCluster boots `ids` nodes, each with its own data dir and HTTP
// server, then joins them into one ring. Probation is effectively infinite
// so a killed node stays dead for the test's duration.
func startCluster(t *testing.T, ids ...string) map[string]*testNode {
	t.Helper()
	nodes := map[string]*testNode{}
	urls := map[string]string{}
	for _, id := range ids {
		st, err := castore.Open(t.TempDir(), castore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(Config{Workers: 4, MaxSteps: 2, Store: st})
		srv := httptest.NewServer(NewHandler(svc))
		nodes[id] = &testNode{id: id, svc: svc, srv: srv, store: st}
		urls[id] = srv.URL
	}
	for _, n := range nodes {
		c := cluster.New(n.id, urls, cluster.Options{
			Counters:         n.svc.Counters,
			Timings:          n.svc.Timings,
			FailureThreshold: 1,
			Probation:        time.Hour,
			Timeout:          30 * time.Second,
		})
		n.svc.AttachCluster(c)
	}
	return nodes
}

func fetchPeerJobLib(t *testing.T, srv *httptest.Server, jobID, name string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + jobID + "/libs/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s/%s: status %d", jobID, name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterThreeNodeE2E is the sharded serving plane's acceptance test:
//
//  1. Node A computes a batch — its stages execute on (and are memoized
//     by) their owning shards across the ring.
//  2. The same batch submitted to node B completes without any local
//     locate/compact (analysis.computed delta 0): everything arrives
//     through the peer tier or B's own shard-resident memo, and every
//     fetched library is byte-identical to A's.
//  3. Killing node C mid-run still completes batches: the ring shrinks
//     and C-owned stages fall back (peer.fallbacks > 0).
func TestClusterThreeNodeE2E(t *testing.T) {
	nodes := startCluster(t, "a", "b", "c")
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	a, b, c := nodes["a"], nodes["b"], nodes["c"]

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  10,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
		},
		MaxSteps: 2,
	}

	// ---- Phase 1: node A computes the batch across the ring ----
	stA := postJob(t, a.srv, req)
	doneA := pollDone(t, a.srv, stA.ID)
	if doneA.State != JobDone {
		t.Fatalf("node A job failed: %s", doneA.Error)
	}
	if doneA.Verified == nil || !*doneA.Verified {
		t.Fatal("node A batch must verify")
	}
	// With ~14 stage keys over 3 nodes, A almost surely routed some stages
	// to B or C — meaning those shards executed and memoized them.
	remoteExecs := a.svc.Counters.Get("peer.remote_execs")
	served := b.svc.Counters.Get("peer.served_compacts") + c.svc.Counters.Get("peer.served_compacts") +
		b.svc.Counters.Get("peer.served_detects") + c.svc.Counters.Get("peer.served_detects")
	if remoteExecs == 0 || served == 0 {
		t.Fatalf("node A should have executed stages on owning shards: remote_execs=%d served=%d", remoteExecs, served)
	}

	var repA jobReport
	if code := getJSON(t, a.srv.URL+"/v1/jobs/"+stA.ID+"/report", &repA); code != http.StatusOK {
		t.Fatalf("node A report status %d", code)
	}

	// ---- Phase 2: the same batch on node B is pure reuse ----
	analysisBefore := b.svc.Counters.Get("analysis.computed")
	stB := postJob(t, b.srv, req)
	doneB := pollDone(t, b.srv, stB.ID)
	if doneB.State != JobDone {
		t.Fatalf("node B job failed: %s", doneB.Error)
	}
	if doneB.Verified == nil || !*doneB.Verified {
		t.Fatal("node B batch must verify")
	}
	if delta := b.svc.Counters.Get("analysis.computed") - analysisBefore; delta != 0 {
		t.Fatalf("node B ran locate/compact %d times locally; the cluster should have absorbed all of it", delta)
	}
	if hits := b.svc.Counters.Get("peer.hits"); hits == 0 {
		t.Fatal("node B should have read stages through their owning peers")
	}
	// Read-through replicates toward demand: peer-served compact results
	// were spilled into B's own castore. The spill is write-behind, so
	// drain it before looking at the store.
	b.svc.Cache.Flush()
	if b.store.Stats().Puts == 0 {
		t.Fatal("peer-served results should have been written into node B's castore")
	}

	// Byte-identical libraries from both nodes' jobs.
	var repB jobReport
	if code := getJSON(t, b.srv.URL+"/v1/jobs/"+stB.ID+"/report", &repB); code != http.StatusOK {
		t.Fatalf("node B report status %d", code)
	}
	if len(repB.Libs) != len(repA.Libs) {
		t.Fatalf("lib count mismatch: A=%d B=%d", len(repA.Libs), len(repB.Libs))
	}
	for _, lr := range repA.Libs {
		la := fetchPeerJobLib(t, a.srv, stA.ID, lr.Name)
		lb := fetchPeerJobLib(t, b.srv, stB.ID, lr.Name)
		if string(la) != string(lb) {
			t.Fatalf("library %s differs between nodes A and B", lr.Name)
		}
	}

	// ---- Phase 3: kill node C; the ring degrades gracefully ----
	c.srv.Close()
	freshReq := JobRequest{
		Framework: "tensorflow", // a fresh install: every stage key is new
		TailLibs:  10,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
		},
		MaxSteps: 2,
	}
	stA2 := postJob(t, a.srv, freshReq)
	doneA2 := pollDone(t, a.srv, stA2.ID)
	if doneA2.State != JobDone {
		t.Fatalf("batch after killing node C failed: %s", doneA2.Error)
	}
	if doneA2.Verified == nil || !*doneA2.Verified {
		t.Fatal("degraded batch must still verify")
	}
	if fallbacks := a.svc.Counters.Get("peer.fallbacks"); fallbacks == 0 {
		t.Fatal("killing node C should have forced local fallbacks on node A")
	}
	// The ring shrank around the dead node.
	if n := len(a.svc.Cluster().Nodes()); n != 2 {
		t.Fatalf("node A's ring should have shrunk to 2 nodes, has %d", n)
	}

	// A second degraded submit exercises the shrunken ring: C-owned keys
	// now route to the survivors (or self) without touching C. Write-back
	// replication from the batch above raced the kill, so drain it before
	// snapshotting the transport-error count.
	a.svc.WaitReplication()
	transportErrs := a.svc.Counters.Get("peer.transport_errors")
	stA3 := postJob(t, a.srv, freshReq)
	if doneA3 := pollDone(t, a.srv, stA3.ID); doneA3.State != JobDone {
		t.Fatalf("repeat degraded batch failed: %s", doneA3.Error)
	}
	if got := a.svc.Counters.Get("peer.transport_errors"); got != transportErrs {
		t.Fatalf("shrunken ring still routed %d requests to the dead node", got-transportErrs)
	}
}
