// Package dserve is the concurrent batch-debloat service: it scales the
// single-workload detect→locate→compact→verify pipeline of
// internal/negativa to the fleet setting, where one framework install must
// be debloated against many workloads at once and identical work must never
// be repeated.
//
// # Architecture
//
// Every batch executes as a stage graph (internal/plan): each pipeline
// phase is a node with an explicit content-derived cache key, scheduled in
// dependency order over one service-wide bounded worker pool and memoized
// per stage. For a batch of M workloads over an install of N libraries the
// node DAG is
//
//	detect(w1) … detect(wM)        libindex(lib1) … libindex(libN)
//	      \   |   /                      |                |
//	       [union]───────────┬──── locate(lib1) …  locate(libN)
//	                         │           |                |
//	                         └──── compact(lib1) … compact(libN)
//	                                      \              /
//	                                       [clone install]
//	                                      /              \
//	                            verifyrun(w1)  …  verifyrun(wM)
//
// with keys
//
//	detect    (install fingerprint, workload identity)   identity embeds the step cap
//	libindex  library content digest
//	locate    (library digest, union used-symbol sets, target archs)
//	compact   its locate key                             pure function of the location
//	verifyref (install fingerprint, identity at the verification step cap)
//	verifyrun unmemoized by design — see below
//
// Locate keys resolve late, after the union node has produced the merged
// used-symbol sets; the scheduler then consults the stage memo before
// running the node, so a key already computed by any prior batch — or any
// prior boot — absorbs the work.
//
// The stage memo (StageMemo) tiers memory → disk → owning cluster peer
// per stage:
//
//   - detect → the profile Registry: (install fingerprint, workload
//     identity) entries in memory, snapshotted to the content-addressed
//     store and replayed at boot. A workload profiled once is never
//     profiled again on the same install, across jobs and restarts.
//   - compact → the ResultCache: byte-bounded LRU memory over sparse
//     locate+compact results, spilling to and reloading from the
//     castore disk tier (decoded against the live library). Identical
//     libraries shared across installs — the dependency tail, which
//     dominates library counts — are analyzed once no matter how many
//     installs or jobs reference them.
//   - everything else (libindex, locate, the capped reference run) → a
//     bounded in-memory memo with singleflight dedup: concurrent batches
//     computing the same stage key run it once and share the value.
//
// Verification nodes are deliberately unmemoized: a resubmitted batch
// re-validates what the service hands out. Only an explicit incremental
// re-submit carries verification outcomes over (next section).
//
// Per-stage hit/miss counters (stage.<name>.hits / .misses, with
// .disk_hits / .peer_hits tier attribution) and timings feed /v1/metrics'
// stages section.
//
// # Sharding
//
// With a cluster attached (AttachCluster, fed by negativa-served's
// -peers/-node-id flags), the stage content keys double as the sharding
// unit: a consistent-hash ring (internal/cluster) assigns each detect and
// compact key an R-way replica set of owning nodes (default R=2), and the
// stage memo gains a third tier. Any node accepts any batch; a stage
// whose local tiers miss is read through its remote owners in measured-
// latency order (POST /v1/peer/lookup) and, when every replica misses,
// executed on the primary shard (POST /v1/peer/detect with the workload
// spec, POST /v1/peer/compact with the library image inline), so the
// owning shard memoizes what it executed and the whole cluster shares one
// logical cache. Peer-served values are written into the local tiers —
// memory, and the castore when attached — so hot artifacts replicate
// toward demand; freshly computed values are additionally pushed back to
// the other live owners of their key (write-back replication, repair.go),
// and a periodic anti-entropy sweep (Config.RepairInterval / RepairNow)
// stat-probes the remote owners of every locally held artifact and
// streams what they are missing through the castore's checksummed frames
// (GET/PUT /v1/peer/objects/{kind}/{key}, POST /v1/peer/stat). Locate
// needs no peer tier: its memoized value is a lazy handle that only
// resolves under a compact miss, and compact misses route to the owners.
//
// Every peer failure degrades gracefully — transport errors shrink the
// ring around the dead node and the stage computes locally; correctness
// never depends on a peer. Membership is active where it matters:
// heartbeats gossip the member set and detect silent failures, explicit
// join/leave (POST /v1/peer/join|leave) makes planned changes immediate,
// and LeaveCluster hands a departing node's primary-owned objects to the
// ring's next owners first. /v1/metrics gains a peer section
// (hits/misses/fallbacks/remote_execs/replica_reads plus per-peer health)
// and per-peer latency timings, and the counters map carries the
// replication plane's peer.replica_* / repair.* series.
// docs/ARCHITECTURE.md draws the full picture.
//
// # Incremental re-submit
//
// POST /v1/submit (or /v1/jobs) with "base": "<job-id>" extends a
// completed job's workload set instead of re-paying every stage. The
// request must be a superset of the base's members (identity-compared) on
// the same install, step cap, and verification mode. Then:
//
//   - Detection: every base member's profile is already registered, so
//     the batch performs zero detection runs for them (and for any added
//     member profiled before).
//   - Location/compaction: libraries whose union used-symbol sets are
//     unchanged by the added members resolve to their base stage keys and
//     absorb through the memo; only the union-delta recomputes.
//   - Verification: base members' outcomes carry over without a re-run —
//     the superset union retains everything the base union did, so base
//     members stay verified by construction; only fresh members re-run.
//
// The base job is pinned for the duration of the batch, so eviction
// cannot release the store objects its stage keys absorb through. The
// job report's "incremental" section records absorbed vs delta libraries
// and carried verifications.
//
// Concurrency contract: *elfx.Library and *mlframework.Install values are
// immutable after parsing/generation and shared read-only across
// goroutines; each workload run constructs its own cudasim.Driver. Memoized
// stage values (profiles, locations, compacted results and their images)
// are immutable once stored and handed out shared — callers must not
// mutate them.
//
// # Durability
//
// With a castore.Store attached (Config.Store), the service is durable:
// the compact-stage memo gains its disk tier (memory miss → disk hit →
// recompute), every detection profile snapshots on Put and replays on
// boot, and each completed job spills a manifest referencing its library
// images, sparse range sets, and reports — all content-addressed. A
// restarted service restores its jobs lazily: status reads the manifest,
// and the first report or fetch-library request materializes the result
// from the store without re-running detection, location, or compaction.
// Jobs retain (refcount) their store objects until evicted from the
// bounded job table; an open fetch-library stream pins its job so eviction
// never releases images under an in-flight response.
//
// The HTTP front end (NewHandler, served by cmd/negativa-served) exposes
// job submission (incremental included), status, full reports,
// debloated-library download, and a metrics snapshot backed by
// internal/metrics counters and timings, plus a store-stats endpoint when
// a data dir is configured.
package dserve
