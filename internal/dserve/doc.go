// Package dserve is the concurrent batch-debloat service: it scales the
// single-workload detect→locate→compact→verify pipeline of
// internal/negativa to the fleet setting, where one framework install must
// be debloated against many workloads at once and identical work must never
// be repeated.
//
// # Architecture
//
// Three reuse layers sit between a submitted job and the pipeline stages:
//
//   - Profile registry (Registry): detection profiles are stored keyed by
//     (install fingerprint, workload identity). A workload profiled once is
//     never profiled again on the same install, across jobs. The registry
//     also computes union profiles over workload sets via
//     negativa.MergeProfiles — per library, the union of used kernels and
//     CPU functions — so one compacted install safely serves N workloads.
//
//   - Content-addressed result cache (ResultCache): each per-library
//     locate+compact result is cached under SHA-256(library bytes,
//     used-symbol sets, target architectures) with LRU eviction. Identical
//     libraries shared across installs — the dependency tail, which
//     dominates library counts — are analyzed once no matter how many
//     installs or jobs reference them.
//
//   - Bounded worker pool (Pool): one service-wide counting semaphore caps
//     concurrently executing tasks. Jobs run on their own goroutines;
//     within a job, per-workload detection runs, per-library locate/compact
//     tasks, and per-workload verification runs all fan out through the
//     pool, so concurrent jobs share capacity fairly. Pool.Map is never
//     nested, which keeps the semaphore deadlock-free.
//
// A batch (Service.DebloatBatch) proceeds in phases: detect every member
// workload (registry-backed, parallel), merge into a union profile, locate
// and compact every library against the union (cache-backed, parallel),
// then verify — the union-debloated install must reproduce every member
// workload's reference digest. Because the union retains every kernel and
// function any member uses, verification holds for all members by
// construction; the service still re-runs each one, exactly as the paper's
// tool re-runs its workload.
//
// Concurrency contract: *elfx.Library and *mlframework.Install values are
// immutable after parsing/generation and shared read-only across
// goroutines; each workload run constructs its own cudasim.Driver. Cached
// LibDebloat values (including compacted images) are immutable once stored
// and handed out shared — callers must not mutate them.
//
// # Durability
//
// With a castore.Store attached (Config.Store), the service is durable:
// the result cache gains a disk tier (memory miss → disk hit → recompute),
// every detection profile snapshots on Put and replays on boot, and each
// completed job spills a manifest referencing its library images, sparse
// range sets, and reports — all content-addressed. A restarted service
// restores its jobs lazily: status reads the manifest, and the first
// report or fetch-library request materializes the result from the store
// without re-running detection, location, or compaction. Jobs retain
// (refcount) their store objects until evicted from the bounded job table;
// an open fetch-library stream pins its job so eviction never releases
// images under an in-flight response.
//
// The HTTP front end (NewHandler, served by cmd/negativa-served) exposes
// job submission, status, full reports, debloated-library download, and a
// metrics snapshot backed by internal/metrics counters and timings, plus
// a store-stats endpoint when a data dir is configured.
package dserve
