package dserve

import "sync"

// Event types and the terminal states they carry. A job's event stream is
// an append-only log: state transitions (queued → running → done|failed)
// interleaved with one event per completed analysis stage, each carrying
// the monotone stages_done/stages_total progress pair. The gateway mirrors
// these logs verbatim (re-sequenced) into its own per-job streams.
const (
	// EventState marks a job state transition; State holds the new state
	// and Terminal marks the log complete.
	EventState = "state"
	// EventStage marks one completed plan node; Stage names it and Hit
	// reports whether a memo tier served it.
	EventStage = "stage"
)

// JobEvent is one entry of a job's live progress stream, delivered over
// GET /v1/jobs/{id}/events as SSE data lines or long-poll batches.
type JobEvent struct {
	// Seq is the event's position in the job's log, starting at 0; clients
	// resume long-polls with ?after=<last seq>.
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// State is set on EventState events.
	State string `json:"state,omitempty"`
	// Error carries a failed job's message on its terminal event.
	Error string `json:"error,omitempty"`
	// Stage, Hit, StagesDone, and StagesTotal are set on EventStage events.
	// StagesDone never decreases; StagesTotal is fixed once the batch's
	// stage graph is planned.
	Stage       string `json:"stage,omitempty"`
	Hit         bool   `json:"hit,omitempty"`
	StagesDone  int    `json:"stages_done,omitempty"`
	StagesTotal int    `json:"stages_total,omitempty"`
	// Terminal marks the stream's final event; no events follow it.
	Terminal bool `json:"terminal,omitempty"`
	// ResultBytes, set on a done job's terminal event, is the total
	// debloated-image bytes the job retains — the amount a front-door
	// result quota charges. Carrying it on the event (rather than having
	// consumers re-fetch the job) closes the race against MaxJobs pruning
	// evicting the job between its terminal event and the lookup.
	ResultBytes int64 `json:"result_bytes,omitempty"`
}

// EventLog is an append-only, terminally-closed event sequence with
// change notification — the storage behind one job's progress stream.
// Appends assign sequence numbers; readers poll After and block on the
// returned channel. Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	events  []JobEvent
	done    bool
	changed chan struct{}
}

// NewEventLog returns an empty open log.
func NewEventLog() *EventLog {
	return &EventLog{changed: make(chan struct{})}
}

// Append adds the event (assigning its Seq) and wakes every waiter. Events
// appended after a terminal one are dropped — the stream is over.
func (l *EventLog) Append(e JobEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	e.Seq = len(l.events)
	l.events = append(l.events, e)
	if e.Terminal {
		l.done = true
	}
	close(l.changed)
	l.changed = make(chan struct{})
}

// After returns every event with Seq > after, whether the log is
// terminally closed, and a channel that closes on the next append. A
// reader with no fresh events selects on the channel (against its own
// cancellation) and calls After again.
func (l *EventLog) After(after int) ([]JobEvent, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := after + 1
	if n < 0 {
		n = 0
	}
	var out []JobEvent
	if n < len(l.events) {
		out = append(out, l.events[n:]...)
	}
	return out, l.done, l.changed
}

// Len returns the number of events appended so far.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
