package dserve_test

import (
	"fmt"

	"negativaml/internal/dserve"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
)

// Example shows the in-process batch API: one install union-debloated
// against two workloads, then a warm repeat served from the registry and
// cache.
func Example() {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	specs := []dserve.WorkloadSpec{
		{Model: "MobileNetV2", Batch: 1},
		{Model: "Transformer", Train: true, Batch: 128},
	}
	ws := make([]mlruntime.Workload, len(specs))
	for i, sp := range specs {
		if ws[i], err = sp.Workload(in); err != nil {
			fmt.Println(err)
			return
		}
	}

	svc := dserve.NewService(dserve.Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()

	cold, err := svc.DebloatBatch(in, ws, dserve.BatchOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	warm, err := svc.DebloatBatch(in, ws, dserve.BatchOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cold: verified=%v hits=%d\n", cold.AllVerified(), cold.CacheHits)
	fmt.Printf("warm: verified=%v misses=%d reuses=%d\n", warm.AllVerified(), warm.CacheMisses, warm.ProfileReuses)
	// Output:
	// cold: verified=true hits=0
	// warm: verified=true misses=0 reuses=2
}
