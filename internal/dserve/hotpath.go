package dserve

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"

	"negativaml/internal/cluster"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// The cluster hot path: batched scatter-gather peer lookups plus hedged
// replica reads.
//
// Before this layer, a peer-warm batch paid one HTTP round trip per stage
// key (15 keys → 15 round trips) and each key probed its replicas
// sequentially — wall time scaled with the number of artifacts. Now
// DebloatBatch front-loads two prefetch nodes (one for detect keys, one
// for compact keys derived from the union): each collects the batch's
// ready keys, groups them by replica set, and issues one
// POST /v1/peer/lookup-batch per group, hedged through
// cluster.HedgedCall so a stalled replica costs its p95 latency, not the
// transport timeout. Found values land in the local tiers (registry /
// result cache) before the stage nodes consult the memo, so the batch's
// wall clock is bounded by the slowest single round trip, not the key
// count. Keys every replica missed are marked, and the stage node skips
// its own lookup probe — straight to remote execution or local compute —
// so the cold path sheds its probe round trips too.
//
// A singleflight table spans the prefetch and on-demand paths: one stage
// key never has two remote reads (or two local computes racing a
// prefetch) in flight at once, whichever path asks first.

// prefetchItem is one stage key the batch will need, with the memo hint
// its value must be decoded against (the compact stage's live library).
type prefetchItem struct {
	key  plan.Key
	hint any
}

// ---- Singleflight across prefetch and on-demand reads ----

// beginFlight claims the key's flight slot. True means the caller is the
// leader and must endFlight when its local tiers hold the outcome (or the
// attempt failed); false means another reader owns the key right now.
func (m *StageMemo) beginFlight(k plan.Key) bool {
	m.flightMu.Lock()
	defer m.flightMu.Unlock()
	if m.flights == nil {
		m.flights = map[plan.Key]chan struct{}{}
	}
	if _, inFlight := m.flights[k]; inFlight {
		return false
	}
	m.flights[k] = make(chan struct{})
	return true
}

// endFlight releases the key's flight slot, waking every waiter. Callers
// plant results into the local tiers before calling it, so woken waiters
// re-probe and hit.
func (m *StageMemo) endFlight(k plan.Key) {
	m.flightMu.Lock()
	ch := m.flights[k]
	delete(m.flights, k)
	m.flightMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// awaitFlight blocks until the key's current flight (if any) ends,
// yielding the caller's executor slot for the duration — a waiter is pure
// wait, and holding a worker slot across it could deadlock a Workers=1
// pool against the leader re-acquiring its own slot. slot, when non-nil,
// is the calling node's own executor (see slotOf).
func (m *StageMemo) awaitFlight(slot plan.Executor, k plan.Key) {
	m.flightMu.Lock()
	ch := m.flights[k]
	m.flightMu.Unlock()
	if ch == nil {
		return
	}
	if ex := m.slotOf(slot); ex != nil {
		ex.Release()
		defer ex.Acquire()
	}
	<-ch
}

// ---- Prefetch outcome marks ----

// markPrefetched records that the key's value was planted into the local
// tiers by a batch lookup; the next local-tier hit reads back as
// SourcePeer (consumeSource), keeping tier attribution and peer-hit
// accounting identical to the per-key path.
func (m *StageMemo) markPrefetched(k plan.Key) {
	m.hotMu.Lock()
	if m.prefetched == nil {
		m.prefetched = map[plan.Key]bool{}
	}
	m.prefetched[k] = true
	m.hotMu.Unlock()
}

// consumeSource resolves a local-tier hit's attribution: a key the
// prefetch planted reads as SourcePeer exactly once, everything else keeps
// the tier's own source.
func (m *StageMemo) consumeSource(k plan.Key, def plan.Source) plan.Source {
	m.hotMu.Lock()
	defer m.hotMu.Unlock()
	if m.prefetched[k] {
		delete(m.prefetched, k)
		return plan.SourcePeer
	}
	return def
}

// markMiss records that a live replica answered found=false for the key
// in a batch lookup; consumeMiss hands the mark to the stage node, which
// then skips its own lookup probe and escalates straight to remote
// execution or local compute. One replica's clean miss stands in for the
// set's: write-back replication converges replicas immediately, and the
// rare stale mark only costs an execute request the owner answers from
// its memo.
func (m *StageMemo) markMiss(k plan.Key) {
	m.hotMu.Lock()
	if m.missed == nil {
		m.missed = map[plan.Key]bool{}
	}
	m.missed[k] = true
	m.hotMu.Unlock()
}

func (m *StageMemo) consumeMiss(k plan.Key) bool {
	m.hotMu.Lock()
	defer m.hotMu.Unlock()
	if m.missed[k] {
		delete(m.missed, k)
		return true
	}
	return false
}

// clearMarks drops whatever prefetch outcome marks remain for the given
// keys. Stage nodes consume their marks on the normal path, but a batch
// that aborts between prefetch and consumption (a key-fn or upstream node
// error) would otherwise leave entries behind forever — and a stale miss
// mark would make a later batch for the same key skip its lookup probe
// even though a replica may hold the value by then. DebloatBatch calls it
// on every exit, scoping the marks to the batch that planted them.
func (m *StageMemo) clearMarks(keys []plan.Key) {
	m.hotMu.Lock()
	for _, k := range keys {
		delete(m.prefetched, k)
		delete(m.missed, k)
	}
	m.hotMu.Unlock()
}

// markNoBatch remembers a peer that answered 404 to the lookup-batch
// route — a node predating it. The mark is per-process: batches skip the
// peer from then on and its keys degrade to per-key lookups.
func (m *StageMemo) markNoBatch(peer string) {
	m.hotMu.Lock()
	if m.noBatch == nil {
		m.noBatch = map[string]bool{}
	}
	if !m.noBatch[peer] {
		m.noBatch[peer] = true
		m.count("peer.batch_unsupported")
	}
	m.hotMu.Unlock()
}

func (m *StageMemo) batchCapable(peer string) bool {
	m.hotMu.Lock()
	defer m.hotMu.Unlock()
	return !m.noBatch[peer]
}

// countRoundTrip tallies one read-path peer round trip — the numerator
// the batching win is asserted with (peer.round_trips).
func (m *StageMemo) countRoundTrip() { m.count("peer.round_trips") }

// ---- Hedged per-key lookup (the on-demand path's replica read) ----

// hedgedLookup reads one stage key through its remote replicas: the first
// two in latency order race under cluster.HedgedCall (the hedge fires at
// the primary target's p95), the rest are tried sequentially only if both
// miss or fail. Returns the found response and the peer that served it.
// The caller's executor slot is yielded for the whole exchange — it is
// pure network wait; slot, when non-nil, is the calling node's own
// executor (see slotOf).
func (m *StageMemo) hedgedLookup(slot plan.Executor, remotes []string, req peerLookupRequest) (*peerLookupResponse, string, bool) {
	if len(remotes) == 0 {
		return nil, "", false
	}
	if ex := m.slotOf(slot); ex != nil {
		ex.Release()
		defer ex.Acquire()
	}
	var mu sync.Mutex
	done := map[string]bool{} // peers whose attempt completed un-cancelled
	attempt := func(ctx context.Context, peer string) (any, bool, error) {
		m.countRoundTrip()
		var lr peerLookupResponse
		err := m.cluster.PostJSONCtx(ctx, peer, "/v1/peer/lookup", req, &lr)
		if err != nil {
			if ctx.Err() == nil {
				m.count("peer.fallbacks")
				mu.Lock()
				done[peer] = true
				mu.Unlock()
			}
			return nil, false, err
		}
		mu.Lock()
		done[peer] = true
		mu.Unlock()
		if !lr.Found {
			m.count("peer.misses")
			return nil, false, nil
		}
		return &lr, true, nil
	}
	if v, peer, ok := m.cluster.HedgedCall(remotes, attempt); ok {
		return v.(*peerLookupResponse), peer, true
	}
	// Both racers missed or failed; walk the remaining replicas one at a
	// time, skipping any the race already answered for.
	for _, r := range remotes[1:] {
		mu.Lock()
		tried := done[r]
		mu.Unlock()
		if tried {
			continue
		}
		if v, ok, _ := attempt(context.Background(), r); ok {
			return v.(*peerLookupResponse), r, true
		}
	}
	return nil, "", false
}

// ---- Batch prefetch ----

// lookupGroup is one replica set's slice of a prefetch: every key whose
// remote owners are exactly this set, answered by any one member.
type lookupGroup struct {
	remotes []string
	items   []prefetchItem
}

// PrefetchLookups warms the local tiers for a batch's stage keys in as
// few round trips as the ring has replica groups: keys are grouped by
// remote replica set, each group goes out as one (hedged)
// POST /v1/peer/lookup-batch, and found values are planted into the
// registry / result cache under the singleflight table before the stage
// nodes consult the memo. Keys already held locally (memory, or the
// castore for compacts) are skipped — the prefetch never re-fetches what
// a disk probe will serve faster. Safe to call concurrently with
// on-demand reads of the same keys.
func (m *StageMemo) PrefetchLookups(items []prefetchItem) {
	if m.cluster == nil || m.disableBatch || len(items) == 0 {
		return
	}
	self := m.cluster.Self()
	groups := map[string]*lookupGroup{}
	for _, it := range items {
		if m.localProbe(it.key) {
			continue
		}
		owners := m.cluster.Owners(it.key.String())
		remotes := remotesOf(owners, self)
		if len(remotes) == 0 {
			continue
		}
		capable := remotes[:0:0]
		for _, r := range remotes {
			if m.batchCapable(r) {
				capable = append(capable, r)
			}
		}
		if len(capable) == 0 {
			continue
		}
		if !m.beginFlight(it.key) {
			continue // an on-demand read owns this key already
		}
		sorted := append([]string(nil), capable...)
		sort.Strings(sorted)
		sig := strings.Join(sorted, ",")
		g := groups[sig]
		if g == nil {
			g = &lookupGroup{remotes: sorted}
			groups[sig] = g
		}
		g.items = append(g.items, it)
	}
	if len(groups) == 0 {
		return
	}
	// Fan the groups out concurrently with the caller's worker slot
	// yielded: this is network wait, and the stage nodes whose keys are
	// not in any group should run meanwhile. The prefetch glue node's
	// runFn has no per-node slot to hand down, so this yield goes through
	// the attached executor; the node roots the whole batch's dependent
	// chain, so its re-acquisition is never the low-priority queue-jump
	// the slot threading elsewhere prevents.
	if m.exec != nil {
		m.exec.Release()
		defer m.exec.Acquire()
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *lookupGroup) {
			defer wg.Done()
			m.prefetchGroup(g)
		}(g)
	}
	wg.Wait()
}

// localProbe reports whether the key's value is already reachable without
// the network: registry memory for detect keys; cache memory or the
// castore disk tier for compact keys (replication pushed this node its
// co-owned artifacts, and the stage node's LoadStored serves them without
// a round trip).
func (m *StageMemo) localProbe(k plan.Key) bool {
	switch k.Stage {
	case negativa.StageDetect:
		fp, wid, ok := negativa.SplitDetectHash(k.Hash)
		if !ok {
			return true // malformed; nothing to prefetch
		}
		return m.registry.Has(ProfileKey{Install: fp, Workload: wid})
	case negativa.StageCompact:
		return m.cache.Contains(k.Hash) || m.cache.HasStored(k.Hash)
	}
	return true
}

// prefetchGroup runs one group's batch lookup: hedged across the group's
// two fastest members, falling back through the rest, then plants every
// found value and marks every clean miss. Flights end only after the
// plant, so a waiter that raced us re-probes into a hit.
func (m *StageMemo) prefetchGroup(g *lookupGroup) {
	defer func() {
		for _, it := range g.items {
			m.endFlight(it.key)
		}
	}()
	m.cluster.SortByLatency(g.remotes)
	for off := 0; off < len(g.items); off += maxBatchLookupKeys {
		end := off + maxBatchLookupKeys
		if end > len(g.items) {
			end = len(g.items)
		}
		m.prefetchChunk(g.remotes, g.items[off:end])
	}
}

func (m *StageMemo) prefetchChunk(remotes []string, items []prefetchItem) {
	req := peerBatchLookupRequest{Keys: make([]peerLookupRequest, len(items))}
	for i, it := range items {
		req.Keys[i] = peerLookupRequest{Stage: it.key.Stage, Hash: it.key.Hash}
	}
	var mu sync.Mutex
	errs := map[string]error{}
	attempt := func(ctx context.Context, peer string) (any, bool, error) {
		m.countRoundTrip()
		var resp peerBatchLookupResponse
		err := m.cluster.PostJSONCtx(ctx, peer, "/v1/peer/lookup-batch", req, &resp)
		if err != nil {
			if ctx.Err() == nil {
				mu.Lock()
				errs[peer] = err
				mu.Unlock()
			}
			return nil, false, err
		}
		return &resp, true, nil
	}
	v, _, ok := m.cluster.HedgedCall(remotes, attempt)
	if !ok {
		// The race (primary, maybe a hedge) failed; try the rest plainly.
		for _, r := range remotes[1:] {
			mu.Lock()
			_, tried := errs[r]
			mu.Unlock()
			if tried {
				continue
			}
			if rv, rok, _ := attempt(context.Background(), r); rok {
				v, ok = rv, true
				break
			}
		}
	}
	// A peer answering 404 predates the route: remember it and let the
	// stage nodes degrade to per-key lookups. Anything else is a peer-tier
	// failure — counted as a fallback like every other failed peer read
	// (the health plane already observed the transport fault itself).
	mu.Lock()
	hardFail := false
	for peer, err := range errs {
		var perr *cluster.PeerError
		if errors.As(err, &perr) && perr.Status == 404 {
			m.markNoBatch(peer)
		} else {
			hardFail = true
			m.count("peer.fallbacks")
		}
	}
	mu.Unlock()
	if !ok {
		// An all-404 outcome is a version mismatch, not a failure: the keys
		// degrade to per-key lookups and only batch_unsupported is counted.
		if hardFail {
			m.count("peer.batch_failed")
		}
		return
	}
	resp := v.(*peerBatchLookupResponse)
	if len(resp.Results) != len(items) {
		m.count("peer.batch_failed")
		return
	}
	for i, lr := range resp.Results {
		it := items[i]
		if !lr.Found {
			m.markMiss(it.key)
			m.count("peer.misses")
			continue
		}
		switch it.key.Stage {
		case negativa.StageDetect:
			fp, wid, okh := negativa.SplitDetectHash(it.key.Hash)
			if !okh || lr.Profile == nil || lr.Profile.RunResult == nil {
				m.count("peer.fallbacks")
				continue
			}
			m.registry.Put(ProfileKey{Install: fp, Workload: wid}, lr.Profile)
			m.markPrefetched(it.key)
			m.count("peer.hits")
		case negativa.StageCompact:
			lib, _ := compactHintOf(it.hint)
			ld, decOK := decodePeerResult(lib, lr.Result, lr.Sparse)
			if !decOK {
				m.count("peer.fallbacks")
				continue
			}
			m.cache.Put(it.key.Hash, ld)
			m.markPrefetched(it.key)
			m.count("peer.hits")
		}
	}
}
