package dserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/metrics"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// testDetectProfile runs one real detection so peer-lookup fixtures can
// serve a well-formed profile (RunResult and all).
func testDetectProfile(t *testing.T) *negativa.Profile {
	t.Helper()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := (WorkloadSpec{Model: "MobileNetV2", Batch: 1}).Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	p, err := negativa.DetectUsage(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// lookupFixture serves the per-key and batch peer-lookup routes from one
// canned profile, counting how many times each detect hash was answered
// (across both routes) — the denominator of the singleflight assertions.
type lookupFixture struct {
	profile *negativa.Profile
	mu      sync.Mutex
	serves  map[string]int
	delay   time.Duration
}

func (f *lookupFixture) serve(hash string) {
	f.mu.Lock()
	if f.serves == nil {
		f.serves = map[string]int{}
	}
	f.serves[hash]++
	f.mu.Unlock()
}

func (f *lookupFixture) count(hash string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.serves[hash]
}

func (f *lookupFixture) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/peer/lookup", func(w http.ResponseWriter, r *http.Request) {
		var req peerLookupRequest
		json.NewDecoder(r.Body).Decode(&req)
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				return
			}
		}
		f.serve(req.Hash)
		json.NewEncoder(w).Encode(peerLookupResponse{Found: true, Profile: f.profile})
	})
	mux.HandleFunc("POST /v1/peer/lookup-batch", func(w http.ResponseWriter, r *http.Request) {
		var req peerBatchLookupRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := peerBatchLookupResponse{Results: make([]peerLookupResponse, len(req.Keys))}
		for i, k := range req.Keys {
			f.serve(k.Hash)
			resp.Results[i] = peerLookupResponse{Found: true, Profile: f.profile}
		}
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

// TestHedgedLookupSlowReplica injects a ~100 ms transport delay into one
// replica: the hedge fires after its 5 ms floor, the healthy replica
// answers well under the injected delay, and the stalled request is
// cancelled rather than awaited.
func TestHedgedLookupSlowReplica(t *testing.T) {
	profile := testDetectProfile(t)

	var slowCancelled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server watches the connection and r.Context()
		// observes the requester cancelling the stalled read.
		io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(100 * time.Millisecond):
			json.NewEncoder(w).Encode(peerLookupResponse{Found: true, Profile: profile})
		case <-r.Context().Done():
			slowCancelled.Store(true)
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(peerLookupResponse{Found: true, Profile: profile})
	}))
	defer fast.Close()

	counters := metrics.NewCounterSet()
	m := NewStageMemo(NewRegistry(), NewResultCache(1<<20, nil), counters)
	c := cluster.New("self", map[string]string{"slow": slow.URL, "fast": fast.URL}, cluster.Options{
		ReplicaSets: 2, HedgeDelay: 5 * time.Millisecond,
		Counters: counters, Timeout: 30 * time.Second,
	})
	defer c.Close()
	m.AttachCluster(c)

	start := time.Now()
	lr, peer, ok := m.hedgedLookup(nil, []string{"slow", "fast"}, peerLookupRequest{Stage: negativa.StageDetect, Hash: "fp\x00w"})
	wall := time.Since(start)
	if !ok || peer != "fast" || lr == nil || lr.Profile == nil {
		t.Fatalf("hedged lookup = %v from %q, ok=%v", lr, peer, ok)
	}
	if wall > 80*time.Millisecond {
		t.Fatalf("hedged read took %v; it should complete well under the 100ms injected delay", wall)
	}
	if got := counters.Get("peer.hedge_fired"); got != 1 {
		t.Fatalf("hedge_fired = %d, want 1", got)
	}
	if got := counters.Get("peer.hedge_won"); got != 1 {
		t.Fatalf("hedge_won = %d, want 1", got)
	}
	if got := counters.Get("peer.hedge_cancelled"); got != 1 {
		t.Fatalf("hedge_cancelled = %d, want 1", got)
	}
	if got := counters.Get("peer.round_trips"); got != 2 {
		t.Fatalf("round_trips = %d, want 2 (primary + hedge)", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !slowCancelled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("the losing replica's request was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchSingleflightNoDuplicateRoundTrips races a batch prefetch
// against concurrent on-demand reads of the same key (run under -race):
// the flight table must collapse them to exactly one remote round trip
// per key, whichever path gets there first.
func TestPrefetchSingleflightNoDuplicateRoundTrips(t *testing.T) {
	fixture := &lookupFixture{profile: testDetectProfile(t)}
	srv := httptest.NewServer(fixture.handler())
	defer srv.Close()

	counters := metrics.NewCounterSet()
	m := NewStageMemo(NewRegistry(), NewResultCache(1<<20, nil), counters)
	c := cluster.New("self", map[string]string{"peer": srv.URL}, cluster.Options{
		ReplicaSets: 2, Counters: counters, Timeout: 30 * time.Second,
	})
	defer c.Close()
	m.AttachCluster(c)

	for round := 0; round < 8; round++ {
		key := negativa.DetectKey("fp", string(rune('a'+round)))
		var wg sync.WaitGroup
		wg.Add(5)
		go func() {
			defer wg.Done()
			m.PrefetchLookups([]prefetchItem{{key: key}})
		}()
		for g := 0; g < 4; g++ {
			go func() {
				defer wg.Done()
				v, _, err := m.GetOrComputeSourced(key, nil, func() (any, error) {
					t.Error("compute ran: the peer-served key should never compute locally")
					return fixture.profile, nil
				})
				if err != nil || v.(*negativa.Profile) == nil {
					t.Errorf("read failed: %v", err)
				}
			}()
		}
		wg.Wait()
		if got := fixture.count(key.Hash); got != 1 {
			t.Fatalf("key %q served %d times by the peer; singleflight should collapse to 1", key.Hash, got)
		}
	}
}

// startClusterCfg is startCluster with a per-node service config hook —
// the mixed-version tests dial individual nodes' capabilities down.
func startClusterCfg(t *testing.T, tweak func(id string, cfg *Config), ids ...string) map[string]*testNode {
	t.Helper()
	nodes := map[string]*testNode{}
	urls := map[string]string{}
	for _, id := range ids {
		st, err := castore.Open(t.TempDir(), castore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: 4, MaxSteps: 2, Store: st}
		if tweak != nil {
			tweak(id, &cfg)
		}
		svc := NewService(cfg)
		srv := httptest.NewServer(NewHandler(svc))
		nodes[id] = &testNode{id: id, svc: svc, srv: srv, store: st}
		urls[id] = srv.URL
	}
	for _, n := range nodes {
		c := cluster.New(n.id, urls, cluster.Options{
			Counters:         n.svc.Counters,
			Timings:          n.svc.Timings,
			FailureThreshold: 1,
			Probation:        time.Hour,
			Timeout:          30 * time.Second,
		})
		n.svc.AttachCluster(c)
	}
	return nodes
}

// TestMixedVersionInterop runs a ring where one node predates the
// lookup-batch route (DisablePeerBatch stands in for the old binary):
// requesters must degrade that node's keys to per-key lookups with zero
// failed batches — a version skew is not an error — and the batch still
// completes as pure reuse.
func TestMixedVersionInterop(t *testing.T) {
	nodes := startClusterCfg(t, func(id string, cfg *Config) {
		if id == "c" {
			cfg.DisablePeerBatch = true
		}
	}, "a", "b", "c")
	a, b, c := nodes["a"], nodes["b"], nodes["c"]
	defer a.close()
	defer b.close()
	defer c.close()

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  12,
		Workloads: []WorkloadSpec{
			{Model: "Llama2", Batch: 8},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
		},
		MaxSteps: 2,
	}

	// Node A computes the batch across the ring (C's keys arrive through
	// per-key routes; A learns C is batch-incapable from the first 404).
	stA := postJob(t, a.srv, req)
	if doneA := pollDone(t, a.srv, stA.ID); doneA.State != JobDone {
		t.Fatalf("node A job failed: %s", doneA.Error)
	}

	// The same batch on node B is pure reuse, batch-prefetched from A and
	// per-key from C.
	analysisBefore := b.svc.Counters.Get("analysis.computed")
	stB := postJob(t, b.srv, req)
	doneB := pollDone(t, b.srv, stB.ID)
	if doneB.State != JobDone {
		t.Fatalf("node B job failed: %s", doneB.Error)
	}
	if doneB.Verified == nil || !*doneB.Verified {
		t.Fatal("node B batch must verify")
	}
	if delta := b.svc.Counters.Get("analysis.computed") - analysisBefore; delta != 0 {
		t.Fatalf("node B ran locate/compact %d times locally despite warm peers", delta)
	}

	// Version skew must be degradation, not failure.
	for _, n := range []*testNode{a, b} {
		if got := n.svc.Counters.Get("peer.batch_failed"); got != 0 {
			t.Fatalf("node %s counted %d failed batches; a 404 peer is not a failure", n.id, got)
		}
	}
	if got := a.svc.Counters.Get("peer.batch_unsupported") + b.svc.Counters.Get("peer.batch_unsupported"); got == 0 {
		t.Fatal("no requester discovered the old node's missing batch route")
	}
	if got := c.svc.Counters.Get("peer.served_batches"); got != 0 {
		t.Fatalf("the old node served %d batches it does not support", got)
	}
	if got := c.svc.Counters.Get("peer.served_lookups"); got == 0 {
		t.Fatal("the old node should still serve per-key lookups")
	}
}

// TestPeerLookupBatchRoute covers the serving side of the batch route:
// index-aligned results, the key cap, and the DisablePeerBatch 404.
func TestPeerLookupBatchRoute(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	req := peerBatchLookupRequest{Keys: []peerLookupRequest{
		{Stage: negativa.StageCompact, Hash: "absent"},
		{Stage: negativa.StageDetect, Hash: "malformed-no-separator"},
	}}
	var resp peerBatchLookupResponse
	if code := postPeer(t, srv, "/v1/peer/lookup-batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch lookup status %d", code)
	}
	if len(resp.Results) != 2 || resp.Results[0].Found || resp.Results[1].Found {
		t.Fatalf("batch results %+v; misses and bad keys must come back found=false in place", resp.Results)
	}

	over := peerBatchLookupRequest{Keys: make([]peerLookupRequest, maxBatchLookupKeys+1)}
	for i := range over.Keys {
		over.Keys[i] = peerLookupRequest{Stage: negativa.StageCompact, Hash: "x"}
	}
	if code := postPeer(t, srv, "/v1/peer/lookup-batch", over, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", code)
	}

	old := NewService(Config{Workers: 2, MaxSteps: 2, DisablePeerBatch: true})
	defer old.Close()
	soloCluster(old)
	oldSrv := httptest.NewServer(NewHandler(old))
	defer oldSrv.Close()
	if code := postPeer(t, oldSrv, "/v1/peer/lookup-batch", req, nil); code != http.StatusNotFound {
		t.Fatalf("disabled batch route status %d, want 404", code)
	}
}
