package dserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"negativaml/internal/castore"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// postSubmit drives the incremental-friendly POST /v1/submit alias and
// returns the raw response for error-path assertions.
func postSubmit(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestIncrementalResubmitE2E is the acceptance-criteria test: extending a
// prior batch's workload set through POST /v1/submit with a base job ID
// performs zero detection runs and recomputes only the union-delta
// locate/compact stages, with untouched libraries fully absorbed.
func TestIncrementalResubmitE2E(t *testing.T) {
	svc := NewService(Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	baseWorkloads := []WorkloadSpec{
		{Model: "MobileNetV2", Batch: 1},
		{Model: "Transformer", Batch: 32},
	}
	deltaWorkload := WorkloadSpec{Model: "Llama2"}

	// Job 1: the base batch.
	st := postJob(t, ts, JobRequest{Framework: "pytorch", TailLibs: 12, Workloads: baseWorkloads})
	base := pollDone(t, ts, st.ID)
	if base.State != JobDone {
		t.Fatalf("base job failed: %s", base.Error)
	}

	// Job 2: the delta workload on its own — registers its detection
	// profile so the incremental batch needs zero detection runs.
	st = postJob(t, ts, JobRequest{Framework: "pytorch", TailLibs: 12, Workloads: []WorkloadSpec{deltaWorkload}})
	if solo := pollDone(t, ts, st.ID); solo.State != JobDone {
		t.Fatalf("solo delta job failed: %s", solo.Error)
	}

	detectBefore := svc.Counters.Get("stage.detect.misses")
	analysisBefore := svc.Counters.Get("analysis.computed")
	verifyBefore := svc.Counters.Get("stage.verifyrun.misses")

	// Job 3: the incremental re-submit — base's members plus the delta.
	incReq := JobRequest{
		Framework: "pytorch", TailLibs: 12,
		Workloads: append(append([]WorkloadSpec{}, baseWorkloads...), deltaWorkload),
		Base:      base.ID,
	}
	resp, raw := postSubmit(t, ts, incReq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("incremental submit: status %d: %s", resp.StatusCode, raw)
	}
	var incSt jobStatus
	if err := json.Unmarshal(raw, &incSt); err != nil {
		t.Fatal(err)
	}
	if incSt.Base != base.ID {
		t.Fatalf("status base = %q, want %q", incSt.Base, base.ID)
	}
	done := pollDone(t, ts, incSt.ID)
	if done.State != JobDone {
		t.Fatalf("incremental job failed: %s", done.Error)
	}
	if done.Verified == nil || !*done.Verified {
		t.Fatalf("incremental job must verify: %+v", done)
	}

	// Zero detection runs: every member's profile was registered.
	if d := svc.Counters.Get("stage.detect.misses") - detectBefore; d != 0 {
		t.Fatalf("incremental batch ran %d detections, want 0", d)
	}
	// Only the union-delta locate/compact stages recomputed.
	var rep jobReport
	if code := getJSON(t, ts.URL+"/v1/jobs/"+incSt.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	if rep.Incremental == nil {
		t.Fatal("report must carry incremental stats")
	}
	inc := rep.Incremental
	if inc.BaseID != base.ID {
		t.Fatalf("incremental base = %q, want %q", inc.BaseID, base.ID)
	}
	totalLibs := len(rep.Libs)
	if inc.AbsorbedLibs+inc.DeltaLibs != totalLibs {
		t.Fatalf("absorbed %d + delta %d != %d libs", inc.AbsorbedLibs, inc.DeltaLibs, totalLibs)
	}
	if inc.AbsorbedLibs == 0 {
		t.Fatal("untouched libraries must absorb through their unchanged stage keys")
	}
	recomputed := svc.Counters.Get("analysis.computed") - analysisBefore
	if recomputed > int64(inc.DeltaLibs) {
		t.Fatalf("recomputed %d locate/compact stages, want at most the %d delta libs", recomputed, inc.DeltaLibs)
	}
	if recomputed >= int64(totalLibs) {
		t.Fatalf("incremental batch recomputed every library (%d of %d)", recomputed, totalLibs)
	}
	// Verification: base members carried over, only the delta re-ran.
	if inc.CarriedVerifications != len(baseWorkloads) {
		t.Fatalf("carried %d verifications, want %d", inc.CarriedVerifications, len(baseWorkloads))
	}
	if v := svc.Counters.Get("stage.verifyrun.misses") - verifyBefore; v != 1 {
		t.Fatalf("incremental batch ran %d verifications, want 1 (the delta member)", v)
	}

	// The /v1/metrics stages section exposes the same counters.
	var m struct {
		Stages map[string]map[string]int64 `json:"stages"`
	}
	if code := getJSON(t, ts.URL+"/v1/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Stages[negativa.StageCompact]["hits"] == 0 || m.Stages[negativa.StageDetect]["misses"] == 0 {
		t.Fatalf("stages section not populated: %+v", m.Stages)
	}
}

// TestIncrementalSubmitValidation covers the base-reference error paths:
// unknown base (404), incompatible parameters (400), and a non-superset
// workload set (job fails with a clear error).
func TestIncrementalSubmitValidation(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	resp, _ := postSubmit(t, ts, JobRequest{
		Framework: "pytorch", TailLibs: 4,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
		Base:      "job-9999",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown base: status %d, want 404", resp.StatusCode)
	}

	st := postJob(t, ts, JobRequest{Framework: "pytorch", TailLibs: 4, Workloads: []WorkloadSpec{{Model: "MobileNetV2"}}})
	if done := pollDone(t, ts, st.ID); done.State != JobDone {
		t.Fatalf("base job failed: %s", done.Error)
	}

	// Mismatched parameters are rejected at submit time.
	resp, raw := postSubmit(t, ts, JobRequest{
		Framework: "pytorch", TailLibs: 8,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
		Base:      st.ID,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched tail_libs: status %d (%s), want 400", resp.StatusCode, raw)
	}

	// An omitted max_steps and an explicitly spelled-out service default
	// are the same effective configuration — accepted, not rejected.
	resp, raw = postSubmit(t, ts, JobRequest{
		Framework: "pytorch", TailLibs: 4, MaxSteps: 2, // service default, base omitted it
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
		Base:      st.ID,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explicit-default max_steps: status %d (%s), want 202", resp.StatusCode, raw)
	}
	var dfltSt jobStatus
	if err := json.Unmarshal(raw, &dfltSt); err != nil {
		t.Fatal(err)
	}
	if done := pollDone(t, ts, dfltSt.ID); done.State != JobDone {
		t.Fatalf("explicit-default job failed: %s", done.Error)
	}

	// A non-superset set passes submission (identities need the install)
	// but fails the job with a clear error.
	resp, raw = postSubmit(t, ts, JobRequest{
		Framework: "pytorch", TailLibs: 4,
		Workloads: []WorkloadSpec{{Model: "Transformer"}},
		Base:      st.ID,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("non-superset submit: status %d (%s)", resp.StatusCode, raw)
	}
	var incSt jobStatus
	if err := json.Unmarshal(raw, &incSt); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, ts, incSt.ID)
	if done.State != JobFailed || done.Error == "" {
		t.Fatalf("non-superset job: state %s err %q, want failed", done.State, done.Error)
	}
}

// TestIncrementalBatchDirect exercises BatchOptions.Base through the Go
// API: verification outcomes carry over for base members and the
// incremental stats add up, with a base result that shares the service's
// memo tiers.
func TestIncrementalBatchDirect(t *testing.T) {
	svc := NewService(Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 6})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(specs ...WorkloadSpec) []mlruntime.Workload {
		ws := make([]mlruntime.Workload, len(specs))
		for i, sp := range specs {
			if ws[i], err = sp.Workload(in); err != nil {
				t.Fatal(err)
			}
		}
		return ws
	}
	s1 := WorkloadSpec{Model: "MobileNetV2", Batch: 1}
	s2 := WorkloadSpec{Model: "Transformer", Batch: 32}

	base, err := svc.DebloatBatch(in, mk(s1), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := svc.DebloatBatch(in, mk(s1, s2), BatchOptions{Base: base, BaseID: "job-0001"})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Incremental == nil || inc.Incremental.BaseID != "job-0001" {
		t.Fatalf("incremental stats missing: %+v", inc.Incremental)
	}
	if inc.Incremental.CarriedVerifications != 1 {
		t.Fatalf("carried = %d, want 1", inc.Incremental.CarriedVerifications)
	}
	if got := inc.Incremental.AbsorbedLibs + inc.Incremental.DeltaLibs; got != len(inc.Libs) {
		t.Fatalf("absorbed+delta = %d, want %d", got, len(inc.Libs))
	}
	if !inc.AllVerified() {
		t.Fatal("incremental batch must verify")
	}

	// Verification-mode mismatch is rejected.
	if _, err := svc.DebloatBatch(in, mk(s1, s2), BatchOptions{Base: base, SkipVerify: true}); err == nil {
		t.Fatal("skip-verify mismatch with base must fail")
	}
}

// TestStageMemoConcurrentComputes is the stage-memo race test: concurrent
// batches hammer the same stage keys through the shared StageMemo; the
// memory tier must collapse duplicate computes and every caller must see
// a consistent value. Run with -race in CI.
func TestStageMemoConcurrentComputes(t *testing.T) {
	svc := NewService(Config{Workers: 8, MaxSteps: 2})
	defer svc.Close()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp := WorkloadSpec{Model: "MobileNetV2", Batch: 1}

	const concurrent = 6
	results := make([]*BatchResult, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := sp.Workload(in)
			if err != nil {
				t.Error(err)
				return
			}
			res, err := svc.DebloatBatch(in, []mlruntime.Workload{w}, BatchOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("batch %d missing", i)
		}
		if !res.AllVerified() {
			t.Fatalf("batch %d failed verification", i)
		}
		if len(res.libKeys) != len(results[0].libKeys) {
			t.Fatalf("batch %d lib keys diverge", i)
		}
		for j := range res.libKeys {
			if res.libKeys[j] != results[0].libKeys[j] {
				t.Fatalf("batch %d key %d diverges", i, j)
			}
		}
	}

	// The memory tier collapsed concurrent same-key computes: the locate
	// stage (singleflight MemMemo) must have computed each key at most
	// once — misses cannot exceed distinct keys.
	distinct := map[string]bool{}
	for _, k := range results[0].libKeys {
		distinct[k] = true
	}
	if misses := svc.Counters.Get("stage.locate.misses"); misses > int64(len(distinct)) {
		t.Fatalf("locate computed %d times for %d distinct keys — singleflight failed", misses, len(distinct))
	}
}

// TestWarmDiskSkipsLocation pins the lazy-location contract: a batch whose
// compact results all come from the content-addressed store (fresh
// process, warm data dir) must not pay for symbol-to-range resolution —
// locate handles are created but never forced.
func TestWarmDiskSkipsLocation(t *testing.T) {
	dir := t.TempDir()
	sp := WorkloadSpec{Model: "MobileNetV2", Batch: 1}

	boot := func() (*Service, func()) {
		st, err := castore.Open(dir, castore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(Config{Workers: 2, MaxSteps: 2, Store: st})
		return svc, func() { svc.Close(); st.Close() }
	}
	runBatch := func(svc *Service) {
		in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 6})
		if err != nil {
			t.Fatal(err)
		}
		w, err := sp.Workload(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.DebloatBatch(in, []mlruntime.Workload{w}, BatchOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	svc1, close1 := boot()
	runBatch(svc1)
	if n := svc1.Counters.Get("locate.resolved"); n == 0 {
		t.Fatal("cold batch must resolve locations")
	}
	close1()

	svc2, close2 := boot()
	defer close2()
	runBatch(svc2)
	if n := svc2.Counters.Get("analysis.computed"); n != 0 {
		t.Fatalf("warm-disk batch recomputed %d compactions", n)
	}
	if n := svc2.Counters.Get("locate.resolved"); n != 0 {
		t.Fatalf("warm-disk batch resolved %d locations, want 0 (handles must stay unforced)", n)
	}
}

// TestSharedMemoAcrossPlanners pins the canonical stage-value contract:
// the single-workload planner (negativa.Debloat) can run over the batch
// service's StageMemo and absorb its stages — identical keys must carry
// identical value types (detect profiles, location handles, compact
// results) in both directions.
func TestSharedMemoAcrossPlanners(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 6})
	if err != nil {
		t.Fatal(err)
	}
	w, err := (WorkloadSpec{Model: "MobileNetV2", Batch: 1}).Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DebloatBatch(in, []mlruntime.Workload{w}, BatchOptions{}); err != nil {
		t.Fatal(err)
	}

	hitsBefore := svc.Counters.Get("registry.hits")
	res, err := negativa.Debloat(w, negativa.Options{MaxSteps: 2, Memo: svc.stages})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("shared-memo debloat must verify")
	}
	if svc.Counters.Get("registry.hits") == hitsBefore {
		t.Fatal("single-workload planner must absorb the service's detect stage")
	}
	if res.AnalysisTime == 0 {
		t.Fatal("Debloat charges virtual analysis time regardless of memo hits")
	}
}

// TestStageMemoRoutesTiers pins the memo's stage routing: detect keys land
// in the registry, compact keys in the result cache, and other stages in
// the bounded memory tier.
func TestStageMemoRoutesTiers(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()

	// Detect: a computed profile must be visible through the registry.
	key := negativa.DetectKey("fp-1", "wid-1")
	p := &negativa.Profile{Workload: "w"}
	v, hit, err := svc.stages.GetOrCompute(key, nil, func() (any, error) { return p, nil })
	if err != nil || hit || v.(*negativa.Profile) != p {
		t.Fatalf("detect compute: v=%v hit=%v err=%v", v, hit, err)
	}
	if got, ok := svc.Registry.Get(ProfileKey{Install: "fp-1", Workload: "wid-1"}); !ok || got != p {
		t.Fatal("detect result must land in the registry")
	}
	if _, hit, _ = svc.stages.GetOrCompute(key, nil, func() (any, error) { t.Fatal("must hit"); return nil, nil }); !hit {
		t.Fatal("detect re-lookup must hit")
	}

	// Other stages land in the memory tier.
	lk := plan.Key{Stage: negativa.StageLocate, Hash: "abc"}
	if _, hit, _ := svc.stages.GetOrCompute(lk, nil, func() (any, error) { return 1, nil }); hit {
		t.Fatal("first locate lookup cannot hit")
	}
	if _, hit, _ := svc.stages.GetOrCompute(lk, nil, func() (any, error) { return 2, nil }); !hit {
		t.Fatal("second locate lookup must hit")
	}
}
