package dserve

import (
	"bytes"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"negativaml/internal/mlframework"
)

// TestIngestClusterE2E is ingestion's serving-plane acceptance test: an
// on-disk tree (written once, shared by every node as its ingest root)
// submitted via "ingest_dir" rides the full stage DAG across a 3-node ring,
// and a re-submit to a different node is pure reuse — the ingested tree's
// content-derived fingerprint keys the same stages a generated install
// would, so nothing recomputes.
func TestIngestClusterE2E(t *testing.T) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 8})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := in.WriteTo(filepath.Join(root, "pytorch-tree")); err != nil {
		t.Fatal(err)
	}

	nodes := startClusterCfg(t, func(id string, cfg *Config) { cfg.IngestRoot = root }, "a", "b", "c")
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	a, b := nodes["a"], nodes["b"]

	req := JobRequest{
		IngestDir: "pytorch-tree",
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 8, Device: "A100"},
		},
		MaxSteps: 2,
	}

	// ---- Phase 1: node A ingests and computes the batch across the ring ----
	stA := postJob(t, a.srv, req)
	if stA.IngestDir != "pytorch-tree" || stA.Framework != "" {
		t.Fatalf("status should echo the ingestion request: ingest_dir=%q framework=%q", stA.IngestDir, stA.Framework)
	}
	doneA := pollDone(t, a.srv, stA.ID)
	if doneA.State != JobDone {
		t.Fatalf("node A ingest job failed: %s", doneA.Error)
	}
	if doneA.Verified == nil || !*doneA.Verified {
		t.Fatal("node A ingest batch must verify")
	}
	var repA jobReport
	if code := getJSON(t, a.srv.URL+"/v1/jobs/"+stA.ID+"/report", &repA); code != http.StatusOK {
		t.Fatalf("node A report status %d", code)
	}
	// Stage-key stability across the ingestion boundary: the tree's install
	// fingerprints identically to the in-memory install it was written from,
	// so profiles and memos from generated-install jobs carry over verbatim.
	if repA.InstallFP != InstallFingerprint(in) {
		t.Fatalf("ingested fingerprint %s differs from the source install's %s", repA.InstallFP, InstallFingerprint(in))
	}

	// ---- Phase 2: the same tree submitted to node B is pure reuse ----
	analysisBefore := b.svc.Counters.Get("analysis.computed")
	stB := postJob(t, b.srv, req)
	doneB := pollDone(t, b.srv, stB.ID)
	if doneB.State != JobDone {
		t.Fatalf("node B ingest job failed: %s", doneB.Error)
	}
	if doneB.Verified == nil || !*doneB.Verified {
		t.Fatal("node B ingest batch must verify")
	}
	if delta := b.svc.Counters.Get("analysis.computed") - analysisBefore; delta != 0 {
		t.Fatalf("node B ran locate/compact %d times locally; the ring should have absorbed all of it", delta)
	}
	if hits := b.svc.Counters.Get("peer.hits"); hits == 0 {
		t.Fatal("node B should have read stages through their owning peers")
	}
	var repB jobReport
	if code := getJSON(t, b.srv.URL+"/v1/jobs/"+stB.ID+"/report", &repB); code != http.StatusOK {
		t.Fatalf("node B report status %d", code)
	}
	if repB.InstallFP != repA.InstallFP {
		t.Fatalf("re-ingest changed the install fingerprint: %s vs %s", repB.InstallFP, repA.InstallFP)
	}
	if len(repB.Libs) != len(repA.Libs) {
		t.Fatalf("lib count mismatch: A=%d B=%d", len(repA.Libs), len(repB.Libs))
	}
	for _, lr := range repA.Libs {
		la := fetchPeerJobLib(t, a.srv, stA.ID, lr.Name)
		lb := fetchPeerJobLib(t, b.srv, stB.ID, lr.Name)
		if !bytes.Equal(la, lb) {
			t.Fatalf("%s: debloated bytes differ between the two nodes' ingest jobs", lr.Name)
		}
	}

	// ---- Confinement: a path that escapes the ingest root fails the job ----
	esc := postJob(t, a.srv, JobRequest{
		IngestDir: "../outside",
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
	})
	doneEsc := pollDone(t, a.srv, esc.ID)
	if doneEsc.State != JobFailed || !strings.Contains(doneEsc.Error, "escapes") {
		t.Fatalf("escaping ingest_dir should fail the job: state=%s err=%q", doneEsc.State, doneEsc.Error)
	}
}

// TestIngestModeRequestValidation pins the ingestion-mode request contract:
// ingest_dir excludes the install-shaping fields, and a node whose operator
// never configured an ingest root refuses to read any path at all.
func TestIngestModeRequestValidation(t *testing.T) {
	ws := []WorkloadSpec{{Model: "MobileNetV2"}}
	for _, tc := range []struct {
		name string
		req  JobRequest
		want string
	}{
		{"framework excluded", JobRequest{IngestDir: "x", Framework: "pytorch", Workloads: ws}, "mutually exclusive"},
		{"tail_libs excluded", JobRequest{IngestDir: "x", TailLibs: 3, Workloads: ws}, "mutually exclusive"},
		{"workloads still required", JobRequest{IngestDir: "x"}, "no workloads"},
	} {
		err := tc.req.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	if err := (&JobRequest{IngestDir: "x", Workloads: ws}).Validate(); err != nil {
		t.Errorf("well-formed ingest request rejected: %v", err)
	}

	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	if _, err := svc.ingestInstall("anything"); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Errorf("node without an ingest root must refuse ingestion: %v", err)
	}
}
