package dserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"negativaml/internal/elfx"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job tracks one submitted batch through the service. Accessors return
// snapshots; the Result pointer is immutable once the job is done.
type Job struct {
	ID  string
	Req JobRequest

	State     string
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// StagesDone counts completed plan nodes of the running batch;
	// StagesTotal is fixed once the stage graph is planned. Together they
	// derive the monotone progress fraction the status endpoint reports.
	StagesDone  int
	StagesTotal int

	Result *BatchResult

	// events is the job's live progress stream (state transitions plus one
	// event per completed stage); subscribers attach via Service.JobEvents.
	events *EventLog
	// opts carries the submitter's hooks (extra stage observer, completion
	// callback) into the async run.
	opts SubmitOptions

	// manifest is the durable form of a persisted job; for a job restored
	// from the store it stands in for Result until first use materializes
	// it (see Service.ResultOf).
	manifest *jobManifest
	// refs are the store objects this job retains; released when the job
	// is evicted.
	refs []storeRef
	// pins counts in-flight readers (an open fetch-library stream, a
	// materialization in progress). A pinned job is never evicted, so
	// eviction cannot release store objects out from under a response.
	pins int
}

// ErrBusy is returned by Submit when the service already holds its maximum
// number of in-flight (queued or running) jobs; the HTTP layer maps it to
// 503 so clients back off instead of growing the job table unboundedly.
var ErrBusy = errors.New("dserve: too many in-flight jobs, retry later")

// Incremental-submit errors; the HTTP layer maps ErrUnknownBase to 404 and
// ErrBaseNotReady to 409.
var (
	ErrUnknownBase  = errors.New("dserve: unknown base job")
	ErrBaseNotReady = errors.New("dserve: base job has not completed")
)

// SubmitOptions carry a submitter's hooks into a job's async run. The
// gateway uses them to charge per-tenant stage-seconds (Observer) and to
// learn about completion without polling (OnDone).
type SubmitOptions struct {
	// Observer, when non-nil, additionally receives the batch's per-stage
	// outcomes (the service's metrics observer and the job's progress
	// tracking always run). Must be safe for concurrent use.
	Observer plan.Observer
	// OnDone, when non-nil, is called once with a terminal-state snapshot
	// of the job after it finishes (done or failed), from the job's own
	// goroutine with no service locks held.
	OnDone func(*Job)
}

// Submit validates the request, queues a job, and runs it asynchronously on
// a service goroutine. The returned snapshot reflects the queued state;
// poll Job(id) for progress. Returns ErrBusy when MaxInFlight jobs are
// already queued or running — the one retention surface MaxJobs pruning
// cannot touch (it only evicts terminal jobs).
func (s *Service) Submit(req JobRequest) (*Job, error) {
	return s.SubmitWith(req, SubmitOptions{})
}

// SubmitWith is Submit with per-job hooks attached.
func (s *Service) SubmitWith(req JobRequest, opts SubmitOptions) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("dserve: service is shut down")
	}
	if req.Base != "" {
		if err := s.checkBaseLocked(req); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	inflight := 0
	for _, j := range s.jobs {
		if j.State == JobQueued || j.State == JobRunning {
			inflight++
		}
	}
	if inflight >= s.cfg.MaxInFlight {
		s.mu.Unlock()
		s.Counters.Add("jobs.rejected_busy", 1)
		return nil, ErrBusy
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%04d", s.seq),
		Req:       req,
		State:     JobQueued,
		Submitted: time.Now(),
		events:    NewEventLog(),
		opts:      opts,
	}
	job.events.Append(JobEvent{Type: EventState, State: JobQueued})
	if req.Base != "" {
		// Pin the base while this job exists in a non-terminal state:
		// checkBaseLocked just proved it is present and done, and the pin
		// closes the window in which eviction could release it (and its
		// store objects) between acceptance and the async run. run()
		// releases it on completion.
		s.jobs[req.Base].pins++
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	snap := *job
	s.mu.Unlock()

	s.Counters.Add("jobs.submitted", 1)
	go s.run(job)
	return &snap, nil
}

// progressObserver mirrors one job's completed plan nodes into its stage
// counters and event stream.
type progressObserver struct {
	s   *Service
	job *Job
}

func (o progressObserver) StageDone(stage string, hit bool, _ time.Duration) {
	// The event is appended while still holding s.mu so two concurrently
	// completing stages cannot publish their counters out of order (the
	// stream's documented invariant is that StagesDone never decreases).
	// EventLog.Append takes only its own lock and never blocks.
	o.s.mu.Lock()
	defer o.s.mu.Unlock()
	o.job.StagesDone++
	o.job.events.Append(JobEvent{
		Type: EventStage, Stage: stage, Hit: hit,
		StagesDone: o.job.StagesDone, StagesTotal: o.job.StagesTotal,
	})
}

func (s *Service) run(job *Job) {
	defer s.wg.Done()
	s.mu.Lock()
	job.State = JobRunning
	job.Started = time.Now()
	s.mu.Unlock()
	job.events.Append(JobEvent{Type: EventState, State: JobRunning})

	obs := plan.MultiObserver(progressObserver{s: s, job: job}, job.opts.Observer)
	onPlanned := func(total int) {
		s.mu.Lock()
		job.StagesTotal = total
		s.mu.Unlock()
	}
	res, err := s.runBatch(job.Req, obs, onPlanned)

	// Persist before publishing the terminal state (file I/O stays outside
	// s.mu): once the job reads as done, its manifest and pinned objects
	// are already durable.
	finished := time.Now()
	var manifest *jobManifest
	var refs []storeRef
	if s.store != nil {
		if err == nil {
			manifest, refs = s.persistJob(job, res, finished)
		} else {
			manifest, refs = s.persistFailedJob(job, err, finished)
		}
	}

	s.mu.Lock()
	job.Finished = finished
	job.manifest = manifest
	job.refs = refs
	if err != nil {
		job.State = JobFailed
		job.Err = err.Error()
	} else {
		job.State = JobDone
		job.Result = res
	}
	if job.Req.Base != "" {
		// Release the base pin Submit took; the base cannot have been
		// evicted while pinned, but a restart-restored table makes the
		// nil check cheap insurance.
		if bj := s.jobs[job.Req.Base]; bj != nil {
			bj.pins--
		}
	}
	wall := job.Finished.Sub(job.Started)
	snap := *job
	s.pruneJobsLocked()
	s.mu.Unlock()

	// Terminal event last: subscribers that see it know the stream is
	// complete and every stage event precedes it. A done job's event also
	// carries its retained result bytes, so consumers (the gateway's
	// result-byte accounting) need no post-terminal job lookup that could
	// race MaxJobs pruning.
	term := JobEvent{
		Type: EventState, State: snap.State, Error: snap.Err, Terminal: true,
		StagesDone: snap.StagesDone, StagesTotal: snap.StagesTotal,
	}
	if snap.State == JobDone {
		term.ResultBytes = res.RetainedBytes()
	}
	job.events.Append(term)

	if err != nil {
		s.Counters.Add("jobs.failed", 1)
	} else {
		s.Counters.Add("jobs.completed", 1)
	}
	s.Timings.Observe("job.wall", wall)
	if job.opts.OnDone != nil {
		job.opts.OnDone(&snap)
	}
}

// pruneJobsLocked evicts the oldest terminal jobs beyond MaxJobs — each
// completed job pins its compacted library images, so retention must be
// bounded. Queued, running, and pinned jobs are never evicted: a pin marks
// an in-flight reader (an open fetch-library stream), and evicting under it
// would release the store objects the response is still being served from.
// Evicting a persisted job releases its store references and deletes its
// manifest, so a future boot does not resurrect it. Callers hold s.mu.
func (s *Service) pruneJobsLocked() {
	var terminal []string
	for _, id := range s.order {
		st := s.jobs[id].State
		if st == JobDone || st == JobFailed {
			terminal = append(terminal, id)
		}
	}
	excess := len(terminal) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	// The newest MaxJobs terminal jobs always stay; of the older ones,
	// pinned jobs are over-retained until their streams close (the release
	// re-runs this prune).
	evict := map[string]bool{}
	for _, id := range terminal[:excess] {
		if s.jobs[id].pins == 0 {
			evict[id] = true
		}
	}
	if len(evict) == 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict[id] {
			s.releaseJobLocked(s.jobs[id])
			delete(s.jobs, id)
			s.Counters.Add("jobs.evicted", 1)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// releaseJobLocked drops the job's store references and deletes its
// manifest. Callers hold s.mu.
func (s *Service) releaseJobLocked(job *Job) {
	if s.store == nil {
		return
	}
	for _, ref := range job.refs {
		s.store.Release(ref.Kind, ref.Key)
	}
	job.refs = nil
	if job.manifest != nil {
		s.store.Delete(kindJob, job.ID)
		job.manifest = nil
	}
}

// checkBaseLocked validates an incremental request's base reference at
// submission time: the base job must exist, be done, and agree on
// everything that shapes the batch (the workload superset check runs in
// DebloatBatch, identity-compared, once the install is materialized).
// Callers hold s.mu.
func (s *Service) checkBaseLocked(req JobRequest) error {
	base, ok := s.jobs[req.Base]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownBase, req.Base)
	}
	if base.State != JobDone {
		return fmt.Errorf("%w: %s is %s", ErrBaseNotReady, req.Base, base.State)
	}
	if base.Req.IngestDir != req.IngestDir {
		return fmt.Errorf("dserve: incremental request must match base %s on ingest_dir", req.Base)
	}
	if req.IngestDir == "" {
		reqFW, _ := ResolveFramework(req.Framework) // req passed Validate already
		baseFW, err := ResolveFramework(base.Req.Framework)
		if err != nil || reqFW != baseFW || base.Req.TailLibs != req.TailLibs {
			return fmt.Errorf("dserve: incremental request must match base %s on framework, tail_libs, max_steps, and skip_verify", req.Base)
		}
	}
	if s.effectiveSteps(base.Req.MaxSteps) != s.effectiveSteps(req.MaxSteps) ||
		base.Req.SkipVerify != req.SkipVerify {
		return fmt.Errorf("dserve: incremental request must match base %s on framework, tail_libs, max_steps, and skip_verify", req.Base)
	}
	return nil
}

// effectiveSteps normalizes a request step cap the way DebloatBatch does:
// 0 takes the service default, negative means uncapped. Comparing
// normalized values keeps an omitted max_steps compatible with an
// explicitly spelled-out default.
func (s *Service) effectiveSteps(v int) int {
	if v == 0 {
		return s.cfg.MaxSteps
	}
	if v < 0 {
		return 0
	}
	return v
}

// runBatch materializes the request (shared install, member workloads,
// incremental base) and executes the batch. obs and onPlanned carry the
// job's progress hooks into the batch options.
func (s *Service) runBatch(req JobRequest, obs plan.Observer, onPlanned func(int)) (*BatchResult, error) {
	var in *mlframework.Install
	var err error
	if req.IngestDir != "" {
		in, err = s.ingestInstall(req.IngestDir)
	} else {
		var fw string
		if fw, err = ResolveFramework(req.Framework); err != nil {
			return nil, err
		}
		in, err = s.install(fw, req.TailLibs)
	}
	if err != nil {
		return nil, err
	}
	ws := make([]mlruntime.Workload, len(req.Workloads))
	for i, sp := range req.Workloads {
		if ws[i], err = sp.Workload(in); err != nil {
			return nil, fmt.Errorf("dserve: workload %d: %w", i, err)
		}
	}
	opt := BatchOptions{
		MaxSteps:   req.MaxSteps,
		SkipVerify: req.SkipVerify,
		Observer:   obs,
		OnPlanned:  onPlanned,
	}
	if req.IngestDir == "" {
		// The request's specs ride along so the cluster tier can execute
		// detect stages on their owning shard (the shard regenerates the
		// install from framework/tail_libs). Ingested installs stay
		// spec-less: a peer cannot re-read a tree it does not have, so
		// detect stages compute locally on a cluster read-through miss
		// while locate/compact/verify artifacts still flow through the
		// ring by content key.
		opt.Specs = &BatchSpecs{Framework: req.Framework, TailLibs: req.TailLibs, Workloads: req.Workloads}
	}
	if req.Base != "" {
		// The base has been pinned since Submit accepted the request, so
		// eviction cannot have released it or the store objects its stage
		// keys absorb through.
		baseRes, err := s.ResultOf(req.Base)
		if err != nil {
			return nil, fmt.Errorf("dserve: incremental base %s: %w", req.Base, err)
		}
		opt.Base, opt.BaseID = baseRes, req.Base
	}
	return s.DebloatBatch(in, ws, opt)
}

// Job returns a snapshot of the job, or nil when unknown.
func (s *Service) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil
	}
	snap := *job
	return &snap
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		snap := *s.jobs[id]
		out = append(out, &snap)
	}
	return out
}

// persistJob makes a completed job durable: it ensures every referenced
// object exists in the store, pins it, and writes the job manifest. A
// failure at any step degrades to a non-durable job (counted, not fatal) —
// the in-memory result still serves until eviction.
func (s *Service) persistJob(job *Job, res *BatchResult, finished time.Time) (*jobManifest, []storeRef) {
	abandon := func(held []storeRef) (*jobManifest, []storeRef) {
		for _, ref := range held {
			s.store.Release(ref.Kind, ref.Key)
		}
		s.Counters.Add("jobs.persist_failed", 1)
		return nil, nil
	}
	m, err := manifestOf(job, res)
	if err != nil {
		return abandon(nil)
	}
	m.Finished = finished

	// Drain the cache's write-behind spills first: the worker has been
	// overlapping its disk waits with the batch's compute, so by now most
	// referenced objects are already durable and Retain succeeds without
	// the synchronous re-spill below.
	// The persist.* timings split the durability tail the same way the
	// stage.* timings split the batch: flush (write-behind drain), retain
	// (pin sweep plus any re-spill), sync (object commit sweep), manifest
	// (manifest publish and its flush).
	t0 := time.Now()
	s.Cache.Flush()
	s.Timings.Observe("persist.flush", time.Since(t0))
	t0 = time.Now()

	var held []storeRef
	// Pin each referenced object, re-spilling any the cache layer never
	// wrote or the byte budget already evicted. Retain-then-spill keeps
	// the window in which an unpinned object can vanish to the few
	// instructions between the spill and the retry.
	for i, ml := range m.Libs {
		for _, ref := range []storeRef{{kindResult, ml.Key}, {kindSparse, ml.Key}, {kindLib, ml.LibDigest}} {
			if s.store.Retain(ref.Kind, ref.Key) {
				held = append(held, ref)
				continue
			}
			if err := spillResult(s.store, ml.Key, &negativa.LibDebloat{Report: res.Libs[i]}); err != nil {
				return abandon(held)
			}
			if !s.store.Retain(ref.Kind, ref.Key) {
				return abandon(held)
			}
			held = append(held, ref)
		}
	}
	s.Timings.Observe("persist.retain", time.Since(t0))
	data, err := json.Marshal(m)
	if err != nil {
		return abandon(held)
	}
	// Commit point: group-flush the directories holding every object
	// rename above, THEN publish the manifest that references them, then
	// flush the manifest's own rename. A crash between the two flushes
	// loses the manifest, never a manifest pointing at vanished objects.
	t0 = time.Now()
	s.store.SyncDirs()
	s.Timings.Observe("persist.sync", time.Since(t0))
	t0 = time.Now()
	if err := s.store.Put(kindJob, job.ID, data); err != nil {
		return abandon(held)
	}
	s.store.SyncDirs()
	s.Timings.Observe("persist.manifest", time.Since(t0))
	if !s.store.Retain(kindJob, job.ID) {
		return abandon(held)
	}
	held = append(held, storeRef{kindJob, job.ID})
	s.Counters.Add("jobs.persisted", 1)
	return m, held
}

// persistFailedJob makes a failed job's terminal state durable: a minimal
// manifest (no library references) so a restart keeps answering polls for
// it — and, crucially, never reissues its ID to a different job.
func (s *Service) persistFailedJob(job *Job, jobErr error, finished time.Time) (*jobManifest, []storeRef) {
	m := &jobManifest{
		ID: job.ID, State: JobFailed, Error: jobErr.Error(),
		Submitted: job.Submitted, Started: job.Started, Finished: finished,
		Req: job.Req,
	}
	data, err := json.Marshal(m)
	if err != nil {
		return nil, nil
	}
	if err := s.store.Put(kindJob, job.ID, data); err != nil || !s.store.Retain(kindJob, job.ID) {
		s.Counters.Add("jobs.persist_failed", 1)
		return nil, nil
	}
	s.store.SyncDirs()
	return m, []storeRef{{kindJob, job.ID}}
}

// restoreJobs loads persisted job manifests at boot, pinning each job's
// objects and inserting the jobs in their terminal state (done jobs with
// lazily-materialized results, failed jobs with their error). A manifest
// whose referenced objects did not all survive is dropped (and deleted)
// rather than half-restored; its ID still advances the sequence so no
// previously-issued ID is ever reused. Called from NewService before the
// service is shared, but takes s.mu for uniformity.
func (s *Service) restoreJobs() {
	var manifests []*jobManifest
	maxSeq := 0
	s.store.Walk(kindJob, func(key string, _ int64) error {
		// Every manifest key reserves its ID, even if the manifest itself
		// turns out unreadable or unrestorable below.
		if n := jobSeq(key); n > maxSeq {
			maxSeq = n
		}
		raw, ok := s.store.Get(kindJob, key)
		if !ok {
			return nil
		}
		var m jobManifest
		err := json.Unmarshal(raw, &m)
		if err != nil || m.ID != key || (m.state() == JobDone && len(m.Libs) == 0) {
			s.store.Delete(kindJob, key)
			s.Counters.Add("jobs.restore_failed", 1)
			return nil
		}
		manifests = append(manifests, &m)
		return nil
	})
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Submitted.Before(manifests[j].Submitted) })
	// MaxJobs still bounds terminal retention across restarts: keep the
	// newest, drop (and delete) the overflow.
	if len(manifests) > s.cfg.MaxJobs {
		for _, m := range manifests[:len(manifests)-s.cfg.MaxJobs] {
			s.store.Delete(kindJob, m.ID)
			s.Counters.Add("jobs.evicted", 1)
		}
		manifests = manifests[len(manifests)-s.cfg.MaxJobs:]
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range manifests {
		held := make([]storeRef, 0, 1+3*len(m.Libs))
		ok := true
		for _, ref := range m.refs() {
			if !s.store.Retain(ref.Kind, ref.Key) {
				ok = false
				break
			}
			held = append(held, ref)
		}
		if !ok {
			for _, ref := range held {
				s.store.Release(ref.Kind, ref.Key)
			}
			s.store.Delete(kindJob, m.ID)
			s.Counters.Add("jobs.restore_failed", 1)
			continue
		}
		job := &Job{
			ID: m.ID, Req: m.Req, State: m.state(), Err: m.Error,
			Submitted: m.Submitted, Started: m.Started, Finished: m.Finished,
			manifest: m, refs: held,
			events: NewEventLog(),
		}
		// A restored job's stream is just its terminal state: per-stage
		// history does not survive a restart (and does not need to — the
		// job is already done).
		job.events.Append(JobEvent{Type: EventState, State: job.State, Error: job.Err, Terminal: true})
		s.jobs[m.ID] = job
		s.order = append(s.order, m.ID)
		s.Counters.Add("jobs.restored", 1)
	}
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
}

// jobSeq parses the numeric suffix of a job ID ("job-0017" → 17) so a
// rebooted service numbers new jobs past its restored ones.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// Typed lookup errors for the result/stream accessors; the HTTP layer maps
// them to status codes.
var (
	ErrUnknownJob  = errors.New("dserve: unknown job")
	ErrJobNotReady = errors.New("dserve: job has no result yet")
	ErrUnknownLib  = errors.New("dserve: job has no such library")
)

// ResultOf returns the job's batch result, materializing a restored job's
// result from the store on first use. The job is pinned for the duration of
// the materialization.
func (s *Service) ResultOf(id string) (*BatchResult, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if job.State != JobDone {
		// Queued, running, and failed jobs (including restored failed
		// ones, which carry a manifest but no libraries) have no result.
		s.mu.Unlock()
		return nil, ErrJobNotReady
	}
	if job.Result != nil {
		res := job.Result
		s.mu.Unlock()
		return res, nil
	}
	m := job.manifest
	if m == nil {
		s.mu.Unlock()
		return nil, ErrJobNotReady
	}
	job.pins++
	s.mu.Unlock()

	res, err := s.materialize(m)

	s.mu.Lock()
	job.pins--
	if err == nil {
		if job.Result == nil {
			job.Result = res
		} else {
			res = job.Result // another materialization won the race
		}
	}
	s.pruneJobsLocked()
	s.mu.Unlock()
	if err != nil {
		s.Counters.Add("jobs.restore_failed", 1)
		return nil, err
	}
	s.Counters.Add("jobs.materialized", 1)
	return res, nil
}

// materialize rebuilds a BatchResult from a job manifest: reports come from
// kindResult objects, images from kindLib (parsed once per digest), range
// sets from kindSparse decoded against the parsed image. No locate/compact
// runs — restored libraries are byte-identical reconstructions.
func (s *Service) materialize(m *jobManifest) (*BatchResult, error) {
	res := &BatchResult{
		InstallFP:     m.InstallFP,
		Union:         &negativa.Profile{Workload: m.UnionWorkload},
		Workloads:     append([]WorkloadOutcome(nil), m.Workloads...),
		DetectTime:    time.Duration(m.DetectNS),
		AnalysisTime:  time.Duration(m.AnalysisNS),
		WallTime:      time.Duration(m.WallNS),
		CacheHits:     m.CacheHits,
		CacheMisses:   m.CacheMisses,
		ProfileReuses: m.ProfileReuses,
		VerifySkipped: m.VerifySkipped,
		Incremental:   m.Incremental,
	}
	res.byName = make(map[string]*negativa.LibraryReport, len(m.Libs))
	for _, ml := range m.Libs {
		raw, ok := s.store.Get(kindResult, ml.Key)
		if !ok {
			return nil, fmt.Errorf("dserve: restore %s: result %.12s… missing from store", m.ID, ml.Key)
		}
		var sr storedResult
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil, fmt.Errorf("dserve: restore %s: result %.12s…: %w", m.ID, ml.Key, err)
		}
		lib, err := s.restoredLib(ml.LibDigest, ml.Name)
		if err != nil {
			return nil, fmt.Errorf("dserve: restore %s: %w", m.ID, err)
		}
		enc, ok := s.store.Get(kindSparse, ml.Key)
		if !ok {
			return nil, fmt.Errorf("dserve: restore %s: sparse %.12s… missing from store", m.ID, ml.Key)
		}
		sparse, err := negativa.DecodeSparseImage(lib, enc)
		if err != nil {
			return nil, fmt.Errorf("dserve: restore %s: %w", m.ID, err)
		}
		lr := sr.report(sparse)
		lr.Name = ml.Name
		res.Libs = append(res.Libs, lr)
		res.libKeys = append(res.libKeys, ml.Key)
		res.byName[lr.Name] = lr
	}
	return res, nil
}

// restoredLib loads and parses a library image from the store, memoized by
// content digest so restored jobs sharing libraries parse each image once.
// Failures are returned but never memoized: a missing object may reappear
// (recomputed and re-spilled by a later batch), and the next call must see
// it.
//
// The image is opened via castore.OpenMapped, so a restored library's bytes
// are a pinned page-cache view, not a heap copy. The mapping's lifetime is
// pin-scoped to the Library that aliases it: a finalizer closes it (unmap +
// unpin) once the Library — and with it every SparseImage and in-flight
// OpenLibStream response over it — becomes unreachable. Eviction can
// therefore never yank pages out from under a live response.
func (s *Service) restoredLib(digest, name string) (*elfx.Library, error) {
	type parsed struct {
		lib *elfx.Library
		err error
	}
	v := s.restoredLibs.getOK(digest, func() (any, bool) {
		m, ok := s.store.OpenMapped(kindLib, digest)
		if !ok {
			return parsed{err: fmt.Errorf("library image %.12s… missing from store", digest)}, false
		}
		lib, err := elfx.Parse(name, m.Data())
		if err != nil {
			m.Close()
			return parsed{err: err}, false
		}
		runtime.SetFinalizer(lib, func(*elfx.Library) { m.Close() })
		return parsed{lib: lib}, true
	}).(parsed)
	return v.lib, v.err
}

// LibStream is an open handle on one debloated library of a completed job.
// It pins the job (and therefore its store objects) until Close, so the
// response can stream without racing job eviction.
type LibStream struct {
	// Size is the image size in bytes (HTTP Content-Length).
	Size    int64
	sparse  *negativa.SparseImage
	release func()
}

// WriteTo streams the debloated image.
func (ls *LibStream) WriteTo(w io.Writer) (int64, error) { return ls.sparse.WriteTo(w) }

// Close releases the job pin. Idempotent.
func (ls *LibStream) Close() {
	if ls.release != nil {
		ls.release()
		ls.release = nil
	}
}

// OpenLibStream opens a debloated-library stream on a completed job,
// holding a reference on the job for the duration of the response — the
// fix for job eviction freeing images an in-flight fetch-library is still
// streaming. Callers must Close the stream.
func (s *Service) OpenLibStream(id, name string) (*LibStream, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if job.State != JobDone {
		s.mu.Unlock()
		return nil, ErrJobNotReady
	}
	job.pins++
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		job.pins--
		// Evictions this pin deferred proceed now.
		s.pruneJobsLocked()
		s.mu.Unlock()
	}
	res, err := s.ResultOf(id)
	if err != nil {
		release()
		return nil, err
	}
	lr := res.Lib(name)
	if lr == nil || lr.Sparse == nil {
		release()
		return nil, ErrUnknownLib
	}
	return &LibStream{Size: lr.Sparse.Len(), sparse: lr.Sparse, release: release}, nil
}

// JobEvents returns the job's buffered progress events with Seq > after,
// whether the stream is terminally complete, and a channel that closes on
// the next append (for blocking long-polls and SSE). ErrUnknownJob when
// the job does not exist.
func (s *Service) JobEvents(id string, after int) ([]JobEvent, bool, <-chan struct{}, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil, ErrUnknownJob
	}
	evs, done, ch := job.events.After(after)
	return evs, done, ch, nil
}

// WaitJob blocks until the job reaches a terminal state or the timeout
// elapses, returning the final snapshot. Used by tests and the example
// client; HTTP clients poll instead.
func (s *Service) WaitJob(id string, timeout time.Duration) (*Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		job := s.Job(id)
		if job == nil {
			return nil, fmt.Errorf("dserve: unknown job %q", id)
		}
		if job.State == JobDone || job.State == JobFailed {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("dserve: job %s still %s after %v", id, job.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
