package dserve

import (
	"errors"
	"fmt"
	"time"

	"negativaml/internal/mlruntime"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job tracks one submitted batch through the service. Accessors return
// snapshots; the Result pointer is immutable once the job is done.
type Job struct {
	ID  string
	Req JobRequest

	State     string
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	Result *BatchResult
}

// ErrBusy is returned by Submit when the service already holds its maximum
// number of in-flight (queued or running) jobs; the HTTP layer maps it to
// 503 so clients back off instead of growing the job table unboundedly.
var ErrBusy = errors.New("dserve: too many in-flight jobs, retry later")

// Submit validates the request, queues a job, and runs it asynchronously on
// a service goroutine. The returned snapshot reflects the queued state;
// poll Job(id) for progress. Returns ErrBusy when MaxInFlight jobs are
// already queued or running — the one retention surface MaxJobs pruning
// cannot touch (it only evicts terminal jobs).
func (s *Service) Submit(req JobRequest) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("dserve: service is shut down")
	}
	inflight := 0
	for _, j := range s.jobs {
		if j.State == JobQueued || j.State == JobRunning {
			inflight++
		}
	}
	if inflight >= s.cfg.MaxInFlight {
		s.mu.Unlock()
		s.Counters.Add("jobs.rejected_busy", 1)
		return nil, ErrBusy
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%04d", s.seq),
		Req:       req,
		State:     JobQueued,
		Submitted: time.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	snap := *job
	s.mu.Unlock()

	s.Counters.Add("jobs.submitted", 1)
	go s.run(job)
	return &snap, nil
}

func (s *Service) run(job *Job) {
	defer s.wg.Done()
	s.mu.Lock()
	job.State = JobRunning
	job.Started = time.Now()
	s.mu.Unlock()

	res, err := s.runBatch(job.Req)

	s.mu.Lock()
	job.Finished = time.Now()
	if err != nil {
		job.State = JobFailed
		job.Err = err.Error()
	} else {
		job.State = JobDone
		job.Result = res
	}
	wall := job.Finished.Sub(job.Started)
	s.pruneJobsLocked()
	s.mu.Unlock()

	if err != nil {
		s.Counters.Add("jobs.failed", 1)
	} else {
		s.Counters.Add("jobs.completed", 1)
	}
	s.Timings.Observe("job.wall", wall)
}

// pruneJobsLocked evicts the oldest terminal jobs beyond MaxJobs — each
// completed job pins its compacted library images, so retention must be
// bounded. Queued and running jobs are never evicted. Callers hold s.mu.
func (s *Service) pruneJobsLocked() {
	terminal := 0
	for _, id := range s.order {
		st := s.jobs[id].State
		if st == JobDone || st == JobFailed {
			terminal++
		}
	}
	if terminal <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].State
		if terminal > s.cfg.MaxJobs && (st == JobDone || st == JobFailed) {
			delete(s.jobs, id)
			terminal--
			s.Counters.Add("jobs.evicted", 1)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runBatch materializes the request (shared install, member workloads) and
// executes the batch.
func (s *Service) runBatch(req JobRequest) (*BatchResult, error) {
	fw, err := ResolveFramework(req.Framework)
	if err != nil {
		return nil, err
	}
	in, err := s.install(fw, req.TailLibs)
	if err != nil {
		return nil, err
	}
	ws := make([]mlruntime.Workload, len(req.Workloads))
	for i, sp := range req.Workloads {
		if ws[i], err = sp.Workload(in); err != nil {
			return nil, fmt.Errorf("dserve: workload %d: %w", i, err)
		}
	}
	return s.DebloatBatch(in, ws, BatchOptions{MaxSteps: req.MaxSteps, SkipVerify: req.SkipVerify})
}

// Job returns a snapshot of the job, or nil when unknown.
func (s *Service) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil
	}
	snap := *job
	return &snap
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		snap := *s.jobs[id]
		out = append(out, &snap)
	}
	return out
}

// WaitJob blocks until the job reaches a terminal state or the timeout
// elapses, returning the final snapshot. Used by tests and the example
// client; HTTP clients poll instead.
func (s *Service) WaitJob(id string, timeout time.Duration) (*Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		job := s.Job(id)
		if job == nil {
			return nil, fmt.Errorf("dserve: unknown job %q", id)
		}
		if job.State == JobDone || job.State == JobFailed {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("dserve: job %s still %s after %v", id, job.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
