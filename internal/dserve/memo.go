package dserve

import (
	"sync"
	"sync/atomic"

	"negativaml/internal/elfx"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// boundedMemo is a pointer-keyed memo for values derived from immutable
// inputs (install fingerprints, library content digests). It is wiped once
// it holds max entries: the keys pin their objects against garbage
// collection, so the memo must not grow unbounded. Concurrent computes for
// the same key may run twice; both store the same value, so the race is
// benign.
type boundedMemo struct {
	m   sync.Map
	n   atomic.Int64
	max int64
}

func newBoundedMemo(max int64) *boundedMemo { return &boundedMemo{max: max} }

// get returns the memoized value for key, computing and storing it on
// first sight.
func (b *boundedMemo) get(key any, compute func() any) any {
	return b.getOK(key, func() (any, bool) { return compute(), true })
}

// getOK is get for fallible computes: a compute returning ok=false hands
// its value through without memoizing it, so transient failures (a store
// object momentarily absent) are retried on the next call instead of
// being cached forever.
func (b *boundedMemo) getOK(key any, compute func() (any, bool)) any {
	if v, ok := b.m.Load(key); ok {
		return v
	}
	v, ok := compute()
	if !ok {
		return v
	}
	if b.n.Add(1) > b.max {
		b.m.Range(func(k, _ any) bool { b.m.Delete(k); return true })
		b.n.Store(0)
	}
	b.m.Store(key, v)
	return v
}

// StageMemo is the serving plane's per-stage memoization behind the plan
// scheduler: one plan.Memo that routes each stage's content key to its
// tier.
//
//   - detect → the profile Registry: memory entries keyed by (install
//     fingerprint, workload identity) recovered from the composite stage
//     hash, with on-disk profile snapshots replayed at boot.
//   - compact → the ResultCache: byte-bounded memory plus the
//     content-addressed store's disk tier, decoding persisted range sets
//     against the node's live library hint.
//   - every other stage (lib-index, locate, the capped reference run) →
//     a bounded in-memory memo with singleflight compute dedup.
//
// The registry and cache tiers tolerate concurrent duplicate computes of
// one key (both writers store identical content — the same benign race the
// pre-stage-graph service had); the memory tier collapses them outright.
type StageMemo struct {
	registry *Registry
	cache    *ResultCache
	mem      *plan.MemMemo
	counters *metrics.CounterSet
}

// NewStageMemo wires the service's reuse layers into one stage memo.
// counters, when non-nil, keeps the pre-stage-graph registry.hits /
// registry.misses series alive alongside the scheduler's per-stage ones.
func NewStageMemo(registry *Registry, cache *ResultCache, counters *metrics.CounterSet) *StageMemo {
	return &StageMemo{
		registry: registry,
		cache:    cache,
		mem:      plan.NewMemMemo(0),
		counters: counters,
	}
}

// GetOrCompute implements plan.Memo.
func (m *StageMemo) GetOrCompute(key plan.Key, hint any, compute func() (any, error)) (any, bool, error) {
	switch key.Stage {
	case negativa.StageDetect:
		fp, wid, ok := negativa.SplitDetectHash(key.Hash)
		if !ok {
			break
		}
		pk := ProfileKey{Install: fp, Workload: wid}
		if p, ok := m.registry.Get(pk); ok {
			m.count("registry.hits")
			return p, true, nil
		}
		v, err := compute()
		if err != nil {
			return nil, false, err
		}
		m.registry.Put(pk, v.(*negativa.Profile))
		m.count("registry.misses")
		return v, false, nil
	case negativa.StageCompact:
		lib, _ := hint.(*elfx.Library)
		if ld, ok := m.cache.GetOrLoad(key.Hash, lib); ok {
			return ld, true, nil
		}
		v, err := compute()
		if err != nil {
			return nil, false, err
		}
		m.cache.Put(key.Hash, v.(*negativa.LibDebloat))
		return v, false, nil
	}
	return m.mem.GetOrCompute(key, hint, compute)
}

func (m *StageMemo) count(name string) {
	if m.counters != nil {
		m.counters.Add(name, 1)
	}
}
