package dserve

import (
	"sync"
	"sync/atomic"
)

// boundedMemo is a pointer-keyed memo for values derived from immutable
// inputs (install fingerprints, library content digests). It is wiped once
// it holds max entries: the keys pin their objects against garbage
// collection, so the memo must not grow unbounded. Concurrent computes for
// the same key may run twice; both store the same value, so the race is
// benign.
type boundedMemo struct {
	m   sync.Map
	n   atomic.Int64
	max int64
}

func newBoundedMemo(max int64) *boundedMemo { return &boundedMemo{max: max} }

// get returns the memoized value for key, computing and storing it on
// first sight.
func (b *boundedMemo) get(key any, compute func() any) any {
	if v, ok := b.m.Load(key); ok {
		return v
	}
	v := compute()
	if b.n.Add(1) > b.max {
		b.m.Range(func(k, _ any) bool { b.m.Delete(k); return true })
		b.n.Store(0)
	}
	b.m.Store(key, v)
	return v
}
