package dserve

import (
	"sync"
	"sync/atomic"

	"negativaml/internal/cluster"
	"negativaml/internal/elfx"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// boundedMemo is a pointer-keyed memo for values derived from immutable
// inputs (install fingerprints, library content digests). It is wiped once
// it holds max entries: the keys pin their objects against garbage
// collection, so the memo must not grow unbounded. Concurrent computes for
// the same key may run twice; both store the same value, so the race is
// benign.
type boundedMemo struct {
	m   sync.Map
	n   atomic.Int64
	max int64
}

func newBoundedMemo(max int64) *boundedMemo { return &boundedMemo{max: max} }

// get returns the memoized value for key, computing and storing it on
// first sight.
func (b *boundedMemo) get(key any, compute func() any) any {
	return b.getOK(key, func() (any, bool) { return compute(), true })
}

// getOK is get for fallible computes: a compute returning ok=false hands
// its value through without memoizing it, so transient failures (a store
// object momentarily absent) are retried on the next call instead of
// being cached forever.
func (b *boundedMemo) getOK(key any, compute func() (any, bool)) any {
	if v, ok := b.m.Load(key); ok {
		return v
	}
	v, ok := compute()
	if !ok {
		return v
	}
	if b.n.Add(1) > b.max {
		b.m.Range(func(k, _ any) bool { b.m.Delete(k); return true })
		b.n.Store(0)
	}
	b.m.Store(key, v)
	return v
}

// StageMemo is the serving plane's per-stage memoization behind the plan
// scheduler: one plan.Memo that routes each stage's content key through up
// to three tiers — local memory, local disk, owning cluster peer.
//
//   - detect → the profile Registry: memory entries keyed by (install
//     fingerprint, workload identity) recovered from the composite stage
//     hash, with on-disk profile snapshots replayed at boot. With a
//     cluster attached, a registry miss consults the stage's owning peer
//     (read-through, or remote execution when the batch carried its
//     workload spec).
//   - compact → the ResultCache: byte-bounded memory, then the
//     content-addressed store's disk tier (persisted range sets decoded
//     against the node's live library hint), then the owning peer. A
//     peer-served result is Put back into the local cache — which spills
//     it into the local castore — so hot artifacts replicate toward the
//     demand that reads them.
//   - every other stage (lib-index, locate, the capped reference run) →
//     a bounded in-memory memo with singleflight compute dedup. Locate
//     needs no peer tier of its own: its memoized value is a lazy handle
//     that only resolves under a compact miss, and compact misses route
//     to the owner — so location effectively executes on the owning shard
//     too.
//
// Every peer-tier failure (transport error, downed owner, undecodable
// payload) falls back to local compute: the cluster is an optimization
// over a node that is fully capable alone, and correctness never depends
// on a peer. The registry and cache tiers tolerate concurrent duplicate
// computes of one key (both writers store identical content — the same
// benign race the pre-stage-graph service had); the memory tier collapses
// them outright.
type StageMemo struct {
	registry *Registry
	cache    *ResultCache
	mem      *plan.MemMemo
	counters *metrics.CounterSet
	// cluster, when non-nil, adds the owning-peer tier to detect and
	// compact lookups.
	cluster *cluster.Cluster
	// exec, when non-nil, is the same executor the plan scheduler runs
	// stages under; peer round trips yield their slot through it (see
	// postJSON) when the scheduler did not hand down the calling node's
	// own slot (slotOf).
	exec plan.Executor
	// replicate, when non-nil, pushes a freshly produced compact result's
	// objects to the named replica peers in the background (the service's
	// replication plane). The memo calls it after a local compute or a
	// remote execution, so every new artifact reaches all live owners of
	// its key without waiting for the repair loop.
	replicate func(hash string, ld *negativa.LibDebloat, peers []string)

	// The batch-prefetch hot path (hotpath.go). flights is the singleflight
	// table spanning prefetch and on-demand reads of one stage key;
	// prefetched marks keys whose local-tier value a batch lookup planted
	// (read back as SourcePeer), missed marks keys a live replica answered
	// found=false for (on-demand skips its own lookup round trip); noBatch
	// remembers peers that 404 the lookup-batch route (old nodes), and
	// disableBatch turns requester-side batching off entirely.
	flightMu     sync.Mutex
	flights      map[plan.Key]chan struct{}
	hotMu        sync.Mutex
	prefetched   map[plan.Key]bool
	missed       map[plan.Key]bool
	noBatch      map[string]bool
	disableBatch bool
}

// NewStageMemo wires the service's reuse layers into one stage memo.
// counters, when non-nil, keeps the pre-stage-graph registry.hits /
// registry.misses series alive alongside the scheduler's per-stage ones.
func NewStageMemo(registry *Registry, cache *ResultCache, counters *metrics.CounterSet) *StageMemo {
	return &StageMemo{
		registry: registry,
		cache:    cache,
		mem:      plan.NewMemMemo(0),
		counters: counters,
	}
}

// AttachCluster adds the owning-peer tier. Call before serving; the memo
// never detaches a cluster.
func (m *StageMemo) AttachCluster(c *cluster.Cluster) { m.cluster = c }

// AttachReplicator installs the write-back hook that pushes new compact
// results to their replica owners. Call before serving.
func (m *StageMemo) AttachReplicator(fn func(hash string, ld *negativa.LibDebloat, peers []string)) {
	m.replicate = fn
}

// AttachExecutor hands the memo the executor its callers hold slots of.
// Every GetOrCompute happens inside a plan node that has Acquired ex, so
// the memo may temporarily Release that slot around pure I/O waits. Call
// before serving, with the same executor passed to Graph.Execute.
func (m *StageMemo) AttachExecutor(ex plan.Executor) { m.exec = ex }

// DisableBatching turns the requester-side batch-prefetch path off —
// the operator escape hatch mirroring Config.DisablePeerBatch on the
// serving side. Call before serving.
func (m *StageMemo) DisableBatching() { m.disableBatch = true }

// slotOf picks the executor a network wait yields through: the calling
// node's own slot when the scheduler handed one down (re-acquisition then
// re-joins priority admission at the node's critical-path weight), else
// the service-wide attached executor.
func (m *StageMemo) slotOf(slot plan.Executor) plan.Executor {
	if slot != nil {
		return slot
	}
	return m.exec
}

// postJSON runs one peer round trip with the caller's executor slot
// yielded. Plan nodes hold a worker slot while resolving their memo, but
// a peer lookup is pure network wait — holding a CPU-sized slot across it
// would serialize the whole read-through tier behind the compute budget
// (on a small Workers bound, every peer-warm batch degenerates to one
// round trip at a time). The slot is re-Acquired before returning, so
// compute after the wire — decode, verify, local compute on fallback —
// still runs under the pool's bound.
func (m *StageMemo) postJSON(slot plan.Executor, owner, path string, req, resp any) error {
	m.countRoundTrip()
	if ex := m.slotOf(slot); ex != nil {
		ex.Release()
		defer ex.Acquire()
	}
	return m.cluster.PostJSON(owner, path, req, resp)
}

// replicaOwners returns the stage key's replica set (ring order, primary
// first) and this node's ID, when a cluster is attached.
func (m *StageMemo) replicaOwners(key plan.Key) (owners []string, self string) {
	if m.cluster == nil {
		return nil, ""
	}
	return m.cluster.Owners(key.String()), m.cluster.Self()
}

// remotesOf filters self out of a replica set.
func remotesOf(owners []string, self string) []string {
	out := make([]string, 0, len(owners))
	for _, id := range owners {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// without filters one peer out of a slice.
func without(peers []string, id string) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != id {
			out = append(out, p)
		}
	}
	return out
}

// replicateTo hands a freshly produced compact result to the background
// replication plane, when one is attached and the result is spillable.
func (m *StageMemo) replicateTo(hash string, ld *negativa.LibDebloat, peers []string) {
	if m.replicate == nil || len(peers) == 0 || ld == nil || ld.Report == nil || ld.Report.Sparse == nil {
		return
	}
	m.replicate(hash, ld, peers)
}

// GetOrCompute implements plan.Memo.
func (m *StageMemo) GetOrCompute(key plan.Key, hint any, compute func() (any, error)) (any, bool, error) {
	v, src, err := m.GetOrComputeSourced(key, hint, compute)
	return v, src.Hit(), err
}

// GetOrComputeSourced implements plan.SourcedMemo, attributing each value
// to the tier that produced it. Detect and compact keys run under the
// hot path's singleflight table: local-tier probes loop until the caller
// either hits (possibly on a value a concurrent prefetch or reader just
// planted) or becomes the key's flight leader, so one key never has two
// remote reads or two local computes in flight at once.
func (m *StageMemo) GetOrComputeSourced(key plan.Key, hint any, compute func() (any, error)) (any, plan.Source, error) {
	return m.GetOrComputeSourcedSlot(nil, key, hint, compute)
}

// GetOrComputeSourcedSlot implements plan.SlotSourcedMemo: the scheduler
// hands down the calling node's executor slot, so every network wait on
// this consultation yields and re-acquires through the node's own
// priority admission rather than the raw pool.
func (m *StageMemo) GetOrComputeSourcedSlot(slot plan.Executor, key plan.Key, hint any, compute func() (any, error)) (any, plan.Source, error) {
	switch key.Stage {
	case negativa.StageDetect:
		fp, wid, ok := negativa.SplitDetectHash(key.Hash)
		if !ok {
			break
		}
		pk := ProfileKey{Install: fp, Workload: wid}
		for {
			if p, ok := m.registry.Get(pk); ok {
				m.count("registry.hits")
				return p, m.consumeSource(key, plan.SourceMemory), nil
			}
			if m.beginFlight(key) {
				break
			}
			m.awaitFlight(slot, key)
		}
		defer m.endFlight(key)
		return m.detectLeader(slot, key, pk, hint, compute)
	case negativa.StageCompact:
		lib, ch := compactHintOf(hint)
		for {
			if ld, ok := m.cache.Get(key.Hash); ok {
				return ld, m.consumeSource(key, plan.SourceMemory), nil
			}
			if ld, ok := m.cache.LoadStored(key.Hash, lib); ok {
				return ld, m.consumeSource(key, plan.SourceDisk), nil
			}
			if m.beginFlight(key) {
				break
			}
			m.awaitFlight(slot, key)
		}
		defer m.endFlight(key)
		return m.compactLeader(slot, key, lib, ch, compute)
	}
	v, hit, err := m.mem.GetOrCompute(key, hint, compute)
	src := plan.SourceComputed
	if hit {
		src = plan.SourceMemory
	}
	return v, src, err
}

// detectLeader is the flight leader's read-through for one detect key:
// hedged replica lookup (skipped when a batch lookup already saw the
// replica set clean-miss), hinted remote execution on the primary shard,
// then local compute.
func (m *StageMemo) detectLeader(slot plan.Executor, key plan.Key, pk ProfileKey, hint any, compute func() (any, error)) (any, plan.Source, error) {
	if owners, self := m.replicaOwners(key); len(owners) > 0 {
		dh, _ := hint.(*detectHint)
		remotes := remotesOf(owners, self)
		primary := owners[0]
		// Read through the remote replicas, hedged — even when this node
		// is itself an owner whose local tiers missed (a fresh replacement
		// node is primary for keys whose history lives only on the
		// surviving replicas).
		if len(remotes) > 0 && !m.consumeMiss(key) {
			m.cluster.SortByLatency(remotes)
			targets := remotes
			if dh != nil {
				// The hinted escalation below starts with the primary's own
				// registry probe, so a separate primary lookup would only
				// add a round trip.
				targets = without(remotes, primary)
			}
			if lr, peer, ok := m.hedgedLookup(slot, targets, peerLookupRequest{Stage: negativa.StageDetect, Hash: key.Hash}); ok {
				if lr.Profile != nil && lr.Profile.RunResult != nil {
					if peer != primary {
						m.count("peer.replica_reads")
					}
					m.count("peer.hits")
					m.registry.Put(pk, lr.Profile)
					return lr.Profile, plan.SourcePeer, nil
				}
				m.count("peer.fallbacks")
			}
		}
		// One round trip: the execute route starts with the owner's
		// registry probe, and the owner memoizes what it executes.
		if dh != nil && primary != self {
			if p, ok := m.peerDetect(slot, primary, key.Hash, dh); ok {
				m.registry.Put(pk, p)
				return p, plan.SourcePeer, nil
			}
		}
	}
	v, err := compute()
	if err != nil {
		return nil, plan.SourceComputed, err
	}
	m.registry.Put(pk, v.(*negativa.Profile))
	m.count("registry.misses")
	return v, plan.SourceComputed, nil
}

// compactLeader is the flight leader's read-through for one compact key:
// hedged replica lookup, remote execution on the primary shard, local
// compute — each step writing back so the replica set converges.
func (m *StageMemo) compactLeader(slot plan.Executor, key plan.Key, lib *elfx.Library, ch *compactHint, compute func() (any, error)) (any, plan.Source, error) {
	owners, self := m.replicaOwners(key)
	remotes := remotesOf(owners, self)
	if lib != nil && len(remotes) > 0 {
		primary := owners[0]
		if !m.consumeMiss(key) {
			m.cluster.SortByLatency(remotes)
			if lr, peer, ok := m.hedgedLookup(slot, remotes, peerLookupRequest{Stage: negativa.StageCompact, Hash: key.Hash}); ok {
				if ld, decOK := decodePeerResult(lib, lr.Result, lr.Sparse); decOK {
					// Replicate toward demand: the local Put spills the
					// result into this node's castore, so the next miss
					// here is a disk hit, not another network hop.
					if peer != primary {
						m.count("peer.replica_reads")
					}
					m.count("peer.hits")
					m.cache.Put(key.Hash, ld)
					return ld, plan.SourcePeer, nil
				}
				m.count("peer.fallbacks")
			}
		}
		// Every replica missed: execute on the primary shard (it owns
		// the memoization), then write the result back to the other
		// live owners so the whole replica set converges immediately.
		if ch != nil && primary != self {
			if ld, ok := m.peerCompactExec(slot, primary, key.Hash, lib, ch); ok {
				m.cache.Put(key.Hash, ld)
				m.replicateTo(key.Hash, ld, without(remotes, primary))
				return ld, plan.SourcePeer, nil
			}
		}
	}
	v, err := compute()
	if err != nil {
		return nil, plan.SourceComputed, err
	}
	ld := v.(*negativa.LibDebloat)
	m.cache.Put(key.Hash, ld)
	// Local compute writes back to every live remote owner of the key.
	m.replicateTo(key.Hash, ld, remotes)
	return v, plan.SourceComputed, nil
}

func (m *StageMemo) count(name string) {
	if m.counters != nil {
		m.counters.Add(name, 1)
	}
}
