package dserve

import (
	"sync"
	"sync/atomic"

	"negativaml/internal/cluster"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// boundedMemo is a pointer-keyed memo for values derived from immutable
// inputs (install fingerprints, library content digests). It is wiped once
// it holds max entries: the keys pin their objects against garbage
// collection, so the memo must not grow unbounded. Concurrent computes for
// the same key may run twice; both store the same value, so the race is
// benign.
type boundedMemo struct {
	m   sync.Map
	n   atomic.Int64
	max int64
}

func newBoundedMemo(max int64) *boundedMemo { return &boundedMemo{max: max} }

// get returns the memoized value for key, computing and storing it on
// first sight.
func (b *boundedMemo) get(key any, compute func() any) any {
	return b.getOK(key, func() (any, bool) { return compute(), true })
}

// getOK is get for fallible computes: a compute returning ok=false hands
// its value through without memoizing it, so transient failures (a store
// object momentarily absent) are retried on the next call instead of
// being cached forever.
func (b *boundedMemo) getOK(key any, compute func() (any, bool)) any {
	if v, ok := b.m.Load(key); ok {
		return v
	}
	v, ok := compute()
	if !ok {
		return v
	}
	if b.n.Add(1) > b.max {
		b.m.Range(func(k, _ any) bool { b.m.Delete(k); return true })
		b.n.Store(0)
	}
	b.m.Store(key, v)
	return v
}

// StageMemo is the serving plane's per-stage memoization behind the plan
// scheduler: one plan.Memo that routes each stage's content key through up
// to three tiers — local memory, local disk, owning cluster peer.
//
//   - detect → the profile Registry: memory entries keyed by (install
//     fingerprint, workload identity) recovered from the composite stage
//     hash, with on-disk profile snapshots replayed at boot. With a
//     cluster attached, a registry miss consults the stage's owning peer
//     (read-through, or remote execution when the batch carried its
//     workload spec).
//   - compact → the ResultCache: byte-bounded memory, then the
//     content-addressed store's disk tier (persisted range sets decoded
//     against the node's live library hint), then the owning peer. A
//     peer-served result is Put back into the local cache — which spills
//     it into the local castore — so hot artifacts replicate toward the
//     demand that reads them.
//   - every other stage (lib-index, locate, the capped reference run) →
//     a bounded in-memory memo with singleflight compute dedup. Locate
//     needs no peer tier of its own: its memoized value is a lazy handle
//     that only resolves under a compact miss, and compact misses route
//     to the owner — so location effectively executes on the owning shard
//     too.
//
// Every peer-tier failure (transport error, downed owner, undecodable
// payload) falls back to local compute: the cluster is an optimization
// over a node that is fully capable alone, and correctness never depends
// on a peer. The registry and cache tiers tolerate concurrent duplicate
// computes of one key (both writers store identical content — the same
// benign race the pre-stage-graph service had); the memory tier collapses
// them outright.
type StageMemo struct {
	registry *Registry
	cache    *ResultCache
	mem      *plan.MemMemo
	counters *metrics.CounterSet
	// cluster, when non-nil, adds the owning-peer tier to detect and
	// compact lookups.
	cluster *cluster.Cluster
	// exec, when non-nil, is the same executor the plan scheduler runs
	// stages under; peer round trips yield their slot through it (see
	// postJSON).
	exec plan.Executor
}

// NewStageMemo wires the service's reuse layers into one stage memo.
// counters, when non-nil, keeps the pre-stage-graph registry.hits /
// registry.misses series alive alongside the scheduler's per-stage ones.
func NewStageMemo(registry *Registry, cache *ResultCache, counters *metrics.CounterSet) *StageMemo {
	return &StageMemo{
		registry: registry,
		cache:    cache,
		mem:      plan.NewMemMemo(0),
		counters: counters,
	}
}

// AttachCluster adds the owning-peer tier. Call before serving; the memo
// never detaches a cluster.
func (m *StageMemo) AttachCluster(c *cluster.Cluster) { m.cluster = c }

// AttachExecutor hands the memo the executor its callers hold slots of.
// Every GetOrCompute happens inside a plan node that has Acquired ex, so
// the memo may temporarily Release that slot around pure I/O waits. Call
// before serving, with the same executor passed to Graph.Execute.
func (m *StageMemo) AttachExecutor(ex plan.Executor) { m.exec = ex }

// postJSON runs one peer round trip with the caller's executor slot
// yielded. Plan nodes hold a worker slot while resolving their memo, but
// a peer lookup is pure network wait — holding a CPU-sized slot across it
// would serialize the whole read-through tier behind the compute budget
// (on a small Workers bound, every peer-warm batch degenerates to one
// round trip at a time). The slot is re-Acquired before returning, so
// compute after the wire — decode, verify, local compute on fallback —
// still runs under the pool's bound.
func (m *StageMemo) postJSON(owner, path string, req, resp any) error {
	if m.exec != nil {
		m.exec.Release()
		defer m.exec.Acquire()
	}
	return m.cluster.PostJSON(owner, path, req, resp)
}

// owner returns the peer owning a stage key, when that peer is not this
// node.
func (m *StageMemo) owner(key plan.Key) (string, bool) {
	if m.cluster == nil {
		return "", false
	}
	return m.cluster.Owner(key.String())
}

// GetOrCompute implements plan.Memo.
func (m *StageMemo) GetOrCompute(key plan.Key, hint any, compute func() (any, error)) (any, bool, error) {
	v, src, err := m.GetOrComputeSourced(key, hint, compute)
	return v, src.Hit(), err
}

// GetOrComputeSourced implements plan.SourcedMemo, attributing each value
// to the tier that produced it.
func (m *StageMemo) GetOrComputeSourced(key plan.Key, hint any, compute func() (any, error)) (any, plan.Source, error) {
	switch key.Stage {
	case negativa.StageDetect:
		fp, wid, ok := negativa.SplitDetectHash(key.Hash)
		if !ok {
			break
		}
		pk := ProfileKey{Install: fp, Workload: wid}
		if p, ok := m.registry.Get(pk); ok {
			m.count("registry.hits")
			return p, plan.SourceMemory, nil
		}
		if owner, remote := m.owner(key); remote {
			dh, _ := hint.(*detectHint)
			if p, ok := m.peerDetect(owner, key.Hash, dh); ok {
				m.registry.Put(pk, p)
				return p, plan.SourcePeer, nil
			}
		}
		v, err := compute()
		if err != nil {
			return nil, plan.SourceComputed, err
		}
		m.registry.Put(pk, v.(*negativa.Profile))
		m.count("registry.misses")
		return v, plan.SourceComputed, nil
	case negativa.StageCompact:
		lib, ch := compactHintOf(hint)
		if ld, ok := m.cache.Get(key.Hash); ok {
			return ld, plan.SourceMemory, nil
		}
		if ld, ok := m.cache.LoadStored(key.Hash, lib); ok {
			return ld, plan.SourceDisk, nil
		}
		if owner, remote := m.owner(key); remote && lib != nil {
			if ld, ok := m.peerCompact(owner, key.Hash, lib, ch); ok {
				// Replicate toward demand: the local Put spills the result
				// into this node's castore, so the next miss here is a disk
				// hit, not another network hop.
				m.cache.Put(key.Hash, ld)
				return ld, plan.SourcePeer, nil
			}
		}
		v, err := compute()
		if err != nil {
			return nil, plan.SourceComputed, err
		}
		m.cache.Put(key.Hash, v.(*negativa.LibDebloat))
		return v, plan.SourceComputed, nil
	}
	v, hit, err := m.mem.GetOrCompute(key, hint, compute)
	src := plan.SourceComputed
	if hit {
		src = plan.SourceMemory
	}
	return v, src, err
}

func (m *StageMemo) count(name string) {
	if m.counters != nil {
		m.counters.Add(name, 1)
	}
}
