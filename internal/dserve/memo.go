package dserve

import (
	"sync"
	"sync/atomic"
)

// boundedMemo is a pointer-keyed memo for values derived from immutable
// inputs (install fingerprints, library content digests). It is wiped once
// it holds max entries: the keys pin their objects against garbage
// collection, so the memo must not grow unbounded. Concurrent computes for
// the same key may run twice; both store the same value, so the race is
// benign.
type boundedMemo struct {
	m   sync.Map
	n   atomic.Int64
	max int64
}

func newBoundedMemo(max int64) *boundedMemo { return &boundedMemo{max: max} }

// get returns the memoized value for key, computing and storing it on
// first sight.
func (b *boundedMemo) get(key any, compute func() any) any {
	return b.getOK(key, func() (any, bool) { return compute(), true })
}

// getOK is get for fallible computes: a compute returning ok=false hands
// its value through without memoizing it, so transient failures (a store
// object momentarily absent) are retried on the next call instead of
// being cached forever.
func (b *boundedMemo) getOK(key any, compute func() (any, bool)) any {
	if v, ok := b.m.Load(key); ok {
		return v
	}
	v, ok := compute()
	if !ok {
		return v
	}
	if b.n.Add(1) > b.max {
		b.m.Range(func(k, _ any) bool { b.m.Delete(k); return true })
		b.n.Store(0)
	}
	b.m.Store(key, v)
	return v
}
