package dserve

import (
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// The peer wire protocol. Every route lives under /v1/peer/ and is spoken
// only between dserve nodes of one cluster:
//
//	POST /v1/peer/lookup                 read-through: return an already-
//	                                     memoized stage value by content key
//	POST /v1/peer/detect                 execute a detect stage on its
//	                                     owning shard (registry-memoized)
//	POST /v1/peer/compact                execute a locate+compact stage on
//	                                     its owning shard (cache-memoized)
//	GET  /v1/peer/objects/{kind}/{key}   stream one castore object in its
//	                                     integrity-framed wire format
//
// The surface is node-to-node only: routes answer 404 unless a cluster is
// attached, and a cluster configured with a shared secret (see
// cluster.Options.Secret) additionally requires it on every request.
//
// Compact lookups are cheap (no payloads shipped on a miss), so the
// requester probes before escalating to remote execution, which carries
// the library image inline; detect requests are small either way, so a
// hinted requester goes straight to the execute route (which starts with
// the owner's registry probe). Responses hand back the same durable forms the
// castore disk tier uses (storedResult JSON + encoded sparse range set),
// which the requester decodes against its own live library — the
// digest-bound sparse codec makes a mismatched or corrupted payload a
// decode error, never a wrong image.

// peerLookupRequest asks a peer for a stage value it may have memoized.
type peerLookupRequest struct {
	Stage string `json:"stage"`
	Hash  string `json:"hash"`
}

// peerLookupResponse carries the stage value when found: a detection
// profile for detect stages, a stored result + encoded sparse range set
// for compact stages.
type peerLookupResponse struct {
	Found   bool              `json:"found"`
	Profile *negativa.Profile `json:"profile,omitempty"`
	Result  *storedResult     `json:"result,omitempty"`
	Sparse  []byte            `json:"sparse,omitempty"`
}

// peerBatchLookupRequest asks a peer for many stage values in one round
// trip — the scatter half of the batch-prefetch path. Keys are capped at
// maxBatchLookupKeys per request; requesters chunk above that.
type peerBatchLookupRequest struct {
	Keys []peerLookupRequest `json:"keys"`
}

// peerBatchLookupResponse answers index-aligned with the request's keys.
// A key the peer does not hold (or cannot parse) is found=false — a batch
// lookup never fails because one key was bad.
type peerBatchLookupResponse struct {
	Results []peerLookupResponse `json:"results"`
}

// maxBatchLookupKeys bounds one batch lookup, so a single request cannot
// make a peer do unbounded memo reads (mirrors maxStatObjects on the
// repair plane).
const maxBatchLookupKeys = 256

// peerDetectRequest executes one detect stage on its owning shard. The
// spec (plus framework and tail-libs) is everything the owner needs to
// regenerate the install — installs are deterministic functions of their
// config — and the fingerprint pins the request to the bytes the requester
// actually holds.
type peerDetectRequest struct {
	InstallFP string       `json:"install_fp"`
	Identity  string       `json:"identity"`
	Framework string       `json:"framework"`
	TailLibs  int          `json:"tail_libs"`
	MaxSteps  int          `json:"max_steps"`
	Spec      WorkloadSpec `json:"spec"`
}

type peerDetectResponse struct {
	Profile *negativa.Profile `json:"profile"`
	// Hit reports the profile was already registered on the owner.
	Hit bool `json:"hit"`
}

// peerCompactRequest executes one locate+compact stage on its owning
// shard, shipping the library image inline (the owner may have never seen
// it). The owner re-derives the stage key from the inputs and refuses a
// mismatch, so a confused requester cannot poison the owner's memo.
type peerCompactRequest struct {
	Key         string   `json:"key"`
	LibName     string   `json:"lib_name"`
	LibDigest   string   `json:"lib_digest"`
	Lib         []byte   `json:"lib"`
	UsedFuncs   []string `json:"used_funcs"`
	UsedKernels []string `json:"used_kernels"`
	Archs       []uint32 `json:"archs"`
}

type peerCompactResponse struct {
	Result *storedResult `json:"result"`
	Sparse []byte        `json:"sparse"`
	// Hit reports the result was already memoized on the owner.
	Hit bool `json:"hit"`
}

// peerBodyLimit bounds peer request bodies. Compact execution ships a full
// library image inline, so the bound is far above the client-facing
// maxRequestBytes.
const peerBodyLimit = 256 << 20

// Sparse wire-codec negotiation. A node that can decode the compact v2
// codec advertises it on every outgoing peer request (the header is
// installed on the cluster transport by AttachCluster); a responder emits
// v2 only to a requester that advertised it, and v1 otherwise. Old nodes
// neither send nor understand the header, so every mixed pairing degrades
// to v1: old→new requests get v1 answers, new→old requests are answered by
// a node that ignores the header and emits v1 — which the new node's
// magic-sniffing decoder accepts. See negativa.TranscodeSparseWire for the
// codec itself.
const (
	// SparseCodecHeader is the Accept-style capability header naming the
	// highest sparse wire-codec version the requester decodes.
	SparseCodecHeader = "X-Negativa-Sparse-Codec"
	sparseCodecV2     = "2"
)

// wantsWireV2 reports whether this node answers the request in the compact
// v2 sparse codec: the requester advertised it and this node's v2 support
// is not switched off (Config.DisableSparseWireV2 silences both directions,
// so the knob is a faithful pre-v2-node stand-in).
func (s *Service) wantsWireV2(r *http.Request) bool {
	return !s.cfg.DisableSparseWireV2 && r.Header.Get(SparseCodecHeader) == sparseCodecV2
}

// encodeSparseFor encodes a live sparse image for a peer response in the
// newest codec the requester advertised.
func (s *Service) encodeSparseFor(r *http.Request, sp *negativa.SparseImage) []byte {
	if s.wantsWireV2(r) {
		return sp.EncodeWire()
	}
	return sp.Encode()
}

// transcodeSparseFor re-encodes stored (canonical v1) sparse bytes for the
// requester's advertised codec. Transcoding failure falls back to the
// stored bytes — the requester's digest-bound decoder is the integrity
// authority either way.
func (s *Service) transcodeSparseFor(r *http.Request, enc []byte) []byte {
	if !s.wantsWireV2(r) {
		return enc
	}
	v2, err := negativa.TranscodeSparseWire(enc, 2)
	if err != nil {
		return enc
	}
	return v2
}

// registerPeerRoutes mounts the node-to-node API. Every route is guarded
// by peerAuth: a node with no cluster attached refuses peer traffic
// outright, and a cluster configured with a shared secret refuses
// requests that do not present it.
func registerPeerRoutes(mux *http.ServeMux, s *Service) {
	mux.HandleFunc("POST /v1/peer/lookup", s.peerAuth(s.handlePeerLookup))
	mux.HandleFunc("POST /v1/peer/lookup-batch", s.peerAuth(s.handlePeerLookupBatch))
	mux.HandleFunc("POST /v1/peer/detect", s.peerAuth(s.handlePeerDetect))
	mux.HandleFunc("POST /v1/peer/compact", s.peerAuth(s.handlePeerCompact))
	mux.HandleFunc("GET /v1/peer/objects/{kind}/{key}", s.peerAuth(s.handlePeerObject))
	mux.HandleFunc("PUT /v1/peer/objects/{kind}/{key}", s.peerAuth(s.handlePeerObjectPut))
	mux.HandleFunc("POST /v1/peer/stat", s.peerAuth(s.handlePeerStat))
	mux.HandleFunc("POST "+cluster.PingPath, s.peerAuth(s.handlePeerPing))
	mux.HandleFunc("POST "+cluster.JoinPath, s.peerAuth(s.handlePeerJoin))
	mux.HandleFunc("POST "+cluster.LeavePath, s.peerAuth(s.handlePeerLeave))
}

// peerAuth guards one node-to-node route. The peer surface exists only on
// clustered nodes — anywhere else it is 404, indistinguishable from an
// unmounted route, so a standalone (or gateway-fronted) deployment exposes
// no analysis-compute or object-transfer endpoints to strangers. When the
// attached cluster carries a shared secret, every request must present it
// in cluster.PeerSecretHeader; the comparison is constant-time. A cluster
// without a secret still answers any request that reaches it — that mode
// is for deployments whose peer network is isolated from client traffic
// (see docs/API.md).
func (s *Service) peerAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := s.Cluster()
		if c == nil {
			httpError(w, http.StatusNotFound, errors.New("peer API requires cluster mode (start with -peers)"))
			return
		}
		if secret := c.Secret(); secret != "" {
			got := r.Header.Get(cluster.PeerSecretHeader)
			if subtle.ConstantTimeCompare([]byte(got), []byte(secret)) != 1 {
				httpError(w, http.StatusUnauthorized, errors.New("missing or wrong peer secret"))
				return
			}
		}
		h(w, r)
	}
}

func decodePeerBody(w http.ResponseWriter, r *http.Request, limit int64, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("decode peer request: %w", err))
		return false
	}
	return true
}

// lookupStage resolves one read-through key against this node's local
// tiers (memory, then castore), answering in durable wire form. The error
// names an unservable key (unknown stage, malformed hash); a clean miss is
// found=false with no error.
func (s *Service) lookupStage(r *http.Request, key peerLookupRequest) (peerLookupResponse, error) {
	resp := peerLookupResponse{}
	switch key.Stage {
	case negativa.StageDetect:
		fp, wid, ok := negativa.SplitDetectHash(key.Hash)
		if !ok {
			return resp, errors.New("malformed detect hash")
		}
		if p, ok := s.Registry.Get(ProfileKey{Install: fp, Workload: wid}); ok {
			resp.Found, resp.Profile = true, p
		}
	case negativa.StageCompact:
		if ld, ok := s.Cache.Get(key.Hash); ok && ld.Report != nil && ld.Report.Sparse != nil {
			sr := storedResultOf(ld)
			resp.Found, resp.Result, resp.Sparse = true, &sr, s.encodeSparseFor(r, ld.Report.Sparse)
		} else if s.store != nil {
			raw, ok1 := s.store.Get(kindResult, key.Hash)
			enc, ok2 := s.store.Get(kindSparse, key.Hash)
			if ok1 && ok2 {
				var sr storedResult
				if err := json.Unmarshal(raw, &sr); err == nil {
					resp.Found, resp.Result, resp.Sparse = true, &sr, s.transcodeSparseFor(r, enc)
				}
			}
		}
	default:
		return resp, fmt.Errorf("stage %q has no peer lookup", key.Stage)
	}
	if resp.Found {
		s.Counters.Add("peer.served_hits", 1)
	}
	return resp, nil
}

// handlePeerLookup serves the read-through tier: a stage value this node
// already holds in memory or in its castore, in durable wire form. A miss
// is a found=false success, never an error — the requester decides whether
// to escalate to remote execution.
func (s *Service) handlePeerLookup(w http.ResponseWriter, r *http.Request) {
	var req peerLookupRequest
	if !decodePeerBody(w, r, maxRequestBytes, &req) {
		return
	}
	s.Counters.Add("peer.served_lookups", 1)
	resp, err := s.lookupStage(r, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeerLookupBatch is the scatter-gather read-through route: many
// keys in, index-aligned answers out, one round trip — the batch-prefetch
// path that collapses a peer-warm batch's per-stage lookups into one
// request per replica group. An unservable key answers found=false in
// place instead of failing its neighbors. Config.DisablePeerBatch makes
// the route answer a plain 404, indistinguishable from a node predating
// it — the mixed-version stand-in; requesters then degrade to per-key
// lookups.
func (s *Service) handlePeerLookupBatch(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisablePeerBatch {
		http.NotFound(w, r)
		return
	}
	var req peerBatchLookupRequest
	if !decodePeerBody(w, r, peerBodyLimit, &req) {
		return
	}
	if len(req.Keys) > maxBatchLookupKeys {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d keys exceeds the %d bound", len(req.Keys), maxBatchLookupKeys))
		return
	}
	s.Counters.Add("peer.served_batches", 1)
	s.Counters.Add("peer.served_lookups", int64(len(req.Keys)))
	resp := peerBatchLookupResponse{Results: make([]peerLookupResponse, len(req.Keys))}
	for i, key := range req.Keys {
		lr, err := s.lookupStage(r, key)
		if err != nil {
			continue // found=false in place
		}
		resp.Results[i] = lr
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeerDetect executes a detect stage as its owning shard: the
// install is regenerated from the request config (deterministic), pinned
// to the requester's fingerprint, profiled, and registered — so the owner
// memoizes what it executed and every later lookup for this key hits.
// Execution (not the registry fast path) is bounded by the peer-execution
// semaphore so a busy shard cannot be driven past its worker width.
func (s *Service) handlePeerDetect(w http.ResponseWriter, r *http.Request) {
	var req peerDetectRequest
	if !decodePeerBody(w, r, maxRequestBytes, &req) {
		return
	}
	s.Counters.Add("peer.served_detects", 1)
	pk := ProfileKey{Install: req.InstallFP, Workload: req.Identity}
	if p, ok := s.Registry.Get(pk); ok {
		writeJSON(w, http.StatusOK, peerDetectResponse{Profile: p, Hit: true})
		return
	}
	s.peerSem <- struct{}{}
	defer func() { <-s.peerSem }()
	fw, err := ResolveFramework(req.Framework)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.TailLibs < 0 || req.TailLibs > MaxTailLibs {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tail_libs %d out of range", req.TailLibs))
		return
	}
	if req.MaxSteps < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("max_steps %d out of range", req.MaxSteps))
		return
	}
	in, err := s.install(fw, req.TailLibs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if got := s.fingerprint(in); got != req.InstallFP {
		// The requester's install bytes differ from what this node
		// generates for the same config — a version skew a profile must
		// never paper over.
		httpError(w, http.StatusConflict, fmt.Errorf("install fingerprint mismatch: have %.12s…, requested %.12s…", got, req.InstallFP))
		return
	}
	wl, err := req.Spec.Workload(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if id := WorkloadIdentity(wl, req.MaxSteps); id != req.Identity {
		httpError(w, http.StatusBadRequest, fmt.Errorf("workload identity mismatch: spec resolves to %q", id))
		return
	}
	p, err := negativa.DetectUsage(wl, req.MaxSteps)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.Registry.Put(pk, p)
	s.Counters.Add("peer.executed_detects", 1)
	writeJSON(w, http.StatusOK, peerDetectResponse{Profile: p})
}

// handlePeerCompact executes a locate+compact stage as its owning shard.
// The stage key is re-derived from the shipped inputs and must match the
// requested one; the result lands in this node's cache (and castore, when
// attached) before it is returned, so the shard owns the memoization.
// The memory-tier fast path answers without touching the semaphore;
// everything that parses or computes is bounded by it.
func (s *Service) handlePeerCompact(w http.ResponseWriter, r *http.Request) {
	var req peerCompactRequest
	if !decodePeerBody(w, r, peerBodyLimit, &req) {
		return
	}
	s.Counters.Add("peer.served_compacts", 1)
	if ld, ok := s.Cache.Get(req.Key); ok && ld.Report != nil && ld.Report.Sparse != nil {
		sr := storedResultOf(ld)
		writeJSON(w, http.StatusOK, peerCompactResponse{Result: &sr, Sparse: s.encodeSparseFor(r, ld.Report.Sparse), Hit: true})
		return
	}
	s.peerSem <- struct{}{}
	defer func() { <-s.peerSem }()
	lib, err := elfx.Parse(req.LibName, req.Lib)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parse shipped library: %w", err))
		return
	}
	if digestHex(lib) != req.LibDigest {
		httpError(w, http.StatusBadRequest, errors.New("library digest mismatch"))
		return
	}
	if ld, ok := s.Cache.LoadStored(req.Key, lib); ok && ld.Report != nil && ld.Report.Sparse != nil {
		sr := storedResultOf(ld)
		writeJSON(w, http.StatusOK, peerCompactResponse{Result: &sr, Sparse: s.encodeSparseFor(r, ld.Report.Sparse), Hit: true})
		return
	}
	archs := make([]gpuarch.SM, len(req.Archs))
	for i, a := range req.Archs {
		archs[i] = gpuarch.SM(a)
	}
	lk := negativa.LocateKey(lib, req.UsedFuncs, req.UsedKernels, archs)
	if negativa.CompactKey(lk).Hash != req.Key {
		httpError(w, http.StatusBadRequest, errors.New("stage key does not match its inputs"))
		return
	}
	ll, err := negativa.LocateLib(lib, req.UsedFuncs, req.UsedKernels, archs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.Counters.Add("locate.resolved", 1)
	ld := negativa.CompactLocated(lib, ll, req.UsedFuncs, req.UsedKernels)
	s.Counters.Add("analysis.computed", 1)
	s.Counters.Add("peer.executed_compacts", 1)
	s.Cache.Put(req.Key, ld)
	sr := storedResultOf(ld)
	writeJSON(w, http.StatusOK, peerCompactResponse{Result: &sr, Sparse: s.encodeSparseFor(r, ld.Report.Sparse)})
}

// handlePeerObject streams one castore object in its integrity-framed wire
// format (castore.Export); the receiving peer verifies the checksum on
// import. The object is pinned for the duration of the response so LRU
// eviction cannot delete it between the Content-Length header and the
// body. 404s: no store attached, or the object is absent. A mid-stream
// export failure cannot change the already-sent status; it is counted
// (peer.object_export_errors) and the importer's checksum rejects the
// truncated body.
//
// Sparse objects to a v2-advertising requester are transcoded to the
// compact wire codec and re-framed in memory (they are O(ranges), so this
// is cheap), with the response's codec header telling the requester to
// transcode back before storing — disk stays canonical v1 on both ends.
// Every other (kind, requester) pairing streams the stored bytes as-is.
func (s *Service) handlePeerObject(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	if st == nil {
		httpError(w, http.StatusNotFound, errors.New("no data dir configured"))
		return
	}
	kind, key := r.PathValue("kind"), r.PathValue("key")
	if !st.Retain(kind, key) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no object %s/%s", kind, key))
		return
	}
	defer st.Release(kind, key)
	if kind == kindSparse && s.wantsWireV2(r) {
		if enc, ok := st.Get(kind, key); ok {
			if v2, err := negativa.TranscodeSparseWire(enc, 2); err == nil {
				framed := castore.Frame(v2)
				s.Counters.Add("peer.served_objects", 1)
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("Content-Length", strconv.Itoa(len(framed)))
				w.Header().Set(SparseCodecHeader, sparseCodecV2)
				w.WriteHeader(http.StatusOK)
				if _, err := w.Write(framed); err != nil {
					s.Counters.Add("peer.object_export_errors", 1)
				}
				return
			}
		}
		// Unreadable or untranscodable: fall through to the raw stream —
		// the importer's checksum is the authority on whether it's usable.
	}
	size, ok := st.Stat(kind, key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no object %s/%s", kind, key))
		return
	}
	s.Counters.Add("peer.served_objects", 1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size+castore.HeaderSize, 10))
	w.WriteHeader(http.StatusOK)
	if _, err := st.Export(kind, key, w); err != nil {
		s.Counters.Add("peer.object_export_errors", 1)
	}
}

// peerObjectRef names one castore object on the stat wire.
type peerObjectRef struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
}

// peerStatRequest asks which of a batch of objects the peer holds — the
// repair plane's probe. Batched so one round trip covers a whole repair
// round's candidate set (or a chunk of it).
type peerStatRequest struct {
	Objects []peerObjectRef `json:"objects"`
}

// peerStatResponse answers presence per requested object, index-aligned.
type peerStatResponse struct {
	Present []bool `json:"present"`
}

// maxStatObjects bounds one stat probe. Repair chunks its candidate sets
// under this, and a hostile request cannot make the node do unbounded
// work in one call.
const maxStatObjects = 4096

// handlePeerPing answers the heartbeat/probe route: membership gossip in
// both directions, and the liveness signal that readmits this node on
// peers that had marked it down.
func (s *Service) handlePeerPing(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !decodePeerBody(w, r, maxRequestBytes, &req) {
		return
	}
	s.Counters.Add("peer.served_pings", 1)
	writeJSON(w, http.StatusOK, s.Cluster().HandleHeartbeat(req))
}

// handlePeerJoin admits a node into this node's membership view and
// answers with the full live member set, so a joiner learns the cluster
// from any one member. Gossip spreads the addition to everyone else.
func (s *Service) handlePeerJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if !decodePeerBody(w, r, maxRequestBytes, &req) {
		return
	}
	c := s.Cluster()
	if req.ID == "" || req.URL == "" {
		httpError(w, http.StatusBadRequest, errors.New("join requires id and url"))
		return
	}
	if req.ID == c.Self() {
		httpError(w, http.StatusBadRequest, fmt.Errorf("node %q cannot join itself", req.ID))
		return
	}
	c.AddPeer(req.ID, req.URL)
	s.Counters.Add("peer.served_joins", 1)
	writeJSON(w, http.StatusOK, cluster.JoinResponse{Nodes: c.Membership()})
}

// handlePeerLeave retires a node from this node's membership view and
// tombstones its ID against gossip resurrection. The leaving node calls
// this on every peer after handing its primary-owned objects off.
func (s *Service) handlePeerLeave(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaveRequest
	if !decodePeerBody(w, r, maxRequestBytes, &req) {
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, errors.New("leave requires id"))
		return
	}
	s.Cluster().RemovePeer(req.ID)
	s.Counters.Add("peer.served_leaves", 1)
	writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}

// handlePeerStat answers a batched presence probe against the local
// castore — the cheap half of anti-entropy repair (the expensive half,
// streaming, only runs for objects this route reports absent).
func (s *Service) handlePeerStat(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	if st == nil {
		httpError(w, http.StatusNotFound, errors.New("no data dir configured"))
		return
	}
	var req peerStatRequest
	if !decodePeerBody(w, r, peerBodyLimit, &req) {
		return
	}
	if len(req.Objects) > maxStatObjects {
		httpError(w, http.StatusBadRequest, fmt.Errorf("stat of %d objects exceeds the %d bound", len(req.Objects), maxStatObjects))
		return
	}
	s.Counters.Add("peer.served_stats", 1)
	present := make([]bool, len(req.Objects))
	for i, o := range req.Objects {
		present[i] = st.Has(o.Kind, o.Key)
	}
	writeJSON(w, http.StatusOK, peerStatResponse{Present: present})
}

// handlePeerObjectPut receives one pushed object in its integrity-framed
// wire format — the replication / repair / handoff ingest path, the wire
// mirror of handlePeerObject. Import verifies the end-to-end checksum and
// cleans up after truncated or corrupt streams, so a dying pusher leaves
// no partial state here. Pushed kinds are restricted to the replication
// set. A pushed profile snapshot is additionally ingested into the live
// registry (imports land in the store, but detect lookups are served from
// memory); a snapshot that does not parse as a usable profile is removed
// again and refused.
func (s *Service) handlePeerObjectPut(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	if st == nil {
		httpError(w, http.StatusNotFound, errors.New("no data dir configured"))
		return
	}
	kind, key := r.PathValue("kind"), r.PathValue("key")
	switch kind {
	case kindLib, kindSparse, kindResult, kindProfile:
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("kind %q is not replicated", kind))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, peerBodyLimit+castore.HeaderSize)
	n, err := st.Import(kind, key, r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("import %s/%s: %w", kind, key, err))
		return
	}
	if kind == kindProfile {
		raw, ok := st.Get(kind, key)
		var sp storedProfile
		if !ok || json.Unmarshal(raw, &sp) != nil || sp.Profile == nil || sp.Profile.RunResult == nil {
			st.Delete(kind, key)
			httpError(w, http.StatusBadRequest, errors.New("pushed profile snapshot is not usable"))
			return
		}
		s.Registry.Put(ProfileKey{Install: sp.Install, Workload: sp.Workload}, sp.Profile)
	}
	s.Counters.Add("peer.objects_received", 1)
	writeJSON(w, http.StatusOK, map[string]int64{"bytes": n})
}

// ---- Requester side: the stage memo's peer tier ----

// detectHint carries what the peer tier needs to execute a detect stage on
// its owning shard. Attached to detect nodes by DebloatBatch when the
// batch arrived with its workload specs (the HTTP path); library callers
// without specs simply detect locally on a registry miss.
type detectHint struct {
	framework string
	tailLibs  int
	maxSteps  int
	spec      WorkloadSpec
}

// compactHint carries the compact stage's live library and — filled in by
// the node's key function, which runs before the memo is consulted — the
// union-resolved inputs a peer needs to re-execute the stage remotely.
type compactHint struct {
	lib         *elfx.Library
	usedFuncs   []string
	usedKernels []string
	archs       []gpuarch.SM
}

// compactHintOf accepts both hint shapes compact nodes use: the bare
// library (the single-workload planner in internal/negativa) and the full
// cluster hint (the batch service).
func compactHintOf(hint any) (*elfx.Library, *compactHint) {
	switch h := hint.(type) {
	case *elfx.Library:
		return h, nil
	case *compactHint:
		return h.lib, h
	}
	return nil, nil
}

// peerDetect resolves a detect stage through its owning peer. With a hint
// (the workload spec) it goes straight to /v1/peer/detect in one round
// trip — that route begins with the owner's own registry probe and the
// request is a small spec, so a preliminary lookup would only double the
// latency. Without a hint there is nothing to execute remotely, so a
// lookup probe is all that happens. ok=false means the caller should
// compute locally; the failure has already been counted.
func (m *StageMemo) peerDetect(slot plan.Executor, owner, hash string, hint *detectHint) (*negativa.Profile, bool) {
	if hint == nil {
		var lr peerLookupResponse
		if err := m.postJSON(slot, owner, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageDetect, Hash: hash}, &lr); err != nil {
			m.count("peer.fallbacks")
			return nil, false
		}
		if lr.Found && lr.Profile != nil && lr.Profile.RunResult != nil {
			m.count("peer.hits")
			return lr.Profile, true
		}
		m.count("peer.misses")
		return nil, false
	}
	fp, wid, ok := negativa.SplitDetectHash(hash)
	if !ok {
		return nil, false
	}
	req := peerDetectRequest{
		InstallFP: fp, Identity: wid,
		Framework: hint.framework, TailLibs: hint.tailLibs,
		MaxSteps: hint.maxSteps, Spec: hint.spec,
	}
	var dr peerDetectResponse
	if err := m.postJSON(slot, owner, "/v1/peer/detect", req, &dr); err != nil || dr.Profile == nil || dr.Profile.RunResult == nil {
		m.count("peer.fallbacks")
		return nil, false
	}
	if !dr.Hit {
		// The owner had nothing memoized and executed the stage for us.
		m.count("peer.misses")
		m.count("peer.remote_execs")
	}
	m.count("peer.hits")
	return dr.Profile, true
}

// peerCompactExec executes a compact stage on its owning shard, shipping
// the library image inline (the owner may have never seen it).
func (m *StageMemo) peerCompactExec(slot plan.Executor, owner, hash string, lib *elfx.Library, hint *compactHint) (*negativa.LibDebloat, bool) {
	if base64.StdEncoding.EncodedLen(len(lib.Data)) > peerBodyLimit-(64<<10) {
		// The owner's body cap would bounce the request after we shipped
		// the whole image; don't marshal it just to be rejected — compute
		// locally (the margin covers the non-image request fields).
		m.count("peer.fallbacks")
		return nil, false
	}
	req := peerCompactRequest{
		Key: hash, LibName: lib.Name, LibDigest: digestHex(lib), Lib: lib.Data,
		UsedFuncs: hint.usedFuncs, UsedKernels: hint.usedKernels,
	}
	for _, a := range hint.archs {
		req.Archs = append(req.Archs, uint32(a))
	}
	var cr peerCompactResponse
	if err := m.postJSON(slot, owner, "/v1/peer/compact", req, &cr); err != nil {
		m.count("peer.fallbacks")
		return nil, false
	}
	ld, ok := decodePeerResult(lib, cr.Result, cr.Sparse)
	if !ok {
		m.count("peer.fallbacks")
		return nil, false
	}
	m.count("peer.hits")
	m.count("peer.remote_execs")
	return ld, true
}

// decodePeerResult rebuilds a locate+compact result from its wire form
// against the requester's live library.
func decodePeerResult(lib *elfx.Library, sr *storedResult, enc []byte) (*negativa.LibDebloat, bool) {
	if sr == nil || len(enc) == 0 || lib == nil {
		return nil, false
	}
	if sr.LibDigest != digestHex(lib) {
		return nil, false
	}
	sparse, err := negativa.DecodeSparseImage(lib, enc)
	if err != nil {
		return nil, false
	}
	return &negativa.LibDebloat{Report: sr.report(sparse), Analysis: time.Duration(sr.AnalysisNS)}, true
}

// FetchPeerObject imports one castore object from a peer into the local
// store (the generic replication path: restored-job materialization, warm
// pre-seeding). A response the exporter marked with the v2 sparse codec
// header is unframed, transcoded back to the canonical v1 encoding, and
// stored via Put — the disk form never depends on which codec crossed the
// wire. Returns the stored payload size.
func (s *Service) FetchPeerObject(c *cluster.Cluster, peer, kind, key string) (int64, error) {
	if s.store == nil {
		return 0, errors.New("dserve: no store attached")
	}
	rc, hdr, err := c.GetStreamHeader(peer, "/v1/peer/objects/"+kind+"/"+key)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	if kind == kindSparse && hdr.Get(SparseCodecHeader) == sparseCodecV2 {
		framed, err := io.ReadAll(io.LimitReader(rc, peerBodyLimit))
		if err != nil {
			return 0, fmt.Errorf("dserve: fetch %s/%s: %w", kind, key, err)
		}
		payload, err := castore.Unframe(framed)
		if err != nil {
			return 0, fmt.Errorf("dserve: fetch %s/%s: %w", kind, key, err)
		}
		enc, err := negativa.TranscodeSparseWire(payload, 1)
		if err != nil {
			return 0, fmt.Errorf("dserve: fetch %s/%s: %w", kind, key, err)
		}
		if err := s.store.Put(kind, key, enc); err != nil {
			return 0, err
		}
		s.Counters.Add("peer.objects_fetched", 1)
		return int64(len(enc)), nil
	}
	n, err := s.store.Import(kind, key, rc)
	if err != nil {
		return 0, err
	}
	s.Counters.Add("peer.objects_fetched", 1)
	return n, nil
}
