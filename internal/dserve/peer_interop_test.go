package dserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/fatbin"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// postPeerHeader is postPeer with an optional sparse-codec advertisement.
func postPeerHeader(t *testing.T, srv *httptest.Server, path string, in, out any, v2 bool) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if v2 {
		req.Header.Set(SparseCodecHeader, sparseCodecV2)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestPeerSparseCodecNegotiation drives every responder-side codec
// decision: a requester that does not advertise v2 gets v1 from the live
// cache, the disk tier, and the object route; an advertising requester gets
// v2 from all three, byte-equivalent after decoding; and a responder with
// DisableSparseWireV2 set ignores the advertisement entirely.
func TestPeerSparseCodecNegotiation(t *testing.T) {
	st, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := NewService(Config{Workers: 2, MaxSteps: 2, Store: st})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// A content-correct compact request, executed twice: first without the
	// header (miss → execute → v1 response), then with it (hit → v2).
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{Model: "MobileNetV2", Batch: 1}
	wl, err := spec.Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := negativa.DetectUsage(wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	libName := in.LibNames[0]
	lib := in.Library(libName)
	archs := negativa.DeviceArchs(wl.Devices)
	key := negativa.CompactKey(negativa.LocateKey(lib, profile.UsedFuncs[libName], profile.UsedKernels[libName], archs))
	req := peerCompactRequest{
		Key: key.Hash, LibName: libName, LibDigest: digestHex(lib), Lib: lib.Data,
		UsedFuncs: profile.UsedFuncs[libName], UsedKernels: profile.UsedKernels[libName],
	}
	for _, ar := range archs {
		req.Archs = append(req.Archs, uint32(ar))
	}

	var v1resp, v2resp peerCompactResponse
	if code := postPeerHeader(t, srv, "/v1/peer/compact", req, &v1resp, false); code != http.StatusOK {
		t.Fatalf("compact (no header) status %d", code)
	}
	if got := negativa.SparseWireVersion(v1resp.Sparse); got != 1 {
		t.Fatalf("non-advertising requester got codec v%d, want v1", got)
	}
	if code := postPeerHeader(t, srv, "/v1/peer/compact", req, &v2resp, true); code != http.StatusOK {
		t.Fatalf("compact (v2 header) status %d", code)
	}
	if !v2resp.Hit {
		t.Fatal("second compact should hit the memo")
	}
	if got := negativa.SparseWireVersion(v2resp.Sparse); got != 2 {
		t.Fatalf("advertising requester got codec v%d, want v2", got)
	}
	d1, ok1 := decodePeerResult(lib, v1resp.Result, v1resp.Sparse)
	d2, ok2 := decodePeerResult(lib, v2resp.Result, v2resp.Sparse)
	if !ok1 || !ok2 {
		t.Fatal("peer results did not decode")
	}
	if !bytes.Equal(d1.Report.Sparse.Materialize(), d2.Report.Sparse.Materialize()) {
		t.Fatal("v1 and v2 responses decode to different images")
	}

	// Lookup through both tiers. The live cache holds the executed result;
	// crafted store entries under a fresh key exercise the disk-tier
	// transcode path.
	for _, v2 := range []bool{false, true} {
		var lr peerLookupResponse
		if code := postPeerHeader(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: key.Hash}, &lr, v2); code != http.StatusOK || !lr.Found {
			t.Fatalf("live lookup (v2=%v): status %d found %v", v2, code, lr.Found)
		}
		want := 1
		if v2 {
			want = 2
		}
		if got := negativa.SparseWireVersion(lr.Sparse); got != want {
			t.Fatalf("live lookup (v2=%v) answered codec v%d, want v%d", v2, got, want)
		}
	}
	diskSparse := negativa.NewSparseImage(lib, []fatbin.Range{{Start: 64, End: 4096}}).Encode()
	diskResult, err := json.Marshal(storedResult{Name: libName, LibDigest: digestHex(lib)})
	if err != nil {
		t.Fatal(err)
	}
	const diskKey = "feedfacedisk"
	if err := st.Put(kindResult, diskKey, diskResult); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(kindSparse, diskKey, diskSparse); err != nil {
		t.Fatal(err)
	}
	for _, v2 := range []bool{false, true} {
		var lr peerLookupResponse
		if code := postPeerHeader(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: diskKey}, &lr, v2); code != http.StatusOK || !lr.Found {
			t.Fatalf("disk lookup (v2=%v): status %d found %v", v2, code, lr.Found)
		}
		want := 1
		if v2 {
			want = 2
		}
		if got := negativa.SparseWireVersion(lr.Sparse); got != want {
			t.Fatalf("disk lookup (v2=%v) answered codec v%d, want v%d", v2, got, want)
		}
		if !v2 && !bytes.Equal(lr.Sparse, diskSparse) {
			t.Fatal("disk lookup altered the stored v1 bytes")
		}
	}

	// The object route: stored v1 streams as-is to a plain requester and
	// transcodes (with the response header set) for an advertising one.
	getObject := func(v2 bool) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/peer/objects/"+kindSparse+"/"+diskKey, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v2 {
			req.Header.Set(SparseCodecHeader, sparseCodecV2)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("object fetch (v2=%v) status %d", v2, resp.StatusCode)
		}
		return resp, body
	}
	resp, body := getObject(false)
	if resp.Header.Get(SparseCodecHeader) != "" {
		t.Fatal("plain object response must not carry the codec header")
	}
	payload, err := castore.Unframe(body)
	if err != nil || !bytes.Equal(payload, diskSparse) {
		t.Fatalf("plain object fetch did not round-trip (%v)", err)
	}
	resp, body = getObject(true)
	if resp.Header.Get(SparseCodecHeader) != sparseCodecV2 {
		t.Fatal("v2 object response must carry the codec header")
	}
	payload, err = castore.Unframe(body)
	if err != nil {
		t.Fatal(err)
	}
	if got := negativa.SparseWireVersion(payload); got != 2 {
		t.Fatalf("v2 object fetch carried codec v%d", got)
	}
	back, err := negativa.TranscodeSparseWire(payload, 1)
	if err != nil || !bytes.Equal(back, diskSparse) {
		t.Fatalf("v2 object payload does not transcode back to the stored bytes (%v)", err)
	}

	// A knob-disabled responder behaves like a pre-v2 node even when the
	// requester advertises.
	oldSvc := NewService(Config{Workers: 2, MaxSteps: 2, DisableSparseWireV2: true})
	defer oldSvc.Close()
	soloCluster(oldSvc)
	oldSrv := httptest.NewServer(NewHandler(oldSvc))
	defer oldSrv.Close()
	var or peerCompactResponse
	if code := postPeerHeader(t, oldSrv, "/v1/peer/compact", req, &or, true); code != http.StatusOK {
		t.Fatalf("disabled-node compact status %d", code)
	}
	if got := negativa.SparseWireVersion(or.Sparse); got != 1 {
		t.Fatalf("disabled node answered codec v%d, want v1", got)
	}
}

// TestFetchPeerObjectSparseTranscode: a sparse object fetched over the
// v2-negotiated object route lands in the requester's store byte-identical
// to the exporter's canonical v1 bytes — the wire codec never leaks to disk.
func TestFetchPeerObjectSparseTranscode(t *testing.T) {
	stA, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	svcA := NewService(Config{Workers: 1, Store: stA})
	defer svcA.Close()
	soloCluster(svcA)
	srvA := httptest.NewServer(NewHandler(svcA))
	defer srvA.Close()

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lib := in.Library(in.LibNames[0])
	enc := negativa.NewSparseImage(lib, []fatbin.Range{{Start: 128, End: 8192}, {Start: 16384, End: 20000}}).Encode()
	if err := stA.Put(kindSparse, "cafef00d", enc); err != nil {
		t.Fatal(err)
	}

	stB, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	svcB := NewService(Config{Workers: 1, Store: stB})
	defer svcB.Close()
	c := cluster.New("b", map[string]string{"a": srvA.URL}, cluster.Options{Timeout: 10 * time.Second})
	svcB.AttachCluster(c) // advertises the v2 codec on the transport

	n, err := svcB.FetchPeerObject(c, "a", kindSparse, "cafef00d")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(enc)) {
		t.Fatalf("stored %d bytes, want %d", n, len(enc))
	}
	got, ok := stB.Get(kindSparse, "cafef00d")
	if !ok || !bytes.Equal(got, enc) {
		t.Fatal("fetched sparse object is not byte-identical to the exporter's canonical form")
	}
	if rep := stB.Verify(); rep.Removed != 0 {
		t.Fatalf("requester store failed verification: %+v", rep)
	}
}

// TestClusterMixedCodecVersions is the cross-version interop test: a ring
// of one v2-capable node and one pre-v2 stand-in (DisableSparseWireV2).
// Batches submitted to either node complete, verify, and produce
// byte-identical libraries — every mixed pairing degrades cleanly to v1.
func TestClusterMixedCodecVersions(t *testing.T) {
	cfgs := map[string]Config{
		"new": {Workers: 4, MaxSteps: 2},
		"old": {Workers: 4, MaxSteps: 2, DisableSparseWireV2: true},
	}
	nodes := map[string]*testNode{}
	urls := map[string]string{}
	for id, cfg := range cfgs {
		st, err := castore.Open(t.TempDir(), castore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
		svc := NewService(cfg)
		srv := httptest.NewServer(NewHandler(svc))
		nodes[id] = &testNode{id: id, svc: svc, srv: srv, store: st}
		urls[id] = srv.URL
	}
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	for _, n := range nodes {
		c := cluster.New(n.id, urls, cluster.Options{
			Counters: n.svc.Counters, Timings: n.svc.Timings,
			FailureThreshold: 1, Probation: time.Hour, Timeout: 30 * time.Second,
		})
		n.svc.AttachCluster(c)
	}
	nw, old := nodes["new"], nodes["old"]

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  8,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
		},
		MaxSteps: 2,
	}

	// New node computes: some stages execute on the old node, whose
	// responses are v1 regardless of the advertisement.
	stNew := postJob(t, nw.srv, req)
	doneNew := pollDone(t, nw.srv, stNew.ID)
	if doneNew.State != JobDone {
		t.Fatalf("job on new node failed: %s", doneNew.Error)
	}
	if doneNew.Verified == nil || !*doneNew.Verified {
		t.Fatal("new-node batch must verify")
	}

	// Old node resubmits: pure reuse through v1-only requests against the
	// v2-capable peer.
	analysisBefore := old.svc.Counters.Get("analysis.computed")
	stOld := postJob(t, old.srv, req)
	doneOld := pollDone(t, old.srv, stOld.ID)
	if doneOld.State != JobDone {
		t.Fatalf("job on old node failed: %s", doneOld.Error)
	}
	if doneOld.Verified == nil || !*doneOld.Verified {
		t.Fatal("old-node batch must verify")
	}
	if delta := old.svc.Counters.Get("analysis.computed") - analysisBefore; delta != 0 {
		t.Fatalf("old node recomputed %d stages; the mixed ring should have served them", delta)
	}

	var repNew, repOld jobReport
	if code := getJSON(t, nw.srv.URL+"/v1/jobs/"+stNew.ID+"/report", &repNew); code != http.StatusOK {
		t.Fatalf("new-node report status %d", code)
	}
	if code := getJSON(t, old.srv.URL+"/v1/jobs/"+stOld.ID+"/report", &repOld); code != http.StatusOK {
		t.Fatalf("old-node report status %d", code)
	}
	for _, lr := range repNew.Libs {
		ln := fetchPeerJobLib(t, nw.srv, stNew.ID, lr.Name)
		lo := fetchPeerJobLib(t, old.srv, stOld.ID, lr.Name)
		if !bytes.Equal(ln, lo) {
			t.Fatalf("library %s differs across codec versions", lr.Name)
		}
	}
}
