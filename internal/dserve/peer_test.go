package dserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// soloCluster attaches a single-node cluster to the service so its peer
// routes answer (they 404 on non-clustered nodes); an empty peer map makes
// a self-only ring, so stage routing is unchanged.
func soloCluster(svc *Service) {
	svc.AttachCluster(cluster.New("solo", nil, cluster.Options{}))
}

func postPeer(t *testing.T, srv *httptest.Server, path string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestPeerLookupMissesAndRejections: misses are found=false successes,
// unroutable stages are 400s.
func TestPeerLookupMissesAndRejections(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var lr peerLookupResponse
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: "nope"}, &lr); code != http.StatusOK {
		t.Fatalf("lookup miss status %d", code)
	}
	if lr.Found {
		t.Fatal("lookup invented a result")
	}
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageDetect, Hash: "no-separator"}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed detect hash status %d", code)
	}
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: "union", Hash: "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unroutable stage status %d", code)
	}
}

// TestPeerCompactRejectsMismatches: a shipped library whose digest or
// derived stage key disagrees with the request must be refused — a
// confused requester cannot poison the owning shard's memo.
func TestPeerCompactRejectsMismatches(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	lib := in.Library(in.LibNames[0])

	req := peerCompactRequest{
		Key: "0000", LibName: lib.Name, LibDigest: "wrong-digest", Lib: lib.Data,
	}
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("digest mismatch status %d", code)
	}
	req.LibDigest = digestHex(lib)
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("key mismatch status %d", code)
	}
	req.Lib = []byte("not an elf")
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("unparsable library status %d", code)
	}
}

// TestPeerDetectMismatches: a fingerprint the owner cannot reproduce (or
// an identity the spec does not resolve to) must be refused, not papered
// over with a wrong profile.
func TestPeerDetectMismatches(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	req := peerDetectRequest{
		InstallFP: "not-a-real-fingerprint", Identity: "whatever",
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Spec: WorkloadSpec{Model: "MobileNetV2", Batch: 1},
	}
	if code := postPeer(t, srv, "/v1/peer/detect", req, nil); code != http.StatusConflict {
		t.Fatalf("fingerprint mismatch status %d", code)
	}
	if code := postPeer(t, srv, "/v1/peer/detect", peerDetectRequest{Framework: "no-such", Spec: req.Spec}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad framework status %d", code)
	}

	// A correct fingerprint with a wrong identity is still refused.
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	req.InstallFP = InstallFingerprint(in)
	if code := postPeer(t, srv, "/v1/peer/detect", req, nil); code != http.StatusBadRequest {
		t.Fatalf("identity mismatch status %d", code)
	}
}

// TestPeerDetectExecutesAndRegisters: a well-formed remote detect runs on
// the owner and lands in its registry, so the next call is a hit.
func TestPeerDetectExecutesAndRegisters(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	soloCluster(svc)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{Model: "MobileNetV2", Batch: 1}
	wl, err := spec.Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	req := peerDetectRequest{
		InstallFP: InstallFingerprint(in),
		Identity:  WorkloadIdentity(wl, 2),
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2, Spec: spec,
	}
	var dr peerDetectResponse
	if code := postPeer(t, srv, "/v1/peer/detect", req, &dr); code != http.StatusOK {
		t.Fatalf("detect status %d", code)
	}
	if dr.Hit || dr.Profile == nil || dr.Profile.RunResult == nil {
		t.Fatalf("first detect should execute: %+v", dr)
	}
	var dr2 peerDetectResponse
	if code := postPeer(t, srv, "/v1/peer/detect", req, &dr2); code != http.StatusOK {
		t.Fatalf("second detect status %d", code)
	}
	if !dr2.Hit {
		t.Fatal("owner did not memoize the executed detect stage")
	}
}

// TestFetchPeerObject moves a castore object between two nodes through the
// streaming route, end-to-end integrity-checked.
func TestFetchPeerObject(t *testing.T) {
	stA, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	svcA := NewService(Config{Workers: 1, Store: stA})
	defer svcA.Close()
	soloCluster(svcA)
	srvA := httptest.NewServer(NewHandler(svcA))
	defer srvA.Close()

	stB, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	svcB := NewService(Config{Workers: 1, Store: stB})
	defer svcB.Close()

	payload := bytes.Repeat([]byte("obj"), 4096)
	if err := stA.Put("lib", "deadbeef", payload); err != nil {
		t.Fatal(err)
	}

	c := cluster.New("b", map[string]string{"a": srvA.URL}, cluster.Options{Timeout: 10 * time.Second})
	n, err := svcB.FetchPeerObject(c, "a", "lib", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("fetched %d bytes, want %d", n, len(payload))
	}
	got, ok := stB.Get("lib", "deadbeef")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("fetched object does not round-trip")
	}
	if _, err := svcB.FetchPeerObject(c, "a", "lib", "missing"); err == nil {
		t.Fatal("fetching an absent object must fail")
	}
}

// TestPeerRoutesRequireCluster: the peer surface is node-to-node only —
// on a non-clustered node every peer route answers 404 so a standalone
// deployment exposes no analysis-compute or object-transfer endpoints.
func TestPeerRoutesRequireCluster(t *testing.T) {
	svc := NewService(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: "x"}, nil); code != http.StatusNotFound {
		t.Fatalf("lookup without a cluster: status %d, want 404", code)
	}
	resp, err := http.Get(srv.URL + "/v1/peer/objects/lib/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("object fetch without a cluster: status %d, want 404", resp.StatusCode)
	}
}

// TestPeerSecretEnforced: a cluster configured with a shared secret
// refuses peer requests without it (constant-time compare, 401), accepts
// them with it, and the cluster transport attaches it automatically.
func TestPeerSecretEnforced(t *testing.T) {
	svc := NewService(Config{Workers: 1, MaxSteps: 2})
	defer svc.Close()
	svc.AttachCluster(cluster.New("solo", nil, cluster.Options{Secret: "ring-credential"}))
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body, _ := json.Marshal(peerLookupRequest{Stage: negativa.StageCompact, Hash: "nope"})
	do := func(secret string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/peer/lookup", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if secret != "" {
			req.Header.Set(cluster.PeerSecretHeader, secret)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do(""); code != http.StatusUnauthorized {
		t.Fatalf("no secret: status %d, want 401", code)
	}
	if code := do("wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong secret: status %d, want 401", code)
	}
	if code := do("ring-credential"); code != http.StatusOK {
		t.Fatalf("correct secret: status %d, want 200", code)
	}

	// The cluster client carries the secret on its own requests: a peer
	// configured with the matching secret can call through PostJSON ...
	peerOK := cluster.New("b", map[string]string{"a": srv.URL}, cluster.Options{Secret: "ring-credential"})
	var lr peerLookupResponse
	if err := peerOK.PostJSON("a", "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: "nope"}, &lr); err != nil {
		t.Fatalf("peer with matching secret: %v", err)
	}
	// ... and one with no (or the wrong) secret is refused.
	peerBad := cluster.New("b", map[string]string{"a": srv.URL}, cluster.Options{})
	if err := peerBad.PostJSON("a", "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: "nope"}, &lr); err == nil {
		t.Fatal("peer without the secret was accepted")
	}
}
