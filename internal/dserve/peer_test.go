package dserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

func postPeer(t *testing.T, srv *httptest.Server, path string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestPeerLookupMissesAndRejections: misses are found=false successes,
// unroutable stages are 400s.
func TestPeerLookupMissesAndRejections(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var lr peerLookupResponse
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageCompact, Hash: "nope"}, &lr); code != http.StatusOK {
		t.Fatalf("lookup miss status %d", code)
	}
	if lr.Found {
		t.Fatal("lookup invented a result")
	}
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: negativa.StageDetect, Hash: "no-separator"}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed detect hash status %d", code)
	}
	if code := postPeer(t, srv, "/v1/peer/lookup", peerLookupRequest{Stage: "union", Hash: "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unroutable stage status %d", code)
	}
}

// TestPeerCompactRejectsMismatches: a shipped library whose digest or
// derived stage key disagrees with the request must be refused — a
// confused requester cannot poison the owning shard's memo.
func TestPeerCompactRejectsMismatches(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	lib := in.Library(in.LibNames[0])

	req := peerCompactRequest{
		Key: "0000", LibName: lib.Name, LibDigest: "wrong-digest", Lib: lib.Data,
	}
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("digest mismatch status %d", code)
	}
	req.LibDigest = digestHex(lib)
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("key mismatch status %d", code)
	}
	req.Lib = []byte("not an elf")
	if code := postPeer(t, srv, "/v1/peer/compact", req, nil); code != http.StatusBadRequest {
		t.Fatalf("unparsable library status %d", code)
	}
}

// TestPeerDetectMismatches: a fingerprint the owner cannot reproduce (or
// an identity the spec does not resolve to) must be refused, not papered
// over with a wrong profile.
func TestPeerDetectMismatches(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	req := peerDetectRequest{
		InstallFP: "not-a-real-fingerprint", Identity: "whatever",
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Spec: WorkloadSpec{Model: "MobileNetV2", Batch: 1},
	}
	if code := postPeer(t, srv, "/v1/peer/detect", req, nil); code != http.StatusConflict {
		t.Fatalf("fingerprint mismatch status %d", code)
	}
	if code := postPeer(t, srv, "/v1/peer/detect", peerDetectRequest{Framework: "no-such", Spec: req.Spec}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad framework status %d", code)
	}

	// A correct fingerprint with a wrong identity is still refused.
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	req.InstallFP = InstallFingerprint(in)
	if code := postPeer(t, srv, "/v1/peer/detect", req, nil); code != http.StatusBadRequest {
		t.Fatalf("identity mismatch status %d", code)
	}
}

// TestPeerDetectExecutesAndRegisters: a well-formed remote detect runs on
// the owner and lands in its registry, so the next call is a hit.
func TestPeerDetectExecutesAndRegisters(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{Model: "MobileNetV2", Batch: 1}
	wl, err := spec.Workload(in)
	if err != nil {
		t.Fatal(err)
	}
	req := peerDetectRequest{
		InstallFP: InstallFingerprint(in),
		Identity:  WorkloadIdentity(wl, 2),
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2, Spec: spec,
	}
	var dr peerDetectResponse
	if code := postPeer(t, srv, "/v1/peer/detect", req, &dr); code != http.StatusOK {
		t.Fatalf("detect status %d", code)
	}
	if dr.Hit || dr.Profile == nil || dr.Profile.RunResult == nil {
		t.Fatalf("first detect should execute: %+v", dr)
	}
	var dr2 peerDetectResponse
	if code := postPeer(t, srv, "/v1/peer/detect", req, &dr2); code != http.StatusOK {
		t.Fatalf("second detect status %d", code)
	}
	if !dr2.Hit {
		t.Fatal("owner did not memoize the executed detect stage")
	}
}

// TestFetchPeerObject moves a castore object between two nodes through the
// streaming route, end-to-end integrity-checked.
func TestFetchPeerObject(t *testing.T) {
	stA, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	svcA := NewService(Config{Workers: 1, Store: stA})
	defer svcA.Close()
	srvA := httptest.NewServer(NewHandler(svcA))
	defer srvA.Close()

	stB, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	svcB := NewService(Config{Workers: 1, Store: stB})
	defer svcB.Close()

	payload := bytes.Repeat([]byte("obj"), 4096)
	if err := stA.Put("lib", "deadbeef", payload); err != nil {
		t.Fatal(err)
	}

	c := cluster.New("b", map[string]string{"a": srvA.URL}, cluster.Options{Timeout: 10 * time.Second})
	n, err := svcB.FetchPeerObject(c, "a", "lib", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("fetched %d bytes, want %d", n, len(payload))
	}
	got, ok := stB.Get("lib", "deadbeef")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("fetched object does not round-trip")
	}
	if _, err := svcB.FetchPeerObject(c, "a", "lib", "missing"); err == nil {
		t.Fatal("fetching an absent object must fail")
	}
}
