package dserve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/elfx"
	"negativaml/internal/negativa"
)

// Castore kinds used by the serving plane. Everything durable is keyed by
// content digest except job manifests, which are keyed by job ID (the one
// name-addressed namespace — a manifest is a root that references digest-
// addressed objects).
const (
	// kindLib holds original library images, keyed by the hex library
	// content digest (elfx.Library.ContentDigest).
	kindLib = "lib"
	// kindSparse holds encoded SparseImage range sets, keyed by the
	// locate+compact cache key (CacheKey).
	kindSparse = "sparse"
	// kindResult holds LibraryReport metadata (JSON), keyed like kindSparse.
	kindResult = "result"
	// kindProfile holds verified detection profiles (JSON), keyed by the
	// profile-key digest (profileObjectKey).
	kindProfile = "profile"
	// kindJob holds job manifests (JSON), keyed by job ID.
	kindJob = "job"
)

// storeRef names one castore object a job holds a reference on.
type storeRef struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
}

// storedResult is the on-disk form of one locate+compact result: every
// analytic report field plus the digest of the library image the sparse
// range set applies to. The range set itself is a sibling kindSparse
// object; the image a kindLib object.
type storedResult struct {
	Name      string `json:"name"`
	LibDigest string `json:"lib_digest"`

	FileSize            int64    `json:"file_size"`
	FileEffective       int64    `json:"file_effective"`
	FileEffectiveAfter  int64    `json:"file_effective_after"`
	CPUSize             int64    `json:"cpu_size"`
	CPUSizeAfter        int64    `json:"cpu_size_after"`
	FuncCount           int      `json:"func_count"`
	FuncKept            int      `json:"func_kept"`
	GPUSize             int64    `json:"gpu_size"`
	GPUSizeAfter        int64    `json:"gpu_size_after"`
	ElemCount           int      `json:"elem_count"`
	ElemKept            int      `json:"elem_kept"`
	RemovedArchMismatch int      `json:"removed_arch_mismatch"`
	RemovedNoUsedKernel int      `json:"removed_no_used_kernel"`
	ResidentBytes       int64    `json:"resident_bytes"`
	ResidentBytesAfter  int64    `json:"resident_bytes_after"`
	UsedFuncs           []string `json:"used_funcs,omitempty"`
	UsedKernels         []string `json:"used_kernels,omitempty"`

	AnalysisNS int64 `json:"analysis_ns"`
}

func digestHex(lib *elfx.Library) string {
	d := lib.ContentDigest()
	return hex.EncodeToString(d[:])
}

// spillResult persists one locate+compact result as its three objects:
// the original library image (shared across results by digest), the sparse
// range set, and the report metadata. Re-spilling an already-present key is
// cheap (castore Puts of existing objects are no-ops).
func spillResult(st *castore.Store, key string, ld *negativa.LibDebloat) error {
	lr := ld.Report
	if lr == nil || lr.Sparse == nil {
		return fmt.Errorf("dserve: result %s has no sparse image to persist", key)
	}
	lib := lr.Sparse.Lib()
	dhex := digestHex(lib)
	if err := st.Put(kindLib, dhex, lib.Data); err != nil {
		return err
	}
	if err := st.Put(kindSparse, key, lr.Sparse.Encode()); err != nil {
		return err
	}
	data, err := json.Marshal(storedResultOf(ld))
	if err != nil {
		return err
	}
	return st.Put(kindResult, key, data)
}

// storedResultOf flattens one locate+compact result into its durable /
// wire form. The caller guarantees ld.Report and its Sparse image are
// non-nil.
func storedResultOf(ld *negativa.LibDebloat) storedResult {
	lr := ld.Report
	return storedResult{
		Name:      lr.Name,
		LibDigest: digestHex(lr.Sparse.Lib()),

		FileSize:            lr.FileSize,
		FileEffective:       lr.FileEffective,
		FileEffectiveAfter:  lr.FileEffectiveAfter,
		CPUSize:             lr.CPUSize,
		CPUSizeAfter:        lr.CPUSizeAfter,
		FuncCount:           lr.FuncCount,
		FuncKept:            lr.FuncKept,
		GPUSize:             lr.GPUSize,
		GPUSizeAfter:        lr.GPUSizeAfter,
		ElemCount:           lr.ElemCount,
		ElemKept:            lr.ElemKept,
		RemovedArchMismatch: lr.RemovedArchMismatch,
		RemovedNoUsedKernel: lr.RemovedNoUsedKernel,
		ResidentBytes:       lr.ResidentBytes,
		ResidentBytesAfter:  lr.ResidentBytesAfter,
		UsedFuncs:           lr.UsedFuncs,
		UsedKernels:         lr.UsedKernels,

		AnalysisNS: int64(ld.Analysis),
	}
}

// reportFrom rebuilds a LibraryReport from its stored metadata and a
// decoded sparse image.
func (sr *storedResult) report(sparse *negativa.SparseImage) *negativa.LibraryReport {
	return &negativa.LibraryReport{
		Name:                sr.Name,
		FileSize:            sr.FileSize,
		FileEffective:       sr.FileEffective,
		FileEffectiveAfter:  sr.FileEffectiveAfter,
		CPUSize:             sr.CPUSize,
		CPUSizeAfter:        sr.CPUSizeAfter,
		FuncCount:           sr.FuncCount,
		FuncKept:            sr.FuncKept,
		GPUSize:             sr.GPUSize,
		GPUSizeAfter:        sr.GPUSizeAfter,
		ElemCount:           sr.ElemCount,
		ElemKept:            sr.ElemKept,
		RemovedArchMismatch: sr.RemovedArchMismatch,
		RemovedNoUsedKernel: sr.RemovedNoUsedKernel,
		ResidentBytes:       sr.ResidentBytes,
		ResidentBytesAfter:  sr.ResidentBytesAfter,
		UsedFuncs:           sr.UsedFuncs,
		UsedKernels:         sr.UsedKernels,
		Sparse:              sparse,
	}
}

// loadResult reconstructs a locate+compact result from the store against a
// live library (the warm-disk path inside a running batch: the install is
// already in memory, only the derived artifacts come from disk). Returns
// false on any absence or corruption — the caller recomputes.
func loadResult(st *castore.Store, key string, lib *elfx.Library) (*negativa.LibDebloat, bool) {
	// Both reads go through OpenMapped: the decoded forms (storedResult,
	// the range set) copy what they keep, so the raw object bytes are
	// page-cache views scoped to this call — the warm-disk tier allocates
	// no payload copies.
	mr, ok := st.OpenMapped(kindResult, key)
	if !ok {
		return nil, false
	}
	var sr storedResult
	err := json.Unmarshal(mr.Data(), &sr)
	mr.Close()
	if err != nil {
		return nil, false
	}
	if sr.LibDigest != digestHex(lib) {
		return nil, false // stored for different library bytes
	}
	ms, ok := st.OpenMapped(kindSparse, key)
	if !ok {
		return nil, false
	}
	sparse, err := negativa.DecodeSparseImage(lib, ms.Data())
	ms.Close()
	if err != nil {
		return nil, false
	}
	return &negativa.LibDebloat{Report: sr.report(sparse), Analysis: time.Duration(sr.AnalysisNS)}, true
}

// storedProfile is the on-disk form of one registry entry.
type storedProfile struct {
	Install  string            `json:"install"`
	Workload string            `json:"workload"`
	Profile  *negativa.Profile `json:"profile"`
}

// profileObjectKey derives the castore key of a profile entry. Profile keys
// are free-form strings (workload identities embed model names and device
// lists), so they are digested into the path-safe content-address space.
func profileObjectKey(key ProfileKey) string {
	h := sha256.New()
	h.Write([]byte(key.Install))
	h.Write([]byte{0})
	h.Write([]byte(key.Workload))
	return hex.EncodeToString(h.Sum(nil))
}

// jobManifest is the durable root of one completed job: request, outcome
// summary, and per-library references into the digest-addressed object
// space. Restoring a job walks the references; the expensive artifacts are
// shared with the result cache's disk tier.
type jobManifest struct {
	ID string `json:"id"`
	// State is the terminal state (JobDone or JobFailed; empty reads as
	// done). Failed jobs persist too — their IDs must never be reissued
	// after a restart, and clients polling them must keep seeing the
	// failure, not a stranger's new job.
	State     string     `json:"state,omitempty"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   time.Time  `json:"started"`
	Finished  time.Time  `json:"finished"`
	Req       JobRequest `json:"req"`

	InstallFP     string            `json:"install_fp"`
	UnionWorkload string            `json:"union_workload"`
	Workloads     []WorkloadOutcome `json:"workloads"`
	DetectNS      int64             `json:"detect_ns"`
	AnalysisNS    int64             `json:"analysis_ns"`
	WallNS        int64             `json:"wall_ns"`
	CacheHits     int               `json:"cache_hits"`
	CacheMisses   int               `json:"cache_misses"`
	ProfileReuses int               `json:"profile_reuses"`
	VerifySkipped bool              `json:"verify_skipped,omitempty"`
	// Incremental carries the base-absorption summary of an incremental
	// batch across restarts (nil for full batches).
	Incremental *IncrementalStats `json:"incremental,omitempty"`

	Libs []manifestLib `json:"libs"`
}

type manifestLib struct {
	Name string `json:"name"`
	// Key addresses the kindResult / kindSparse pair.
	Key string `json:"key"`
	// LibDigest addresses the kindLib image.
	LibDigest string `json:"lib_digest"`
}

// state returns the manifest's terminal state (legacy manifests without
// one read as done).
func (m *jobManifest) state() string {
	if m.State == "" {
		return JobDone
	}
	return m.State
}

// allVerified mirrors BatchResult.AllVerified for the lazily-restored path.
func (m *jobManifest) allVerified() bool {
	if m.VerifySkipped {
		return true
	}
	for i := range m.Workloads {
		if !m.Workloads[i].Verified {
			return false
		}
	}
	return true
}

// refs lists every object the manifest's job must pin: the manifest itself
// plus, per library, the result, range set, and image objects.
func (m *jobManifest) refs() []storeRef {
	out := make([]storeRef, 0, 1+3*len(m.Libs))
	out = append(out, storeRef{kindJob, m.ID})
	for _, l := range m.Libs {
		out = append(out,
			storeRef{kindResult, l.Key},
			storeRef{kindSparse, l.Key},
			storeRef{kindLib, l.LibDigest},
		)
	}
	return out
}

func manifestOf(job *Job, res *BatchResult) (*jobManifest, error) {
	if len(res.libKeys) != len(res.Libs) {
		return nil, fmt.Errorf("dserve: job %s result carries no cache keys; cannot persist", job.ID)
	}
	m := &jobManifest{
		ID:        job.ID,
		State:     JobDone,
		Submitted: job.Submitted,
		Started:   job.Started,
		Finished:  job.Finished,
		Req:       job.Req,

		InstallFP:     res.InstallFP,
		UnionWorkload: res.Union.Workload,
		Workloads:     res.Workloads,
		DetectNS:      int64(res.DetectTime),
		AnalysisNS:    int64(res.AnalysisTime),
		WallNS:        int64(res.WallTime),
		CacheHits:     res.CacheHits,
		CacheMisses:   res.CacheMisses,
		ProfileReuses: res.ProfileReuses,
		VerifySkipped: res.VerifySkipped,
		Incremental:   res.Incremental,
	}
	for i, lr := range res.Libs {
		if lr.Sparse == nil {
			return nil, fmt.Errorf("dserve: job %s library %s has no sparse image", job.ID, lr.Name)
		}
		m.Libs = append(m.Libs, manifestLib{
			Name:      lr.Name,
			Key:       res.libKeys[i],
			LibDigest: digestHex(lr.Sparse.Lib()),
		})
	}
	return m, nil
}
