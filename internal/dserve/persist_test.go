package dserve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

const waitTimeout = 60 * time.Second

func openStore(t *testing.T, dir string) *castore.Store {
	t.Helper()
	st, err := castore.Open(dir, castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close) // idempotent; tests close earlier when resequencing
	return st
}

func persistTestInstall(t *testing.T) (*mlframework.Install, []mlruntime.Workload) {
	t.Helper()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []WorkloadSpec{
		{Model: "MobileNetV2", Batch: 1},
		{Model: "Transformer", Batch: 8},
	}
	ws := make([]mlruntime.Workload, len(specs))
	for i, sp := range specs {
		w, err := sp.Workload(in)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return in, ws
}

// TestCacheDiskTier exercises the two-tier result cache across a service
// restart: the second service's memory tier is empty, so every library must
// come back from the store — byte-identical and with zero locate/compact
// runs.
func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	in, ws := persistTestInstall(t)

	st1 := openStore(t, dir)
	svc1 := NewService(Config{Workers: 2, MaxSteps: 2, Store: st1})
	cold, err := svc1.DebloatBatch(in, ws, BatchOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	st1.Close()
	if cold.CacheMisses == 0 {
		t.Fatal("cold batch had no cache misses")
	}

	svc2 := NewService(Config{Workers: 2, MaxSteps: 2, Store: openStore(t, dir)})
	defer svc2.Close()
	warm, err := svc2.DebloatBatch(in, ws, BatchOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheMisses != 0 || warm.CacheHits != len(warm.Libs) {
		t.Fatalf("warm-from-disk batch: hits=%d misses=%d libs=%d", warm.CacheHits, warm.CacheMisses, len(warm.Libs))
	}
	if got := svc2.Counters.Get("analysis.computed"); got != 0 {
		t.Fatalf("restarted service ran locate/compact %d times, want 0", got)
	}
	if warm.ProfileReuses != len(ws) {
		t.Fatalf("restarted service re-detected: reuses=%d, want %d", warm.ProfileReuses, len(ws))
	}
	if !warm.AllVerified() {
		t.Fatal("warm batch did not verify")
	}
	for i, lr := range warm.Libs {
		if !bytes.Equal(lr.Debloated(), cold.Libs[i].Debloated()) {
			t.Fatalf("library %s differs after disk round-trip", lr.Name)
		}
	}
	if svc2.Store().Stats().Hits == 0 {
		t.Fatal("store recorded no hits on the warm path")
	}
}

func TestRegistryReplay(t *testing.T) {
	dir := t.TempDir()
	in, ws := persistTestInstall(t)
	p, err := negativa.DetectUsage(ws[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	key := ProfileKey{Install: InstallFingerprint(in), Workload: WorkloadIdentity(ws[0], 2)}

	st1 := openStore(t, dir)
	r1 := NewRegistry()
	r1.AttachStore(st1)
	r1.Put(key, p)
	st1.Close()

	r2 := NewRegistry()
	r2.AttachStore(openStore(t, dir))
	if n := r2.Replay(); n != 1 {
		t.Fatalf("replayed %d profiles, want 1", n)
	}
	got, ok := r2.Get(key)
	if !ok {
		t.Fatal("replayed profile not found under its key")
	}
	if got.RunResult.Digest != p.RunResult.Digest || got.Workload != p.Workload {
		t.Fatal("replayed profile does not match the original")
	}
	if len(got.UsedKernels) != len(p.UsedKernels) || len(got.UsedFuncs) != len(p.UsedFuncs) {
		t.Fatal("replayed profile lost used-symbol maps")
	}
}

func fetchLib(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/libs/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s/%s: status %d: %s", id, name, resp.StatusCode, body)
	}
	return body
}

// TestServerWarmRestartE2E is the end-to-end restart test: submit a batch,
// shut the service down, boot a second service on the same data dir, and
// assert the previously-submitted job's status, report, and libraries are
// served warm — byte-identical images, store hits recorded, and zero
// locate/compact (and zero detection) runs on the second boot.
func TestServerWarmRestartE2E(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  4,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 8},
		},
		MaxSteps: 2,
	}

	// ---- First boot: submit, complete, download, shut down. ----
	st1 := openStore(t, dir)
	svc1 := NewService(Config{Workers: 2, MaxSteps: 2, Store: st1})
	ts1 := httptest.NewServer(NewHandler(svc1))
	st := postJob(t, ts1, req)
	if got := pollDone(t, ts1, st.ID); got.State != JobDone {
		t.Fatalf("job failed: %s", got.Error)
	}
	libName := "libtorch_cuda.so"
	original := fetchLib(t, ts1, st.ID, libName)
	ts1.Close()
	svc1.Close()
	st1.Close()

	// ---- Second boot, same data dir: the job must come back warm. ----
	svc2 := NewService(Config{Workers: 2, MaxSteps: 2, Store: openStore(t, dir)})
	defer svc2.Close()
	ts2 := httptest.NewServer(NewHandler(svc2))
	defer ts2.Close()

	if got := svc2.Counters.Get("jobs.restored"); got != 1 {
		t.Fatalf("restored %d jobs, want 1", got)
	}
	var status jobStatus
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+st.ID, &status); code != http.StatusOK {
		t.Fatalf("restored job status: code %d", code)
	}
	if status.State != JobDone || status.Verified == nil || !*status.Verified {
		t.Fatalf("restored job status = %+v, want done+verified", status)
	}

	var report jobReport
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+st.ID+"/report", &report); code != http.StatusOK {
		t.Fatalf("restored job report: code %d", code)
	}
	if len(report.Libs) == 0 || report.InstallFP == "" {
		t.Fatalf("restored report is hollow: %+v", report)
	}

	restored := fetchLib(t, ts2, st.ID, libName)
	if !bytes.Equal(restored, original) {
		t.Fatalf("restored %s differs: %d bytes vs %d", libName, len(restored), len(original))
	}

	// The warm path must be pure replay: no locate/compact, no detection.
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
		Store    *castore.Stats   `json:"store"`
	}
	if code := getJSON(t, ts2.URL+"/v1/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	if metrics.Counters["analysis.computed"] != 0 {
		t.Fatalf("second boot ran locate/compact %d times", metrics.Counters["analysis.computed"])
	}
	if metrics.Counters["registry.misses"] != 0 {
		t.Fatalf("second boot ran detection %d times", metrics.Counters["registry.misses"])
	}
	if metrics.Store == nil || metrics.Store.Hits == 0 {
		t.Fatalf("store.hits = %+v, want > 0 (warm restore must read the store)", metrics.Store)
	}

	var storeView struct {
		Stats castore.Stats `json:"stats"`
	}
	if code := getJSON(t, ts2.URL+"/v1/store", &storeView); code != http.StatusOK {
		t.Fatalf("/v1/store: code %d", code)
	}
	if storeView.Stats.Objects == 0 || storeView.Stats.Retained == 0 {
		t.Fatalf("/v1/store stats = %+v, want retained objects", storeView.Stats)
	}
}

// TestFetchLibraryPinnedAgainstEviction is the regression test for the
// latent eviction bug: job eviction used to be free to drop a job (and,
// with a store, release its objects) while a fetch-library response was
// still streaming from it. An open LibStream must pin the job: eviction
// pressure may not touch it until the stream closes.
func TestFetchLibraryPinnedAgainstEviction(t *testing.T) {
	dir := t.TempDir()

	// First service populates the store with one completed job.
	st1 := openStore(t, dir)
	svc1 := NewService(Config{Workers: 2, MaxSteps: 2, MaxJobs: 1, Store: st1})
	req := JobRequest{
		Framework: "pytorch", TailLibs: 4, MaxSteps: 2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	}
	job1, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := svc1.WaitJob(job1.ID, waitTimeout); j.State != JobDone {
		t.Fatalf("job1: %s", j.Err)
	}
	want := fetchDirect(t, svc1, job1.ID, "libtorch_cuda.so")
	svc1.Close()
	st1.Close()

	// Second boot: job1 is restored lazily — its images live only in the
	// store until materialized. Open a stream (pinning it) before any
	// eviction pressure.
	svc2 := NewService(Config{Workers: 2, MaxSteps: 2, MaxJobs: 1, Store: openStore(t, dir)})
	defer svc2.Close()
	ls, err := svc2.OpenLibStream(job1.ID, "libtorch_cuda.so")
	if err != nil {
		t.Fatal(err)
	}

	// Eviction pressure: a second completed job pushes terminal retention
	// past MaxJobs=1; without the pin, job1 (the oldest) would be evicted
	// and its store references released mid-stream.
	job2, err := svc2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := svc2.WaitJob(job2.ID, waitTimeout); j.State != JobDone {
		t.Fatalf("job2: %s", j.Err)
	}
	if svc2.Job(job1.ID) == nil {
		t.Fatal("pinned job was evicted under a live stream")
	}

	var buf bytes.Buffer
	if _, err := ls.WriteTo(&buf); err != nil {
		t.Fatalf("stream after eviction pressure: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("streamed image differs from the original download")
	}
	ls.Close()

	// With the pin released, the deferred eviction lands: job1 goes, its
	// manifest with it, and job2 (the newest) survives.
	if svc2.Job(job1.ID) != nil {
		t.Fatal("job1 still present after stream closed")
	}
	if svc2.Store().Has(kindJob, job1.ID) {
		t.Fatal("evicted job's manifest still in the store")
	}
	if svc2.Job(job2.ID) == nil {
		t.Fatal("newest job evicted instead of the streamed one")
	}
	// A double Close stays idempotent.
	ls.Close()
}

// TestFailedJobSurvivesRestart: failed jobs persist a minimal manifest, so
// a restart keeps answering polls for them — and, critically, never
// reissues their ID to a different client's job.
func TestFailedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	svc := NewService(Config{Workers: 2, MaxSteps: 2, Store: st1})
	// The synthetic installs ship Llama2 kernels for 1 or 8 tensor-parallel
	// ranks only; 3 ranks fails detection — the supported way to produce a
	// failed job.
	bad, err := svc.Submit(JobRequest{
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Workloads: []WorkloadSpec{{Model: "Llama2", GPUs: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := svc.WaitJob(bad.ID, waitTimeout)
	if j.State != JobFailed {
		t.Fatalf("job state %s, want failed", j.State)
	}
	svc.Close()
	st1.Close()

	svc2 := NewService(Config{Workers: 2, MaxSteps: 2, Store: openStore(t, dir)})
	defer svc2.Close()
	restored := svc2.Job(bad.ID)
	if restored == nil || restored.State != JobFailed || restored.Err == "" {
		t.Fatalf("restored failed job = %+v, want failed with error", restored)
	}
	if _, err := svc2.ResultOf(bad.ID); !errors.Is(err, ErrJobNotReady) {
		t.Fatalf("ResultOf failed job = %v, want ErrJobNotReady", err)
	}
	// A fresh submission must get a fresh ID, not the failed job's.
	good, err := svc2.Submit(JobRequest{
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if good.ID == bad.ID {
		t.Fatalf("failed job's ID %s was reissued", bad.ID)
	}
	if j, _ := svc2.WaitJob(good.ID, waitTimeout); j.State != JobDone {
		t.Fatalf("new job: %s", j.Err)
	}
}

// fetchDirect downloads one library through the service API (no HTTP).
func fetchDirect(t *testing.T, s *Service, id, name string) []byte {
	t.Helper()
	ls, err := s.OpenLibStream(id, name)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	var buf bytes.Buffer
	if _, err := ls.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJobEvictionReleasesStoreRefs: evicting an unpinned job must release
// its store references so the byte budget can reclaim them, and must not
// resurrect on the next boot.
func TestJobEvictionReleasesStoreRefs(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	svc := NewService(Config{Workers: 2, MaxSteps: 2, MaxJobs: 1, Store: st1})
	req := JobRequest{
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	}
	job1, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := svc.WaitJob(job1.ID, waitTimeout); j.State != JobDone {
		t.Fatalf("job1: %s", j.Err)
	}
	// A different workload so job2 is a distinct terminal job.
	req2 := req
	req2.Workloads = []WorkloadSpec{{Model: "Transformer", Batch: 4}}
	job2, err := svc.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := svc.WaitJob(job2.ID, waitTimeout); j.State != JobDone {
		t.Fatalf("job2: %s", j.Err)
	}
	if svc.Job(job1.ID) != nil {
		t.Fatal("job1 not evicted with MaxJobs=1")
	}
	if svc.Store().Has(kindJob, job1.ID) {
		t.Fatal("evicted job manifest survives")
	}
	svc.Close()
	st1.Close()

	svc2 := NewService(Config{Workers: 2, MaxSteps: 2, MaxJobs: 1, Store: openStore(t, dir)})
	defer svc2.Close()
	if svc2.Job(job1.ID) != nil {
		t.Fatal("evicted job resurrected on reboot")
	}
	if svc2.Job(job2.ID) == nil {
		t.Fatal("retained job not restored on reboot")
	}
}
