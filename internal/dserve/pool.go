package dserve

import "sync"

// Pool is the service's bounded worker executor: a counting semaphore
// capping how many tasks — per-library locate/compact, per-workload
// detection and verification runs — execute concurrently across all jobs.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most workers tasks at once (workers < 1
// is treated as 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Map runs fn(i) for every i in [0, n) on the pool and waits for all of
// them, returning the lowest-index error. Slots are shared service-wide, so
// concurrent jobs contend fairly for the same worker budget. Map must not
// be called from inside a Map task: a task that blocks on a slot while
// holding one can deadlock the semaphore.
func (p *Pool) Map(n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-p.sem; wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
