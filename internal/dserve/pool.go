package dserve

import "negativaml/internal/plan"

// Pool is the service's bounded worker executor — the stage-graph
// scheduler's pool (internal/plan), shared service-wide: batch plans,
// per-workload detection and verification runs, and per-library
// locate/compact nodes all draw from one counting semaphore, so concurrent
// jobs contend fairly for the same worker budget.
type Pool = plan.Pool

// NewPool returns a pool running at most workers tasks at once (workers < 1
// is treated as 1).
func NewPool(workers int) *Pool { return plan.NewPool(workers) }
