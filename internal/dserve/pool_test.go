package dserve

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", p.Workers())
	}
	var cur, peak atomic.Int64
	err := p.Map(24, func(i int) error {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // widen the overlap window
			_ = j
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Errorf("peak concurrency = %d, want <= 3", got)
	}
}

func TestPoolMapReturnsLowestIndexError(t *testing.T) {
	p := NewPool(4)
	errA := errors.New("a")
	errB := errors.New("b")
	err := p.Map(10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Errorf("err = %v, want the lowest-index error %v", err, errA)
	}
}

func TestPoolEdgeCases(t *testing.T) {
	if err := NewPool(0).Map(0, nil); err != nil {
		t.Errorf("empty map: %v", err)
	}
	var ran atomic.Int64
	if err := NewPool(-5).Map(4, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Errorf("ran = %d, want 4", ran.Load())
	}
}
