package dserve

import (
	"encoding/json"
	"fmt"
	"sync"

	"negativaml/internal/castore"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// InstallFingerprint hashes an install's identity: framework, library names
// in load order, and every library's bytes. Two installs with identical
// content fingerprint identically, so profiles detected on one serve the
// other. The implementation lives with the stage-key derivations in
// internal/negativa; this re-export keeps the serving plane's public API.
func InstallFingerprint(in *mlframework.Install) string {
	return negativa.InstallFingerprint(in)
}

// ProfileKey identifies a stored detection profile: the install it was
// detected on and the workload configuration that produced it.
type ProfileKey struct {
	// Install is the install fingerprint (InstallFingerprint).
	Install string
	// Workload is the workload identity (WorkloadIdentity) — everything
	// that shapes what detection observes.
	Workload string
}

// Registry stores detection profiles for reuse across jobs and computes
// union profiles over workload sets. Stored profiles are immutable and
// shared; callers must not mutate them. The registry is bounded: beyond
// max entries the oldest profiles are evicted (workload identities are
// client-controlled, so unbounded growth would let a sweeping client OOM a
// long-running service).
type Registry struct {
	mu       sync.RWMutex
	max      int
	profiles map[ProfileKey]*negativa.Profile
	order    []ProfileKey

	// store, when attached, snapshots every Put so a rebooted service
	// replays its profiles instead of re-detecting them.
	store *castore.Store
}

// DefaultRegistryEntries bounds NewRegistry's profile retention.
const DefaultRegistryEntries = 1024

// NewRegistry returns an empty profile registry bounded to
// DefaultRegistryEntries profiles.
func NewRegistry() *Registry {
	return &Registry{max: DefaultRegistryEntries, profiles: map[ProfileKey]*negativa.Profile{}}
}

// AttachStore wires profile snapshotting in. Call before serving.
func (r *Registry) AttachStore(st *castore.Store) {
	r.mu.Lock()
	r.store = st
	r.mu.Unlock()
}

// Put stores a profile under the key, evicting the oldest entries beyond
// the bound, and — with a store attached — snapshots it to disk so the next
// boot replays it instead of re-running detection. Snapshots of evicted
// entries are deleted: workload identities are client-controlled, so the
// on-disk profile set must stay bounded by the same sweep-resistance cap as
// the in-memory registry.
func (r *Registry) Put(key ProfileKey, p *negativa.Profile) {
	evicted := r.putMem(key, p)
	r.mu.RLock()
	st := r.store
	r.mu.RUnlock()
	if st == nil {
		return
	}
	// Snapshot outside the registry lock; a failed snapshot only costs the
	// next boot a re-detection.
	if data, err := json.Marshal(storedProfile{Install: key.Install, Workload: key.Workload, Profile: p}); err == nil {
		st.Put(kindProfile, profileObjectKey(key), data)
	}
	for _, ev := range evicted {
		st.Delete(kindProfile, profileObjectKey(ev))
	}
}

func (r *Registry) putMem(key ProfileKey, p *negativa.Profile) (evicted []ProfileKey) {
	r.mu.Lock()
	if _, exists := r.profiles[key]; !exists {
		r.order = append(r.order, key)
	}
	r.profiles[key] = p
	for len(r.profiles) > r.max {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.profiles, oldest)
		evicted = append(evicted, oldest)
	}
	r.mu.Unlock()
	return evicted
}

// Replay loads every snapshotted profile from the attached store into
// memory (up to the registry bound) and returns how many it restored.
// Corrupt or unreadable snapshots are skipped: the worst case is a
// re-detection, never a wrong profile.
func (r *Registry) Replay() int {
	r.mu.RLock()
	st := r.store
	r.mu.RUnlock()
	if st == nil {
		return 0
	}
	n := 0
	st.Walk(kindProfile, func(key string, _ int64) error {
		if n >= r.max {
			return nil
		}
		raw, ok := st.Get(kindProfile, key)
		if !ok {
			return nil
		}
		var sp storedProfile
		// Persisted bytes are untrusted: a profile without a run result
		// would nil-panic the reuse path (p.RunResult.Digest), so it is
		// skipped like any other corrupt snapshot.
		if err := json.Unmarshal(raw, &sp); err != nil || sp.Profile == nil || sp.Profile.RunResult == nil {
			return nil
		}
		r.putMem(ProfileKey{Install: sp.Install, Workload: sp.Workload}, sp.Profile)
		n++
		return nil
	})
	return n
}

// Get returns the stored profile for the key.
func (r *Registry) Get(key ProfileKey) (*negativa.Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.profiles[key]
	return p, ok
}

// Has reports whether a profile for the key is resident, without
// returning it — the batch prefetch's local-presence probe.
func (r *Registry) Has(key ProfileKey) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.profiles[key]
	return ok
}

// Len returns the number of stored profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// Union merges the stored profiles of the given workload identities on one
// install into a union profile. Every member must have been detected first;
// a missing member is an error, never silently dropped — dropping one would
// under-retain and break that workload on the debloated install.
func (r *Registry) Union(install string, workloads []string) (*negativa.Profile, error) {
	ps := make([]*negativa.Profile, 0, len(workloads))
	for _, wid := range workloads {
		p, ok := r.Get(ProfileKey{Install: install, Workload: wid})
		if !ok {
			return nil, fmt.Errorf("dserve: no profile for workload %q on install %.12s…", wid, install)
		}
		ps = append(ps, p)
	}
	return negativa.MergeProfiles(ps...), nil
}
