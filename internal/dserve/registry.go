package dserve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// InstallFingerprint hashes an install's identity: framework, library names
// in load order, and every library's bytes. Two installs with identical
// content fingerprint identically, so profiles detected on one serve the
// other.
func InstallFingerprint(in *mlframework.Install) string {
	h := sha256.New()
	sep := []byte{0}
	io.WriteString(h, in.Framework)
	h.Write(sep)
	for _, name := range in.LibNames {
		io.WriteString(h, name)
		h.Write(sep)
		if lib := in.Library(name); lib != nil {
			h.Write(lib.Data)
		}
		h.Write(sep)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ProfileKey identifies a stored detection profile: the install it was
// detected on and the workload configuration that produced it.
type ProfileKey struct {
	// Install is the install fingerprint (InstallFingerprint).
	Install string
	// Workload is the workload identity (WorkloadIdentity) — everything
	// that shapes what detection observes.
	Workload string
}

// Registry stores detection profiles for reuse across jobs and computes
// union profiles over workload sets. Stored profiles are immutable and
// shared; callers must not mutate them. The registry is bounded: beyond
// max entries the oldest profiles are evicted (workload identities are
// client-controlled, so unbounded growth would let a sweeping client OOM a
// long-running service).
type Registry struct {
	mu       sync.RWMutex
	max      int
	profiles map[ProfileKey]*negativa.Profile
	order    []ProfileKey
}

// DefaultRegistryEntries bounds NewRegistry's profile retention.
const DefaultRegistryEntries = 1024

// NewRegistry returns an empty profile registry bounded to
// DefaultRegistryEntries profiles.
func NewRegistry() *Registry {
	return &Registry{max: DefaultRegistryEntries, profiles: map[ProfileKey]*negativa.Profile{}}
}

// Put stores a profile under the key, evicting the oldest entries beyond
// the bound.
func (r *Registry) Put(key ProfileKey, p *negativa.Profile) {
	r.mu.Lock()
	if _, exists := r.profiles[key]; !exists {
		r.order = append(r.order, key)
	}
	r.profiles[key] = p
	for len(r.profiles) > r.max {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.profiles, oldest)
	}
	r.mu.Unlock()
}

// Get returns the stored profile for the key.
func (r *Registry) Get(key ProfileKey) (*negativa.Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.profiles[key]
	return p, ok
}

// Len returns the number of stored profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// Union merges the stored profiles of the given workload identities on one
// install into a union profile. Every member must have been detected first;
// a missing member is an error, never silently dropped — dropping one would
// under-retain and break that workload on the debloated install.
func (r *Registry) Union(install string, workloads []string) (*negativa.Profile, error) {
	ps := make([]*negativa.Profile, 0, len(workloads))
	for _, wid := range workloads {
		p, ok := r.Get(ProfileKey{Install: install, Workload: wid})
		if !ok {
			return nil, fmt.Errorf("dserve: no profile for workload %q on install %.12s…", wid, install)
		}
		ps = append(ps, p)
	}
	return negativa.MergeProfiles(ps...), nil
}
