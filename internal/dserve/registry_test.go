package dserve

import (
	"strings"
	"sync"
	"testing"

	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

// Shared small install for the package's pipeline-level tests; generated
// once (Install values are immutable and safe to share).
var (
	tiOnce sync.Once
	tiInst *mlframework.Install
	tiErr  error
)

func testInstall(t *testing.T) *mlframework.Install {
	t.Helper()
	tiOnce.Do(func() {
		tiInst, tiErr = mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 6})
	})
	if tiErr != nil {
		t.Fatal(tiErr)
	}
	return tiInst
}

// testWorkloads builds the canonical 4-member batch over one install: CV
// and NLP models, training and inference, T4 and A100 devices.
func testWorkloads(t *testing.T, in *mlframework.Install) []mlruntime.Workload {
	t.Helper()
	// Batch sizes match the kernel universe the synthetic installs ship
	// (the Table 1 configurations).
	specs := []WorkloadSpec{
		{Model: "MobileNetV2", Batch: 1},
		{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
		{Model: "Transformer", Batch: 32, Device: "A100"},
		{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
	}
	ws := make([]mlruntime.Workload, len(specs))
	for i, sp := range specs {
		w, err := sp.Workload(in)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	return ws
}

func TestInstallFingerprint(t *testing.T) {
	in := testInstall(t)
	fp1 := InstallFingerprint(in)
	fp2 := InstallFingerprint(in)
	if fp1 != fp2 || len(fp1) != 64 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", fp1, fp2)
	}
	other, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if InstallFingerprint(other) == fp1 {
		t.Error("different installs must fingerprint differently")
	}
}

func TestRegistryPutGetUnion(t *testing.T) {
	r := NewRegistry()
	a := &negativa.Profile{Workload: "a", UsedKernels: map[string][]string{"l": {"k1"}}, UsedFuncs: map[string][]string{"l": {"f1"}}}
	b := &negativa.Profile{Workload: "b", UsedKernels: map[string][]string{"l": {"k2"}}, UsedFuncs: map[string][]string{"l": {"f2"}}}
	r.Put(ProfileKey{"fp", "a"}, a)
	r.Put(ProfileKey{"fp", "b"}, b)
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if got, ok := r.Get(ProfileKey{"fp", "a"}); !ok || got != a {
		t.Fatal("Get must return the stored profile")
	}
	if _, ok := r.Get(ProfileKey{"other", "a"}); ok {
		t.Fatal("profiles are scoped to their install fingerprint")
	}

	u, err := r.Union("fp", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !u.Covers(a) || !u.Covers(b) {
		t.Error("union must cover every member")
	}

	// A missing member is an error, never silently dropped.
	if _, err := r.Union("fp", []string{"a", "missing"}); err == nil {
		t.Error("union with an undetected member must fail")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error should name the missing member: %v", err)
	}
}

// TestUnionDebloatServesEveryMember is the union-semantics core: an install
// debloated against the union of N workload profiles must reproduce each
// member workload's original output digest.
func TestUnionDebloatServesEveryMember(t *testing.T) {
	in := testInstall(t)
	ws := testWorkloads(t, in)
	const steps = 2

	reg := NewRegistry()
	fp := InstallFingerprint(in)
	ids := make([]string, len(ws))
	digests := make([]uint64, len(ws))
	for i, w := range ws {
		p, err := negativa.DetectUsage(w, steps)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = WorkloadIdentity(w, steps)
		digests[i] = p.RunResult.Digest
		reg.Put(ProfileKey{Install: fp, Workload: ids[i]}, p)
	}

	union, err := reg.Union(fp, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		p, _ := reg.Get(ProfileKey{Install: fp, Workload: ids[i]})
		if !union.Covers(p) {
			t.Fatalf("union does not cover member %s", ws[i].Name)
		}
	}

	// Debloat against the union with the union of device archs.
	var allDevs []gpuarch.Device
	for _, w := range ws {
		allDevs = append(allDevs, w.Devices...)
	}
	archs := negativa.DeviceArchs(allDevs)
	debloated := map[string][]byte{}
	for _, name := range in.LibNames {
		ld, err := negativa.LocateAndCompactLib(in.Library(name), union.UsedFuncs[name], union.UsedKernels[name], archs)
		if err != nil {
			t.Fatal(err)
		}
		debloated[name] = ld.Report.Debloated()
	}
	clone, err := in.CloneWithLibs(debloated)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		w.Install = clone
		vr, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: steps})
		if err != nil {
			t.Fatalf("member %s failed on union-debloated install: %v", w.Name, err)
		}
		if vr.Digest != digests[i] {
			t.Errorf("member %s digest = %x, want %x", w.Name, vr.Digest, digests[i])
		}
	}
}
