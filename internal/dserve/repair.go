package dserve

// The replication plane: keeps every stage artifact present on all R
// owners of its ring key. Two mechanisms cooperate:
//
//   - Write-back replication (replicateResult): the stage memo hands every
//     freshly produced compact result here, and a background goroutine
//     pushes its objects (library image, sparse range set, report) to the
//     other live owners — new artifacts converge without waiting for a
//     repair sweep.
//   - Anti-entropy repair (RepairNow, driven by the RepairInterval loop):
//     each sweep walks the locally held replicable objects, derives each
//     group's ring key, stat-probes the remote owners in chunks, and
//     streams whatever they are missing via checksummed Export/Import.
//     This is what heals a replacement node that joined empty, or a
//     replica that missed write-backs while it was down.
//
// Both paths ride the same peer object routes (POST /v1/peer/stat,
// PUT /v1/peer/objects/{kind}/{key}); every transfer is verified by the
// castore stream checksum on the receiving side, so a severed or corrupt
// push publishes nothing there. LeaveCluster reuses the sweep machinery
// for graceful departure: primary-owned objects are handed to the owners
// the ring resolves to once this node is gone, then the node announces its
// leave and stops its membership plane.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// repairStatChunk bounds one stat probe's object list — well under the
// handler's maxStatObjects so mixed-version peers with a smaller bound
// still answer.
const repairStatChunk = 256

// replicateResult is the stage memo's write-back hook: push one freshly
// produced compact result's objects to the named replica peers in the
// background. Push order is image, range set, then report, so an
// interrupted push never leaves a report whose referenced objects are
// absent. Every object is stat-probed first — the library image dominates
// the payload and is shared across many keys, so it is usually already
// there.
func (s *Service) replicateResult(hash string, ld *negativa.LibDebloat, peers []string) {
	if s.cluster == nil || len(peers) == 0 || ld == nil || ld.Report == nil || ld.Report.Sparse == nil {
		return
	}
	meta, err := json.Marshal(storedResultOf(ld))
	if err != nil {
		s.Counters.Add("peer.replica_write_errors", 1)
		return
	}
	lib := ld.Report.Sparse.Lib()
	objects := []struct {
		kind, key string
		payload   []byte
	}{
		{kindLib, digestHex(lib), lib.Data},
		{kindSparse, hash, ld.Report.Sparse.Encode()},
		{kindResult, hash, meta},
	}
	s.replWG.Add(1)
	go func() {
		defer s.replWG.Done()
		framed := make([][]byte, len(objects))
		refs := make([]peerObjectRef, len(objects))
		for i, o := range objects {
			framed[i] = castore.Frame(o.payload)
			refs[i] = peerObjectRef{Kind: o.kind, Key: o.key}
		}
		for _, peer := range peers {
			skip := make([]bool, len(objects))
			var resp peerStatResponse
			if err := s.cluster.PostJSON(peer, "/v1/peer/stat", peerStatRequest{Objects: refs}, &resp); err == nil && len(resp.Present) == len(objects) {
				copy(skip, resp.Present)
			}
			for i, o := range objects {
				if skip[i] {
					continue
				}
				err := s.cluster.PutStream(peer, "/v1/peer/objects/"+o.kind+"/"+o.key, bytes.NewReader(framed[i]), int64(len(framed[i])))
				if err != nil {
					s.Counters.Add("peer.replica_write_errors", 1)
					break // the peer is struggling; repair will retry later
				}
				s.Counters.Add("peer.replica_writes", 1)
			}
		}
	}()
}

// WaitReplication blocks until every write-back replication enqueued so
// far has finished (succeeded or given up). Tests use it to make the
// asynchronous push plane deterministic.
func (s *Service) WaitReplication() { s.replWG.Wait() }

// forEachOwnedGroup walks the store's replicable object kinds and hands
// each replication group — a ring key plus the locally present objects
// that must live wherever that key's owners are — to fn. Compact results
// group their report, range set, and shared library image under the
// compact stage key; profile snapshots ride the detect stage key recovered
// from their own identity fields.
func (s *Service) forEachOwnedGroup(fn func(ringKey string, refs []peerObjectRef)) {
	st := s.store
	st.Walk(kindResult, func(key string, _ int64) error {
		refs := []peerObjectRef{{Kind: kindResult, Key: key}}
		if st.Has(kindSparse, key) {
			refs = append(refs, peerObjectRef{Kind: kindSparse, Key: key})
		}
		if raw, ok := st.Get(kindResult, key); ok {
			var sr storedResult
			if json.Unmarshal(raw, &sr) == nil && sr.LibDigest != "" && st.Has(kindLib, sr.LibDigest) {
				refs = append(refs, peerObjectRef{Kind: kindLib, Key: sr.LibDigest})
			}
		}
		fn(plan.Key{Stage: negativa.StageCompact, Hash: key}.String(), refs)
		return nil
	})
	st.Walk(kindProfile, func(key string, _ int64) error {
		raw, ok := st.Get(kindProfile, key)
		if !ok {
			return nil
		}
		var sp storedProfile
		if json.Unmarshal(raw, &sp) != nil || sp.Install == "" {
			return nil
		}
		fn(negativa.DetectKey(sp.Install, sp.Workload).String(), []peerObjectRef{{Kind: kindProfile, Key: key}})
		return nil
	})
}

// repairPlan accumulates the per-peer deduplicated object sets one sweep
// intends to probe and, where absent, push.
type repairPlan struct {
	byPeer map[string][]peerObjectRef
	seen   map[plannedPush]struct{}
}

type plannedPush struct{ peer, kind, key string }

func newRepairPlan() *repairPlan {
	return &repairPlan{byPeer: map[string][]peerObjectRef{}, seen: map[plannedPush]struct{}{}}
}

func (p *repairPlan) add(peer string, refs []peerObjectRef) {
	for _, r := range refs {
		id := plannedPush{peer, r.Kind, r.Key}
		if _, dup := p.seen[id]; dup {
			continue
		}
		p.seen[id] = struct{}{}
		p.byPeer[peer] = append(p.byPeer[peer], r)
	}
}

// RepairNow runs one synchronous anti-entropy sweep and returns the number
// of objects it streamed to peers. Zero means every remote owner already
// held everything this node thinks it should — the converged state. Safe
// to call concurrently with serving; a standalone or storeless node
// returns 0 immediately.
func (s *Service) RepairNow() int {
	c := s.cluster
	if c == nil || s.store == nil {
		return 0
	}
	s.Counters.Add("repair.rounds", 1)
	self := c.Self()
	rp := newRepairPlan()
	s.forEachOwnedGroup(func(ringKey string, refs []peerObjectRef) {
		for _, owner := range c.Owners(ringKey) {
			if owner != self {
				rp.add(owner, refs)
			}
		}
	})
	return s.executeRepairPlan(rp)
}

// executeRepairPlan stat-probes each peer's planned set in chunks and
// streams the objects the peer reports absent. A failed probe skips the
// rest of that peer for this sweep (the peer is likely down; the next
// sweep retries).
func (s *Service) executeRepairPlan(rp *repairPlan) int {
	streamed := 0
	for peer, refs := range rp.byPeer {
		for start := 0; start < len(refs); start += repairStatChunk {
			chunk := refs[start:min(start+repairStatChunk, len(refs))]
			var resp peerStatResponse
			err := s.cluster.PostJSON(peer, "/v1/peer/stat", peerStatRequest{Objects: chunk}, &resp)
			if err != nil || len(resp.Present) != len(chunk) {
				s.Counters.Add("repair.probe_errors", 1)
				break
			}
			for i, ref := range chunk {
				if resp.Present[i] {
					continue
				}
				if err := s.pushStoredObject(peer, ref.Kind, ref.Key); err != nil {
					s.Counters.Add("repair.stream_errors", 1)
					continue
				}
				streamed++
			}
		}
	}
	if streamed > 0 {
		s.Counters.Add("repair.objects_streamed", int64(streamed))
	}
	return streamed
}

// pushStoredObject streams one local castore object to a peer through the
// checksummed Export frame, pinning it against eviction for the duration.
func (s *Service) pushStoredObject(peer, kind, key string) error {
	st := s.store
	size, ok := st.Stat(kind, key)
	if !ok || !st.Retain(kind, key) {
		return fmt.Errorf("dserve: repair push of absent object %s/%s", kind, key)
	}
	defer st.Release(kind, key)
	pr, pw := io.Pipe()
	go func() {
		_, err := st.Export(kind, key, pw)
		pw.CloseWithError(err)
	}()
	err := s.cluster.PutStream(peer, "/v1/peer/objects/"+kind+"/"+key, pr, size+castore.HeaderSize)
	pr.CloseWithError(err)
	return err
}

// repairLoop drives periodic anti-entropy sweeps until stop closes.
func (s *Service) repairLoop(stop chan struct{}) {
	defer s.repairWG.Done()
	t := time.NewTicker(s.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.RepairNow()
		}
	}
}

// LeaveCluster gracefully departs the peer group: objects whose ring key
// this node currently owns as primary are handed to the owners the ring
// resolves to once this node is gone, the node announces its leave to
// every live peer (they drop it immediately instead of discovering the
// absence through failures), and the membership plane shuts down. Call
// during shutdown, before closing the HTTP listener is fine — handoff only
// makes outbound requests. A standalone service is a no-op.
func (s *Service) LeaveCluster() {
	c := s.cluster
	if c == nil {
		return
	}
	if s.store != nil {
		self := c.Self()
		rp := newRepairPlan()
		s.forEachOwnedGroup(func(ringKey string, refs []peerObjectRef) {
			owners := c.Owners(ringKey)
			if len(owners) == 0 || owners[0] != self {
				return
			}
			for _, o := range c.OwnersExcluding(self, ringKey) {
				rp.add(o, refs)
			}
		})
		if n := s.executeRepairPlan(rp); n > 0 {
			s.Counters.Add("repair.handoff_streamed", int64(n))
		}
	}
	c.Leave()
	c.Close()
}
