package dserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/cluster"
)

// bootNode starts one service+server with its own fresh store; the cluster
// is attached separately so membership can vary per test.
func bootNode(t *testing.T, id string, mutate func(*Config)) *testNode {
	t.Helper()
	st, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 4, MaxSteps: 2, Store: st}
	if mutate != nil {
		mutate(&cfg)
	}
	svc := NewService(cfg)
	srv := httptest.NewServer(NewHandler(svc))
	return &testNode{id: id, svc: svc, srv: srv, store: st}
}

// attachNode joins a booted node to the peer set under the given options
// (counters and timings are wired to the node's own sets).
func attachNode(n *testNode, urls map[string]string, opt cluster.Options) {
	opt.Counters = n.svc.Counters
	opt.Timings = n.svc.Timings
	n.svc.AttachCluster(cluster.New(n.id, urls, opt))
}

// submitBatch posts one job and polls it to completion, returning an error
// instead of failing the test — safe to call from non-test goroutines.
func submitBatch(srv *httptest.Server, req JobRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st jobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", code)
	}
	if decErr != nil {
		return decErr
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		var cur jobStatus
		decErr = json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if decErr != nil {
			return decErr
		}
		switch cur.State {
		case JobDone:
			if cur.Verified != nil && !*cur.Verified {
				return fmt.Errorf("job %s completed unverified", st.ID)
			}
			return nil
		case JobFailed:
			return fmt.Errorf("job %s failed: %s", st.ID, cur.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after 60s", st.ID, cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitRingSize polls until every listed node's ring settles on want nodes.
func waitRingSize(t *testing.T, nodes []*testNode, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if len(n.svc.Cluster().Nodes()) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("node %s sees ring %v", n.id, n.svc.Cluster().Nodes())
			}
			t.Fatalf("rings did not converge on %d nodes", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairSweepHealsEmptyReplica: a node that computed everything
// standalone joins a ring with an empty peer; one anti-entropy sweep must
// stream every replica-owned object over (profiles included), a second
// sweep must find nothing left to move, and the healed peer must then
// serve the same batch without recomputing any analysis.
func TestRepairSweepHealsEmptyReplica(t *testing.T) {
	a := bootNode(t, "a", nil)
	b := bootNode(t, "b", nil)
	defer a.close()
	defer b.close()

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  8,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 32},
		},
		MaxSteps: 2,
	}
	// Standalone compute: no cluster attached, so nothing replicates.
	if err := submitBatch(a.srv, req); err != nil {
		t.Fatal(err)
	}
	a.svc.Cache.Flush()

	urls := map[string]string{"a": a.srv.URL, "b": b.srv.URL}
	opt := cluster.Options{ReplicaSets: 2, FailureThreshold: 1, Probation: time.Hour, Timeout: 30 * time.Second}
	attachNode(a, urls, opt)
	attachNode(b, urls, opt)

	moved := a.svc.RepairNow()
	if moved == 0 {
		t.Fatal("the first sweep against an empty replica must stream objects")
	}
	if got := a.svc.Counters.Get("repair.objects_streamed"); got != int64(moved) {
		t.Fatalf("repair.objects_streamed=%d, sweep reported %d", got, moved)
	}
	if errs := a.svc.Counters.Get("repair.stream_errors") + a.svc.Counters.Get("repair.probe_errors"); errs != 0 {
		t.Fatalf("healthy-peer sweep reported %d errors", errs)
	}
	if again := a.svc.RepairNow(); again != 0 {
		t.Fatalf("second sweep moved %d objects; the first should have converged", again)
	}
	if b.store.Stats().Objects == 0 {
		t.Fatal("repair streamed objects but none landed in the replica's store")
	}

	// The healed replica serves the batch with zero local analysis: results
	// come off its own disk, profiles were ingested into its registry by
	// the push handler.
	before := b.svc.Counters.Get("analysis.computed")
	if err := submitBatch(b.srv, req); err != nil {
		t.Fatal(err)
	}
	if delta := b.svc.Counters.Get("analysis.computed") - before; delta != 0 {
		t.Fatalf("healed replica recomputed %d analysis stages", delta)
	}
}

// TestReplicaReadSparseWireInterop mixes wire generations in one replica
// set: node b is pinned to the v1 sparse encoding (a pre-v2 node on the
// wire), node a speaks v2. Replication pushes always carry the canonical
// v1 object encoding, so the batch computed through a must be fully
// reusable on b — and the served libraries byte-identical across both.
func TestReplicaReadSparseWireInterop(t *testing.T) {
	a := bootNode(t, "a", nil)
	b := bootNode(t, "b", func(c *Config) { c.DisableSparseWireV2 = true })
	defer a.close()
	defer b.close()
	urls := map[string]string{"a": a.srv.URL, "b": b.srv.URL}
	opt := cluster.Options{ReplicaSets: 2, FailureThreshold: 1, Probation: time.Hour, Timeout: 30 * time.Second}
	attachNode(a, urls, opt)
	attachNode(b, urls, opt)

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  8,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
		},
		MaxSteps: 2,
	}
	stA := postJob(t, a.srv, req)
	if doneA := pollDone(t, a.srv, stA.ID); doneA.State != JobDone {
		t.Fatalf("node A job failed: %s", doneA.Error)
	}
	a.svc.WaitReplication()
	b.svc.WaitReplication()
	a.svc.Cache.Flush()
	b.svc.Cache.Flush()

	// With R=2 over two nodes, both own every key: between remote
	// execution and write-back replication, b now holds every artifact.
	before := b.svc.Counters.Get("analysis.computed")
	stB := postJob(t, b.srv, req)
	if doneB := pollDone(t, b.srv, stB.ID); doneB.State != JobDone {
		t.Fatalf("node B job failed: %s", doneB.Error)
	}
	if delta := b.svc.Counters.Get("analysis.computed") - before; delta != 0 {
		t.Fatalf("v1 peer recomputed %d analysis stages; replication should have covered them", delta)
	}

	var repA jobReport
	if code := getJSON(t, a.srv.URL+"/v1/jobs/"+stA.ID+"/report", &repA); code != http.StatusOK {
		t.Fatalf("node A report status %d", code)
	}
	for _, lr := range repA.Libs {
		la := fetchPeerJobLib(t, a.srv, stA.ID, lr.Name)
		lb := fetchPeerJobLib(t, b.srv, stB.ID, lr.Name)
		if !bytes.Equal(la, lb) {
			t.Fatalf("library %s differs between the v2 and v1 nodes", lr.Name)
		}
	}
}

// TestClusterRollingRestartE2E is the replication plane's acceptance test:
// three nodes under continuous batch traffic survive a rolling restart in
// which every original node is killed and replaced by a fresh, empty node
// under a new identity. Zero batches may fail, anti-entropy must stream
// the replacements' replica sets over, and the warm cluster must keep
// absorbing analysis (bounded analysis.computed growth) throughout.
func TestClusterRollingRestartE2E(t *testing.T) {
	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  8,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 32},
		},
		MaxSteps: 2,
	}
	opt := cluster.Options{
		ReplicaSets:       2,
		FailureThreshold:  2,
		Probation:         200 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		Timeout:           10 * time.Second,
	}

	// topo guards the live set: the submitter holds it shared for a whole
	// batch, so a node is only ever killed between batches — but the ring
	// stays degraded (and traffic keeps flowing) for the entire window
	// between a kill and its replacement's repair convergence.
	var topo sync.RWMutex
	var live []*testNode
	var retired []*testNode

	urls := map[string]string{}
	for _, id := range []string{"a", "b", "c"} {
		n := bootNode(t, id, nil)
		live = append(live, n)
		urls[id] = n.srv.URL
	}
	for _, n := range live {
		attachNode(n, urls, opt)
	}
	defer func() {
		topo.Lock()
		defer topo.Unlock()
		for _, n := range live {
			n.close()
		}
	}()

	// Warm-up: one batch computes and replicates everything.
	if err := submitBatch(live[0].srv, req); err != nil {
		t.Fatal(err)
	}
	for _, n := range live {
		n.svc.WaitReplication()
		n.svc.Cache.Flush()
	}
	allNodes := func() []*testNode {
		topo.RLock()
		defer topo.RUnlock()
		return append(append([]*testNode{}, live...), retired...)
	}
	computedTotal := func() int64 {
		var sum int64
		for _, n := range allNodes() {
			sum += n.svc.Counters.Get("analysis.computed")
		}
		return sum
	}
	baseline := computedTotal()

	// Continuous traffic: round-robin batches over whatever is live.
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var batches atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			topo.RLock()
			n := live[i%len(live)]
			err := submitBatch(n.srv, req)
			topo.RUnlock()
			if err != nil {
				select {
				case errc <- fmt.Errorf("batch on %s: %w", n.id, err):
				default:
				}
				return
			}
			batches.Add(1)
		}
	}()

	victims := 3
	if testing.Short() {
		victims = 1
	}
	for k := 0; k < victims; k++ {
		// Kill the oldest node. Taking topo exclusively serializes the kill
		// with any in-flight batch; everything after runs under live load.
		topo.Lock()
		v := live[0]
		live = append([]*testNode{}, live[1:]...)
		topo.Unlock()
		v.close()
		topo.Lock()
		retired = append(retired, v)
		topo.Unlock()

		// The degraded ring still completes batches.
		topo.RLock()
		survivor := live[0]
		topo.RUnlock()
		if err := submitBatch(survivor.srv, req); err != nil {
			t.Fatalf("post-kill batch after losing %s: %v", v.id, err)
		}

		// Replacement: a brand-new identity with an empty store joins.
		peerURLs := map[string]string{}
		topo.RLock()
		for _, n := range live {
			peerURLs[n.id] = n.srv.URL
		}
		survivors := append([]*testNode{}, live...)
		topo.RUnlock()
		r := bootNode(t, v.id+"r", nil)
		peerURLs[r.id] = r.srv.URL
		attachNode(r, peerURLs, opt)
		if acked := r.svc.Cluster().Join(); acked == 0 {
			t.Fatalf("replacement %s joined but no peer acknowledged", r.id)
		}
		waitRingSize(t, append(survivors, r), 3)

		// Anti-entropy: sweep the survivors until one full pass moves
		// nothing — the replacement then holds every replica it owns.
		deadline := time.Now().Add(30 * time.Second)
		for {
			moved := 0
			for _, n := range survivors {
				moved += n.svc.RepairNow()
			}
			if moved == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("anti-entropy did not converge after the replacement joined")
			}
		}
		if r.store.Stats().Objects == 0 {
			t.Fatalf("replacement %s converged with an empty store", r.id)
		}

		topo.Lock()
		live = append(live, r)
		topo.Unlock()
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("a batch failed during the rolling restart: %v", err)
	default:
	}
	if got := batches.Load(); got < int64(victims) {
		t.Fatalf("only %d background batches completed across %d restarts", got, victims)
	}

	var streamed int64
	for _, n := range allNodes() {
		streamed += n.svc.Counters.Get("repair.objects_streamed")
	}
	if streamed == 0 {
		t.Fatal("rolling restart must stream repair objects to the replacements")
	}
	// Bounded analysis growth: the replica tier absorbs the restarts. The
	// slack covers read-through races against a node mid-kill; wholesale
	// recomputation (libs × batches) would blow far past it.
	if delta := computedTotal() - baseline; delta > 2*baseline+4 {
		t.Fatalf("analysis.computed grew by %d during the rolling restart (baseline %d)", delta, baseline)
	}
}
