package dserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"negativaml/internal/bufpool"
	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
)

// stageNames are the analysis plan's canonical stages, in pipeline order.
var stageNames = []string{
	negativa.StageDetect, negativa.StageLibIndex, negativa.StageLocate,
	negativa.StageCompact, negativa.StageVerifyRef, negativa.StageVerifyRun,
}

// stageStats assembles the per-stage hit/miss view of /v1/metrics from the
// stage scheduler's observer counters (per-stage timings live in the
// timings section under the same stage.<name> series). disk_hits and
// peer_hits attribute the hits that did not come from local memory.
func stageStats(c *metrics.CounterSet) map[string]map[string]int64 {
	out := make(map[string]map[string]int64, len(stageNames))
	for _, st := range stageNames {
		out[st] = map[string]int64{
			"hits":      c.Get("stage." + st + ".hits"),
			"misses":    c.Get("stage." + st + ".misses"),
			"disk_hits": c.Get("stage." + st + ".disk_hits"),
			"peer_hits": c.Get("stage." + st + ".peer_hits"),
		}
	}
	return out
}

// peerStats assembles the peer section of /v1/metrics: the memo tier's
// hit/miss/fallback counters, the hot path's round-trip and hedging
// counters, plus the cluster's membership and per-peer health (per-peer
// latency distributions live in the timings section under
// peer.<node-id>).
func peerStats(s *Service) map[string]any {
	c := s.Cluster()
	if c == nil {
		return nil
	}
	st := c.Stats()
	return map[string]any{
		"self":            st.Self,
		"ring_nodes":      st.RingNodes,
		"replica_sets":    st.ReplicaSets,
		"hits":            s.Counters.Get("peer.hits"),
		"misses":          s.Counters.Get("peer.misses"),
		"fallbacks":       s.Counters.Get("peer.fallbacks"),
		"remote_execs":    s.Counters.Get("peer.remote_execs"),
		"replica_reads":   s.Counters.Get("peer.replica_reads"),
		"round_trips":     s.Counters.Get("peer.round_trips"),
		"hedge_fired":     s.Counters.Get("peer.hedge_fired"),
		"hedge_won":       s.Counters.Get("peer.hedge_won"),
		"hedge_cancelled": s.Counters.Get("peer.hedge_cancelled"),
		"peers":           st.Peers,
	}
}

// NewHandler returns the service's HTTP/JSON API, served by
// cmd/negativa-served:
//
//	POST /v1/jobs                   submit a batch job (JobRequest body)
//	GET  /v1/jobs                   list job statuses
//	GET  /v1/jobs/{id}              one job's status
//	GET  /v1/jobs/{id}/report       full report of a completed job
//	GET  /v1/jobs/{id}/libs/{name}  download one debloated library
//	GET  /v1/metrics                counters, cache stats, timing summaries
//	GET  /v1/store                  content-addressed store stats (404 when
//	                                the service runs without a data dir)
//
// plus the node-to-node /v1/peer/* routes (see peer.go) that cluster
// peers use for stage read-through, remote stage execution, and castore
// object transfer. docs/API.md documents every route with examples kept
// honest by TestAPIDocExamples.
func NewHandler(s *Service) http.Handler {
	return newMux(s)
}

// maxRequestBytes bounds job-submission bodies; a maximal legitimate
// request (MaxJobWorkloads fully-specified workloads) is a few KB.
const maxRequestBytes = 1 << 20

func newMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()
	submit := func(w http.ResponseWriter, r *http.Request) {
		// Cap the body before decoding: size limits in Validate cannot
		// protect against a request that OOMs the decoder itself.
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			code := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			httpError(w, code, fmt.Errorf("decode request: %w", err))
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrBusy):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrUnknownBase):
				code = http.StatusNotFound
			case errors.Is(err, ErrBaseNotReady):
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, statusOf(job))
	}
	mux.HandleFunc("POST /v1/jobs", submit)
	// /v1/submit is the incremental-friendly alias: the same body, with
	// "base" naming a completed job whose workload set the submission
	// extends.
	mux.HandleFunc("POST /v1/submit", submit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]jobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = statusOf(j)
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job := s.Job(r.PathValue("id"))
		if job == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		if job.State == JobQueued || job.State == JobRunning {
			// Polling hint: how long until the job is plausibly done, from
			// the recent job-wall distribution. Clients that prefer pushes
			// should use /v1/jobs/{id}/events instead.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint(job)))
		}
		writeJSON(w, http.StatusOK, statusOf(job))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if s.Job(id) == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		ServeEvents(w, r, func(after int) ([]JobEvent, bool, <-chan struct{}) {
			evs, done, ch, err := s.JobEvents(id, after)
			if err != nil {
				// Evicted mid-stream: end the stream rather than hang.
				return nil, true, nil
			}
			return evs, done, ch
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		job := s.Job(r.PathValue("id"))
		if job == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		// ResultOf materializes restored jobs from the store on first use.
		res, err := s.ResultOf(job.ID)
		switch {
		case errors.Is(err, ErrUnknownJob):
			// Evicted between the snapshot above and the result lookup.
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", job.ID))
			return
		case errors.Is(err, ErrJobNotReady):
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; no report yet", job.ID, job.State))
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, reportOf(job, res))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/libs/{name}", func(w http.ResponseWriter, r *http.Request) {
		id, name := r.PathValue("id"), r.PathValue("name")
		// The stream pins the job until Close: eviction cannot release the
		// images (in memory or in the store) under an in-flight response.
		ls, err := s.OpenLibStream(id, name)
		switch {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		case errors.Is(err, ErrJobNotReady):
			httpError(w, http.StatusConflict, fmt.Errorf("job %s has no libraries yet", id))
			return
		case errors.Is(err, ErrUnknownLib):
			httpError(w, http.StatusNotFound, fmt.Errorf("job %s has no library %q", id, name))
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		defer ls.Close()
		// Stream the sparse image: retained ranges come straight from the
		// original bytes, zeroed ranges from a shared scratch buffer — the
		// handler never materializes a full library copy.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
		w.Header().Set("Content-Length", strconv.FormatInt(ls.Size, 10))
		w.WriteHeader(http.StatusOK)
		ls.WriteTo(w)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsPayload())
	})
	mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, r *http.Request) {
		st := s.Store()
		if st == nil {
			httpError(w, http.StatusNotFound, errors.New("no data dir configured (start with -data-dir)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dir": st.Dir(), "stats": st.Stats()})
	})
	registerPeerRoutes(mux, s)
	return mux
}

// jobStatus is the compact job view returned by submit/list/status.
type jobStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Framework string    `json:"framework,omitempty"`
	// IngestDir echoes the ingestion-mode request directory; Framework is
	// empty on such jobs (the tree's manifest names it).
	IngestDir string `json:"ingest_dir,omitempty"`
	Workloads int    `json:"workloads"`
	// Progress is the monotone completed-stage fraction (0..1, exactly 1
	// once done); StagesDone/StagesTotal are its integer parts. A job
	// restored after a restart reports 1 with zero counts — its per-stage
	// history did not survive, its completion did.
	Progress    float64 `json:"progress"`
	StagesDone  int     `json:"stages_done"`
	StagesTotal int     `json:"stages_total"`
	// Base names the job this one incrementally extends, when submitted
	// with one.
	Base string `json:"base,omitempty"`

	// Summary fields, present once the job is done. Verified is vacuously
	// true when VerifySkipped — check both.
	Verified      *bool `json:"verified,omitempty"`
	VerifySkipped bool  `json:"verify_skipped,omitempty"`
	CacheHits     *int  `json:"cache_hits,omitempty"`
	CacheMisses   *int  `json:"cache_misses,omitempty"`
}

func statusOf(j *Job) jobStatus {
	st := jobStatus{
		ID:          j.ID,
		State:       j.State,
		Error:       j.Err,
		Submitted:   j.Submitted,
		Framework:   j.Req.Framework,
		IngestDir:   j.Req.IngestDir,
		Workloads:   len(j.Req.Workloads),
		Progress:    progressOf(j),
		StagesDone:  j.StagesDone,
		StagesTotal: j.StagesTotal,
		Base:        j.Req.Base,
	}
	switch {
	case j.Result != nil:
		v := j.Result.AllVerified()
		st.Verified = &v
		st.VerifySkipped = j.Result.VerifySkipped
		st.CacheHits = &j.Result.CacheHits
		st.CacheMisses = &j.Result.CacheMisses
	case j.manifest != nil && j.State == JobDone:
		// Restored job not yet materialized: the manifest carries the
		// summary, so status stays cheap (no store reads).
		v := j.manifest.allVerified()
		st.Verified = &v
		st.VerifySkipped = j.manifest.VerifySkipped
		st.CacheHits = &j.manifest.CacheHits
		st.CacheMisses = &j.manifest.CacheMisses
	}
	return st
}

// jobReport is the full JSON report of a completed job. Library images are
// not inlined — fetch them via /v1/jobs/{id}/libs/{name}.
type jobReport struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	InstallFP string `json:"install_fingerprint"`
	Union     string `json:"union_workload"`

	Workloads []workloadReport `json:"workloads"`
	Libs      []libReport      `json:"libs"`

	Totals totalsReport `json:"totals"`

	DetectMS      float64 `json:"detect_virtual_ms"`
	AnalysisMS    float64 `json:"analysis_virtual_ms"`
	EndToEndMS    float64 `json:"end_to_end_virtual_ms"`
	WallMS        float64 `json:"wall_ms"`
	CacheHits     int     `json:"cache_hits"`
	CacheMisses   int     `json:"cache_misses"`
	ProfileReuses int     `json:"profile_reuses"`
	VerifySkipped bool    `json:"verify_skipped,omitempty"`
	// Incremental summarizes base absorption for jobs submitted with a
	// base.
	Incremental *IncrementalStats `json:"incremental,omitempty"`
}

type workloadReport struct {
	Name          string  `json:"name"`
	RefDigest     string  `json:"ref_digest"`
	Verified      bool    `json:"verified"`
	ProfileReused bool    `json:"profile_reused"`
	DetectMS      float64 `json:"detect_virtual_ms"`
}

type libReport struct {
	Name          string  `json:"name"`
	FileKB        float64 `json:"file_kb"`
	FileAfterKB   float64 `json:"file_after_kb"`
	FileRedPct    float64 `json:"file_red_pct"`
	ResidentKB    float64 `json:"resident_kb"`
	ResidentAfKB  float64 `json:"resident_after_kb"`
	CPURedPct     float64 `json:"cpu_red_pct"`
	GPURedPct     float64 `json:"gpu_red_pct"`
	FuncsKept     int     `json:"funcs_kept"`
	FuncsTotal    int     `json:"funcs_total"`
	ElemsKept     int     `json:"elems_kept"`
	ElemsTotal    int     `json:"elems_total"`
	RemovedArch   int     `json:"removed_arch_mismatch"`
	RemovedUnused int     `json:"removed_no_used_kernel"`
}

type totalsReport struct {
	Libs        int     `json:"libs"`
	FileKB      float64 `json:"file_kb"`
	FileAfterKB float64 `json:"file_after_kb"`
	FileRedPct  float64 `json:"file_red_pct"`
	CPURedPct   float64 `json:"cpu_red_pct"`
	GPURedPct   float64 `json:"gpu_red_pct"`
	FuncRedPct  float64 `json:"func_red_pct"`
	ElemRedPct  float64 `json:"elem_red_pct"`
}

func reportOf(j *Job, res *BatchResult) jobReport {
	rep := jobReport{
		ID:            j.ID,
		State:         j.State,
		InstallFP:     res.InstallFP,
		Union:         res.Union.Workload,
		DetectMS:      ms(res.DetectTime),
		AnalysisMS:    ms(res.AnalysisTime),
		EndToEndMS:    ms(res.EndToEnd()),
		WallMS:        ms(res.WallTime),
		CacheHits:     res.CacheHits,
		CacheMisses:   res.CacheMisses,
		ProfileReuses: res.ProfileReuses,
		VerifySkipped: res.VerifySkipped,
		Incremental:   res.Incremental,
	}
	for _, o := range res.Workloads {
		rep.Workloads = append(rep.Workloads, workloadReport{
			Name:          o.Name,
			RefDigest:     fmt.Sprintf("%016x", o.RefDigest),
			Verified:      o.Verified,
			ProfileReused: o.ProfileReused,
			DetectMS:      ms(o.DetectTime),
		})
	}
	for _, lr := range res.Libs {
		rep.Libs = append(rep.Libs, libReport{
			Name:          lr.Name,
			FileKB:        kb(lr.FileEffective),
			FileAfterKB:   kb(lr.FileEffectiveAfter),
			FileRedPct:    lr.FileReductionPct(),
			ResidentKB:    kb(lr.ResidentBytes),
			ResidentAfKB:  kb(lr.ResidentBytesAfter),
			CPURedPct:     lr.CPUReductionPct(),
			GPURedPct:     lr.GPUReductionPct(),
			FuncsKept:     lr.FuncKept,
			FuncsTotal:    lr.FuncCount,
			ElemsKept:     lr.ElemKept,
			ElemsTotal:    lr.ElemCount,
			RemovedArch:   lr.RemovedArchMismatch,
			RemovedUnused: lr.RemovedNoUsedKernel,
		})
	}
	rep.Totals = totalsOf(res.Aggregate())
	return rep
}

func totalsOf(t negativa.Totals) totalsReport {
	return totalsReport{
		Libs:        t.Libs,
		FileKB:      kb(t.FileEffective),
		FileAfterKB: kb(t.FileEffectiveAfter),
		FileRedPct:  t.FileReductionPct(),
		CPURedPct:   t.CPUReductionPct(),
		GPURedPct:   t.GPUReductionPct(),
		FuncRedPct:  t.FuncReductionPct(),
		ElemRedPct:  t.ElemReductionPct(),
	}
}

// progressOf derives the monotone progress fraction: completed stages over
// planned stages, pinned to 1 for done jobs (including restored ones whose
// stage counts did not survive the restart).
func progressOf(j *Job) float64 {
	if j.State == JobDone {
		return 1
	}
	if j.StagesTotal <= 0 {
		return 0
	}
	p := float64(j.StagesDone) / float64(j.StagesTotal)
	if p > 1 {
		p = 1
	}
	return p
}

// retryAfterHint estimates, in whole seconds (≥ 1), how long a poller
// should wait before asking about a queued/running job again: the recent
// median job wall time minus what this job has already spent, clamped to
// [1, 30].
func (s *Service) retryAfterHint(j *Job) int {
	est := s.Timings.Summary("job.wall").P50 // milliseconds
	if j.State == JobRunning && !j.Started.IsZero() {
		est -= ms(time.Since(j.Started))
	}
	secs := int((est + 999) / 1000)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// MetricsPayload assembles the /v1/metrics response body. The gateway
// reuses it to serve a merged metrics view with its own section added.
func (s *Service) MetricsPayload() map[string]any {
	out := map[string]any{
		"counters": s.Counters.Snapshot(),
		"cache":    s.Cache.Stats(),
		"registry": map[string]int{"profiles": s.Registry.Len()},
		"stages":   stageStats(s.Counters),
		"timings":  s.Timings.Snapshot(),
		"workers":  s.Workers(),
	}
	if st := s.Store(); st != nil {
		out["store"] = st.Stats()
	}
	if ps := peerStats(s); ps != nil {
		out["peer"] = ps
	}
	return out
}

// eventsPollDefault and eventsPollMax bound a long-poll's blocking time.
const (
	eventsPollDefault = 0
	eventsPollMax     = 60 * time.Second
)

// ServeEvents renders a job event stream over HTTP from an After-style
// source (see EventLog.After). Two modes, negotiated by the Accept header:
//
//   - text/event-stream: SSE. Every buffered event replays as one `data:`
//     line, new events stream as they arrive, and the response ends after
//     the terminal event (or when the client disconnects).
//   - otherwise: long-poll JSON. ?after=N returns events with Seq > N
//     (default all); ?timeout_ms=M blocks up to M milliseconds (capped at
//     60000) when no fresh events exist. The body is
//     {"events": [...], "done": bool} — an empty events array with
//     done=false means the poll timed out.
//
// The gateway serves its own job streams through this same renderer, so
// both layers speak one wire format.
func ServeEvents(w http.ResponseWriter, r *http.Request, after func(int) ([]JobEvent, bool, <-chan struct{})) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		serveEventsSSE(w, r, after)
		return
	}
	from := -1
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad after %q", v))
			return
		}
		from = n
	}
	timeout := time.Duration(eventsPollDefault)
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", v))
			return
		}
		timeout = time.Duration(n) * time.Millisecond
		if timeout > eventsPollMax {
			timeout = eventsPollMax
		}
	}
	evs, done, ch := after(from)
	if len(evs) == 0 && !done && timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-ch:
			evs, done, _ = after(from)
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	if evs == nil {
		evs = []JobEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": evs, "done": done})
}

func serveEventsSSE(w http.ResponseWriter, r *http.Request, after func(int) ([]JobEvent, bool, <-chan struct{})) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, errors.New("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	// One pooled frame buffer and one encoder per subscriber, reused for
	// the whole stream: a fan-out of N watchers costs N buffers total, not
	// one marshal allocation per event per watcher, and each wake-up's
	// events leave in a single Write.
	buf := bufpool.GetBuffer()
	defer bufpool.PutBuffer(buf)
	enc := json.NewEncoder(buf)
	last := -1
	for {
		evs, done, ch := after(last)
		if len(evs) > 0 {
			buf.Reset()
			for _, e := range evs {
				buf.WriteString("data: ")
				if err := enc.Encode(e); err != nil {
					return
				}
				// Encode appended the JSON's trailing newline; the second
				// ends the SSE frame.
				buf.WriteByte('\n')
				last = e.Seq
			}
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func kb(n int64) float64 { return float64(n) / 1024 }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
