package dserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/elfx"
)

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) jobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st jobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status code %d for job %s", code, id)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerBatchOfFourWorkloads drives the full HTTP surface cmd/negativa-served
// exposes: submit a 4-workload batch over one install, poll to completion,
// check the union-debloated install verified against every member's digest,
// download a debloated library, and resubmit to observe cache hits.
func TestServerBatchOfFourWorkloads(t *testing.T) {
	svc := NewService(Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  6,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 1},
			{Model: "Transformer", Batch: 32, Device: "A100"},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 1},
		},
		MaxSteps: 2,
	}

	st := postJob(t, ts, req)
	done := pollDone(t, ts, st.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.Verified == nil || !*done.Verified {
		t.Fatal("status must report the batch verified")
	}

	// Full report: every member verified against its own digest.
	var rep jobReport
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	if len(rep.Workloads) != 4 {
		t.Fatalf("report has %d workloads, want 4", len(rep.Workloads))
	}
	digests := map[string]bool{}
	for _, w := range rep.Workloads {
		if !w.Verified {
			t.Errorf("workload %s not verified", w.Name)
		}
		digests[w.RefDigest] = true
	}
	if len(digests) < 2 {
		t.Error("member digests should differ across distinct workloads")
	}
	if rep.Totals.FileRedPct <= 0 || rep.Totals.Libs == 0 {
		t.Errorf("totals look empty: %+v", rep.Totals)
	}

	// Download a debloated library and confirm it is a loadable ELF image.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/libs/libtorch_cuda.so")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch library: status %d err %v", resp.StatusCode, err)
	}
	if _, err := elfx.Parse("libtorch_cuda.so", blob); err != nil {
		t.Fatalf("downloaded library is not parseable: %v", err)
	}

	// Repeated submission: profiles and per-library results are all reused;
	// the status and report must surface ≥ 1 cache hit.
	st2 := postJob(t, ts, req)
	done2 := pollDone(t, ts, st2.ID)
	if done2.State != JobDone {
		t.Fatalf("repeat job failed: %s", done2.Error)
	}
	if done2.CacheHits == nil || *done2.CacheHits < 1 {
		t.Fatal("repeated submission must report at least one cache hit")
	}
	var rep2 jobReport
	getJSON(t, ts.URL+"/v1/jobs/"+st2.ID+"/report", &rep2)
	if rep2.ProfileReuses != 4 {
		t.Errorf("profile reuses = %d, want 4", rep2.ProfileReuses)
	}
	if rep2.CacheMisses != 0 {
		t.Errorf("repeat cache misses = %d, want 0", rep2.CacheMisses)
	}

	// Listing and metrics.
	var list struct {
		Jobs []jobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 2 {
		t.Errorf("job list = %d entries, want 2", len(list.Jobs))
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
		Cache    CacheStats       `json:"cache"`
		Workers  int              `json:"workers"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.Cache.Hits < 1 || m.Counters["jobs.completed"] != 2 || m.Workers != 4 {
		t.Errorf("metrics = %+v %+v", m.Counters, m.Cache)
	}
}

// TestServerBackpressure exercises the in-flight cap: with MaxInFlight=1,
// a second submission while the first job is still generating its install
// must be rejected with 503.
func TestServerBackpressure(t *testing.T) {
	svc := NewService(Config{Workers: 1, MaxSteps: 2, MaxInFlight: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	// A sizable install keeps the first job in flight while we resubmit.
	slow := JobRequest{
		Framework: "tensorflow",
		TailLibs:  400,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2", Train: true, Batch: 16}},
		MaxSteps:  2,
	}
	first := postJob(t, ts, slow)

	body, _ := json.Marshal(slow)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit while busy: status %d, want 503", resp.StatusCode)
	}
	if svc.Counters.Get("jobs.rejected_busy") != 1 {
		t.Errorf("jobs.rejected_busy = %d, want 1", svc.Counters.Get("jobs.rejected_busy"))
	}

	done := pollDone(t, ts, first.ID)
	if done.State != JobDone {
		t.Fatalf("first job: %s (%s)", done.State, done.Error)
	}
	// Capacity freed: submission works again.
	st2 := postJob(t, ts, JobRequest{
		Framework: "pytorch", TailLibs: 2, MaxSteps: 2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
	})
	if got := pollDone(t, ts, st2.ID); got.State != JobDone {
		t.Fatalf("post-drain job: %s (%s)", got.State, got.Error)
	}
}

// TestServerRequestCaps exercises the client-controlled size limits.
func TestServerRequestCaps(t *testing.T) {
	svc := NewService(Config{Workers: 1, MaxSteps: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"framework":"pytorch","tail_libs":999999,"workloads":[{"model":"MobileNetV2"}]}`); code != http.StatusBadRequest {
		t.Errorf("oversized tail_libs: status %d, want 400", code)
	}
	many, _ := json.Marshal(JobRequest{
		Framework: "pytorch", TailLibs: 2,
		Workloads: make([]WorkloadSpec, MaxJobWorkloads+1),
	})
	if code := post(string(many)); code != http.StatusBadRequest {
		t.Errorf("too many workloads: status %d, want 400", code)
	}
}

func TestServerErrorPaths(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Invalid request.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(`{"framework":"caffe"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid framework: status %d, want 400", resp.StatusCode)
	}

	// Unknown job / library / premature report.
	if code := getJSON(t, ts.URL+"/v1/jobs/job-9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-9999/report", nil); code != http.StatusNotFound {
		t.Errorf("unknown job report: status %d, want 404", code)
	}

	st := postJob(t, ts, JobRequest{
		Framework: "pytorch",
		TailLibs:  2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
		MaxSteps:  2,
	})
	done := pollDone(t, ts, st.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/libs/libno_such.so", ts.URL, st.ID), nil); code != http.StatusNotFound {
		t.Errorf("unknown library: status %d, want 404", code)
	}
}
