package dserve

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"negativaml/internal/castore"
	"negativaml/internal/gpuarch"
	"negativaml/internal/metrics"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing tasks across all jobs
	// (default runtime.NumCPU()).
	Workers int
	// CacheBytes bounds the content-addressed result cache by retained
	// bytes (default 64 MiB). Entries are sparse — a zeroed-range set plus
	// the report — and each distinct original library image they reference
	// is charged once, so the bound covers everything the cache alone can
	// keep alive.
	CacheBytes int64
	// MaxSteps is the default detection/verification step cap applied when
	// a batch does not set one (default 4). Usage coverage saturates within
	// the first steps, so small caps keep service latency low.
	MaxSteps int
	// MaxJobs bounds retained terminal (done/failed) jobs — each completed
	// job holds its compacted library images (default 256). Running and
	// queued jobs are never evicted.
	MaxJobs int
	// MaxInstalls bounds the server-side generated-install cache
	// (default 16).
	MaxInstalls int
	// MaxInFlight bounds queued+running jobs; Submit returns ErrBusy
	// beyond it (default 64).
	MaxInFlight int
	// Store, when non-nil, is the disk-backed content-addressed store the
	// service persists through: the result cache gains a second tier,
	// detection profiles snapshot on Put and replay on boot, and completed
	// jobs spill their manifests and images so a restart serves them warm.
	Store *castore.Store
}

// Service is the batch-debloat service core: the profile registry, the
// content-addressed result cache, the bounded worker pool, and the job
// table behind the HTTP front end.
type Service struct {
	cfg Config

	Registry *Registry
	Cache    *ResultCache
	Counters *metrics.CounterSet
	Timings  *metrics.TimingSet
	pool     *Pool
	store    *castore.Store

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string
	seq          int
	installs     map[string]*installSlot
	installOrder []string
	closed       bool
	wg           sync.WaitGroup

	// fingerprints memoizes InstallFingerprint per immutable *Install.
	fingerprints *boundedMemo
	// restoredLibs memoizes store-image parses per content digest, so
	// restored jobs sharing libraries (the dependency tail) parse each
	// image once.
	restoredLibs *boundedMemo
}

type installSlot struct {
	once sync.Once
	in   *mlframework.Install
	err  error
}

// NewService builds a service from the config, applying defaults.
func NewService(cfg Config) *Service {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.CacheBytes < 1 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 4
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = 256
	}
	if cfg.MaxInstalls < 1 {
		cfg.MaxInstalls = 16
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 64
	}
	counters := metrics.NewCounterSet()
	s := &Service{
		cfg:          cfg,
		Registry:     NewRegistry(),
		Cache:        NewResultCache(cfg.CacheBytes, counters),
		Counters:     counters,
		Timings:      metrics.NewTimingSet(),
		pool:         NewPool(cfg.Workers),
		jobs:         map[string]*Job{},
		installs:     map[string]*installSlot{},
		fingerprints: newBoundedMemo(64),
		restoredLibs: newBoundedMemo(64),
	}
	if cfg.Store != nil {
		// Warm-restart wiring: the cache gains its disk tier, the registry
		// replays its snapshotted profiles, and persisted job manifests
		// come back as lazily-materialized done jobs.
		s.store = cfg.Store
		s.Cache.AttachStore(cfg.Store)
		s.Registry.AttachStore(cfg.Store)
		if n := s.Registry.Replay(); n > 0 {
			counters.Add("registry.replayed", int64(n))
		}
		s.restoreJobs()
	}
	return s
}

// Store returns the attached content-addressed store, or nil.
func (s *Service) Store() *castore.Store { return s.store }

// Workers returns the pool's concurrency bound.
func (s *Service) Workers() int { return s.pool.Workers() }

// Close drains the service: no new submissions are accepted and Close
// returns once every running job has finished.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// WorkloadIdentity canonically identifies a workload configuration for
// profile reuse. Everything that shapes what detection observes — graph,
// devices, load mode, dataset, epochs, per-item compute, and the step cap
// (the reference digest depends on it) — is part of the identity.
func WorkloadIdentity(w mlruntime.Workload, maxSteps int) string {
	devs := make([]string, len(w.Devices))
	for i, d := range w.Devices {
		devs[i] = d.Arch.String()
	}
	var model string
	var ops, batch int
	var train bool
	if w.Graph != nil {
		model, ops, batch, train = w.Graph.Model, len(w.Graph.Ops), w.Graph.Batch, w.Graph.Train
	}
	return fmt.Sprintf("%s|model=%s|ops=%d|batch=%d|train=%v|epochs=%d|data=%s|mode=%s|devs=%s|pic=%s|steps=%d",
		w.Name, model, ops, batch, train, w.Epochs, w.Data.Name, w.Mode, strings.Join(devs, ","), w.PerItemCompute, maxSteps)
}

// BatchOptions configure one multi-workload debloat batch.
type BatchOptions struct {
	// MaxSteps caps detection and verification runs: 0 applies the service
	// default, a negative value runs the full dataset uncapped.
	MaxSteps int
	// SkipVerify skips the per-member verification re-runs.
	SkipVerify bool
}

// WorkloadOutcome is one member workload's slice of a batch result.
type WorkloadOutcome struct {
	Name     string
	Identity string
	// RefDigest is the workload's reference output digest from its profiled
	// run; Verified reports whether the union-debloated install reproduced
	// it.
	RefDigest uint64
	Verified  bool
	// DetectTime is the profiled run's virtual time. ProfileReused marks
	// profiles served from the registry (no run executed in this batch).
	DetectTime    time.Duration
	ProfileReused bool
}

// BatchResult is the output of one union-debloat batch: one set of
// compacted libraries serving every member workload.
type BatchResult struct {
	// InstallFP is the install fingerprint the batch ran against.
	InstallFP string
	// Union is the merged profile the libraries were debloated against.
	Union *negativa.Profile
	// Workloads holds per-member outcomes in submission order.
	Workloads []WorkloadOutcome
	// Libs holds one report per library in install load order.
	Libs []*negativa.LibraryReport
	// byName indexes Libs by name, built once when the batch assembles its
	// reports (Lib falls back to a scan for hand-built results).
	byName map[string]*negativa.LibraryReport

	// DetectTime sums the virtual profiled-run times of freshly detected
	// members (registry hits cost nothing); AnalysisTime sums virtual
	// locate+compact time of cache misses (hits cost nothing). Their sum is
	// the batch's virtual end-to-end debloating cost.
	DetectTime   time.Duration
	AnalysisTime time.Duration
	// CacheHits / CacheMisses count this batch's per-library cache
	// outcomes; ProfileReuses counts members served from the registry.
	CacheHits     int
	CacheMisses   int
	ProfileReuses int
	// libKeys holds the content-address (CacheKey) of each entry of Libs,
	// parallel to it — the references a persisted job manifest records.
	// Empty for hand-built results, which then cannot be persisted.
	libKeys []string
	// VerifySkipped records that the batch ran with SkipVerify: no member
	// Verified flag carries information.
	VerifySkipped bool
	// WallTime is the real elapsed time of the batch.
	WallTime time.Duration
}

// EndToEnd is the batch's virtual debloating time (the paper's Table 8
// metric, extended to batches).
func (r *BatchResult) EndToEnd() time.Duration { return r.DetectTime + r.AnalysisTime }

// DebloatedLibs materializes the compacted images keyed by library name.
// Images are built lazily at call time; batch results and cache entries
// only hold sparse range sets.
func (r *BatchResult) DebloatedLibs() map[string][]byte {
	out := make(map[string][]byte, len(r.Libs))
	for _, lr := range r.Libs {
		out[lr.Name] = lr.Debloated()
	}
	return out
}

// Lib returns the report for the named library, or nil.
func (r *BatchResult) Lib(name string) *negativa.LibraryReport {
	if r.byName != nil {
		return r.byName[name]
	}
	for _, lr := range r.Libs {
		if lr.Name == name {
			return lr
		}
	}
	return nil
}

// Aggregate sums the per-library reports (one Table 2 row for the union).
func (r *BatchResult) Aggregate() negativa.Totals {
	return (&negativa.Result{Libs: r.Libs}).Aggregate()
}

// AllVerified reports whether every member workload reproduced its
// reference digest (vacuously true when verification was skipped).
func (r *BatchResult) AllVerified() bool {
	if r.VerifySkipped {
		return true
	}
	for i := range r.Workloads {
		if !r.Workloads[i].Verified {
			return false
		}
	}
	return true
}

// DebloatBatch union-debloats one install against a workload set: detect
// every member (registry-backed), merge profiles, locate+compact every
// library once against the union (cache-backed), and verify the debloated
// install against every member's reference digest. Every workload must
// reference in as its install.
func (s *Service) DebloatBatch(in *mlframework.Install, workloads []mlruntime.Workload, opt BatchOptions) (*BatchResult, error) {
	start := time.Now()
	if in == nil {
		return nil, errors.New("dserve: nil install")
	}
	if len(workloads) == 0 {
		return nil, errors.New("dserve: batch has no workloads")
	}
	for i := range workloads {
		if workloads[i].Install != in {
			return nil, fmt.Errorf("dserve: workload %q does not reference the batch install", workloads[i].Name)
		}
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = s.cfg.MaxSteps
	} else if maxSteps < 0 {
		maxSteps = 0 // uncapped: run the full dataset
	}
	fp := s.fingerprint(in)

	// ---- Detection (parallel, registry-backed) ----
	outcomes := make([]WorkloadOutcome, len(workloads))
	profiles := make([]*negativa.Profile, len(workloads))
	err := s.pool.Map(len(workloads), func(i int) error {
		w := workloads[i]
		id := WorkloadIdentity(w, maxSteps)
		key := ProfileKey{Install: fp, Workload: id}
		if p, ok := s.Registry.Get(key); ok {
			s.Counters.Add("registry.hits", 1)
			profiles[i] = p
			outcomes[i] = WorkloadOutcome{
				Name: w.Name, Identity: id,
				RefDigest: p.RunResult.Digest, DetectTime: p.RunResult.ExecTime,
				ProfileReused: true,
			}
			return nil
		}
		p, err := negativa.DetectUsage(w, maxSteps)
		if err != nil {
			return fmt.Errorf("dserve: detect %s: %w", w.Name, err)
		}
		s.Registry.Put(key, p)
		s.Counters.Add("registry.misses", 1)
		profiles[i] = p
		outcomes[i] = WorkloadOutcome{
			Name: w.Name, Identity: id,
			RefDigest: p.RunResult.Digest, DetectTime: p.RunResult.ExecTime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Union via the registry (the normal path); under extreme registry
	// churn a member just stored could already be evicted, in which case
	// the profiles held by this batch merge directly.
	ids := make([]string, len(outcomes))
	for i := range outcomes {
		ids[i] = outcomes[i].Identity
	}
	union, err := s.Registry.Union(fp, ids)
	if err != nil {
		union = negativa.MergeProfiles(profiles...)
	}
	// Safety invariant of union debloating: the union must cover every
	// member, or the compacted install would break that member.
	for i, p := range profiles {
		if !union.Covers(p) {
			return nil, fmt.Errorf("dserve: union profile does not cover %s", outcomes[i].Name)
		}
	}

	// Architectures: the union of every member's device set, so elements
	// needed by any member survive Reason-I removal.
	var devs []gpuarch.Device
	for i := range workloads {
		devs = append(devs, workloads[i].Devices...)
	}
	archs := negativa.DeviceArchs(devs)

	// ---- Location + compaction per library (parallel, two-tier
	// cache-backed: memory, then the content-addressed store) ----
	names := in.LibNames
	libs := make([]*negativa.LibraryReport, len(names))
	keys := make([]string, len(names))
	analyses := make([]time.Duration, len(names))
	hits := make([]bool, len(names))
	err = s.pool.Map(len(names), func(i int) error {
		name := names[i]
		lib := in.Library(name)
		key := CacheKey(lib, union.UsedFuncs[name], union.UsedKernels[name], archs)
		keys[i] = key
		if ld, ok := s.Cache.GetOrLoad(key, lib); ok {
			// The cached report may have been computed under a different
			// library name (identical bytes elsewhere); re-label a shallow
			// copy, sharing the immutable compacted image.
			rep := *ld.Report
			rep.Name = name
			libs[i] = &rep
			hits[i] = true
			return nil
		}
		ld, err := negativa.LocateAndCompactLib(lib, union.UsedFuncs[name], union.UsedKernels[name], archs)
		if err != nil {
			return fmt.Errorf("dserve: locate %s: %w", name, err)
		}
		// analysis.computed is the ground truth for "did this service ever
		// re-run locate/compact": the warm-restart tests assert it stays
		// zero when every result comes from memory or disk.
		s.Counters.Add("analysis.computed", 1)
		s.Cache.Put(key, ld)
		libs[i] = ld.Report
		analyses[i] = ld.Analysis
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &BatchResult{InstallFP: fp, Union: union, Workloads: outcomes, Libs: libs, libKeys: keys}
	res.byName = make(map[string]*negativa.LibraryReport, len(libs))
	for _, lr := range libs {
		res.byName[lr.Name] = lr
	}
	for i := range libs {
		if hits[i] {
			res.CacheHits++
		} else {
			res.CacheMisses++
			res.AnalysisTime += analyses[i]
		}
	}
	for i := range outcomes {
		if outcomes[i].ProfileReused {
			res.ProfileReuses++
		} else {
			res.DetectTime += outcomes[i].DetectTime
		}
	}

	// ---- Verification: the union-debloated install must reproduce every
	// member workload's reference digest. ----
	res.VerifySkipped = opt.SkipVerify
	if !opt.SkipVerify {
		clone, err := in.CloneWithLibs(res.DebloatedLibs())
		if err != nil {
			return nil, fmt.Errorf("dserve: clone install: %w", err)
		}
		err = s.pool.Map(len(workloads), func(i int) error {
			vw := workloads[i]
			vw.Install = clone
			vr, err := mlruntime.Run(vw, mlruntime.Options{MaxSteps: maxSteps})
			if err != nil {
				return fmt.Errorf("dserve: verify %s: %w", vw.Name, err)
			}
			res.Workloads[i].Verified = vr.Digest == res.Workloads[i].RefDigest
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	res.WallTime = time.Since(start)
	s.Counters.Add("batches.completed", 1)
	s.Timings.Observe("batch.wall", res.WallTime)
	return res, nil
}

// install returns the generated install for (framework, tailLibs),
// generating it at most once and sharing it across jobs — the fleet setting
// where many workloads target one shared install. The cache is bounded to
// MaxInstalls entries, evicted oldest-first; a job holding an evicted
// install keeps using it (installs are immutable), only the cache entry
// goes.
func (s *Service) install(framework string, tailLibs int) (*mlframework.Install, error) {
	key := fmt.Sprintf("%s/%d", framework, tailLibs)
	s.mu.Lock()
	slot := s.installs[key]
	if slot == nil {
		slot = &installSlot{}
		s.installs[key] = slot
		s.installOrder = append(s.installOrder, key)
		for len(s.installOrder) > s.cfg.MaxInstalls {
			oldest := s.installOrder[0]
			s.installOrder = s.installOrder[1:]
			delete(s.installs, oldest)
			s.Counters.Add("installs.evicted", 1)
		}
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		slot.in, slot.err = mlframework.Generate(mlframework.Config{Framework: framework, TailLibs: tailLibs})
		if slot.err == nil {
			s.Counters.Add("installs.generated", 1)
		}
	})
	return slot.in, slot.err
}

// fingerprint memoizes InstallFingerprint per install pointer — installs
// are immutable (the package's concurrency contract), so hashing the
// library bytes once per install is enough; warm batches skip the rehash.
func (s *Service) fingerprint(in *mlframework.Install) string {
	return s.fingerprints.get(in, func() any { return InstallFingerprint(in) }).(string)
}
