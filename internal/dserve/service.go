package dserve

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"negativaml/internal/bufpool"
	"negativaml/internal/castore"
	"negativaml/internal/cluster"
	"negativaml/internal/gpuarch"
	"negativaml/internal/ingest"
	"negativaml/internal/metrics"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
	"negativaml/internal/plan"
)

// stageObserver mirrors plan-node outcomes into the service's metrics:
// stage.<name>.hits / stage.<name>.misses counters and a stage.<name>
// timing series per stage.
type stageObserver struct {
	c *metrics.CounterSet
	t *metrics.TimingSet
}

// StageDone implements plan.Observer.
func (o stageObserver) StageDone(stage string, hit bool, wall time.Duration) {
	if hit {
		o.c.Add("stage."+stage+".hits", 1)
	} else {
		o.c.Add("stage."+stage+".misses", 1)
	}
	o.t.Observe("stage."+stage, wall)
}

// StageSource implements plan.SourceObserver: hits are additionally
// attributed to the tier that served them (stage.<name>.disk_hits for
// castore restores, stage.<name>.peer_hits for values a cluster peer
// served or executed) so /v1/metrics can show where reuse actually comes
// from.
func (o stageObserver) StageSource(stage string, src plan.Source, _ time.Duration) {
	switch src {
	case plan.SourceDisk:
		o.c.Add("stage."+stage+".disk_hits", 1)
	case plan.SourcePeer:
		o.c.Add("stage."+stage+".peer_hits", 1)
	}
}

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing tasks across all jobs
	// (default runtime.NumCPU()).
	Workers int
	// CacheBytes bounds the content-addressed result cache by retained
	// bytes (default 64 MiB). Entries are sparse — a zeroed-range set plus
	// the report — and each distinct original library image they reference
	// is charged once, so the bound covers everything the cache alone can
	// keep alive.
	CacheBytes int64
	// MaxSteps is the default detection/verification step cap applied when
	// a batch does not set one (default 4). Usage coverage saturates within
	// the first steps, so small caps keep service latency low.
	MaxSteps int
	// MaxJobs bounds retained terminal (done/failed) jobs — each completed
	// job holds its compacted library images (default 256). Running and
	// queued jobs are never evicted.
	MaxJobs int
	// MaxInstalls bounds the server-side generated-install cache
	// (default 16).
	MaxInstalls int
	// MaxInFlight bounds queued+running jobs; Submit returns ErrBusy
	// beyond it (default 64).
	MaxInFlight int
	// Store, when non-nil, is the disk-backed content-addressed store the
	// service persists through: the result cache gains a second tier,
	// detection profiles snapshot on Put and replay on boot, and completed
	// jobs spill their manifests and images so a restart serves them warm.
	Store *castore.Store
	// RepairInterval, when positive on a store-backed clustered node, runs
	// a background anti-entropy sweep (RepairNow) at that period: locally
	// held stage artifacts are stat-probed on their remote replica owners
	// and streamed wherever absent. Zero disables the loop; RepairNow stays
	// callable either way.
	RepairInterval time.Duration
	// DisableSparseWireV2 stops this node from advertising the compact v2
	// sparse wire codec on outgoing peer requests, so every response it
	// receives arrives in the v1 encoding. Responding in v2 is driven
	// purely by the requester's header, so this knob makes the node behave
	// exactly like a pre-v2 peer on the wire — the escape hatch (and the
	// interop test's old-node stand-in) if a mixed-version cluster
	// misbehaves.
	DisableSparseWireV2 bool
	// IngestRoot, when non-empty, enables ingestion-mode submissions
	// (JobRequest.IngestDir): requested directories resolve relative to
	// this root and are confined to it. Empty rejects ingestion requests —
	// a node never reads arbitrary paths unless its operator opted in.
	IngestRoot string
	// DisablePeerBatch turns the batched peer-lookup path off on both
	// sides of the wire: the node stops serving /v1/peer/lookup-batch
	// (answering the plain 404 an old node would) and stops issuing batch
	// prefetches of its own, degrading to per-key lookups. The escape
	// hatch (and the interop test's old-node stand-in) if a mixed-version
	// cluster misbehaves.
	DisablePeerBatch bool
}

// Service is the batch-debloat service core: the profile registry, the
// content-addressed result cache, the bounded worker pool, and the job
// table behind the HTTP front end.
type Service struct {
	cfg Config

	Registry *Registry
	Cache    *ResultCache
	Counters *metrics.CounterSet
	Timings  *metrics.TimingSet
	pool     *Pool
	store    *castore.Store
	cluster  *cluster.Cluster
	// peerSem bounds concurrently executing peer-route stage computations
	// (remote detects/compacts this node serves as owning shard) to the
	// same width as the worker pool. It is deliberately a separate
	// semaphore, not the pool: peer handlers compute purely locally while
	// holding a slot, so they can never participate in a cross-node wait
	// cycle the way sharing the pool with network-blocked batch stages
	// could.
	peerSem chan struct{}
	// stages routes every plan node's content key to its memo tier
	// (registry, result cache, bounded memory); observer mirrors stage
	// outcomes into the counter and timing sets.
	stages   *StageMemo
	observer plan.Observer

	// costMu/costs cache StageCost's per-stage medians (see StageCost).
	costMu sync.Mutex
	costs  map[string]stageCostEntry

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string
	seq          int
	installs     map[string]*installSlot
	installOrder []string
	closed       bool
	wg           sync.WaitGroup
	// replWG tracks in-flight write-back replication pushes (repair.go);
	// repairStop/repairWG manage the periodic anti-entropy loop.
	replWG     sync.WaitGroup
	repairStop chan struct{}
	repairWG   sync.WaitGroup

	// fingerprints memoizes InstallFingerprint per immutable *Install.
	fingerprints *boundedMemo
	// restoredLibs memoizes store-image parses per content digest, so
	// restored jobs sharing libraries (the dependency tail) parse each
	// image once.
	restoredLibs *boundedMemo
}

type installSlot struct {
	once sync.Once
	in   *mlframework.Install
	err  error
}

// NewService builds a service from the config, applying defaults.
func NewService(cfg Config) *Service {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.CacheBytes < 1 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 4
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = 256
	}
	if cfg.MaxInstalls < 1 {
		cfg.MaxInstalls = 16
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 64
	}
	counters := metrics.NewCounterSet()
	s := &Service{
		cfg:          cfg,
		Registry:     NewRegistry(),
		Cache:        NewResultCache(cfg.CacheBytes, counters),
		Counters:     counters,
		Timings:      metrics.NewTimingSet(),
		pool:         NewPool(cfg.Workers),
		jobs:         map[string]*Job{},
		installs:     map[string]*installSlot{},
		costs:        map[string]stageCostEntry{},
		fingerprints: newBoundedMemo(64),
		restoredLibs: newBoundedMemo(64),
		peerSem:      make(chan struct{}, cfg.Workers),
	}
	s.stages = NewStageMemo(s.Registry, s.Cache, counters)
	s.stages.AttachExecutor(s.pool)
	s.observer = stageObserver{c: counters, t: s.Timings}
	if cfg.Store != nil {
		// Warm-restart wiring: the cache gains its disk tier, the registry
		// replays its snapshotted profiles, and persisted job manifests
		// come back as lazily-materialized done jobs.
		s.store = cfg.Store
		s.Cache.AttachStore(cfg.Store)
		s.Registry.AttachStore(cfg.Store)
		if n := s.Registry.Replay(); n > 0 {
			counters.Add("registry.replayed", int64(n))
		}
		s.restoreJobs()
	}
	return s
}

// Store returns the attached content-addressed store, or nil.
func (s *Service) Store() *castore.Store { return s.store }

// AttachCluster joins the service to a dserve peer group: detect and
// compact stages gain the owning-peer memo tier, the /v1/peer/* routes
// start answering with this node's tiers, and /v1/metrics grows the peer
// section. Call before serving; the service never detaches a cluster.
func (s *Service) AttachCluster(c *cluster.Cluster) {
	s.cluster = c
	s.stages.AttachCluster(c)
	s.stages.AttachReplicator(s.replicateResult)
	if s.cfg.DisablePeerBatch {
		s.stages.DisableBatching()
	}
	// Advertise the compact sparse wire codec on every outgoing peer
	// request. Decoding is unconditional (DecodeSparseImage sniffs the
	// magic), so the knob only controls what peers are invited to send.
	if !s.cfg.DisableSparseWireV2 {
		c.SetHeader(SparseCodecHeader, sparseCodecV2)
	}
	if s.store != nil && s.cfg.RepairInterval > 0 {
		s.repairStop = make(chan struct{})
		s.repairWG.Add(1)
		go s.repairLoop(s.repairStop)
	}
}

// Cluster returns the attached peer group, or nil for a standalone node.
func (s *Service) Cluster() *cluster.Cluster { return s.cluster }

// Workers returns the pool's concurrency bound.
func (s *Service) Workers() int { return s.pool.Workers() }

// Close drains the service: no new submissions are accepted and Close
// returns once every running job has finished, every write-back
// replication push has settled, and every write-behind cache spill has
// reached the store — so a store closed after Close holds everything the
// memory tier ever took. An attached cluster's membership plane stops too
// (without announcing a leave; use LeaveCluster first for graceful
// departure).
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	stop := s.repairStop
	s.repairStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.repairWG.Wait()
	s.wg.Wait()
	s.replWG.Wait()
	s.Cache.CloseSpill()
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// WorkloadIdentity canonically identifies a workload configuration for
// profile reuse — everything that shapes what detection observes. The
// implementation lives with the stage-key derivations in
// internal/negativa; this re-export keeps the serving plane's public API.
func WorkloadIdentity(w mlruntime.Workload, maxSteps int) string {
	return negativa.WorkloadIdentity(w, maxSteps)
}

// BatchOptions configure one multi-workload debloat batch.
type BatchOptions struct {
	// MaxSteps caps detection and verification runs: 0 applies the service
	// default, a negative value runs the full dataset uncapped.
	MaxSteps int
	// SkipVerify skips the per-member verification re-runs.
	SkipVerify bool
	// Base, when non-nil, makes the batch incremental: the member set must
	// be a superset of the base batch's (by workload identity) on the same
	// install with the same step cap and verification mode. Base members'
	// verification outcomes carry over — the superset union retains
	// everything the base union did, so base members stay verified by
	// construction — and only fresh members re-run; unchanged libraries
	// absorb through their unchanged stage keys.
	Base *BatchResult
	// BaseID labels the base batch (the base job's ID) for reporting.
	BaseID string
	// Specs, when non-nil and parallel to the workload slice, carries the
	// batch's workload specs plus the install config — everything an
	// owning peer needs to re-execute a detect stage remotely (peers
	// regenerate the install from Framework/TailLibs, which is
	// deterministic, and pin it by fingerprint). The HTTP layer fills it
	// from the job request; library callers may leave it nil, in which
	// case detect stages compute locally on a cluster read-through miss.
	Specs *BatchSpecs
	// Observer, when non-nil, additionally receives this batch's per-stage
	// outcomes (alongside the service's global metrics observer) — the hook
	// job progress streams and the gateway's stage-seconds accounting hang
	// off.
	Observer plan.Observer
	// OnPlanned, when non-nil, is called once with the batch's total stage
	// count after the graph is built and before any stage executes — the
	// denominator for progress reporting.
	OnPlanned func(totalStages int)
}

// BatchSpecs is the serializable description of a batch, used by the
// cluster peer tier to re-execute detect stages on their owning shard.
type BatchSpecs struct {
	Framework string
	TailLibs  int
	// Workloads is parallel to the batch's workload slice.
	Workloads []WorkloadSpec
}

// IncrementalStats summarizes what an incremental batch absorbed from its
// base.
type IncrementalStats struct {
	// BaseID is the base job this batch extended.
	BaseID string `json:"base_id"`
	// AbsorbedLibs counts libraries whose compact-stage key matches a base
	// library's — the union delta left them untouched. DeltaLibs counts the
	// rest (their locate/compact stages were re-resolved, hitting the memo
	// only if some other batch already computed them).
	AbsorbedLibs int `json:"absorbed_libs"`
	DeltaLibs    int `json:"delta_libs"`
	// CarriedVerifications counts base members whose verification outcome
	// carried over without a re-run.
	CarriedVerifications int `json:"carried_verifications"`
}

// WorkloadOutcome is one member workload's slice of a batch result.
type WorkloadOutcome struct {
	Name     string
	Identity string
	// RefDigest is the workload's reference output digest from its profiled
	// run; Verified reports whether the union-debloated install reproduced
	// it.
	RefDigest uint64
	Verified  bool
	// DetectTime is the profiled run's virtual time. ProfileReused marks
	// profiles served from the registry (no run executed in this batch).
	DetectTime    time.Duration
	ProfileReused bool
}

// BatchResult is the output of one union-debloat batch: one set of
// compacted libraries serving every member workload.
type BatchResult struct {
	// InstallFP is the install fingerprint the batch ran against.
	InstallFP string
	// Union is the merged profile the libraries were debloated against.
	Union *negativa.Profile
	// Workloads holds per-member outcomes in submission order.
	Workloads []WorkloadOutcome
	// Libs holds one report per library in install load order.
	Libs []*negativa.LibraryReport
	// byName indexes Libs by name, built once when the batch assembles its
	// reports (Lib falls back to a scan for hand-built results).
	byName map[string]*negativa.LibraryReport

	// DetectTime sums the virtual profiled-run times of freshly detected
	// members (registry hits cost nothing); AnalysisTime sums virtual
	// locate+compact time of cache misses (hits cost nothing). Their sum is
	// the batch's virtual end-to-end debloating cost.
	DetectTime   time.Duration
	AnalysisTime time.Duration
	// CacheHits / CacheMisses count this batch's per-library cache
	// outcomes; ProfileReuses counts members served from the registry.
	CacheHits     int
	CacheMisses   int
	ProfileReuses int
	// libKeys holds the content-address (CacheKey) of each entry of Libs,
	// parallel to it — the references a persisted job manifest records.
	// Empty for hand-built results, which then cannot be persisted.
	libKeys []string
	// Incremental summarizes base absorption; nil for full batches.
	Incremental *IncrementalStats
	// VerifySkipped records that the batch ran with SkipVerify: no member
	// Verified flag carries information.
	VerifySkipped bool
	// WallTime is the real elapsed time of the batch.
	WallTime time.Duration
	// PeerRoundTrips counts the peer read-path round trips this batch's
	// execution window observed (taken from the peer.round_trips counter
	// delta, so concurrent batches on one node see each other's trips).
	// Zero for standalone nodes and fully local batches.
	PeerRoundTrips int64
}

// EndToEnd is the batch's virtual debloating time (the paper's Table 8
// metric, extended to batches).
func (r *BatchResult) EndToEnd() time.Duration { return r.DetectTime + r.AnalysisTime }

// RetainedBytes sums the batch's debloated library image bytes — what a
// node keeps in memory (and a front-door result quota charges) while the
// job is retained.
func (r *BatchResult) RetainedBytes() int64 {
	var n int64
	for _, lr := range r.Libs {
		if lr.Sparse != nil {
			n += lr.Sparse.Len()
		}
	}
	return n
}

// DebloatedLibs materializes the compacted images keyed by library name.
// Images are built lazily at call time; batch results and cache entries
// only hold sparse range sets.
func (r *BatchResult) DebloatedLibs() map[string][]byte {
	out := make(map[string][]byte, len(r.Libs))
	for _, lr := range r.Libs {
		out[lr.Name] = lr.Debloated()
	}
	return out
}

// Lib returns the report for the named library, or nil.
func (r *BatchResult) Lib(name string) *negativa.LibraryReport {
	if r.byName != nil {
		return r.byName[name]
	}
	for _, lr := range r.Libs {
		if lr.Name == name {
			return lr
		}
	}
	return nil
}

// Aggregate sums the per-library reports (one Table 2 row for the union).
func (r *BatchResult) Aggregate() negativa.Totals {
	return (&negativa.Result{Libs: r.Libs}).Aggregate()
}

// AllVerified reports whether every member workload reproduced its
// reference digest (vacuously true when verification was skipped).
func (r *BatchResult) AllVerified() bool {
	if r.VerifySkipped {
		return true
	}
	for i := range r.Workloads {
		if !r.Workloads[i].Verified {
			return false
		}
	}
	return true
}

// DebloatBatch union-debloats one install against a workload set by
// executing the analysis stage graph: per-member detect nodes feed a union
// node, the union feeds per-library locate and compact nodes, and the
// compacted set feeds per-member verification nodes — every stage
// content-keyed and memoized through the service's tiers (registry,
// byte-bounded cache, content-addressed store). With opt.Base set the
// batch is incremental: base members' verifications carry over and only
// the union delta recomputes. Every workload must reference in as its
// install.
func (s *Service) DebloatBatch(in *mlframework.Install, workloads []mlruntime.Workload, opt BatchOptions) (*BatchResult, error) {
	start := time.Now()
	if in == nil {
		return nil, errors.New("dserve: nil install")
	}
	if len(workloads) == 0 {
		return nil, errors.New("dserve: batch has no workloads")
	}
	for i := range workloads {
		if workloads[i].Install != in {
			return nil, fmt.Errorf("dserve: workload %q does not reference the batch install", workloads[i].Name)
		}
	}
	maxSteps := s.effectiveSteps(opt.MaxSteps)
	fp := s.fingerprint(in)

	ids := make([]string, len(workloads))
	for i := range workloads {
		ids[i] = WorkloadIdentity(workloads[i], maxSteps)
	}

	// Incremental pre-flight: the base must cover this batch's install and
	// verification mode, and every base member must reappear (identity-
	// compared) — a shrunken set would silently drop coverage.
	carried := make([]bool, len(workloads))
	baseVerified := map[string]bool{}
	if opt.Base != nil {
		base := opt.Base
		if base.InstallFP != fp {
			return nil, fmt.Errorf("dserve: incremental base ran against install %.12s…, not %.12s…", base.InstallFP, fp)
		}
		if base.VerifySkipped != opt.SkipVerify {
			return nil, errors.New("dserve: incremental batch verification mode differs from its base")
		}
		newIDs := make(map[string]bool, len(ids))
		for _, id := range ids {
			newIDs[id] = true
		}
		for i := range base.Workloads {
			o := &base.Workloads[i]
			if !newIDs[o.Identity] {
				return nil, fmt.Errorf("dserve: incremental batch is not a superset of its base: member %q missing", o.Name)
			}
			baseVerified[o.Identity] = o.Verified
		}
		if !opt.SkipVerify {
			for i, id := range ids {
				if _, ok := baseVerified[id]; ok {
					// The superset union retains everything the base union
					// did, so base members stay verified by construction;
					// their recorded outcome carries over without a re-run.
					carried[i] = true
				}
			}
		}
	}

	// Architectures: the union of every member's device set, so elements
	// needed by any member survive Reason-I removal.
	var devs []gpuarch.Device
	for i := range workloads {
		devs = append(devs, workloads[i].Devices...)
	}
	archs := negativa.DeviceArchs(devs)
	names := in.LibNames

	// ---- Stage graph ----
	g := plan.New()

	// Hot-path prefetch: with a cluster attached, a single unkeyed node
	// batches every detect key the graph will need into grouped
	// lookup-batch round trips (one per remote replica set) before the
	// detect nodes consult the memo — collapsing the peer-warm batch's
	// per-key lookups into a handful of scatter-gather calls. The node is
	// glue, not a stage: found profiles land in the registry, clean misses
	// are marked so detect nodes skip their own probe.
	// markKeys scopes the prefetch outcome marks (prefetched / missed) to
	// this batch: stage nodes consume their marks on the happy path, but a
	// batch aborting between prefetch and consumption must not leave stale
	// entries in the service-wide memo. The compact prefetch node appends
	// its keys during execution; ExecuteWith waits for every node before
	// returning, so the deferred clear observes the final slice.
	var markKeys []plan.Key
	defer func() { s.stages.clearMarks(markKeys) }()

	var detectDeps []*plan.Node
	if s.cluster != nil {
		items := make([]prefetchItem, len(workloads))
		for i := range workloads {
			items[i] = prefetchItem{key: negativa.DetectKey(fp, ids[i])}
			markKeys = append(markKeys, items[i].key)
		}
		pf := g.Node("prefetch", nil, nil, func([]any) (any, error) {
			s.stages.PrefetchLookups(items)
			return nil, nil
		})
		detectDeps = []*plan.Node{pf}
	}

	// Detection: one node per member, memoized in the profile registry.
	// With specs attached, each node also carries the hint the cluster
	// tier needs to execute the stage on its owning shard.
	detects := make([]*plan.Node, len(workloads))
	for i := range workloads {
		i := i
		w := workloads[i]
		detects[i] = g.Node(negativa.StageDetect, detectDeps, plan.StaticKey(negativa.DetectKey(fp, ids[i])), func([]any) (any, error) {
			p, err := negativa.DetectUsage(w, maxSteps)
			if err != nil {
				return nil, fmt.Errorf("dserve: detect %s: %w", w.Name, err)
			}
			return p, nil
		})
		if opt.Specs != nil && i < len(opt.Specs.Workloads) {
			detects[i].WithHint(&detectHint{
				framework: opt.Specs.Framework,
				tailLibs:  opt.Specs.TailLibs,
				maxSteps:  maxSteps,
				spec:      opt.Specs.Workloads[i],
			})
		}
	}

	// Union: unkeyed glue — merging sorted symbol lists is far cheaper
	// than addressing the result. Preference goes to the registry's union
	// (the normal path); under extreme registry churn a member just stored
	// could already be evicted, in which case the profiles held by this
	// batch merge directly.
	unionNode := g.Node("union", detects, nil, func(deps []any) (any, error) {
		ps := make([]*negativa.Profile, len(deps))
		for i := range deps {
			ps[i] = deps[i].(*negativa.Profile)
		}
		union, err := s.Registry.Union(fp, ids)
		if err != nil {
			union = negativa.MergeProfiles(ps...)
		}
		// Safety invariant of union debloating: the union must cover every
		// member, or the compacted install would break that member.
		for i, p := range ps {
			if !union.Covers(p) {
				return nil, fmt.Errorf("dserve: union profile does not cover %s", workloads[i].Name)
			}
		}
		return union, nil
	})

	// Compact-key prefetch: compact keys are derivable from the union
	// alone (CompactKey is its locate key's image), so as soon as the
	// union resolves one glue node batches every compact key into grouped
	// lookup-batch round trips — overlapping the network reads with the
	// local lib-index/locate work the compact nodes also wait on.
	compactPrefetchDeps := []*plan.Node(nil)
	if s.cluster != nil {
		pfc := g.Node("prefetch", []*plan.Node{unionNode}, nil, func(deps []any) (any, error) {
			u := deps[0].(*negativa.Profile)
			items := make([]prefetchItem, 0, len(names))
			for _, name := range names {
				lib := in.Library(name)
				items = append(items, prefetchItem{
					key:  negativa.CompactKey(negativa.LocateKey(lib, u.UsedFuncs[name], u.UsedKernels[name], archs)),
					hint: lib,
				})
				markKeys = append(markKeys, items[len(items)-1].key)
			}
			s.stages.PrefetchLookups(items)
			return nil, nil
		})
		compactPrefetchDeps = []*plan.Node{pfc}
	}

	// Location + compaction: per-library node pairs. Locate keys resolve
	// late from the union's used-symbol sets; compact keys derive from
	// their locate key, landing in the two-tier result cache (memory, then
	// the content-addressed store, decoded against the live library hint).
	locates := make([]*plan.Node, len(names))
	compacts := make([]*plan.Node, len(names))
	for i, name := range names {
		i, name := i, name
		lib := in.Library(name)
		idxNode := g.Node(negativa.StageLibIndex, nil, plan.StaticKey(negativa.LibIndexKey(lib)), func([]any) (any, error) {
			return lib.Index(), nil
		})
		locates[i] = g.Node(negativa.StageLocate, []*plan.Node{unionNode, idxNode}, func(deps []any) (plan.Key, error) {
			u := deps[0].(*negativa.Profile)
			return negativa.LocateKey(lib, u.UsedFuncs[name], u.UsedKernels[name], archs), nil
		}, func(deps []any) (any, error) {
			// The memoized value is a lazy handle (the canonical locate-
			// stage value type): symbol-to-range resolution runs only when
			// a compact miss forces it, so compact results served from
			// memory or disk skip location entirely. Capture just the
			// used-symbol slices — the handle outlives this batch in the
			// service-wide memo, and closing over the union profile would
			// pin it there.
			u := deps[0].(*negativa.Profile)
			uf, uk := u.UsedFuncs[name], u.UsedKernels[name]
			return negativa.NewLocationHandle(func() (*negativa.LibLocation, error) {
				// locate.resolved counts real symbol-to-range resolutions
				// (forced handles), as opposed to stage.locate.misses,
				// which counts handle creations.
				s.Counters.Add("locate.resolved", 1)
				return negativa.LocateLib(lib, uf, uk, archs)
			}), nil
		})
		// The compact hint starts as just the live library; its key
		// function — which runs after the union resolves, before the memo
		// is consulted — fills in the union-derived inputs the cluster
		// tier needs to re-execute the stage on its owning shard.
		ch := &compactHint{lib: lib, archs: archs}
		compacts[i] = g.Node(negativa.StageCompact, append([]*plan.Node{unionNode, locates[i]}, compactPrefetchDeps...), func(deps []any) (plan.Key, error) {
			u := deps[0].(*negativa.Profile)
			ch.usedFuncs, ch.usedKernels = u.UsedFuncs[name], u.UsedKernels[name]
			return negativa.CompactKey(locates[i].ResolvedKey()), nil
		}, func(deps []any) (any, error) {
			u := deps[0].(*negativa.Profile)
			ll, err := deps[1].(*negativa.LocationHandle).Force()
			if err != nil {
				return nil, fmt.Errorf("dserve: locate %s: %w", name, err)
			}
			// analysis.computed is the ground truth for "did this service
			// ever re-run locate/compact": the warm-restart tests assert it
			// stays zero when every result comes from memory or disk.
			s.Counters.Add("analysis.computed", 1)
			return negativa.CompactLocated(lib, ll, u.UsedFuncs[name], u.UsedKernels[name]), nil
		}).WithHint(ch)
	}

	// Verification: the union-debloated install must reproduce every
	// member's reference digest. Verify nodes are deliberately unmemoized —
	// a resubmitted batch re-validates what the service hands out; only an
	// explicit incremental base carries outcomes over.
	verifies := make([]*plan.Node, len(workloads))
	// Pooled scratch backing the verify clone's materialized libraries. The
	// clone node (single, unmemoized) fills it; nothing aliases the buffers
	// once Execute returns — verify values are scalar Results — so they are
	// recycled on every exit path.
	var cloneBufs [][]byte
	defer func() {
		for _, b := range cloneBufs {
			bufpool.Put(b)
		}
	}()
	if !opt.SkipVerify {
		fresh := 0
		for i := range workloads {
			if !carried[i] {
				fresh++
			}
		}
		if fresh > 0 {
			cloneNode := g.Node("clone", compacts, nil, func(deps []any) (any, error) {
				debloated := make(map[string][]byte, len(deps))
				for i, d := range deps {
					// Materialize the verify clone's library images into
					// pooled scratch: the clone only lives until the verify
					// nodes finish, so the buffers go back to the pool at the
					// end of this batch instead of becoming per-batch garbage.
					sp := d.(*negativa.LibDebloat).Report.Sparse
					buf := bufpool.Get(int(sp.Len()))
					cloneBufs = append(cloneBufs, buf)
					debloated[names[i]] = sp.MaterializeInto(buf)
				}
				clone, err := in.CloneWithLibs(debloated)
				if err != nil {
					return nil, fmt.Errorf("dserve: clone install: %w", err)
				}
				return clone, nil
			})
			for i := range workloads {
				if carried[i] {
					continue
				}
				i := i
				verifies[i] = g.Node(negativa.StageVerifyRun, []*plan.Node{cloneNode}, nil, func(deps []any) (any, error) {
					vw := workloads[i]
					vw.Install = deps[0].(*mlframework.Install)
					vr, err := mlruntime.Run(vw, mlruntime.Options{MaxSteps: maxSteps})
					if err != nil {
						return nil, fmt.Errorf("dserve: verify %s: %w", vw.Name, err)
					}
					return vr, nil
				})
			}
		}
	}

	if opt.OnPlanned != nil {
		opt.OnPlanned(g.Len())
	}
	rt0 := s.Counters.Get("peer.round_trips")
	if err := g.ExecuteWith(s.pool, s.stages, plan.MultiObserver(s.observer, opt.Observer), plan.ExecOptions{Costs: s}); err != nil {
		return nil, err
	}

	// ---- Assembly ----
	outcomes := make([]WorkloadOutcome, len(workloads))
	for i := range workloads {
		p := detects[i].Value().(*negativa.Profile)
		outcomes[i] = WorkloadOutcome{
			Name: workloads[i].Name, Identity: ids[i],
			RefDigest: p.RunResult.Digest, DetectTime: p.RunResult.ExecTime,
			ProfileReused: detects[i].Hit(),
		}
		switch {
		case carried[i]:
			outcomes[i].Verified = baseVerified[ids[i]]
		case verifies[i] != nil:
			outcomes[i].Verified = verifies[i].Value().(*mlruntime.Result).Digest == p.RunResult.Digest
		}
	}

	union := unionNode.Value().(*negativa.Profile)
	res := &BatchResult{InstallFP: fp, Union: union, Workloads: outcomes, VerifySkipped: opt.SkipVerify}
	res.byName = make(map[string]*negativa.LibraryReport, len(names))
	for i, name := range names {
		ld := compacts[i].Value().(*negativa.LibDebloat)
		rep := ld.Report
		if rep.Name != name {
			// The memoized report may have been computed under a different
			// library name (identical bytes elsewhere); re-label a shallow
			// copy, sharing the immutable compacted image.
			relabeled := *rep
			relabeled.Name = name
			rep = &relabeled
		}
		res.Libs = append(res.Libs, rep)
		res.libKeys = append(res.libKeys, compacts[i].ResolvedKey().Hash)
		res.byName[rep.Name] = rep
		if compacts[i].Hit() {
			res.CacheHits++
		} else {
			res.CacheMisses++
			res.AnalysisTime += ld.Analysis
		}
	}
	for i := range outcomes {
		if outcomes[i].ProfileReused {
			res.ProfileReuses++
		} else {
			res.DetectTime += outcomes[i].DetectTime
		}
	}
	if opt.Base != nil {
		inc := &IncrementalStats{BaseID: opt.BaseID}
		baseKeys := make(map[string]bool, len(opt.Base.libKeys))
		for _, k := range opt.Base.libKeys {
			baseKeys[k] = true
		}
		for _, k := range res.libKeys {
			if baseKeys[k] {
				inc.AbsorbedLibs++
			} else {
				inc.DeltaLibs++
			}
		}
		for i := range carried {
			if carried[i] {
				inc.CarriedVerifications++
			}
		}
		res.Incremental = inc
		s.Counters.Add("batches.incremental", 1)
		s.Counters.Add("incremental.absorbed_libs", int64(inc.AbsorbedLibs))
		s.Counters.Add("incremental.delta_libs", int64(inc.DeltaLibs))
		s.Counters.Add("incremental.carried_verifications", int64(inc.CarriedVerifications))
	}

	res.WallTime = time.Since(start)
	res.PeerRoundTrips = s.Counters.Get("peer.round_trips") - rt0
	s.Counters.Add("batches.completed", 1)
	s.Timings.Observe("batch.wall", res.WallTime)
	return res, nil
}

// StageCost implements plan.CostModel from the service's measured
// stage-timing history: a stage's expected cost is the median of its
// recent wall times, so critical-path dispatch weights nodes by what this
// node actually observed, not a static guess. Unmeasured stages return
// zero (unit weight — chain depth still orders them).
//
// Summary sorts the series' whole sample window, and the DAG scheduler
// asks per node per batch, so the median is cached and recomputed only
// after the series has grown by stageCostRefresh observations — dispatch
// priorities need the right order of magnitude, not the latest sample.
func (s *Service) StageCost(stage string) time.Duration {
	name := "stage." + stage
	n := s.Timings.Total(name)
	s.costMu.Lock()
	e, ok := s.costs[name]
	s.costMu.Unlock()
	if ok && n-e.at < stageCostRefresh {
		return e.cost
	}
	cost := time.Duration(s.Timings.Summary(name).P50 * float64(time.Millisecond))
	s.costMu.Lock()
	s.costs[name] = stageCostEntry{at: n, cost: cost}
	s.costMu.Unlock()
	return cost
}

// stageCostRefresh is how many new observations a stage-timing series
// accumulates before StageCost re-derives its cached median.
const stageCostRefresh = 64

type stageCostEntry struct {
	at   int64
	cost time.Duration
}

// install returns the generated install for (framework, tailLibs),
// generating it at most once and sharing it across jobs — the fleet setting
// where many workloads target one shared install. The cache is bounded to
// MaxInstalls entries, evicted oldest-first; a job holding an evicted
// install keeps using it (installs are immutable), only the cache entry
// goes.
func (s *Service) install(framework string, tailLibs int) (*mlframework.Install, error) {
	key := fmt.Sprintf("%s/%d", framework, tailLibs)
	s.mu.Lock()
	slot := s.installs[key]
	if slot == nil {
		slot = &installSlot{}
		s.installs[key] = slot
		s.installOrder = append(s.installOrder, key)
		for len(s.installOrder) > s.cfg.MaxInstalls {
			oldest := s.installOrder[0]
			s.installOrder = s.installOrder[1:]
			delete(s.installs, oldest)
			s.Counters.Add("installs.evicted", 1)
		}
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		slot.in, slot.err = mlframework.Generate(mlframework.Config{Framework: framework, TailLibs: tailLibs})
		if slot.err == nil {
			s.Counters.Add("installs.generated", 1)
		}
	})
	return slot.in, slot.err
}

// ingestInstall resolves an ingestion-mode request directory against the
// configured IngestRoot and materializes the tree as an install. Paths are
// confined to the root: the join is cleaned and must stay inside it (ingest
// itself never follows symlinked directories, so a link cannot tunnel out
// either). Every submit re-reads the tree — on-disk contents may change
// between submissions, and an unchanged tree re-converges through its
// content-derived fingerprint and stage keys rather than a path-keyed cache.
func (s *Service) ingestInstall(rel string) (*mlframework.Install, error) {
	root := s.cfg.IngestRoot
	if root == "" {
		return nil, errors.New("dserve: ingestion is disabled on this node (no ingest root configured)")
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("dserve: ingest root: %w", err)
	}
	dir := filepath.Join(absRoot, rel)
	if dir != absRoot && !strings.HasPrefix(dir, absRoot+string(filepath.Separator)) {
		return nil, fmt.Errorf("dserve: ingest_dir %q escapes the ingest root", rel)
	}
	res, err := ingest.Tree(dir, ingest.Options{})
	if err != nil {
		return nil, fmt.Errorf("dserve: ingest %s: %w", rel, err)
	}
	in, err := res.Install()
	if err != nil {
		return nil, fmt.Errorf("dserve: ingest %s: %w", rel, err)
	}
	s.Counters.Add("ingests.trees", 1)
	s.Counters.Add("ingests.libraries", int64(len(in.LibNames)))
	return in, nil
}

// fingerprint memoizes InstallFingerprint per install pointer — installs
// are immutable (the package's concurrency contract), so hashing the
// library bytes once per install is enough; warm batches skip the rehash.
func (s *Service) fingerprint(in *mlframework.Install) string {
	return s.fingerprints.get(in, func() any { return InstallFingerprint(in) }).(string)
}
