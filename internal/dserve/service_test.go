package dserve

import (
	"strings"
	"testing"
	"time"

	"negativaml/internal/mlruntime"
)

func TestDebloatBatchUnionVerifiesAndCaches(t *testing.T) {
	in := testInstall(t)
	ws := testWorkloads(t, in)
	svc := NewService(Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()

	res, err := svc.DebloatBatch(in, ws, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 4 || len(res.Libs) != len(in.LibNames) {
		t.Fatalf("result shape: %d workloads, %d libs", len(res.Workloads), len(res.Libs))
	}
	for _, o := range res.Workloads {
		if !o.Verified {
			t.Errorf("workload %s not verified against the union-debloated install", o.Name)
		}
		if o.ProfileReused {
			t.Errorf("workload %s claims profile reuse on a cold registry", o.Name)
		}
	}
	if res.CacheHits != 0 || res.CacheMisses != len(in.LibNames) {
		t.Errorf("cold batch cache hits/misses = %d/%d, want 0/%d", res.CacheHits, res.CacheMisses, len(in.LibNames))
	}
	if res.DetectTime <= 0 || res.AnalysisTime <= 0 || res.EndToEnd() != res.DetectTime+res.AnalysisTime {
		t.Errorf("timing accounting: detect=%v analysis=%v e2e=%v", res.DetectTime, res.AnalysisTime, res.EndToEnd())
	}
	agg := res.Aggregate()
	if agg.FileReductionPct() <= 0 {
		t.Error("union debloat should still remove bloat")
	}
	// The union keeps at least as much as any single member's debloat.
	for _, lr := range res.Libs {
		if lr.FuncKept > lr.FuncCount || lr.ElemKept > lr.ElemCount {
			t.Errorf("%s: kept more than exists", lr.Name)
		}
	}

	// Repeated batch: every profile and every library result is reused.
	res2, err := svc.DebloatBatch(in, ws, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ProfileReuses != 4 {
		t.Errorf("profile reuses = %d, want 4", res2.ProfileReuses)
	}
	if res2.CacheHits < 1 {
		t.Error("repeated batch must report at least one cache hit")
	}
	if res2.CacheHits != len(in.LibNames) || res2.CacheMisses != 0 {
		t.Errorf("warm batch cache hits/misses = %d/%d, want %d/0", res2.CacheHits, res2.CacheMisses, len(in.LibNames))
	}
	if res2.DetectTime != 0 || res2.AnalysisTime != 0 {
		t.Errorf("warm batch virtual cost = %v+%v, want 0 (everything reused)", res2.DetectTime, res2.AnalysisTime)
	}
	if !res2.AllVerified() {
		t.Error("warm batch must still verify every member")
	}
	if svc.Counters.Get("registry.hits") != 4 || svc.Counters.Get("cache.hits") < int64(len(in.LibNames)) {
		t.Errorf("service counters: %v", svc.Counters.Snapshot())
	}

	// A subset batch rides the same cache when its union matches nothing —
	// different union symbols ⇒ misses for GPU-hosting libs, but identical
	// tail libs (same bytes, same — empty — used sets) still hit.
	res3, err := svc.DebloatBatch(in, ws[:1], BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHits == 0 {
		t.Error("subset batch should hit cached tail-library results")
	}
}

func TestDebloatBatchSkipVerify(t *testing.T) {
	in := testInstall(t)
	ws := testWorkloads(t, in)
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()

	res, err := svc.DebloatBatch(in, ws[:1], BatchOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.VerifySkipped {
		t.Error("result must record that verification was skipped")
	}
	if !res.AllVerified() {
		t.Error("AllVerified is vacuously true when verification was skipped")
	}
}

func TestJobRetentionBounded(t *testing.T) {
	svc := NewService(Config{Workers: 2, MaxSteps: 2, MaxJobs: 2})
	defer svc.Close()

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  2,
		Workloads: []WorkloadSpec{{Model: "MobileNetV2"}},
		MaxSteps:  2,
	}
	var last string
	for i := 0; i < 4; i++ {
		job, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.WaitJob(job.ID, 60*time.Second); err != nil {
			t.Fatal(err)
		}
		last = job.ID
	}
	jobs := svc.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2 (MaxJobs)", len(jobs))
	}
	if jobs[len(jobs)-1].ID != last {
		t.Errorf("newest job %s must survive pruning, got %v", last, jobs)
	}
	if svc.Counters.Get("jobs.evicted") != 2 {
		t.Errorf("jobs.evicted = %d, want 2", svc.Counters.Get("jobs.evicted"))
	}
	if svc.Job(last) == nil {
		t.Error("latest job must still be fetchable")
	}
}

func TestDebloatBatchValidation(t *testing.T) {
	in := testInstall(t)
	ws := testWorkloads(t, in)
	svc := NewService(Config{Workers: 2, MaxSteps: 2})
	defer svc.Close()

	if _, err := svc.DebloatBatch(in, nil, BatchOptions{}); err == nil {
		t.Error("empty batch must fail")
	}
	if _, err := svc.DebloatBatch(nil, ws, BatchOptions{}); err == nil {
		t.Error("nil install must fail")
	}

	// A workload referencing a different install must be rejected — mixing
	// installs in one batch would debloat against the wrong bytes.
	foreign, err := svc.install("PyTorch", 3)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]mlruntime.Workload(nil), ws...)
	mixed[1].Install = foreign
	if _, err := svc.DebloatBatch(in, mixed, BatchOptions{}); err == nil || !strings.Contains(err.Error(), "does not reference") {
		t.Errorf("mixed-install batch: %v", err)
	}
}

func TestSubmitJobLifecycle(t *testing.T) {
	svc := NewService(Config{Workers: 4, MaxSteps: 2})
	defer svc.Close()

	req := JobRequest{
		Framework: "pytorch",
		TailLibs:  4,
		Workloads: []WorkloadSpec{
			{Model: "MobileNetV2"},
			{Model: "Transformer", Train: true, Batch: 128},
		},
		MaxSteps: 2,
	}
	job, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.WaitJob(job.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone {
		t.Fatalf("job state = %s (%s)", done.State, done.Err)
	}
	if !done.Result.AllVerified() {
		t.Error("job result must verify")
	}
	if got := svc.Counters.Get("jobs.completed"); got != 1 {
		t.Errorf("jobs.completed = %d", got)
	}
	if list := svc.Jobs(); len(list) != 1 || list[0].ID != job.ID {
		t.Errorf("job listing = %v", list)
	}

	// Bad submissions are rejected synchronously.
	if _, err := svc.Submit(JobRequest{Framework: "caffe", Workloads: req.Workloads}); err == nil {
		t.Error("unknown framework must be rejected")
	}
	if _, err := svc.Submit(JobRequest{Framework: "pytorch"}); err == nil {
		t.Error("empty workload list must be rejected")
	}
	if _, err := svc.Submit(JobRequest{Framework: "pytorch", Workloads: []WorkloadSpec{{Model: "ResNet"}}}); err == nil {
		t.Error("unknown model must be rejected")
	}
	if _, err := svc.Submit(JobRequest{Framework: "pytorch", Workloads: []WorkloadSpec{{Model: "MobileNetV2", Device: "TPU"}}}); err == nil {
		t.Error("unknown device must be rejected")
	}

	// After Close, submissions are refused.
	svc.Close()
	if _, err := svc.Submit(req); err == nil || !strings.Contains(err.Error(), "shut down") {
		t.Errorf("submit after close: %v", err)
	}
}
