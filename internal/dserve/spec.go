package dserve

import (
	"fmt"
	"strings"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
)

// JobRequest describes a submitted batch: the install to generate (or reuse
// server-side) and the member workloads to union-debloat against it.
type JobRequest struct {
	// Framework is pytorch, tensorflow, vllm, or transformers
	// (case-insensitive). Empty when IngestDir is set — the framework then
	// comes from the tree's manifest.
	Framework string `json:"framework,omitempty"`
	// TailLibs sizes the install's dependency tail. Must be zero when
	// IngestDir is set — an ingested tree's library set is what it is.
	TailLibs int `json:"tail_libs,omitempty"`
	// IngestDir, when set, selects ingestion mode: instead of generating an
	// install server-side, the service ingests the on-disk tree at this
	// path — relative to the node's configured IngestRoot — and debloats
	// that. Mutually exclusive with Framework and TailLibs.
	IngestDir string `json:"ingest_dir,omitempty"`
	// Workloads are the batch members (at least one).
	Workloads []WorkloadSpec `json:"workloads"`
	// MaxSteps caps detection/verification runs (0 = service default).
	MaxSteps int `json:"max_steps,omitempty"`
	// SkipVerify skips the per-member verification re-runs.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Base, when set, makes the submission an incremental re-submit: it
	// names a completed job on the same framework/tail_libs/max_steps
	// whose workload set this request extends. The base's per-member
	// verifications carry over, untouched libraries absorb through their
	// unchanged stage keys, and only the union-delta locate/compact
	// stages recompute.
	Base string `json:"base,omitempty"`
}

// WorkloadSpec describes one member workload of a job request. Zero values
// take defaults: batch 1, one T4, eager loading, 1 ms per-item compute.
type WorkloadSpec struct {
	// Name labels the workload; defaulted from the other fields.
	Name string `json:"name,omitempty"`
	// Model is MobileNetV2, Transformer, or Llama2.
	Model string `json:"model"`
	Train bool   `json:"train,omitempty"`
	Batch int    `json:"batch,omitempty"`
	// Epochs applies to training workloads.
	Epochs int `json:"epochs,omitempty"`
	// Device is T4, A100, or H100; GPUs is the tensor-parallel rank count.
	Device string `json:"device,omitempty"`
	GPUs   int    `json:"gpus,omitempty"`
	// Lazy selects lazy kernel loading.
	Lazy bool `json:"lazy,omitempty"`
	// PerItemComputeUS is the calibrated per-item compute time in
	// microseconds (default 1000).
	PerItemComputeUS int64 `json:"per_item_compute_us,omitempty"`
}

// ResolveFramework maps a request spelling to the mlframework identifier.
func ResolveFramework(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pytorch":
		return mlframework.PyTorch, nil
	case "tensorflow":
		return mlframework.TensorFlow, nil
	case "vllm":
		return mlframework.VLLM, nil
	case "transformers", "hftransformers":
		return mlframework.HFTransformers, nil
	}
	return "", fmt.Errorf("dserve: unknown framework %q (want pytorch, tensorflow, vllm, or transformers)", name)
}

// Request-size bounds: tail_libs and the member count are
// client-controlled and directly size generated installs and fan-out, so
// both are capped.
const (
	MaxTailLibs     = 2048
	MaxJobWorkloads = 64
)

// Validate checks the request without generating anything.
func (r *JobRequest) Validate() error {
	if r.IngestDir != "" {
		if r.Framework != "" {
			return fmt.Errorf("dserve: ingest_dir and framework are mutually exclusive (the manifest names the framework)")
		}
		if r.TailLibs != 0 {
			return fmt.Errorf("dserve: ingest_dir and tail_libs are mutually exclusive (the tree's library set is fixed)")
		}
	} else if _, err := ResolveFramework(r.Framework); err != nil {
		return err
	}
	if r.TailLibs < 0 {
		return fmt.Errorf("dserve: negative tail_libs %d", r.TailLibs)
	}
	if r.TailLibs > MaxTailLibs {
		return fmt.Errorf("dserve: tail_libs %d exceeds the limit %d", r.TailLibs, MaxTailLibs)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("dserve: job has no workloads")
	}
	if len(r.Workloads) > MaxJobWorkloads {
		return fmt.Errorf("dserve: %d workloads exceeds the limit %d", len(r.Workloads), MaxJobWorkloads)
	}
	for i := range r.Workloads {
		if err := r.Workloads[i].validate(); err != nil {
			return fmt.Errorf("dserve: workload %d: %w", i, err)
		}
	}
	return nil
}

func (sp *WorkloadSpec) validate() error {
	switch sp.Model {
	case "MobileNetV2", "Transformer", "Llama2":
	default:
		return fmt.Errorf("unknown model %q (want MobileNetV2, Transformer, or Llama2)", sp.Model)
	}
	if sp.Device != "" {
		if _, err := gpuarch.ByName(sp.Device); err != nil {
			return err
		}
	}
	if sp.Batch < 0 || sp.GPUs < 0 || sp.Epochs < 0 || sp.PerItemComputeUS < 0 {
		return fmt.Errorf("negative batch/gpus/epochs/per_item_compute_us")
	}
	return nil
}

// Workload materializes the spec against an install.
func (sp WorkloadSpec) Workload(in *mlframework.Install) (mlruntime.Workload, error) {
	if err := sp.validate(); err != nil {
		return mlruntime.Workload{}, err
	}
	batch := sp.Batch
	if batch < 1 {
		batch = 1
	}
	ranks := sp.GPUs
	if ranks < 1 {
		ranks = 1
	}
	devName := sp.Device
	if devName == "" {
		devName = "T4"
	}
	dev, err := gpuarch.ByName(devName)
	if err != nil {
		return mlruntime.Workload{}, err
	}
	devices := make([]gpuarch.Device, ranks)
	for i := range devices {
		devices[i] = dev
	}

	var graph *models.Graph
	var data dataset.Dataset
	switch sp.Model {
	case "MobileNetV2":
		graph, data = models.MobileNetV2(sp.Train, batch), dataset.CIFAR10
	case "Transformer":
		graph, data = models.Transformer(sp.Train, batch), dataset.Multi30k
	case "Llama2":
		graph = models.LLM(models.Llama2(in.Framework == mlframework.VLLM, ranks))
		data = dataset.ManualInput
	}

	mode := cudasim.EagerLoading
	if sp.Lazy {
		mode = cudasim.LazyLoading
	}
	perItem := time.Duration(sp.PerItemComputeUS) * time.Microsecond
	if perItem == 0 {
		perItem = time.Millisecond
	}
	name := sp.Name
	if name == "" {
		name = fmt.Sprintf("%s/%s/%s/b%d/%s", in.Framework, graph.Mode(), sp.Model, batch, devName)
	}
	return mlruntime.Workload{
		Name:           name,
		Install:        in,
		Graph:          graph,
		Devices:        devices,
		Mode:           mode,
		Data:           data,
		Epochs:         sp.Epochs,
		PerItemCompute: perItem,
	}, nil
}
