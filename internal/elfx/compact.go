package elfx

import (
	"bytes"

	"negativaml/internal/fatbin"
)

// PageSize is the simulated memory page size used by the resident-size
// model: a page whose bytes are all zero is assumed not to be resident
// (backed by the shared zero page), which is how zero-compacted libraries
// reduce memory use and load time without changing file offsets.
const PageSize = 4096

// zeroSep is the single-byte needle passed to bytes.Count, whose
// one-byte path is the runtime's vectorized counter.
var zeroSep = []byte{0}

// ZeroRange zeroes the bytes of data covered by r, clamped to the buffer.
func ZeroRange(data []byte, r fatbin.Range) {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	if start >= end {
		return
	}
	clear(data[start:end]) // compiles to runtime memclr
}

// ZeroOutside zeroes every byte of data within the outer range that is not
// covered by any of the keep ranges. keep ranges outside outer are ignored.
// This is the compaction primitive: retain used file ranges, remove the rest.
func ZeroOutside(data []byte, outer fatbin.Range, keep []fatbin.Range) {
	for _, r := range ComplementWithin(outer, keep) {
		ZeroRange(data, r)
	}
}

// ComplementWithin returns the sub-ranges of outer not covered by any keep
// range — the zeroing plan ZeroOutside executes, as data. Sparse compaction
// stores this plan instead of applying it.
func ComplementWithin(outer fatbin.Range, keep []fatbin.Range) []fatbin.Range {
	var out []fatbin.Range
	cursor := outer.Start
	for _, k := range MergeRanges(keep) {
		if k.End <= outer.Start || k.Start >= outer.End {
			continue
		}
		s, e := k.Start, k.End
		if s < outer.Start {
			s = outer.Start
		}
		if e > outer.End {
			e = outer.End
		}
		if s > cursor {
			out = append(out, fatbin.Range{Start: cursor, End: s})
		}
		if e > cursor {
			cursor = e
		}
	}
	if cursor < outer.End {
		out = append(out, fatbin.Range{Start: cursor, End: outer.End})
	}
	return out
}

// MergeRanges sorts and coalesces overlapping or adjacent ranges.
func MergeRanges(rs []fatbin.Range) []fatbin.Range {
	if len(rs) == 0 {
		return nil
	}
	sorted := make([]fatbin.Range, len(rs))
	copy(sorted, rs)
	for i := 1; i < len(sorted); i++ { // insertion sort; range lists are small
		for j := i; j > 0 && sorted[j].Start < sorted[j-1].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// NonZeroBytes counts bytes of data that are not zero — the "effective size"
// of a zero-compacted file (what sparse storage or page dedup would keep).
func NonZeroBytes(data []byte) int64 {
	return int64(len(data) - bytes.Count(data, zeroSep))
}

// NonZeroBytesIn counts non-zero bytes within the given range.
func NonZeroBytesIn(data []byte, r fatbin.Range) int64 {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	if start >= end {
		return 0
	}
	return NonZeroBytes(data[start:end])
}

// ResidentBytes models the resident set of a mapped file: pages containing
// at least one non-zero byte count fully; all-zero pages cost nothing.
func ResidentBytes(data []byte) int64 {
	var n int64
	for off := 0; off < len(data); off += PageSize {
		end := off + PageSize
		if end > len(data) {
			end = len(data)
		}
		if fatbin.AnyNonZero(data[off:end]) {
			n += int64(end - off)
		}
	}
	return n
}
