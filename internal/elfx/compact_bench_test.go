package elfx

import (
	"bytes"
	"math/rand"
	"testing"

	"negativaml/internal/fatbin"
)

// Reference byte-at-a-time implementations the word-wise versions replaced,
// kept here so the microbenchmarks document the before/after and the tests
// can assert equivalence on arbitrary inputs.

func zeroRangeNaive(data []byte, r fatbin.Range) {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	for i := start; i < end; i++ {
		data[i] = 0
	}
}

func nonZeroBytesNaive(data []byte) int64 {
	var n int64
	for _, b := range data {
		if b != 0 {
			n++
		}
	}
	return n
}

func residentBytesNaive(data []byte) int64 {
	var n int64
	for off := 0; off < len(data); off += PageSize {
		end := off + PageSize
		if end > len(data) {
			end = len(data)
		}
		for i := off; i < end; i++ {
			if data[i] != 0 {
				n += int64(end - off)
				break
			}
		}
	}
	return n
}

// benchBuf is a representative compacted image: half live bytes, half
// zeroed ranges, with some all-zero pages.
func benchBuf(n int) []byte {
	r := rand.New(rand.NewSource(1))
	buf := make([]byte, n)
	r.Read(buf)
	for off := 0; off+2*PageSize <= n; off += 4 * PageSize {
		clear(buf[off : off+2*PageSize])
	}
	return buf
}

func TestWordWiseMatchesNaive(t *testing.T) {
	buf := benchBuf(3*PageSize + 123)
	if got, want := NonZeroBytes(buf), nonZeroBytesNaive(buf); got != want {
		t.Fatalf("NonZeroBytes = %d, want %d", got, want)
	}
	if got, want := ResidentBytes(buf), residentBytesNaive(buf); got != want {
		t.Fatalf("ResidentBytes = %d, want %d", got, want)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		rg := fatbin.Range{Start: int64(r.Intn(len(buf)+10) - 5), End: int64(r.Intn(len(buf)+10) - 5)}
		if got, want := NonZeroBytesIn(buf, rg), nonZeroBytesInNaive(buf, rg); got != want {
			t.Fatalf("NonZeroBytesIn(%v) = %d, want %d", rg, got, want)
		}
		a := append([]byte(nil), buf...)
		b := append([]byte(nil), buf...)
		ZeroRange(a, rg)
		zeroRangeNaive(b, rg)
		if !bytes.Equal(a, b) {
			t.Fatalf("ZeroRange(%v) diverged from naive", rg)
		}
	}
}

func nonZeroBytesInNaive(data []byte, r fatbin.Range) int64 {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	var n int64
	for i := start; i < end; i++ {
		if data[i] != 0 {
			n++
		}
	}
	return n
}

const benchSize = 1 << 20

func BenchmarkZeroRange(b *testing.B) {
	buf := benchBuf(benchSize)
	r := fatbin.Range{Start: 7, End: benchSize - 7}
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		ZeroRange(buf, r)
	}
}

func BenchmarkZeroRangeNaive(b *testing.B) {
	buf := benchBuf(benchSize)
	r := fatbin.Range{Start: 7, End: benchSize - 7}
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		zeroRangeNaive(buf, r)
	}
}

func BenchmarkNonZeroBytes(b *testing.B) {
	buf := benchBuf(benchSize)
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		NonZeroBytes(buf)
	}
}

func BenchmarkNonZeroBytesNaive(b *testing.B) {
	buf := benchBuf(benchSize)
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		nonZeroBytesNaive(buf)
	}
}

func BenchmarkResidentBytes(b *testing.B) {
	buf := benchBuf(benchSize)
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		ResidentBytes(buf)
	}
}

func BenchmarkResidentBytesNaive(b *testing.B) {
	buf := benchBuf(benchSize)
	b.SetBytes(benchSize)
	for i := 0; i < b.N; i++ {
		residentBytesNaive(buf)
	}
}
