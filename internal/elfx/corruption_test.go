package elfx

import (
	"math/rand"
	"testing"
)

// Parsers face compacted (partially zeroed) and potentially damaged files;
// they must never panic — only return errors or degraded-but-consistent
// results. These tests inject random corruption and assert that.

func corpus(t *testing.T) [][]byte {
	t.Helper()
	var out [][]byte
	b := NewBuilder("liba.so")
	b.AddFunction("f1", 64)
	b.AddFunction("f2", 128)
	b.SetRodata(make([]byte, 256))
	d1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, d1)

	b2 := NewBuilder("libb.so")
	for i := 0; i < 40; i++ {
		b2.AddFunction("fn_"+string(rune('a'+i%26))+string(rune('0'+i/26)), 16+i)
	}
	d2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, d2)
	return out
}

func TestParseNeverPanicsOnCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, base := range corpus(t) {
		for trial := 0; trial < 500; trial++ {
			data := append([]byte(nil), base...)
			// Flip 1-8 random bytes.
			for n := 0; n < 1+r.Intn(8); n++ {
				data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Parse panicked on corrupted input: %v", p)
					}
				}()
				lib, err := Parse("x", data)
				if err != nil {
					return // rejecting corrupt input is fine
				}
				// If it parsed, accessors must stay in bounds.
				for i := range lib.Funcs {
					fn := &lib.Funcs[i]
					if fn.Range.Start >= 0 && fn.Range.End <= int64(len(data)) {
						lib.FunctionAlive(fn)
					}
				}
				_, _ = lib.FatbinRange()
			}()
		}
	}
}

func TestParseTruncationNeverPanics(t *testing.T) {
	for _, base := range corpus(t) {
		for cut := 0; cut < len(base); cut += 97 {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Parse panicked on truncation at %d: %v", cut, p)
					}
				}()
				_, _ = Parse("x", base[:cut])
			}()
		}
	}
}
