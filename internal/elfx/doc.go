// Package elfx builds, reads, and compacts ELF64 shared libraries.
//
// ML frameworks ship their core functionality as ELF shared libraries whose
// .text section holds host (CPU) code and whose .nv_fatbin section holds
// device (GPU) code (paper §2.1). This package is the repository's substrate
// for those libraries: a from-scratch writer that emits real ELF64 files
// (parseable by the standard library's debug/elf, which the tests use as an
// oracle), a reader that recovers function and section file ranges, and the
// zero-compaction primitives the debloater's compaction phase uses.
package elfx
