package elfx

import (
	"encoding/binary"
	"fmt"
)

// ParseDynamic decodes a raw .dynamic section against its string table
// (.dynstr) and returns the DT_SONAME value and the DT_NEEDED names in table
// order. Iteration stops at the DT_NULL terminator or the end of the blob,
// whichever comes first; a trailing partial entry is ignored. Unknown tags
// are skipped — real dynamic sections carry dozens of tags this analysis
// does not need. A DT_SONAME or DT_NEEDED string offset outside the string
// table is an error: those entries name the library's identity and its
// dependency edges, and guessing either would corrupt the closure.
func ParseDynamic(dyn, dynstr []byte) (soname string, needed []string, err error) {
	le := binary.LittleEndian
	for off := 0; off+dynEntrySize <= len(dyn); off += dynEntrySize {
		tag := int64(le.Uint64(dyn[off:]))
		val := le.Uint64(dyn[off+8:])
		switch tag {
		case dtNull:
			return soname, needed, nil
		case dtNeeded, dtSoname:
			s, ok := dynStr(dynstr, val)
			if !ok {
				return "", nil, fmt.Errorf("elfx: dynamic tag %d: string offset %d outside .dynstr (%d bytes)", tag, val, len(dynstr))
			}
			if tag == dtSoname {
				soname = s
			} else {
				needed = append(needed, s)
			}
		}
	}
	return soname, needed, nil
}

// dynStr reads the NUL-terminated string at off, reporting false when the
// offset is outside the table. An unterminated tail reads to the end of the
// table — the same tolerance readStr in the section parser applies.
func dynStr(tab []byte, off uint64) (string, bool) {
	if off >= uint64(len(tab)) {
		return "", false
	}
	end := off
	for end < uint64(len(tab)) && tab[end] != 0 {
		end++
	}
	return string(tab[off:end]), true
}
