package elfx

import (
	"bytes"
	"debug/elf"
	"math/rand"
	"testing"
	"testing/quick"

	"negativaml/internal/cubin"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

func sampleLib(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder("libtest.so")
	b.AddFunction("at_launch_matmul", 120)
	b.AddFunction("at_init_context", 64)
	b.AddFunction("cuModuleGetFunction", 48)

	c := cubin.New(gpuarch.SM75)
	c.AddKernel(cubin.Kernel{Name: "matmul_f32", Code: []byte{1, 2, 3}, Flags: cubin.FlagEntry})
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fb := &fatbin.FatBin{}
	r := fb.AddRegion()
	r.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	fbBytes, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b.SetFatbin(fbBytes)
	b.SetRodata([]byte("read-only strings"))
	b.SetData(make([]byte, 32))

	out, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return out
}

// The standard library's debug/elf is the oracle: our writer must emit files
// it accepts, with the sections and symbols we intended.
func TestDebugElfOracle(t *testing.T) {
	data := sampleLib(t)
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("debug/elf rejects our output: %v", err)
	}
	defer f.Close()

	if f.Type != elf.ET_DYN {
		t.Errorf("type = %v, want ET_DYN", f.Type)
	}
	if f.Machine != elf.EM_X86_64 {
		t.Errorf("machine = %v, want EM_X86_64", f.Machine)
	}
	for _, want := range []string{".text", ".rodata", ".data", FatbinSection, ".symtab", ".dynsym"} {
		if f.Section(want) == nil {
			t.Errorf("missing section %s", want)
		}
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatalf("Symbols: %v", err)
	}
	found := map[string]bool{}
	for _, s := range syms {
		if elf.ST_TYPE(s.Info) == elf.STT_FUNC {
			found[s.Name] = true
		}
	}
	for _, want := range []string{"at_launch_matmul", "at_init_context", "cuModuleGetFunction"} {
		if !found[want] {
			t.Errorf("missing function symbol %q", want)
		}
	}
	dsyms, err := f.DynamicSymbols()
	if err != nil {
		t.Fatalf("DynamicSymbols: %v", err)
	}
	if len(dsyms) != 1 {
		t.Errorf("dynamic symbols = %d, want 1 (every 8th function exported)", len(dsyms))
	}
	// Fatbin section content must parse.
	sec := f.Section(FatbinSection)
	raw, err := sec.Data()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fatbin.Parse(raw)
	if err != nil {
		t.Fatalf("fatbin in ELF does not parse: %v", err)
	}
	if fb.ElementCount() != 1 {
		t.Errorf("fatbin elements = %d, want 1", fb.ElementCount())
	}
}

func TestOwnReaderAgreesWithOracle(t *testing.T) {
	data := sampleLib(t)
	lib, err := Parse("libtest.so", data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for _, s := range f.Sections {
		if s.Name == "" {
			continue
		}
		ours := lib.Section(s.Name)
		if ours == nil {
			t.Errorf("our reader missing section %s", s.Name)
			continue
		}
		if ours.Range.Start != int64(s.Offset) || ours.Range.Len() != int64(s.Size) {
			t.Errorf("section %s range mismatch: ours %v, oracle off=%d size=%d",
				s.Name, ours.Range, s.Offset, s.Size)
		}
	}
	syms, _ := f.Symbols()
	oracleFuncs := 0
	for _, s := range syms {
		if elf.ST_TYPE(s.Info) == elf.STT_FUNC {
			oracleFuncs++
			ours := lib.FindFunction(s.Name)
			if ours == nil {
				t.Errorf("our reader missing function %s", s.Name)
				continue
			}
			if ours.Range.Len() != int64(s.Size) {
				t.Errorf("function %s size mismatch: %d vs %d", s.Name, ours.Range.Len(), s.Size)
			}
		}
	}
	if len(lib.Funcs) != oracleFuncs {
		t.Errorf("function count %d, oracle %d", len(lib.Funcs), oracleFuncs)
	}
}

func TestFunctionRangesContainCode(t *testing.T) {
	data := sampleLib(t)
	lib, _ := Parse("libtest.so", data)
	for _, fn := range lib.Funcs {
		if !lib.FunctionAlive(&fn) {
			t.Errorf("freshly built function %s reads as dead", fn.Name)
		}
		seg := data[fn.Range.Start:fn.Range.End]
		if NonZeroBytes(seg) == 0 {
			t.Errorf("function %s has all-zero code", fn.Name)
		}
	}
}

func TestZeroRangeKillsFunction(t *testing.T) {
	data := sampleLib(t)
	lib, _ := Parse("libtest.so", data)
	fn := lib.FindFunction("at_init_context")
	if fn == nil {
		t.Fatal("missing function")
	}
	ZeroRange(lib.Data, fn.Range)
	if lib.FunctionAlive(fn) {
		t.Error("zeroed function still alive")
	}
	// Others untouched.
	other := lib.FindFunction("at_launch_matmul")
	if !lib.FunctionAlive(other) {
		t.Error("untouched function died")
	}
	// File still parses via oracle.
	if _, err := elf.NewFile(bytes.NewReader(lib.Data)); err != nil {
		t.Errorf("zeroing broke ELF structure: %v", err)
	}
}

func TestZeroOutside(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = 0xAA
	}
	outer := fatbin.Range{Start: 10, End: 90}
	keep := []fatbin.Range{{Start: 20, End: 30}, {Start: 25, End: 40}, {Start: 60, End: 70}}
	ZeroOutside(data, outer, keep)
	for i := 0; i < 100; i++ {
		in := (i >= 20 && i < 40) || (i >= 60 && i < 70) || i < 10 || i >= 90
		if in && data[i] != 0xAA {
			t.Fatalf("byte %d should be kept", i)
		}
		if !in && data[i] != 0 {
			t.Fatalf("byte %d should be zeroed", i)
		}
	}
}

func TestZeroOutsideNoKeep(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 50)
	ZeroOutside(data, fatbin.Range{Start: 5, End: 45}, nil)
	if NonZeroBytes(data) != 10 {
		t.Errorf("non-zero = %d, want 10", NonZeroBytes(data))
	}
}

func TestMergeRanges(t *testing.T) {
	in := []fatbin.Range{
		{Start: 40, End: 50}, {Start: 10, End: 20}, {Start: 15, End: 25},
		{Start: 25, End: 30}, {Start: 60, End: 60},
	}
	out := MergeRanges(in)
	want := []fatbin.Range{{Start: 10, End: 30}, {Start: 40, End: 50}, {Start: 60, End: 60}}
	if len(out) != len(want) {
		t.Fatalf("merged = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged = %v, want %v", out, want)
		}
	}
	if MergeRanges(nil) != nil {
		t.Error("MergeRanges(nil) should be nil")
	}
}

func TestResidentBytes(t *testing.T) {
	data := make([]byte, 3*PageSize)
	if ResidentBytes(data) != 0 {
		t.Error("all-zero file should have zero resident bytes")
	}
	data[PageSize+5] = 1
	if got := ResidentBytes(data); got != PageSize {
		t.Errorf("resident = %d, want one page", got)
	}
	data[0] = 1
	data[2*PageSize] = 1
	if got := ResidentBytes(data); got != 3*PageSize {
		t.Errorf("resident = %d, want three pages", got)
	}
	// Partial last page counts its actual length.
	tail := make([]byte, PageSize+10)
	tail[PageSize+1] = 7
	if got := ResidentBytes(tail); got != 10 {
		t.Errorf("partial page resident = %d, want 10", got)
	}
}

func TestBuilderRejects(t *testing.T) {
	b := NewBuilder("")
	if _, err := b.Build(); err == nil {
		t.Error("empty soname should fail")
	}
	b2 := NewBuilder("lib.so")
	b2.AddFunction("f", 10)
	b2.AddFunction("f", 10)
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate function should fail")
	}
	b3 := NewBuilder("lib.so")
	b3.funcs = append(b3.funcs, FuncSpec{Name: "", Size: 10})
	if _, err := b3.Build(); err == nil {
		t.Error("empty function name should fail")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("x", []byte{1, 2, 3}); err == nil {
		t.Error("short file should fail")
	}
	data := sampleLib(t)
	bad := append([]byte(nil), data...)
	bad[0] = 0
	if _, err := Parse("x", bad); err == nil {
		t.Error("bad magic should fail")
	}
	bad32 := append([]byte(nil), data...)
	bad32[4] = 1 // 32-bit class
	if _, err := Parse("x", bad32); err == nil {
		t.Error("32-bit should fail")
	}
}

func TestAccessors(t *testing.T) {
	data := sampleLib(t)
	lib, _ := Parse("libtest.so", data)
	if lib.FileSize() != int64(len(data)) {
		t.Error("FileSize mismatch")
	}
	if lib.TextSize() == 0 {
		t.Error("TextSize should be non-zero")
	}
	if lib.GPUCodeSize() == 0 {
		t.Error("GPUCodeSize should be non-zero")
	}
	fb, has, err := lib.Fatbin()
	if err != nil || !has || fb.ElementCount() != 1 {
		t.Errorf("Fatbin: %v %v", has, err)
	}
	r, ok := lib.FatbinRange()
	if !ok || r.Len() == 0 {
		t.Error("FatbinRange missing")
	}
}

func TestLibraryWithoutFatbin(t *testing.T) {
	b := NewBuilder("libcpu.so")
	b.AddFunction("only_cpu", 32)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Parse("libcpu.so", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.FatbinRange(); ok {
		t.Error("zero-size fatbin section should report absent")
	}
	fb, has, err := lib.Fatbin()
	if err != nil || has || fb != nil {
		t.Errorf("Fatbin on CPU-only lib: %v %v %v", fb, has, err)
	}
}

// Property: any generated library round-trips through our reader and the
// debug/elf oracle, and every function's symbol range matches planted size.
func TestQuickBuildParse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder("libq.so")
		n := 1 + r.Intn(30)
		sizes := make(map[string]int, n)
		for i := 0; i < n; i++ {
			name := "fn_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			size := 16 + r.Intn(200)
			b.AddFunction(name, size)
			sizes[name] = size
		}
		data, err := b.Build()
		if err != nil {
			return false
		}
		lib, err := Parse("libq.so", data)
		if err != nil {
			return false
		}
		if len(lib.Funcs) != n {
			return false
		}
		for _, fn := range lib.Funcs {
			if fn.Range.Len() != int64(sizes[fn.Name]) {
				return false
			}
			if !lib.FunctionAlive(&fn) {
				return false
			}
		}
		_, err = elf.NewFile(bytes.NewReader(data))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ZeroOutside never touches kept ranges and always clears the rest
// of the outer range.
func TestQuickZeroOutside(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := int64(200 + r.Intn(800))
		data := make([]byte, size)
		for i := range data {
			data[i] = 0xBB
		}
		outer := fatbin.Range{Start: int64(r.Intn(50)), End: size - int64(r.Intn(50))}
		var keep []fatbin.Range
		for i := 0; i < r.Intn(6); i++ {
			s := outer.Start + int64(r.Intn(int(outer.Len())))
			e := s + int64(r.Intn(int(outer.End-s))+1)
			keep = append(keep, fatbin.Range{Start: s, End: e})
		}
		ZeroOutside(data, outer, keep)
		merged := MergeRanges(keep)
		inKeep := func(i int64) bool {
			for _, k := range merged {
				if k.Contains(i) {
					return true
				}
			}
			return false
		}
		for i := int64(0); i < size; i++ {
			inside := i >= outer.Start && i < outer.End
			want := byte(0xBB)
			if inside && !inKeep(i) {
				want = 0
			}
			if data[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
