package elfx

import (
	"testing"

	"negativaml/internal/fatbin"
)

// FuzzParseELF is the CI fuzz target for the ELF reader and the analysis
// index built on top of it: Parse must reject corrupt input with an error,
// and whatever it accepts must survive indexing and every byte-accounting
// query without panicking. The seeds cover a plain CPU library, a GPU
// library with a fatbin section, and a handful of degenerate inputs; the
// checked-in corpus under testdata/fuzz extends them.
// FuzzDynamicSection targets the DT_NEEDED/DT_SONAME parser that ingestion
// feeds with dynamic sections we did not author. ParseDynamic must never
// panic: it either rejects the section with an error or returns strings that
// actually came from the supplied table. The checked-in corpus under
// testdata/fuzz was seeded with .dynamic/.dynstr slices cut from the library
// files of an mlframework.WriteTo tree, plus truncated and misaligned
// variants.
func FuzzDynamicSection(f *testing.F) {
	b := NewBuilder("libfuzzdyn.so")
	b.AddFunction("f0", 32)
	b.AddNeeded("libdep_a.so")
	b.AddNeeded("libz.so.1")
	data, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	lib, err := Parse("libfuzzdyn.so", data)
	if err != nil {
		f.Fatal(err)
	}
	dynSec, strSec := lib.Section(".dynamic"), lib.Section(".dynstr")
	dyn := data[dynSec.Range.Start:dynSec.Range.End]
	str := data[strSec.Range.Start:strSec.Range.End]
	f.Add(dyn, str)
	f.Add(dyn[:dynEntrySize], str)   // SONAME only, no terminator
	f.Add(dyn[:dynEntrySize+3], str) // misaligned tail
	f.Add(dyn, []byte{})             // empty string table
	f.Add([]byte{}, str)             // empty dynamic section
	f.Add(dyn, str[:len(str)-1])     // unterminated final string
	f.Add(make([]byte, dynEntrySize*4), str)

	f.Fuzz(func(t *testing.T, dyn, dynstr []byte) {
		soname, needed, err := ParseDynamic(dyn, dynstr)
		if err != nil {
			return
		}
		// Accepted output must be bounded by the inputs: at most one name
		// per entry, and every returned string must fit the table.
		if len(needed) > len(dyn)/dynEntrySize {
			t.Fatalf("%d needed entries from %d bytes of dynamic section", len(needed), len(dyn))
		}
		for _, s := range append(needed, soname) {
			if len(s) > len(dynstr) {
				t.Fatalf("returned string longer than the string table: %d > %d", len(s), len(dynstr))
			}
		}
	})
}

func FuzzParseELF(f *testing.F) {
	b := NewBuilder("libfuzz.so")
	b.AddFunction("alpha", 64)
	b.AddFunction("beta", 128)
	b.SetRodata(make([]byte, 512))
	cpuLib, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cpuLib)

	gb := NewBuilder("libfuzz_cuda.so")
	gb.AddFunction("launch", 64)
	gb.SetFatbin(make([]byte, 128)) // zeroed fatbin: parses as empty
	gpuLib, err := gb.Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gpuLib)

	f.Add([]byte{})
	f.Add([]byte("\x7fELF"))
	f.Add(make([]byte, elfHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		// Accepted input must be safe to index and query: these walk the
		// symbol table, the section table, the fatbin element table, and
		// the zero-byte prefix sum.
		idx := lib.Index()
		if idx.NonZeroBytes() > idx.Size() {
			t.Fatal("NonZeroBytes exceeds file size")
		}
		if idx.ResidentBytes() > idx.Size()+PageSize {
			t.Fatal("ResidentBytes wildly out of range")
		}
		idx.ZeroBytesIn(fatbin.Range{Start: -8, End: idx.Size() + 8})
		for i := range lib.Funcs {
			lib.FunctionAlive(&lib.Funcs[i])
		}
		for _, e := range idx.Elements {
			if e.FileRange.Start < 0 || e.FileRange.End > idx.Size() {
				t.Fatalf("element %d file range %v escapes the image", e.Index, e.FileRange)
			}
		}
	})
}
