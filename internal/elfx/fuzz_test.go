package elfx

import (
	"testing"

	"negativaml/internal/fatbin"
)

// FuzzParseELF is the CI fuzz target for the ELF reader and the analysis
// index built on top of it: Parse must reject corrupt input with an error,
// and whatever it accepts must survive indexing and every byte-accounting
// query without panicking. The seeds cover a plain CPU library, a GPU
// library with a fatbin section, and a handful of degenerate inputs; the
// checked-in corpus under testdata/fuzz extends them.
func FuzzParseELF(f *testing.F) {
	b := NewBuilder("libfuzz.so")
	b.AddFunction("alpha", 64)
	b.AddFunction("beta", 128)
	b.SetRodata(make([]byte, 512))
	cpuLib, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cpuLib)

	gb := NewBuilder("libfuzz_cuda.so")
	gb.AddFunction("launch", 64)
	gb.SetFatbin(make([]byte, 128)) // zeroed fatbin: parses as empty
	gpuLib, err := gb.Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gpuLib)

	f.Add([]byte{})
	f.Add([]byte("\x7fELF"))
	f.Add(make([]byte, elfHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Parse("fuzz", data)
		if err != nil {
			return
		}
		// Accepted input must be safe to index and query: these walk the
		// symbol table, the section table, the fatbin element table, and
		// the zero-byte prefix sum.
		idx := lib.Index()
		if idx.NonZeroBytes() > idx.Size() {
			t.Fatal("NonZeroBytes exceeds file size")
		}
		if idx.ResidentBytes() > idx.Size()+PageSize {
			t.Fatal("ResidentBytes wildly out of range")
		}
		idx.ZeroBytesIn(fatbin.Range{Start: -8, End: idx.Size() + 8})
		for i := range lib.Funcs {
			lib.FunctionAlive(&lib.Funcs[i])
		}
		for _, e := range idx.Elements {
			if e.FileRange.Start < 0 || e.FileRange.End > idx.Size() {
				t.Fatalf("element %d file range %v escapes the image", e.Index, e.FileRange)
			}
		}
	})
}
