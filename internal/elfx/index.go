package elfx

import (
	"crypto/sha256"
	"sync"

	"negativaml/internal/cubin"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// This file is the parse-once half of the analysis plane: every structural
// fact the locators and the byte accountants need is derived from a library
// exactly once, memoized by content digest, and then served as pure lookups.
// Location, compaction accounting, and cache keying all become O(query)
// instead of O(file-size), which is what lets the batch service's warm path
// avoid re-deriving structure per request.

// IndexedElement is the locator-ready view of one fatbin element: absolute
// file ranges, pre-parsed kernel facts, and the payload probes LocateGPU
// would otherwise redo per call.
type IndexedElement struct {
	// Index is the element's 1-based section-wide index (cuobjdump order).
	Index int
	Arch  gpuarch.SM
	Kind  uint16
	// FileRange / PayloadRange are absolute file ranges (section offset
	// already applied), ready for compaction.
	FileRange    fatbin.Range
	PayloadRange fatbin.Range
	// Kernels is the kernel count of the parsed cubin (0 when the payload
	// is not a parseable cubin — matching the locator, which only counts
	// kernels it actually parsed).
	Kernels int
	// IsCubinBlob records the cubin magic probe: false for zeroed
	// (previously compacted) payloads.
	IsCubinBlob bool
	// ParseErr is the cubin parse failure for magic-passing payloads; the
	// locator surfaces it only when the element's architecture is targeted,
	// so the index stores rather than raises it.
	ParseErr error
}

// LibIndex is a library's parse-once analysis index. It is immutable after
// construction and shared between all *Library values with identical bytes,
// so every field must be treated as read-only.
type LibIndex struct {
	// Digest is the SHA-256 of the library image — the content address
	// under which the index (and downstream locate/compact results) are
	// memoized.
	Digest [sha256.Size]byte

	// funcsByName maps a symbol name to the indices of lib.Funcs carrying
	// it (almost always one; duplicates keep symbol-table order).
	funcsByName map[string][]int32

	// Elements is the fatbin element table in section order. FatbinErr
	// records a fatbin section parse failure (Elements empty then);
	// HasFatbin distinguishes "no section" from "empty parse".
	Elements  []IndexedElement
	HasFatbin bool
	FatbinErr error
	// entryElems maps an entry-kernel name to the positions (into Elements)
	// of the cubins that can launch it from the host.
	entryElems map[string][]int32

	// data aliases the indexed library image (indexes never outlive the
	// need for the bytes: every sparse image over them needs the original
	// to materialize).
	data []byte
	// zeroPrefix[p] is the number of zero bytes in data[:min(p*PageSize,
	// len(data))] — a page-granular prefix sum (8 bytes per page, 1/512 of
	// the image) behind O(1) effective-size queries and the analytic
	// resident-size model; partial-page queries finish with a bounded
	// (<PageSize) vectorized count.
	zeroPrefix []int64
}

// indexMemo shares indexes between identical libraries across installs
// (the dependency tail), keyed by content digest. An index aliases its
// library image, so the memo is bounded by retained bytes (images + sums),
// not entry count, and wiped at the cap — a long-lived service can pin at
// most maxIndexMemoBytes through it; live *Library values keep their own
// index via the idx pointer regardless.
var (
	indexMemo sync.Map // [sha256.Size]byte -> *LibIndex
	// indexMemoMu serializes inserts (and the wipe) so the retained-byte
	// accounting is exact; lookups stay lock-free through the sync.Map.
	indexMemoMu    sync.Mutex
	indexMemoBytes int64
)

const maxIndexMemoBytes = 64 << 20

// Index returns the library's analysis index, building it on first touch.
// Concurrent first touches may build twice; both results are identical and
// the loser is dropped, so the race is benign. Identical library bytes
// (no matter the name or install) share one index.
func (l *Library) Index() *LibIndex {
	if x := l.idx.Load(); x != nil {
		return x
	}
	d := sha256.Sum256(l.Data)
	if v, ok := indexMemo.Load(d); ok {
		x := v.(*LibIndex)
		l.idx.Store(x)
		return x
	}
	x := buildIndex(l, d)
	// Bounded like dserve's boundedMemo: wipe everything at the cap (the
	// next warm pass rebuilds what it touches). Insert and counter move
	// together under the lock, so the cap cannot be overshot by racing
	// first touches.
	cost := int64(len(l.Data)) + 8*int64(len(x.zeroPrefix))
	indexMemoMu.Lock()
	if v, loaded := indexMemo.Load(d); loaded {
		// A racing first touch beat us to the insert; adopt its index so
		// identical bytes keep sharing one instance and the accounting
		// charges the image once.
		x = v.(*LibIndex)
	} else {
		indexMemoBytes += cost
		if indexMemoBytes > maxIndexMemoBytes {
			indexMemo.Range(func(k, _ any) bool { indexMemo.Delete(k); return true })
			indexMemoBytes = cost
		}
		indexMemo.Store(d, x)
	}
	indexMemoMu.Unlock()
	l.idx.Store(x)
	return x
}

// ContentDigest returns the SHA-256 of the library image, memoized with the
// index — callers content-addressing locate/compact results (the batch
// service) share the hash work with the locators.
func (l *Library) ContentDigest() [sha256.Size]byte { return l.Index().Digest }

func buildIndex(l *Library, digest [sha256.Size]byte) *LibIndex {
	x := &LibIndex{
		Digest:      digest,
		funcsByName: make(map[string][]int32, len(l.Funcs)),
		entryElems:  map[string][]int32{},
	}

	for i := range l.Funcs {
		name := l.Funcs[i].Name
		x.funcsByName[name] = append(x.funcsByName[name], int32(i))
	}

	x.data = l.Data
	pages := (len(l.Data) + PageSize - 1) / PageSize
	x.zeroPrefix = make([]int64, pages+1)
	var zeros int64
	for p := 0; p < pages; p++ {
		end := (p + 1) * PageSize
		if end > len(l.Data) {
			end = len(l.Data)
		}
		zeros += int64(end-p*PageSize) - NonZeroBytes(l.Data[p*PageSize:end])
		x.zeroPrefix[p+1] = zeros
	}

	fb, has, err := l.Fatbin()
	x.HasFatbin = has
	if err != nil {
		x.FatbinErr = err
		return x
	}
	if !has {
		return x
	}
	secRange, _ := l.FatbinRange()
	for _, e := range fb.Elements() {
		ie := IndexedElement{
			Index: e.Index,
			Arch:  e.Arch,
			Kind:  e.Kind,
			FileRange: fatbin.Range{
				Start: secRange.Start + e.FileRange.Start,
				End:   secRange.Start + e.FileRange.End,
			},
			PayloadRange: fatbin.Range{
				Start: secRange.Start + e.PayloadRange.Start,
				End:   secRange.Start + e.PayloadRange.End,
			},
		}
		if e.Kind == fatbin.KindCubin && cubin.IsCubin(e.Payload) {
			ie.IsCubinBlob = true
			cb, err := cubin.Parse(e.Payload)
			if err != nil {
				ie.ParseErr = err
			} else {
				ie.Kernels = len(cb.Kernels)
				pos := int32(len(x.Elements))
				for ki := range cb.Kernels {
					if k := &cb.Kernels[ki]; k.Entry() {
						x.entryElems[k.Name] = append(x.entryElems[k.Name], pos)
					}
				}
			}
		}
		x.Elements = append(x.Elements, ie)
	}
	return x
}

// FuncsNamed returns the indices into Library.Funcs of every function with
// the given name, in symbol-table order. The slice is shared: read-only.
func (x *LibIndex) FuncsNamed(name string) []int32 { return x.funcsByName[name] }

// ElementsWithEntry returns the positions (into Elements) of cubins whose
// entry-kernel set contains name. The slice is shared: read-only.
func (x *LibIndex) ElementsWithEntry(name string) []int32 { return x.entryElems[name] }

// zerosTo returns the number of zero bytes in data[:off] (off pre-clamped):
// whole pages from the prefix sum, the trailing partial page by a bounded
// (<PageSize) vectorized count.
func (x *LibIndex) zerosTo(off int64) int64 {
	p := off / PageSize
	n := x.zeroPrefix[p]
	if rem := off - p*PageSize; rem > 0 {
		n += rem - NonZeroBytes(x.data[p*PageSize:off])
	}
	return n
}

// ZeroBytesIn returns the number of zero bytes of the original image within
// r (clamped): O(1) prefix-sum lookups plus at most two partial-page counts.
func (x *LibIndex) ZeroBytesIn(r fatbin.Range) int64 {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if n := x.Size(); end > n {
		end = n
	}
	if start >= end {
		return 0
	}
	return x.zerosTo(end) - x.zerosTo(start)
}

// NonZeroBytesIn returns the number of non-zero bytes of the original image
// within r (clamped).
func (x *LibIndex) NonZeroBytesIn(r fatbin.Range) int64 {
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if n := x.Size(); end > n {
		end = n
	}
	if start >= end {
		return 0
	}
	return (end - start) - (x.zerosTo(end) - x.zerosTo(start))
}

// Size returns the indexed image's size in bytes.
func (x *LibIndex) Size() int64 { return int64(len(x.data)) }

// NonZeroBytes returns the image's effective (non-zero byte) size in O(1).
func (x *LibIndex) NonZeroBytes() int64 {
	return x.Size() - x.zeroPrefix[len(x.zeroPrefix)-1]
}

// ResidentBytes computes the resident-size model of the original image
// analytically — pages with at least one non-zero byte count fully — in
// O(pages) prefix-sum lookups instead of an O(size) scan.
func (x *LibIndex) ResidentBytes() int64 {
	size := x.Size()
	var n int64
	for p := 0; p+1 < len(x.zeroPrefix); p++ {
		end := int64(p+1) * PageSize
		if end > size {
			end = size
		}
		if x.zeroPrefix[p+1]-x.zeroPrefix[p] != end-int64(p)*PageSize {
			n += end - int64(p)*PageSize
		}
	}
	return n
}
