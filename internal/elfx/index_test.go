package elfx

import (
	"math/rand"
	"sync"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// indexedLib builds a library with CPU functions and a two-element fatbin
// (one parseable cubin with entry + device-only kernels, one PTX element).
func indexedLib(t *testing.T) *Library {
	t.Helper()
	cb := cubin.New(gpuarch.SM75)
	child := cb.AddKernel(cubin.Kernel{Name: "child_k", Code: []byte{9, 9}, Flags: cubin.FlagDeviceOnly})
	cb.AddKernel(cubin.Kernel{Name: "entry_k", Code: []byte{1, 2, 3}, Flags: cubin.FlagEntry, Launches: []int{child}})
	blob, err := cb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fb := &fatbin.FatBin{}
	reg := fb.AddRegion()
	reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	reg.AddElement(fatbin.Element{Kind: fatbin.KindPTX, Arch: gpuarch.SM80, Payload: []byte("ptx text")})
	sec, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder("libidx.so")
	b.AddFunction("fa", 64)
	b.AddFunction("fb", 96)
	b.SetFatbin(sec)
	b.SetRodata(make([]byte, 300)) // all-zero run exercises the prefix sum
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Parse("libidx.so", data)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLibIndexStructure(t *testing.T) {
	lib := indexedLib(t)
	x := lib.Index()

	if got := lib.Index(); got != x {
		t.Fatal("Index must return the memoized instance")
	}
	// Identical bytes → shared index, even across Parse calls.
	clone, err := Parse("renamed.so", append([]byte(nil), lib.Data...))
	if err != nil {
		t.Fatal(err)
	}
	if clone.Index() != x {
		t.Error("identical library bytes must share one index")
	}

	for i := range lib.Funcs {
		found := false
		for _, fi := range x.FuncsNamed(lib.Funcs[i].Name) {
			if int(fi) == i {
				found = true
			}
		}
		if !found {
			t.Errorf("function %q missing from index", lib.Funcs[i].Name)
		}
	}

	if !x.HasFatbin || x.FatbinErr != nil || len(x.Elements) != 2 {
		t.Fatalf("element table = %d elements (hasFB=%v, err=%v), want 2", len(x.Elements), x.HasFatbin, x.FatbinErr)
	}
	e := x.Elements[0]
	if !e.IsCubinBlob || e.Kernels != 2 || e.Arch != gpuarch.SM75 {
		t.Errorf("cubin element indexed wrong: %+v", e)
	}
	if ptx := x.Elements[1]; ptx.IsCubinBlob || ptx.Kind != fatbin.KindPTX {
		t.Errorf("ptx element indexed wrong: %+v", ptx)
	}
	if got := x.ElementsWithEntry("entry_k"); len(got) != 1 || got[0] != 0 {
		t.Errorf("ElementsWithEntry(entry_k) = %v, want [0]", got)
	}
	if got := x.ElementsWithEntry("child_k"); got != nil {
		t.Errorf("device-only kernel must not appear in the entry map, got %v", got)
	}
	// Absolute payload range must land on the cubin bytes.
	if !cubin.IsCubin(lib.Data[e.PayloadRange.Start:e.PayloadRange.End]) {
		t.Error("indexed payload range does not cover the cubin")
	}
}

func TestLibIndexByteAccounting(t *testing.T) {
	lib := indexedLib(t)
	x := lib.Index()

	if got, want := x.NonZeroBytes(), NonZeroBytes(lib.Data); got != want {
		t.Fatalf("analytic NonZeroBytes = %d, scanned %d", got, want)
	}
	if got, want := x.ResidentBytes(), ResidentBytes(lib.Data); got != want {
		t.Fatalf("analytic ResidentBytes = %d, scanned %d", got, want)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		rg := fatbin.Range{
			Start: int64(r.Intn(len(lib.Data)+20) - 10),
			End:   int64(r.Intn(len(lib.Data)+20) - 10),
		}
		if got, want := x.NonZeroBytesIn(rg), NonZeroBytesIn(lib.Data, rg); got != want {
			t.Fatalf("analytic NonZeroBytesIn(%v) = %d, scanned %d", rg, got, want)
		}
	}
}

// TestLibIndexConcurrentFirstTouch exercises the lazy memo from many
// goroutines at once — the pool-worker pattern of the batch service — and
// is part of the CI race job.
func TestLibIndexConcurrentFirstTouch(t *testing.T) {
	lib := indexedLib(t)
	libs := make([]*Library, 8)
	for i := range libs {
		l, err := Parse("libidx.so", append([]byte(nil), lib.Data...))
		if err != nil {
			t.Fatal(err)
		}
		libs[i] = l
	}
	var wg sync.WaitGroup
	got := make([]*LibIndex, 64)
	for i := 0; i < len(got); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := libs[i%len(libs)].Index()
			_ = x.NonZeroBytes()
			_ = x.ElementsWithEntry("entry_k")
			got[i] = x
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i].Digest != got[0].Digest {
			t.Fatal("concurrent first-touch produced divergent indexes")
		}
	}
}
