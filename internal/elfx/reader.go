package elfx

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"negativaml/internal/fatbin"
)

// Section is a parsed section header with its file range.
type Section struct {
	Name  string
	Type  uint32
	Flags uint64
	Addr  int64
	Range fatbin.Range
}

// Function is a CPU function recovered from the symbol table, with the file
// range its code occupies.
type Function struct {
	Name  string
	Range fatbin.Range
}

// Library is a parsed ELF shared library held in memory. Data is immutable
// after Parse — the analysis index and every downstream memo rely on it.
type Library struct {
	Name     string
	Data     []byte
	Sections []Section
	Funcs    []Function

	// Machine is the ELF header's e_machine (EMX8664, EMAarch64, …).
	Machine uint16
	// Soname is the DT_SONAME from the dynamic section, empty when absent.
	Soname string
	// Needed lists DT_NEEDED dependencies in dynamic-section order.
	Needed []string

	// idx caches the lazily built analysis index (see Index).
	idx atomic.Pointer[LibIndex]
}

// Parse decodes an ELF64 shared library built by this package (and any
// little-endian ELF64 with standard section/symbol tables).
func Parse(name string, data []byte) (*Library, error) {
	le := binary.LittleEndian
	if len(data) < elfHeaderSize {
		return nil, fmt.Errorf("elfx: %s: file too short", name)
	}
	if data[0] != 0x7f || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, fmt.Errorf("elfx: %s: bad ELF magic", name)
	}
	if data[4] != 2 || data[5] != 1 {
		return nil, fmt.Errorf("elfx: %s: not little-endian ELF64", name)
	}
	shoff := int64(le.Uint64(data[40:]))
	shentsize := int64(le.Uint16(data[58:]))
	shnum := int(le.Uint16(data[60:]))
	shstrndx := int(le.Uint16(data[62:]))
	if shentsize != sectionHeaderSize {
		return nil, fmt.Errorf("elfx: %s: unexpected shentsize %d", name, shentsize)
	}
	if shoff <= 0 || shoff+int64(shnum)*shentsize > int64(len(data)) {
		return nil, fmt.Errorf("elfx: %s: section header table out of range", name)
	}
	if shstrndx >= shnum {
		return nil, fmt.Errorf("elfx: %s: shstrndx out of range", name)
	}

	type rawSh struct {
		nameOff   uint32
		typ       uint32
		flags     uint64
		addr      uint64
		off, size int64
		link      uint32
	}
	raw := make([]rawSh, shnum)
	for i := 0; i < shnum; i++ {
		h := data[shoff+int64(i)*shentsize:]
		raw[i] = rawSh{
			nameOff: le.Uint32(h[0:]),
			typ:     le.Uint32(h[4:]),
			flags:   le.Uint64(h[8:]),
			addr:    le.Uint64(h[16:]),
			off:     int64(le.Uint64(h[24:])),
			size:    int64(le.Uint64(h[32:])),
			link:    le.Uint32(h[40:]),
		}
	}
	// Validate every section range up front; offsets and sizes come from
	// untrusted u64 fields and can be negative after the int64 conversion.
	for i, s := range raw {
		if s.typ == shtNull {
			continue
		}
		if s.off < 0 || s.size < 0 || s.off > int64(len(data)) || s.size > int64(len(data))-s.off {
			return nil, fmt.Errorf("elfx: %s: section %d out of range", name, i)
		}
	}
	strSec := raw[shstrndx]
	shstr := data[strSec.off : strSec.off+strSec.size]
	readStr := func(tab []byte, off uint32) string {
		if int(off) >= len(tab) {
			return ""
		}
		end := int(off)
		for end < len(tab) && tab[end] != 0 {
			end++
		}
		return string(tab[off:end])
	}

	lib := &Library{Name: name, Data: data, Machine: le.Uint16(data[18:])}
	for _, s := range raw {
		lib.Sections = append(lib.Sections, Section{
			Name:  readStr(shstr, s.nameOff),
			Type:  s.typ,
			Flags: s.flags,
			Addr:  int64(s.addr),
			Range: fatbin.Range{Start: s.off, End: s.off + s.size},
		})
	}

	// Decode the dynamic section when present: DT_SONAME names the library,
	// DT_NEEDED entries are the dependency edges the ingestion closure walks.
	for i, s := range raw {
		if s.typ != shtDynamic {
			continue
		}
		if int(s.link) >= shnum {
			return nil, fmt.Errorf("elfx: %s: dynamic link out of range", name)
		}
		str := raw[s.link]
		soname, needed, err := ParseDynamic(data[s.off:s.off+s.size], data[str.off:str.off+str.size])
		if err != nil {
			return nil, fmt.Errorf("elfx: %s: section %d: %w", name, i, err)
		}
		lib.Soname, lib.Needed = soname, needed
		break
	}

	// Recover functions from .symtab (preferred) or .dynsym.
	symIdx := -1
	for i, s := range raw {
		if s.typ == shtSymtab {
			symIdx = i
			break
		}
	}
	if symIdx < 0 {
		for i, s := range raw {
			if s.typ == shtDynsym {
				symIdx = i
				break
			}
		}
	}
	if symIdx >= 0 {
		symSec := raw[symIdx]
		if int(symSec.link) >= shnum {
			return nil, fmt.Errorf("elfx: %s: symtab link out of range", name)
		}
		strSec := raw[symSec.link]
		strs := data[strSec.off : strSec.off+strSec.size]
		n := int(symSec.size / symEntrySize)
		for i := 1; i < n; i++ { // skip null symbol
			s := data[symSec.off+int64(i*symEntrySize):]
			info := s[4]
			if info&0xf != sttFunc {
				continue
			}
			shndx := int(le.Uint16(s[6:]))
			value := int64(le.Uint64(s[8:]))
			size := int64(le.Uint64(s[16:]))
			if shndx <= 0 || shndx >= shnum {
				continue
			}
			sect := raw[shndx]
			// File offset = value - sh_addr + sh_offset.
			off := value - int64(sect.addr) + sect.off
			if off < 0 || size < 0 || off > int64(len(data)) || size > int64(len(data))-off {
				continue // damaged symbol; skip rather than index out of range
			}
			lib.Funcs = append(lib.Funcs, Function{
				Name:  readStr(strs, le.Uint32(s[0:])),
				Range: fatbin.Range{Start: off, End: off + size},
			})
		}
	}
	return lib, nil
}

// Section returns the named section, or nil.
func (l *Library) Section(name string) *Section {
	for i := range l.Sections {
		if l.Sections[i].Name == name {
			return &l.Sections[i]
		}
	}
	return nil
}

// FatbinRange returns the file range of the .nv_fatbin section and whether
// the library has one with non-zero size.
func (l *Library) FatbinRange() (fatbin.Range, bool) {
	s := l.Section(FatbinSection)
	if s == nil || s.Range.Len() == 0 {
		return fatbin.Range{}, false
	}
	return s.Range, true
}

// Fatbin parses the library's .nv_fatbin section. Returns nil, false when
// the library carries no GPU code.
func (l *Library) Fatbin() (*fatbin.FatBin, bool, error) {
	r, ok := l.FatbinRange()
	if !ok {
		return nil, false, nil
	}
	fb, err := fatbin.Parse(l.Data[r.Start:r.End])
	if err != nil {
		return nil, true, fmt.Errorf("elfx: %s: %w", l.Name, err)
	}
	return fb, true, nil
}

// FileSize returns the library's file size in bytes.
func (l *Library) FileSize() int64 { return int64(len(l.Data)) }

// TextSize returns the size of the .text (CPU code) section.
func (l *Library) TextSize() int64 {
	if s := l.Section(".text"); s != nil {
		return s.Range.Len()
	}
	return 0
}

// GPUCodeSize returns the size of the .nv_fatbin section.
func (l *Library) GPUCodeSize() int64 {
	if s := l.Section(FatbinSection); s != nil {
		return s.Range.Len()
	}
	return 0
}

// FindFunction returns the function with the given name, or nil.
func (l *Library) FindFunction(name string) *Function {
	for i := range l.Funcs {
		if l.Funcs[i].Name == name {
			return &l.Funcs[i]
		}
	}
	return nil
}

// FunctionAlive reports whether the function's code range is still present
// (not zeroed out by compaction).
func (l *Library) FunctionAlive(f *Function) bool {
	if f.Range.Start < 0 || f.Range.End > int64(len(l.Data)) {
		return false
	}
	return fatbin.AnyNonZero(l.Data[f.Range.Start:f.Range.End])
}
