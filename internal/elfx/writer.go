package elfx

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// ELF constants (subset needed for ET_DYN x86-64 libraries).
const (
	elfHeaderSize     = 64
	progHeaderSize    = 56
	sectionHeaderSize = 64
	symEntrySize      = 24

	etDyn = 3

	ptLoad = 1
	pfX    = 1
	pfW    = 2
	pfR    = 4

	shtNull     = 0
	shtProgbits = 1
	shtSymtab   = 2
	shtStrtab   = 3
	shtDynamic  = 6
	shtDynsym   = 11

	dynEntrySize = 16
	dtNull       = 0
	dtNeeded     = 1
	dtSoname     = 14

	shfWrite     = 1
	shfAlloc     = 2
	shfExecinstr = 4

	sttFunc   = 2
	stbGlobal = 1
)

// FatbinSection is the name of the GPU-code section in ML shared libraries.
const FatbinSection = ".nv_fatbin"

// Machine architectures accepted by the builder and reported by the reader.
const (
	EMX8664   = 62  // x86-64
	EMAarch64 = 183 // 64-bit ARM
)

// FuncSpec describes one CPU function to place in .text.
type FuncSpec struct {
	Name string
	Size int
}

// Builder assembles an ELF64 shared library.
type Builder struct {
	soname  string
	machine uint16
	needed  []string
	funcs   []FuncSpec
	fatbin  []byte
	rodata  []byte
	data    []byte
}

// NewBuilder returns a Builder for a library with the given soname.
func NewBuilder(soname string) *Builder {
	return &Builder{soname: soname, machine: EMX8664}
}

// AddNeeded records a DT_NEEDED dependency on the named library. Order is
// preserved in the emitted .dynamic section.
func (b *Builder) AddNeeded(soname string) { b.needed = append(b.needed, soname) }

// SetMachine overrides the ELF header's e_machine (default EMX8664).
func (b *Builder) SetMachine(m uint16) { b.machine = m }

// AddFunction appends a CPU function of the given code size to .text.
// Sizes below 16 bytes are rounded up to 16 so every function body is
// distinguishable from zeroed (compacted) code.
func (b *Builder) AddFunction(name string, size int) {
	if size < 16 {
		size = 16
	}
	b.funcs = append(b.funcs, FuncSpec{Name: name, Size: size})
}

// SetFatbin installs the serialized fatbin as the .nv_fatbin section.
func (b *Builder) SetFatbin(blob []byte) { b.fatbin = blob }

// SetRodata installs read-only data.
func (b *Builder) SetRodata(blob []byte) { b.rodata = blob }

// SetData installs writable data.
func (b *Builder) SetData(blob []byte) { b.data = blob }

// fillCode writes a deterministic, never-zero code pattern derived from the
// function name, so compaction (zeroing) is detectable and builds are
// reproducible.
func fillCode(dst []byte, name string) {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := h.Sum64()
	for i := range dst {
		v := byte(seed >> (uint(i%8) * 8))
		if v == 0 {
			v = 0x90 // nop
		}
		dst[i] = v
	}
}

func align(n, a int64) int64 {
	if rem := n % a; rem != 0 {
		return n + a - rem
	}
	return n
}

// Build serializes the library. Section virtual addresses equal file offsets
// (a single PT_LOAD maps the whole file), so symbol values are directly file
// offsets — the property the compactor relies on to keep memory addresses
// valid while zeroing file ranges (paper §3.2, Compaction).
func (b *Builder) Build() ([]byte, error) {
	if b.soname == "" {
		return nil, fmt.Errorf("elfx: empty soname")
	}
	names := make(map[string]bool, len(b.funcs))
	for _, f := range b.funcs {
		if f.Name == "" {
			return nil, fmt.Errorf("elfx: empty function name")
		}
		if names[f.Name] {
			return nil, fmt.Errorf("elfx: duplicate function %q", f.Name)
		}
		names[f.Name] = true
	}

	// ---- String tables ----
	// .strtab holds \0 then function names. .dynstr extends that layout with
	// the soname and DT_NEEDED names, so dynsym name offsets are valid in both.
	strtab := []byte{0}
	nameOff := make([]uint32, len(b.funcs))
	for i, f := range b.funcs {
		nameOff[i] = uint32(len(strtab))
		strtab = append(strtab, f.Name...)
		strtab = append(strtab, 0)
	}
	dynstr := append([]byte(nil), strtab...)
	sonameOff := uint64(len(dynstr))
	dynstr = append(dynstr, b.soname...)
	dynstr = append(dynstr, 0)
	neededOff := make([]uint64, len(b.needed))
	for i, n := range b.needed {
		if n == "" {
			return nil, fmt.Errorf("elfx: empty DT_NEEDED name")
		}
		neededOff[i] = uint64(len(dynstr))
		dynstr = append(dynstr, n...)
		dynstr = append(dynstr, 0)
	}

	// ---- .dynamic ----
	// DT_SONAME, one DT_NEEDED per dependency, DT_NULL terminator.
	dynamic := make([]byte, (2+len(b.needed))*dynEntrySize)
	le := binary.LittleEndian
	le.PutUint64(dynamic[0:], dtSoname)
	le.PutUint64(dynamic[8:], sonameOff)
	for i := range b.needed {
		e := dynamic[(1+i)*dynEntrySize:]
		le.PutUint64(e[0:], dtNeeded)
		le.PutUint64(e[8:], neededOff[i])
	}

	shnames := []string{"", ".text", ".rodata", ".data", FatbinSection, ".dynstr", ".dynsym", ".dynamic", ".strtab", ".symtab", ".shstrtab"}
	shstrtab := []byte{0}
	shNameOff := make([]uint32, len(shnames))
	for i, n := range shnames {
		if i == 0 {
			continue
		}
		shNameOff[i] = uint32(len(shstrtab))
		shstrtab = append(shstrtab, n...)
		shstrtab = append(shstrtab, 0)
	}

	// ---- .text ----
	var textSize int64
	funcOff := make([]int64, len(b.funcs))
	for i, f := range b.funcs {
		funcOff[i] = textSize
		textSize += align(int64(f.Size), 16)
	}
	text := make([]byte, textSize)
	for i, f := range b.funcs {
		fillCode(text[funcOff[i]:funcOff[i]+int64(f.Size)], f.Name)
	}

	// ---- Symbol tables ----
	// .symtab holds every function (entry 0 is the mandatory null symbol).
	// .dynsym exports only every eighth function, as real libraries hide
	// internal symbols and export a curated surface.
	symCount := 1 + len(b.funcs)
	symtabSize := int64(symCount * symEntrySize)
	var exported []int
	for i := range b.funcs {
		if i%8 == 0 {
			exported = append(exported, i)
		}
	}
	dynsymSize := int64((1 + len(exported)) * symEntrySize)

	// ---- Layout ----
	off := int64(elfHeaderSize + progHeaderSize)
	textOff := align(off, 16)
	rodataOff := align(textOff+textSize, 16)
	dataOff := align(rodataOff+int64(len(b.rodata)), 16)
	fatbinOff := align(dataOff+int64(len(b.data)), 16)
	dynstrOff := align(fatbinOff+int64(len(b.fatbin)), 8)
	dynsymOff := align(dynstrOff+int64(len(dynstr)), 8)
	dynamicOff := dynsymOff + dynsymSize
	strtabOff := dynamicOff + int64(len(dynamic))
	symtabOff := align(strtabOff+int64(len(strtab)), 8)
	shstrtabOff := symtabOff + symtabSize
	shdrOff := align(shstrtabOff+int64(len(shstrtab)), 8)
	total := shdrOff + int64(len(shnames))*sectionHeaderSize

	buf := make([]byte, total)

	// ---- ELF header ----
	copy(buf[0:], []byte{0x7f, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*version*/})
	le.PutUint16(buf[16:], etDyn)
	le.PutUint16(buf[18:], b.machine)
	le.PutUint32(buf[20:], 1)
	le.PutUint64(buf[24:], 0)                      // e_entry
	le.PutUint64(buf[32:], elfHeaderSize)          // e_phoff
	le.PutUint64(buf[40:], uint64(shdrOff))        // e_shoff
	le.PutUint32(buf[48:], 0)                      // e_flags
	le.PutUint16(buf[52:], elfHeaderSize)          // e_ehsize
	le.PutUint16(buf[54:], progHeaderSize)         // e_phentsize
	le.PutUint16(buf[56:], 1)                      // e_phnum
	le.PutUint16(buf[58:], sectionHeaderSize)      // e_shentsize
	le.PutUint16(buf[60:], uint16(len(shnames)))   // e_shnum
	le.PutUint16(buf[62:], uint16(len(shnames)-1)) // e_shstrndx

	// ---- Program header: one PT_LOAD mapping the whole file, vaddr==offset ----
	ph := buf[elfHeaderSize:]
	le.PutUint32(ph[0:], ptLoad)
	le.PutUint32(ph[4:], pfR|pfW|pfX)
	le.PutUint64(ph[8:], 0)              // p_offset
	le.PutUint64(ph[16:], 0)             // p_vaddr
	le.PutUint64(ph[24:], 0)             // p_paddr
	le.PutUint64(ph[32:], uint64(total)) // p_filesz
	le.PutUint64(ph[40:], uint64(total)) // p_memsz
	le.PutUint64(ph[48:], 0x1000)        // p_align

	// ---- Section contents ----
	copy(buf[textOff:], text)
	copy(buf[rodataOff:], b.rodata)
	copy(buf[dataOff:], b.data)
	copy(buf[fatbinOff:], b.fatbin)
	copy(buf[dynstrOff:], dynstr)
	copy(buf[dynamicOff:], dynamic)
	copy(buf[strtabOff:], strtab)
	copy(buf[shstrtabOff:], shstrtab)

	writeSym := func(symOff int64, slot, i int) {
		s := buf[symOff+int64((slot+1)*symEntrySize):]
		le.PutUint32(s[0:], nameOff[i])
		s[4] = stbGlobal<<4 | sttFunc // st_info
		s[5] = 0                      // st_other
		le.PutUint16(s[6:], 1)        // st_shndx = .text
		le.PutUint64(s[8:], uint64(textOff+funcOff[i]))
		le.PutUint64(s[16:], uint64(b.funcs[i].Size))
	}
	for slot, i := range exported {
		writeSym(dynsymOff, slot, i)
	}
	for i := range b.funcs {
		writeSym(symtabOff, i, i)
	}

	// ---- Section headers ----
	type sh struct {
		nameIdx             int
		typ, flags          uint32
		off, size           int64
		link, info, entsize uint32
		addralign           uint64
	}
	sections := []sh{
		{0, shtNull, 0, 0, 0, 0, 0, 0, 0},
		{1, shtProgbits, shfAlloc | shfExecinstr, textOff, textSize, 0, 0, 0, 16},
		{2, shtProgbits, shfAlloc, rodataOff, int64(len(b.rodata)), 0, 0, 0, 16},
		{3, shtProgbits, shfAlloc | shfWrite, dataOff, int64(len(b.data)), 0, 0, 0, 16},
		{4, shtProgbits, shfAlloc, fatbinOff, int64(len(b.fatbin)), 0, 0, 0, 16},
		{5, shtStrtab, shfAlloc, dynstrOff, int64(len(dynstr)), 0, 0, 0, 1},
		{6, shtDynsym, shfAlloc, dynsymOff, dynsymSize, 5, 1, symEntrySize, 8},
		{7, shtDynamic, shfAlloc | shfWrite, dynamicOff, int64(len(dynamic)), 5, 0, dynEntrySize, 8},
		{8, shtStrtab, 0, strtabOff, int64(len(strtab)), 0, 0, 0, 1},
		{9, shtSymtab, 0, symtabOff, symtabSize, 8, 1, symEntrySize, 8},
		{10, shtStrtab, 0, shstrtabOff, int64(len(shstrtab)), 0, 0, 0, 1},
	}
	for i, s := range sections {
		hdr := buf[shdrOff+int64(i*sectionHeaderSize):]
		le.PutUint32(hdr[0:], shNameOff[s.nameIdx])
		le.PutUint32(hdr[4:], s.typ)
		le.PutUint64(hdr[8:], uint64(s.flags))
		if s.flags&shfAlloc != 0 {
			le.PutUint64(hdr[16:], uint64(s.off)) // sh_addr == file offset
		}
		le.PutUint64(hdr[24:], uint64(s.off))
		le.PutUint64(hdr[32:], uint64(s.size))
		le.PutUint32(hdr[40:], s.link)
		le.PutUint32(hdr[44:], s.info)
		le.PutUint64(hdr[48:], s.addralign)
		le.PutUint64(hdr[56:], uint64(s.entsize))
	}
	return buf, nil
}

// SortFuncSpecs orders specs by name; generators use it for determinism.
func SortFuncSpecs(specs []FuncSpec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
}
