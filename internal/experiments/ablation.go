package experiments

import (
	"fmt"
	"strings"

	"negativaml/internal/gpuarch"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

// ---------------------------------------------------------------------------
// Ablation 1 — whole-cubin retention vs exact-kernel removal (§3.2).
// The paper retains whole cubins because GPU-launching kernels never pass
// through cuModuleGetFunction; this ablation measures what exact-kernel
// removal would save and shows that it breaks the workload.
// ---------------------------------------------------------------------------

// AblationData compares the two retention granularities.
type AblationData struct {
	Workload string
	// WholeCubinKeptKB / ExactKeptKB are retained GPU bytes in the core
	// library under each strategy.
	WholeCubinKeptKB float64
	ExactKeptKB      float64
	// WholeCubinVerifies / ExactVerifies report whether the workload still
	// runs after compaction.
	WholeCubinVerifies bool
	ExactVerifies      bool
	// ExactFailure is the error the broken run produced.
	ExactFailure string
}

// Ablation runs both retention strategies on the MobileNetV2 training
// workload.
func Ablation(s *Suite) (*AblationData, error) {
	spec := Table1Specs()[0]
	w, err := s.Workload(spec)
	if err != nil {
		return nil, err
	}
	profile, err := negativa.DetectUsage(w, 5)
	if err != nil {
		return nil, err
	}
	archs := []gpuarch.SM{w.Devices[0].Arch}
	d := &AblationData{Workload: spec.Name()}

	// Whole-cubin (the real pipeline).
	res, err := s.Debloat(spec)
	if err != nil {
		return nil, err
	}
	d.WholeCubinVerifies = res.Verified
	core := res.Lib(CoreLib(spec.Framework))
	d.WholeCubinKeptKB = float64(core.GPUSizeAfter) / 1024

	// Exact-kernel (the ablated locator).
	replaced := make(map[string][]byte)
	var exactCoreKept int64
	for _, name := range w.Install.LibNames {
		lib := w.Install.Library(name)
		cpuLoc := negativa.LocateCPU(lib, profile.UsedFuncs[name])
		exact, err := negativa.LocateGPUExact(lib, profile.UsedKernels[name], archs)
		if err != nil {
			return nil, err
		}
		out, err := negativa.CompactExact(lib, cpuLoc, exact, archs)
		if err != nil {
			return nil, err
		}
		replaced[name] = out
		if name == CoreLib(spec.Framework) {
			for _, r := range exact.Keep {
				exactCoreKept += r.Len()
			}
		}
	}
	d.ExactKeptKB = float64(exactCoreKept) / 1024
	clone, err := w.Install.CloneWithLibs(replaced)
	if err != nil {
		return nil, err
	}
	w2 := w
	w2.Install = clone
	if _, err := mlruntime.Run(w2, mlruntime.Options{MaxSteps: 5}); err != nil {
		d.ExactVerifies = false
		d.ExactFailure = err.Error()
	} else {
		d.ExactVerifies = true
	}
	return d, nil
}

// RenderAblation prints the comparison.
func RenderAblation(d *AblationData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: whole-cubin retention vs exact-kernel removal (%s)\n", d.Workload)
	fmt.Fprintf(&b, "  whole-cubin (paper): keeps %7.1f KB of core-library GPU code, workload verifies: %v\n",
		d.WholeCubinKeptKB, d.WholeCubinVerifies)
	fmt.Fprintf(&b, "  exact-kernel:        keeps %7.1f KB,                          workload verifies: %v\n",
		d.ExactKeptKB, d.ExactVerifies)
	if d.ExactFailure != "" {
		fmt.Fprintf(&b, "  exact-kernel failure: %s\n", d.ExactFailure)
	}
	fmt.Fprintf(&b, "  -> the extra %0.1f KB is the price of keeping GPU-launching kernels alive.\n",
		d.WholeCubinKeptKB-d.ExactKeptKB)
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation 2 — detection coverage saturation. The pipeline caps profiled
// steps; this measures how fast the used-kernel set converges.
// ---------------------------------------------------------------------------

// CoveragePoint is the kernel count detected after N steps.
type CoveragePoint struct {
	Steps   int
	Kernels int
}

// CoverageSaturation profiles the MobileNetV2 training workload with
// growing step caps.
func CoverageSaturation(s *Suite) ([]CoveragePoint, error) {
	spec := Table1Specs()[0]
	w, err := s.Workload(spec)
	if err != nil {
		return nil, err
	}
	var out []CoveragePoint
	for _, steps := range []int{1, 2, 4, 8, 32} {
		p, err := negativa.DetectUsage(w, steps)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, ks := range p.UsedKernels {
			n += len(ks)
		}
		out = append(out, CoveragePoint{Steps: steps, Kernels: n})
	}
	return out, nil
}

// RenderCoverage prints the saturation curve.
func RenderCoverage(pts []CoveragePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection coverage saturation (PyTorch/Train/MobileNetV2):\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "  %3d step(s): %3d kernels detected\n", p.Steps, p.Kernels)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Used bloat (§5) — functions executed only during initialization.
// ---------------------------------------------------------------------------

// UsedBloatRow summarizes one framework's used-bloat candidates.
type UsedBloatRow struct {
	Workload    string
	InitOnly    int
	SteadyState int
	Fraction    float64
}

// UsedBloat analyzes the PyTorch and TensorFlow MobileNetV2 training
// workloads — the comparison behind the paper's §5 hypothesis.
func UsedBloat(s *Suite) ([]UsedBloatRow, error) {
	var rows []UsedBloatRow
	for _, idx := range []int{0, 2} { // PyTorch/Train, TensorFlow/Train
		spec := Table1Specs()[idx]
		w, err := s.Workload(spec)
		if err != nil {
			return nil, err
		}
		rep, err := negativa.AnalyzeUsedBloat(w, 5)
		if err != nil {
			return nil, err
		}
		rows = append(rows, UsedBloatRow{
			Workload:    spec.Name(),
			InitOnly:    rep.InitOnlyCount(),
			SteadyState: rep.SteadyStateCount(),
			Fraction:    rep.InitOnlyFraction(),
		})
	}
	return rows, nil
}

// RenderUsedBloat prints the comparison.
func RenderUsedBloat(rows []UsedBloatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Used bloat (§5): functions executed only at init, never by the step loop\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s init-only %5d  steady-state %4d  (%.0f%% of used functions are used-bloat candidates)\n",
			r.Workload, r.InitOnly, r.SteadyState, 100*r.Fraction)
	}
	return b.String()
}
