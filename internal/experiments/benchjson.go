package experiments

import (
	"encoding/json"
	"os"
)

// BenchEntry is one machine-readable benchmark datum: a named scalar with
// its unit. Entries are deliberately schema-light so future PRs can add
// series without migrations.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// BenchDoc is the on-disk shape of a benchmark JSON file.
type BenchDoc struct {
	Entries []BenchEntry `json:"entries"`
}

// WriteBenchJSON writes entries to path as indented JSON — the perf
// trajectory file (e.g. BENCH_serve.json) consumed by future PRs and CI.
func WriteBenchJSON(path string, entries []BenchEntry) error {
	out, err := json.MarshalIndent(BenchDoc{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ReadBenchJSON loads a trajectory file written by WriteBenchJSON.
// Consumers (cmd/benchdiff, future comparisons) should treat missing
// entries as "metric not measured", not as zero.
func ReadBenchJSON(path string) (BenchDoc, error) {
	var doc BenchDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	err = json.Unmarshal(raw, &doc)
	return doc, err
}
