// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Each experiment has a runner returning structured data
// and a renderer that prints the same rows the paper reports. The
// per-experiment index lives in DESIGN.md §3; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package experiments
