package experiments

import (
	"strings"
	"testing"

	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

func TestTable1SpecsShape(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 10 {
		t.Fatalf("specs = %d, want 10 (Table 1)", len(specs))
	}
	names := map[string]bool{}
	fw := map[string]int{}
	for _, s := range specs {
		if names[s.Name()] {
			t.Errorf("duplicate workload %s", s.Name())
		}
		names[s.Name()] = true
		fw[s.Framework]++
		if len(s.Devices) == 0 || s.PerItemCompute <= 0 {
			t.Errorf("%s: incomplete spec", s.Name())
		}
		if s.Graph() == nil {
			t.Errorf("%s: no graph", s.Name())
		}
	}
	if fw[mlframework.PyTorch] != 4 || fw[mlframework.TensorFlow] != 4 ||
		fw[mlframework.VLLM] != 1 || fw[mlframework.HFTransformers] != 1 {
		t.Errorf("framework mix = %v", fw)
	}
}

func TestH100Specs(t *testing.T) {
	for _, mode := range []string{"eager", "lazy"} {
		_ = mode
	}
	specs := H100Specs(0)
	if len(specs) != 2 {
		t.Fatalf("H100 specs = %d, want 2", len(specs))
	}
	for _, s := range specs {
		if s.Devices[0].Name != "NVIDIA H100" {
			t.Errorf("%s: wrong device %s", s.Name(), s.Devices[0].Name)
		}
	}
}

// cheapSpec is the cheapest Table 1 workload (single inference batch).
func cheapSpec() Spec { return Table1Specs()[1] } // PyTorch/Inference/MobileNetV2

func TestSuiteCachesResults(t *testing.T) {
	s := NewSuite()
	r1, err := s.Debloat(cheapSpec())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Debloat(cheapSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("suite should cache pipeline results")
	}
	in1, _ := s.Install(mlframework.PyTorch, 98)
	in2, _ := s.Install(mlframework.PyTorch, 98)
	if in1 != in2 {
		t.Error("suite should cache installs")
	}
}

func TestRuntimeRowImproves(t *testing.T) {
	s := NewSuite()
	row, err := runtimeRow(s, cheapSpec())
	if err != nil {
		t.Fatal(err)
	}
	if row.CPURedPct <= 0 || row.GPURedPct <= 0 || row.ExecRedPct <= 0 {
		t.Errorf("debloating must improve runtime: %+v", row)
	}
	if row.ExecSaved <= 0 {
		t.Error("exec time saving must be positive")
	}
}

func TestFigure6From(t *testing.T) {
	res := &negativa.Result{
		Libs: []*negativa.LibraryReport{
			{Name: "a", FileEffective: 1000, FileEffectiveAfter: 100}, // saved 900
			{Name: "b", FileEffective: 500, FileEffectiveAfter: 450},  // saved 50
			{Name: "c", FileEffective: 300, FileEffectiveAfter: 250},  // saved 50
		},
	}
	d := figure6From(res)
	if d.Points[0].Label != "a" {
		t.Errorf("pareto order wrong: %v", d.Points)
	}
	if d.Top8SharePct != 100 {
		t.Errorf("top8 share = %v", d.Top8SharePct)
	}
	if want := 90.0; d.Top10PctSharePct != want {
		t.Errorf("top10%% share = %v, want %v", d.Top10PctSharePct, want)
	}
}

func TestFigure1Shares(t *testing.T) {
	s := NewSuite()
	rows, err := Figure1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The top library must be GPU-dominated (the paper's headline).
	if rows[0].GPUPct < 50 {
		t.Errorf("largest library should be GPU-dominated, got %.1f%%", rows[0].GPUPct)
	}
	for _, r := range rows {
		sum := r.CPUPct + r.GPUPct + r.OtherPct
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s: shares sum to %.1f", r.Lib, sum)
		}
	}
	if out := RenderFigure1(rows); !strings.Contains(out, "Figure 1") {
		t.Error("render missing caption")
	}
}

func TestCoreLib(t *testing.T) {
	if CoreLib(mlframework.TensorFlow) != "libtensorflow_cc.so.2" {
		t.Error("TF core lib wrong")
	}
	for _, fw := range []string{mlframework.PyTorch, mlframework.VLLM, mlframework.HFTransformers} {
		if CoreLib(fw) != "libtorch_cuda.so" {
			t.Errorf("%s core lib wrong", fw)
		}
	}
}

// The paper's qualitative claims, asserted on the cheapest workload.
func TestPaperClaimsOnCheapWorkload(t *testing.T) {
	s := NewSuite()
	res, err := s.Debloat(cheapSpec())
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregate()
	if agg.GPUReductionPct() < 66 {
		t.Errorf("GPU code reduction %.1f%% below the paper's floor (66%%)", agg.GPUReductionPct())
	}
	if agg.CPUReductionPct() < 46 {
		t.Errorf("CPU code reduction %.1f%% below the paper's floor (46%%)", agg.CPUReductionPct())
	}
	if agg.ElemReductionPct() < 90 {
		t.Errorf("element reduction %.1f%% too low", agg.ElemReductionPct())
	}
	if !res.Verified {
		t.Error("workload must verify after debloating")
	}
}

func TestRenderers(t *testing.T) {
	s := NewSuite()
	res, err := s.Debloat(cheapSpec())
	if err != nil {
		t.Fatal(err)
	}
	row := table2Row(cheapSpec(), res)
	if out := RenderTable2([]Table2Row{row}); !strings.Contains(out, "MobileNetV2") {
		t.Error("Table 2 render missing workload")
	}
	t8 := []Table8Row{{Spec: cheapSpec(), Libs: 111, EndToEnd: res.EndToEnd}}
	if out := RenderTable8(t8); !strings.Contains(out, "Time/s") {
		t.Error("Table 8 render missing header")
	}
	if out := RenderOverhead(&OverheadData{DetectorPct: 41, NSysPct: 126}); !strings.Contains(out, "41") {
		t.Error("overhead render wrong")
	}
}
