package experiments

import (
	"fmt"
	"strings"

	"negativaml/internal/metrics"
	"negativaml/internal/negativa"
)

// ---------------------------------------------------------------------------
// Figure 5 — violin distributions of per-library reductions.
// ---------------------------------------------------------------------------

// Fig5Data summarizes the four distributions of Figure 5 pooled across all
// ten workloads (CPU-only libraries are excluded from GPU samples, as the
// paper excludes libraries without GPU code).
type Fig5Data struct {
	CPUSizeRed metrics.Distribution
	GPUSizeRed metrics.Distribution
	FuncCntRed metrics.Distribution
	ElemCntRed metrics.Distribution
}

// Figure5 computes the per-library reduction distributions.
func Figure5(s *Suite) (*Fig5Data, error) {
	var cpu, gpu, fn, el []float64
	for _, spec := range Table1Specs() {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		for _, lr := range res.Libs {
			if lr.CPUSize > 0 {
				cpu = append(cpu, lr.CPUReductionPct())
			}
			if lr.FuncCount > 0 {
				fn = append(fn, lr.FuncReductionPct())
			}
			if lr.HasGPU() {
				gpu = append(gpu, lr.GPUReductionPct())
				el = append(el, lr.ElemReductionPct())
			}
		}
	}
	return &Fig5Data{
		CPUSizeRed: metrics.Summarize(cpu),
		GPUSizeRed: metrics.Summarize(gpu),
		FuncCntRed: metrics.Summarize(fn),
		ElemCntRed: metrics.Summarize(el),
	}, nil
}

// RenderFigure5 prints the distribution summaries.
func RenderFigure5(d *Fig5Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: per-library reduction distributions (percent)\n")
	fmt.Fprintf(&b, "  CPU code size reduction:      %s\n", d.CPUSizeRed)
	fmt.Fprintf(&b, "  GPU code size reduction:      %s\n", d.GPUSizeRed)
	fmt.Fprintf(&b, "  CPU function count reduction: %s\n", d.FuncCntRed)
	fmt.Fprintf(&b, "  GPU element count reduction:  %s\n", d.ElemCntRed)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — Pareto chart of file-size reduction per library for the
// PyTorch / Train / MobileNetV2 workload.
// ---------------------------------------------------------------------------

// Fig6Data is the Pareto series plus the paper's headline shares.
type Fig6Data struct {
	Points []metrics.ParetoPoint
	// Top8SharePct: the paper reports the top 8 of 113 libraries covering
	// 90% of the reduction.
	Top8SharePct float64
	// Top10PctSharePct: share covered by the top 10% of libraries.
	Top10PctSharePct float64
}

// Figure6 builds the Pareto data from the MobileNetV2 training workload.
func Figure6(s *Suite) (*Fig6Data, error) {
	spec := Table1Specs()[0] // PyTorch/Train/MobileNetV2
	res, err := s.Debloat(spec)
	if err != nil {
		return nil, err
	}
	return figure6From(res), nil
}

func figure6From(res *negativa.Result) *Fig6Data {
	var labels []string
	var saved []float64
	for _, lr := range res.Libs {
		labels = append(labels, lr.Name)
		saved = append(saved, float64(lr.FileSavedBytes()))
	}
	pts := metrics.Pareto(labels, saved)
	top10 := len(pts) / 10
	if top10 < 1 {
		top10 = 1
	}
	return &Fig6Data{
		Points:           pts,
		Top8SharePct:     100 * metrics.TopShare(pts, 8),
		Top10PctSharePct: 100 * metrics.TopShare(pts, top10),
	}
}

// RenderFigure6 prints the top of the Pareto chart.
func RenderFigure6(d *Fig6Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Pareto of file-size reduction (PyTorch/Train/MobileNetV2)\n")
	n := len(d.Points)
	if n > 12 {
		n = 12
	}
	for i := 0; i < n; i++ {
		p := d.Points[i]
		fmt.Fprintf(&b, "  %2d %-28s %9.0f KB removed  cum %5.1f%%\n",
			i+1, p.Label, p.Value/1024, p.CumPct)
	}
	fmt.Fprintf(&b, "  top 8 libraries cover %.1f%% of total reduction\n", d.Top8SharePct)
	fmt.Fprintf(&b, "  top 10%% of libraries cover %.1f%% of total reduction\n", d.Top10PctSharePct)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — reasons for removed GPU elements.
// ---------------------------------------------------------------------------

// Fig7Row is one workload's removal-reason split.
type Fig7Row struct {
	Spec        Spec
	ReasonIPct  float64 // arch mismatch
	ReasonIIPct float64 // matched arch, no used kernel
}

// Figure7 computes the removal-reason split for every workload.
func Figure7(s *Suite) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, spec := range Table1Specs() {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		var arch, unused int
		for _, lr := range res.Libs {
			arch += lr.RemovedArchMismatch
			unused += lr.RemovedNoUsedKernel
		}
		total := arch + unused
		if total == 0 {
			continue
		}
		rows = append(rows, Fig7Row{
			Spec:        spec,
			ReasonIPct:  100 * float64(arch) / float64(total),
			ReasonIIPct: 100 * float64(unused) / float64(total),
		})
	}
	return rows, nil
}

// RenderFigure7 prints the reason split per workload.
func RenderFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: reasons for removed GPU elements\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s Reason I %5.1f%%  Reason II %5.1f%%  |%s|\n",
			r.Spec.Name(), r.ReasonIPct, r.ReasonIIPct, metrics.AsciiBar(r.ReasonIPct/100, 30))
	}
	return b.String()
}
