package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
	"negativaml/internal/negativa"
)

// ---------------------------------------------------------------------------
// Table 5 / Table 7 — runtime performance with original vs debloated
// libraries (top-8 libraries by absolute reduction replaced, as in §4.4).
// ---------------------------------------------------------------------------

// RuntimeRow compares one workload's original and debloated runs.
type RuntimeRow struct {
	Spec Spec

	PeakCPUKB  float64
	CPURedPct  float64
	PeakGPUKB  float64
	GPURedPct  float64
	ExecTime   time.Duration
	ExecRedPct float64
	ExecSaved  time.Duration
	CPUSavedKB float64
	GPUSavedKB float64
}

// replaceTopLibs clones the install with the top-n libraries (by absolute
// effective file-size reduction) swapped for their debloated images.
func replaceTopLibs(w mlruntime.Workload, res *negativa.Result, n int) (mlruntime.Workload, error) {
	libs := append([]*negativa.LibraryReport(nil), res.Libs...)
	sort.Slice(libs, func(i, j int) bool { return libs[i].FileSavedBytes() > libs[j].FileSavedBytes() })
	if n > len(libs) {
		n = len(libs)
	}
	repl := make(map[string][]byte, n)
	for _, lr := range libs[:n] {
		repl[lr.Name] = lr.Debloated()
	}
	clone, err := w.Install.CloneWithLibs(repl)
	if err != nil {
		return mlruntime.Workload{}, err
	}
	out := w
	out.Install = clone
	return out, nil
}

// runtimeRow measures original vs debloated (top-8 replaced) runs.
func runtimeRow(s *Suite, spec Spec) (RuntimeRow, error) {
	res, err := s.Debloat(spec)
	if err != nil {
		return RuntimeRow{}, err
	}
	w, err := s.Workload(spec)
	if err != nil {
		return RuntimeRow{}, err
	}
	opt := mlruntime.Options{MaxSteps: spec.InferSteps}
	orig, err := mlruntime.Run(w, opt)
	if err != nil {
		return RuntimeRow{}, err
	}
	dw, err := replaceTopLibs(w, res, 8)
	if err != nil {
		return RuntimeRow{}, err
	}
	deb, err := mlruntime.Run(dw, opt)
	if err != nil {
		return RuntimeRow{}, err
	}
	if deb.Digest != orig.Digest {
		return RuntimeRow{}, fmt.Errorf("experiments: %s: debloated run diverged", spec.Name())
	}
	return RuntimeRow{
		Spec:       spec,
		PeakCPUKB:  float64(orig.PeakCPUBytes) / 1024,
		CPURedPct:  100 * float64(orig.PeakCPUBytes-deb.PeakCPUBytes) / float64(orig.PeakCPUBytes),
		PeakGPUKB:  float64(orig.PeakGPUBytes) / 1024,
		GPURedPct:  100 * float64(orig.PeakGPUBytes-deb.PeakGPUBytes) / float64(orig.PeakGPUBytes),
		ExecTime:   orig.ExecTime,
		ExecRedPct: 100 * float64(orig.ExecTime-deb.ExecTime) / float64(orig.ExecTime),
		ExecSaved:  orig.ExecTime - deb.ExecTime,
		CPUSavedKB: float64(orig.PeakCPUBytes-deb.PeakCPUBytes) / 1024,
		GPUSavedKB: float64(orig.PeakGPUBytes-deb.PeakGPUBytes) / 1024,
	}, nil
}

// Table5 measures runtime improvements for all ten Table 1 workloads.
func Table5(s *Suite) ([]RuntimeRow, error) {
	var rows []RuntimeRow
	for _, spec := range Table1Specs() {
		r, err := runtimeRow(s, spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table5Averages returns the average absolute reductions across rows
// (the paper's final Table 5 row).
func Table5Averages(rows []RuntimeRow) (cpuKB, gpuKB float64, exec time.Duration) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	var c, g float64
	var e time.Duration
	for _, r := range rows {
		c += r.CPUSavedKB
		g += r.GPUSavedKB
		e += r.ExecSaved
	}
	n := float64(len(rows))
	return c / n, g / n, time.Duration(float64(e) / n)
}

// RenderRuntime prints a runtime-performance table (Table 5 or 7).
func RenderRuntime(caption string, rows []RuntimeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (value (reduction%%))\n", caption)
	fmt.Fprintf(&b, "%-40s %18s %18s %14s\n", "Workload", "PeakCPU/KB", "PeakGPU/KB", "ExecTime/s")
	for _, r := range rows {
		name := r.Spec.Name()
		if r.Spec.Mode == cudasim.LazyLoading {
			name += " (lazy)"
		}
		fmt.Fprintf(&b, "%-40s %10.0f (%4.1f) %10.0f (%4.1f) %8.1f (%4.1f)\n",
			name, r.PeakCPUKB, r.CPURedPct, r.PeakGPUKB, r.GPURedPct,
			r.ExecTime.Seconds(), r.ExecRedPct)
	}
	cpu, gpu, exec := Table5Averages(rows)
	fmt.Fprintf(&b, "Average absolute reduction: CPU %.0f KB, GPU %.0f KB, time %.1f s\n",
		cpu, gpu, exec.Seconds())
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6 — size reductions on one H100, eager vs lazy.
// ---------------------------------------------------------------------------

// Table6Row is a Table 2-shaped row plus the loading mode.
type Table6Row struct {
	Table2Row
	Mode cudasim.LoadMode
}

// Table6 debloats the H100 LLM workloads under both loading modes.
func Table6(s *Suite) ([]Table6Row, error) {
	var rows []Table6Row
	for _, mode := range []cudasim.LoadMode{cudasim.EagerLoading, cudasim.LazyLoading} {
		for _, spec := range H100Specs(mode) {
			res, err := s.Debloat(spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table6Row{Table2Row: table2Row(spec, res), Mode: mode})
		}
	}
	return rows, nil
}

// RenderTable6 prints Table 6.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: H100 size reductions, eager vs lazy (value (reduction%%))\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-5s #Lib %3d  total %8.0f KB (%2.0f)  CPU %7.0f KB (%2.0f)  funcs %6d (%2.0f)  GPU %8.0f KB (%2.0f)  elems %5d (%2.0f)\n",
			r.Spec.Framework, r.Mode, r.Libs,
			r.TotalKB, r.TotalRedPct, r.CPUKB, r.CPURedPct,
			r.Funcs, r.FuncRedPct, r.GPUKB, r.GPURedPct, r.Elems, r.ElemRedPct)
	}
	return b.String()
}

// Table7 measures H100 runtime improvements under both loading modes.
func Table7(s *Suite) ([]RuntimeRow, error) {
	var rows []RuntimeRow
	for _, mode := range []cudasim.LoadMode{cudasim.EagerLoading, cudasim.LazyLoading} {
		for _, spec := range H100Specs(mode) {
			r, err := runtimeRow(s, spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// §4.6 — kernel detector vs NSys overhead.
// ---------------------------------------------------------------------------

// OverheadData is the §4.6 comparison.
type OverheadData struct {
	Base, Detector, NSys time.Duration
	DetectorPct, NSysPct float64
}

// Overhead measures tracer overheads on the PyTorch MobileNetV2 training
// workload (the paper's §4.6 setup).
func Overhead(s *Suite) (*OverheadData, error) {
	spec := Table1Specs()[0]
	w, err := s.Workload(spec)
	if err != nil {
		return nil, err
	}
	base, det, nsys, err := negativa.DetectionOverhead(w, 0)
	if err != nil {
		return nil, err
	}
	return &OverheadData{
		Base:        base,
		Detector:    det,
		NSys:        nsys,
		DetectorPct: 100 * float64(det-base) / float64(base),
		NSysPct:     100 * float64(nsys-base) / float64(base),
	}, nil
}

// RenderOverhead prints the overhead comparison.
func RenderOverhead(d *OverheadData) string {
	return fmt.Sprintf("Detection overhead (PyTorch/Train/MobileNetV2):\n"+
		"  original run:        %6.0f s\n"+
		"  with kernel detector:%6.0f s (+%.0f%%)\n"+
		"  with NSys tracing:   %6.0f s (+%.0f%%)\n",
		d.Base.Seconds(), d.Detector.Seconds(), d.DetectorPct, d.NSys.Seconds(), d.NSysPct)
}

// ---------------------------------------------------------------------------
// Table 10 — nine LLMs, distributed inference on 8xA100.
// ---------------------------------------------------------------------------

// Table10Row is one (framework, model) distributed-inference row.
type Table10Row struct {
	Framework string
	Model     string
	Row       Table2Row
}

// Table10 debloats the LLM zoo under 8-GPU tensor-parallel inference for
// both LLM frameworks.
func Table10(s *Suite) ([]Table10Row, error) {
	a100x8 := make([]gpuarch.Device, 8)
	for i := range a100x8 {
		a100x8[i] = gpuarch.A100
	}
	var rows []Table10Row
	for _, fw := range []string{mlframework.VLLM, mlframework.HFTransformers} {
		tail := 122
		if fw == mlframework.HFTransformers {
			tail = 81
		}
		in, err := s.Install(fw, tail)
		if err != nil {
			return nil, err
		}
		for _, cfg := range models.LLMZoo(fw == mlframework.VLLM, 8) {
			w := mlruntime.Workload{
				Name:           fmt.Sprintf("%s/Inference/%s-8xA100", fw, cfg.Name),
				Install:        in,
				Graph:          models.LLM(cfg),
				Devices:        a100x8,
				Mode:           cudasim.EagerLoading,
				Data:           dataset.ManualInput,
				PerItemCompute: 150 * time.Millisecond,
			}
			res, err := negativa.Debloat(w, negativa.Options{MaxSteps: 8, VerifySteps: 8})
			if err != nil {
				return nil, err
			}
			if !res.Verified {
				return nil, fmt.Errorf("experiments: %s failed verification", w.Name)
			}
			spec := Spec{Framework: fw, Model: cfg.Name, Devices: a100x8, Data: dataset.ManualInput}
			rows = append(rows, Table10Row{Framework: fw, Model: cfg.Name, Row: table2Row(spec, res)})
		}
	}
	return rows, nil
}

// RenderTable10 prints Table 10.
func RenderTable10(rows []Table10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 10: LLM zoo, distributed inference on 8xA100 (value (reduction%%))\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-26s #Lib %3d  total %8.0f KB (%2.0f)  CPU %7.0f (%2.0f)  funcs %6d (%2.0f)  GPU %8.0f (%2.0f)  elems %5d (%2.0f)\n",
			r.Framework, r.Model, r.Row.Libs,
			r.Row.TotalKB, r.Row.TotalRedPct, r.Row.CPUKB, r.Row.CPURedPct,
			r.Row.Funcs, r.Row.FuncRedPct, r.Row.GPUKB, r.Row.GPURedPct,
			r.Row.Elems, r.Row.ElemRedPct)
	}
	return b.String()
}
