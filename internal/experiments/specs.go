package experiments

import (
	"fmt"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
)

// Spec is one evaluated workload — a row of Table 1 plus the device setup
// and the calibrated per-item compute cost (DESIGN.md §4).
type Spec struct {
	Framework string
	Model     string
	Train     bool
	Batch     int
	Epochs    int
	Data      dataset.Dataset
	// TailLibs sizes the dependency tail so the library count matches the
	// paper's #Lib column.
	TailLibs int
	Devices  []gpuarch.Device
	Mode     cudasim.LoadMode
	// PerItemCompute calibrates virtual compute time; see EXPERIMENTS.md.
	PerItemCompute time.Duration
	// InferSteps caps inference runs ("only one batch from test set is
	// used" for the CV/NLP inference rows of Table 1); 0 = full split.
	InferSteps int
	// PaperExecTime is Table 5's reported execution time (for the record).
	PaperExecTime time.Duration
}

// Name renders the canonical workload name used across tables.
func (s Spec) Name() string {
	return fmt.Sprintf("%s/%s/%s", s.Framework, s.mode(), s.Model)
}

func (s Spec) mode() string {
	if s.Train {
		return "Train"
	}
	return "Inference"
}

// Graph builds the model graph for the spec.
func (s Spec) Graph() *models.Graph {
	switch s.Model {
	case "MobileNetV2":
		return models.MobileNetV2(s.Train, s.Batch)
	case "Transformer":
		return models.Transformer(s.Train, s.Batch)
	case "Llama2":
		return models.LLM(models.Llama2(s.Framework == mlframework.VLLM, len(s.Devices)))
	}
	panic("experiments: unknown model " + s.Model)
}

// t4 is the single-GPU device setup of Table 1's main evaluation.
var t4 = []gpuarch.Device{gpuarch.T4}

// Table1Specs returns the ten evaluated workloads of Table 1, with library
// tails sized to the paper's #Lib column and compute calibrated to Table 5's
// execution times.
func Table1Specs() []Spec {
	return []Spec{
		{
			Framework: mlframework.PyTorch, Model: "MobileNetV2", Train: true,
			Batch: 16, Epochs: 3, Data: dataset.CIFAR10, TailLibs: 100,
			Devices: t4, PerItemCompute: 1030 * time.Microsecond,
			PaperExecTime: 179 * time.Second,
		},
		{
			Framework: mlframework.PyTorch, Model: "MobileNetV2", Train: false,
			Batch: 1, Data: dataset.CIFAR10, TailLibs: 98,
			Devices: t4, PerItemCompute: 400 * time.Millisecond, InferSteps: 1,
			PaperExecTime: 8 * time.Second,
		},
		{
			Framework: mlframework.TensorFlow, Model: "MobileNetV2", Train: true,
			Batch: 16, Epochs: 3, Data: dataset.CIFAR10, TailLibs: 243,
			Devices: t4, PerItemCompute: 270 * time.Microsecond,
			PaperExecTime: 53 * time.Second,
		},
		{
			Framework: mlframework.TensorFlow, Model: "MobileNetV2", Train: false,
			Batch: 1, Data: dataset.CIFAR10, TailLibs: 241,
			Devices: t4, PerItemCompute: 5 * time.Second, InferSteps: 1,
			PaperExecTime: 12 * time.Second,
		},
		{
			Framework: mlframework.PyTorch, Model: "Transformer", Train: true,
			Batch: 128, Epochs: 3, Data: dataset.Multi30k, TailLibs: 141,
			Devices: t4, PerItemCompute: 2200 * time.Microsecond,
			PaperExecTime: 200 * time.Second,
		},
		{
			Framework: mlframework.PyTorch, Model: "Transformer", Train: false,
			Batch: 32, Data: dataset.Multi30k, TailLibs: 141,
			Devices: t4, PerItemCompute: 230 * time.Millisecond, InferSteps: 1,
			PaperExecTime: 13 * time.Second,
		},
		{
			Framework: mlframework.TensorFlow, Model: "Transformer", Train: true,
			Batch: 128, Epochs: 1, Data: dataset.WMT14, TailLibs: 388,
			Devices: t4, PerItemCompute: 1050 * time.Microsecond,
			PaperExecTime: 4779 * time.Second,
		},
		{
			Framework: mlframework.TensorFlow, Model: "Transformer", Train: false,
			Batch: 32, Data: dataset.WMT14, TailLibs: 386,
			Devices: t4, PerItemCompute: 1900 * time.Millisecond, InferSteps: 1,
			PaperExecTime: 69 * time.Second,
		},
		{
			Framework: mlframework.VLLM, Model: "Llama2", Train: false,
			Batch: 1, Data: dataset.ManualInput, TailLibs: 155,
			Devices: t4, PerItemCompute: 350 * time.Millisecond,
			PaperExecTime: 43 * time.Second,
		},
		{
			Framework: mlframework.HFTransformers, Model: "Llama2", Train: false,
			Batch: 1, Data: dataset.ManualInput, TailLibs: 85,
			Devices: t4, PerItemCompute: 80 * time.Millisecond,
			PaperExecTime: 21 * time.Second,
		},
	}
}

// H100Specs returns the §4.5 single-H100 LLM inference workloads, eager and
// lazy (Tables 6 and 7).
func H100Specs(mode cudasim.LoadMode) []Spec {
	h100 := []gpuarch.Device{gpuarch.H100}
	return []Spec{
		{
			Framework: mlframework.VLLM, Model: "Llama2", Train: false,
			Batch: 1, Data: dataset.ManualInput, TailLibs: 155,
			Devices: h100, Mode: mode, PerItemCompute: 320 * time.Millisecond,
			PaperExecTime: 44 * time.Second,
		},
		{
			Framework: mlframework.HFTransformers, Model: "Llama2", Train: false,
			Batch: 1, Data: dataset.ManualInput, TailLibs: 80,
			Devices: h100, Mode: mode, PerItemCompute: 95 * time.Millisecond,
			PaperExecTime: 23 * time.Second,
		},
	}
}

// Workload materializes the spec against a generated install. Installs are
// cached per (framework, tail) by the suite; this low-level variant
// generates fresh.
func (s Spec) Workload() (mlruntime.Workload, error) {
	in, err := mlframework.Generate(mlframework.Config{Framework: s.Framework, TailLibs: s.TailLibs})
	if err != nil {
		return mlruntime.Workload{}, err
	}
	return s.workloadWith(in), nil
}

func (s Spec) workloadWith(in *mlframework.Install) mlruntime.Workload {
	return mlruntime.Workload{
		Name:           s.Name(),
		Install:        in,
		Graph:          s.Graph(),
		Devices:        s.Devices,
		Mode:           s.Mode,
		Data:           s.Data,
		Epochs:         s.Epochs,
		PerItemCompute: s.PerItemCompute,
	}
}
