package experiments

import (
	"fmt"

	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/negativa"
)

// Suite caches generated installs and pipeline results so the experiments
// that share workloads (Tables 2, 3, 4, 8 and Figures 5, 6, 7 all reuse the
// ten Table 1 debloat runs) pay for each only once.
type Suite struct {
	installs map[string]*mlframework.Install
	results  map[string]*negativa.Result
	// VerifySteps caps verification re-runs (0 = full). The default keeps
	// detection uncapped (faithful Table 8 timing) and verification cheap.
	VerifySteps int
}

// NewSuite returns an empty suite with the default verification cap.
func NewSuite() *Suite {
	return &Suite{
		installs:    make(map[string]*mlframework.Install),
		results:     make(map[string]*negativa.Result),
		VerifySteps: 40,
	}
}

// Install returns the (cached) generated install for a framework and tail.
func (s *Suite) Install(fw string, tail int) (*mlframework.Install, error) {
	key := fmt.Sprintf("%s/%d", fw, tail)
	if in, ok := s.installs[key]; ok {
		return in, nil
	}
	in, err := mlframework.Generate(mlframework.Config{Framework: fw, TailLibs: tail})
	if err != nil {
		return nil, err
	}
	s.installs[key] = in
	return in, nil
}

// Workload materializes a spec against the cached install.
func (s *Suite) Workload(spec Spec) (mlruntime.Workload, error) {
	in, err := s.Install(spec.Framework, spec.TailLibs)
	if err != nil {
		return mlruntime.Workload{}, err
	}
	return spec.workloadWith(in), nil
}

// Debloat runs (or recalls) the full pipeline for a spec. Detection runs
// the full dataset for training workloads and the paper's single batch for
// inference; verification is capped by VerifySteps.
func (s *Suite) Debloat(spec Spec) (*negativa.Result, error) {
	key := spec.Name() + "/" + spec.Mode.String() + spec.Devices[0].Name
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	w, err := s.Workload(spec)
	if err != nil {
		return nil, err
	}
	opt := negativa.Options{MaxSteps: spec.InferSteps, VerifySteps: s.VerifySteps}
	if spec.InferSteps > 0 && spec.InferSteps < s.VerifySteps {
		opt.VerifySteps = spec.InferSteps
	}
	r, err := negativa.Debloat(w, opt)
	if err != nil {
		return nil, err
	}
	if !r.Verified {
		return nil, fmt.Errorf("experiments: %s failed verification", spec.Name())
	}
	s.results[key] = r
	return r, nil
}
