package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"negativaml/internal/metrics"
	"negativaml/internal/mlframework"
	"negativaml/internal/negativa"
)

// ---------------------------------------------------------------------------
// Figure 1 — distribution of CPU vs GPU code in the top-4 largest PyTorch
// shared libraries.
// ---------------------------------------------------------------------------

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	Lib      string
	FileSize int64
	CPUPct   float64
	GPUPct   float64
	OtherPct float64
}

// Figure1 computes the CPU/GPU/other split of the top-4 largest libraries in
// the PyTorch install.
func Figure1(s *Suite) ([]Fig1Row, error) {
	in, err := s.Install(mlframework.PyTorch, 100)
	if err != nil {
		return nil, err
	}
	type sized struct {
		name string
		size int64
	}
	var libs []sized
	for name, lib := range in.Libs {
		libs = append(libs, sized{name, lib.FileSize()})
	}
	sort.Slice(libs, func(i, j int) bool {
		if libs[i].size != libs[j].size {
			return libs[i].size > libs[j].size
		}
		return libs[i].name < libs[j].name
	})
	var rows []Fig1Row
	for _, e := range libs[:4] {
		lib := in.Library(e.name)
		cpu := float64(lib.TextSize())
		gpu := float64(lib.GPUCodeSize())
		total := float64(lib.FileSize())
		rows = append(rows, Fig1Row{
			Lib:      e.name,
			FileSize: lib.FileSize(),
			CPUPct:   100 * cpu / total,
			GPUPct:   100 * gpu / total,
			OtherPct: 100 * (total - cpu - gpu) / total,
		})
	}
	return rows, nil
}

// RenderFigure1 prints the figure as a text bar chart.
func RenderFigure1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: CPU vs GPU code in the top-4 largest PyTorch libraries\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8.0f KB  CPU %5.1f%%  GPU %5.1f%%  other %5.1f%%  |%s|\n",
			r.Lib, float64(r.FileSize)/1024, r.CPUPct, r.GPUPct, r.OtherPct,
			metrics.AsciiBar(r.GPUPct/100, 30))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — total file size, CPU code, GPU code and reductions, per workload.
// ---------------------------------------------------------------------------

// Table2Row is one row of Table 2.
type Table2Row struct {
	Spec Spec
	Libs int

	TotalKB     float64
	TotalRedPct float64
	CPUKB       float64
	CPURedPct   float64
	Funcs       int
	FuncRedPct  float64
	GPUKB       float64
	GPURedPct   float64
	Elems       int
	ElemRedPct  float64
}

// Table2 debloats all ten workloads and aggregates per-workload reductions.
func Table2(s *Suite) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range Table1Specs() {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, table2Row(spec, res))
	}
	return rows, nil
}

func table2Row(spec Spec, res *negativa.Result) Table2Row {
	agg := res.Aggregate()
	return Table2Row{
		Spec:        spec,
		Libs:        agg.Libs,
		TotalKB:     float64(agg.FileEffective) / 1024,
		TotalRedPct: agg.FileReductionPct(),
		CPUKB:       float64(agg.CPUSize) / 1024,
		CPURedPct:   agg.CPUReductionPct(),
		Funcs:       agg.Funcs,
		FuncRedPct:  agg.FuncReductionPct(),
		GPUKB:       float64(agg.GPUSize) / 1024,
		GPURedPct:   agg.GPUReductionPct(),
		Elems:       agg.Elems,
		ElemRedPct:  agg.ElemReductionPct(),
	}
}

// RenderTable2 prints Table 2 in the paper's layout (value, reduction %).
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: per-workload totals and reductions (value (reduction%%))\n")
	fmt.Fprintf(&b, "%-34s %5s %16s %16s %14s %16s %12s\n",
		"Workload", "#Lib", "TotalSize/KB", "CPUCode/KB", "#Functions", "GPUCode/KB", "#Elements")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %5d %10.0f (%2.0f) %10.0f (%2.0f) %8d (%2.0f) %10.0f (%2.0f) %6d (%2.0f)\n",
			r.Spec.Name(), r.Libs,
			r.TotalKB, r.TotalRedPct,
			r.CPUKB, r.CPURedPct,
			r.Funcs, r.FuncRedPct,
			r.GPUKB, r.GPURedPct,
			r.Elems, r.ElemRedPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — the core shared library of each workload.
// ---------------------------------------------------------------------------

// Table3Row mirrors Table 2's columns for the single core library.
type Table3Row struct {
	Spec Spec
	Lib  string

	FileKB     float64
	FileRedPct float64
	CPUKB      float64
	CPURedPct  float64
	Funcs      int
	FuncRedPct float64
	GPUKB      float64
	GPURedPct  float64
	Elems      int
	ElemRedPct float64
}

// CoreLib returns the framework's core shared library name.
func CoreLib(framework string) string {
	if framework == mlframework.TensorFlow {
		return "libtensorflow_cc.so.2"
	}
	return "libtorch_cuda.so"
}

// Table3 extracts the core-library row from each workload's debloat result.
func Table3(s *Suite) ([]Table3Row, error) {
	var rows []Table3Row
	for _, spec := range Table1Specs() {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		name := CoreLib(spec.Framework)
		lr := res.Lib(name)
		if lr == nil {
			return nil, fmt.Errorf("experiments: %s missing %s", spec.Name(), name)
		}
		rows = append(rows, Table3Row{
			Spec: spec, Lib: name,
			FileKB:     float64(lr.FileEffective) / 1024,
			FileRedPct: lr.FileReductionPct(),
			CPUKB:      float64(lr.CPUSize) / 1024,
			CPURedPct:  lr.CPUReductionPct(),
			Funcs:      lr.FuncCount,
			FuncRedPct: lr.FuncReductionPct(),
			GPUKB:      float64(lr.GPUSize) / 1024,
			GPURedPct:  lr.GPUReductionPct(),
			Elems:      lr.ElemCount,
			ElemRedPct: lr.ElemReductionPct(),
		})
	}
	return rows, nil
}

// RenderTable3 prints Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: core shared library per workload (value (reduction%%))\n")
	fmt.Fprintf(&b, "%-34s %-24s %13s %13s %12s %13s %11s\n",
		"Workload", "Lib", "File/KB", "CPU/KB", "#Funcs", "GPU/KB", "#Elems")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %-24s %7.0f (%2.0f) %7.0f (%2.0f) %6d (%2.0f) %7.0f (%2.0f) %5d (%2.0f)\n",
			r.Spec.Name(), r.Lib,
			r.FileKB, r.FileRedPct, r.CPUKB, r.CPURedPct,
			r.Funcs, r.FuncRedPct, r.GPUKB, r.GPURedPct, r.Elems, r.ElemRedPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 / Table 9 — Jaccard similarity of used functions and kernels in
// the core library across workload pairs.
// ---------------------------------------------------------------------------

// JaccardCell pairs two workloads' similarities.
type JaccardCell struct {
	A, B      string
	FuncSim   float64
	KernelSim float64
}

// JaccardTable holds the pairwise matrix for one core library.
type JaccardTable struct {
	Lib       string
	Workloads []string
	Cells     []JaccardCell
}

// Table4 computes the Jaccard matrix for libtorch_cuda.so across the five
// torch-stack workloads the paper compares (vLLM is excluded because it
// bundles a different torch build).
func Table4(s *Suite) (*JaccardTable, error) {
	var specs []Spec
	for _, spec := range Table1Specs() {
		switch spec.Framework {
		case mlframework.PyTorch, mlframework.HFTransformers:
			specs = append(specs, spec)
		}
	}
	return jaccardTable(s, specs, "libtorch_cuda.so")
}

// Table9 computes the matrix for tensorflow_cc.so across the four
// TensorFlow workloads (the paper's appendix).
func Table9(s *Suite) (*JaccardTable, error) {
	var specs []Spec
	for _, spec := range Table1Specs() {
		if spec.Framework == mlframework.TensorFlow {
			specs = append(specs, spec)
		}
	}
	return jaccardTable(s, specs, "libtensorflow_cc.so.2")
}

func jaccardTable(s *Suite, specs []Spec, lib string) (*JaccardTable, error) {
	t := &JaccardTable{Lib: lib}
	type usage struct {
		funcs, kernels []string
	}
	var uses []usage
	for _, spec := range specs {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		lr := res.Lib(lib)
		if lr == nil {
			return nil, fmt.Errorf("experiments: %s missing %s", spec.Name(), lib)
		}
		t.Workloads = append(t.Workloads, spec.Name())
		uses = append(uses, usage{funcs: lr.UsedFuncs, kernels: lr.UsedKernels})
	}
	for i := range uses {
		for j := i + 1; j < len(uses); j++ {
			t.Cells = append(t.Cells, JaccardCell{
				A:         t.Workloads[i],
				B:         t.Workloads[j],
				FuncSim:   metrics.Jaccard(uses[i].funcs, uses[j].funcs),
				KernelSim: metrics.Jaccard(uses[i].kernels, uses[j].kernels),
			})
		}
	}
	return t, nil
}

// RenderJaccard prints the pairwise matrix (functions upper triangle,
// kernels lower, as in the paper).
func RenderJaccard(t *JaccardTable, caption string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): functions / kernels\n", caption, t.Lib)
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-34s vs %-34s  funcs %.2f  kernels %.2f\n", c.A, c.B, c.FuncSim, c.KernelSim)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 8 — end-to-end debloating time.
// ---------------------------------------------------------------------------

// Table8Row is one end-to-end timing row.
type Table8Row struct {
	Spec     Spec
	Libs     int
	EndToEnd time.Duration
}

// Table8 reports the end-to-end pipeline time per workload.
func Table8(s *Suite) ([]Table8Row, error) {
	var rows []Table8Row
	for _, spec := range Table1Specs() {
		res, err := s.Debloat(spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table8Row{Spec: spec, Libs: len(res.Libs), EndToEnd: res.EndToEnd})
	}
	return rows, nil
}

// RenderTable8 prints Table 8.
func RenderTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: end-to-end debloating time\n")
	fmt.Fprintf(&b, "%-34s %6s %10s\n", "Workload", "#Lib", "Time/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %6d %10.0f\n", r.Spec.Name(), r.Libs, r.EndToEnd.Seconds())
	}
	return b.String()
}
