package fatbin

import (
	"math/rand"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/gpuarch"
)

// The fatbin and cubin parsers run on compacted (partially zeroed) and
// possibly damaged sections; random corruption must produce errors, never
// panics.
func TestParseNeverPanicsOnCorruption(t *testing.T) {
	base, err := sample(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1500; trial++ {
		data := append([]byte(nil), base...)
		for n := 0; n < 1+r.Intn(6); n++ {
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("fatbin.Parse panicked: %v", p)
				}
			}()
			fb, err := Parse(data)
			if err != nil {
				return
			}
			// Parsed results must survive extraction and cubin parsing.
			for idx, payload := range ExtractCubins(fb) {
				func() {
					defer func() {
						if p := recover(); p != nil {
							t.Fatalf("cubin.Parse panicked on element %d: %v", idx, p)
						}
					}()
					_, _ = cubin.Parse(payload)
				}()
			}
		}()
	}
}

func TestCubinParseNeverPanicsOnCorruption(t *testing.T) {
	c := cubin.New(gpuarch.SM75)
	c.AddKernel(cubin.Kernel{Name: "alpha", Code: []byte{1, 2, 3, 4}, Flags: cubin.FlagEntry, Launches: []int{1}})
	c.AddKernel(cubin.Kernel{Name: "beta", Code: []byte{5, 6}, Flags: cubin.FlagDeviceOnly})
	base, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), base...)
		for n := 0; n < 1+r.Intn(4); n++ {
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("cubin.Parse panicked: %v", p)
				}
			}()
			_, _ = cubin.Parse(data)
		}()
	}
}
