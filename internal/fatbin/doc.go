// Package fatbin implements the GPU-code container stored in the
// .nv_fatbin section of ML shared libraries.
//
// NVIDIA publishes no specification for this format; the layout here follows
// the structure the paper describes (§3.2, Figure 4) and public reverse
// engineering: the section is a list of *regions*, each region is a region
// header followed by a list of *elements*, and each element is an element
// header followed by a payload (a cubin, or PTX text). The element header
// carries the compute-capability (SM architecture) the payload was compiled
// for. Elements are indexed 1-based across the whole section, matching the
// indices cuobjdump assigns to extracted cubin files.
package fatbin
