package fatbin

import (
	"encoding/binary"
	"fmt"

	"negativaml/internal/gpuarch"
)

// Header magics and sizes.
const (
	// RegionMagic marks the start of a fatbin region. The value matches the
	// magic observed in real fatbins.
	RegionMagic uint32 = 0xBA55ED50
	// ElementMagic marks the start of an element header ("FBEL").
	ElementMagic uint32 = 0x4c454246

	regionHeaderSize  = 24
	elementHeaderSize = 48
)

// Element kinds.
const (
	KindPTX   uint16 = 1
	KindCubin uint16 = 2
)

// Element is one entry in a fatbin region: a header plus payload.
type Element struct {
	Kind    uint16
	Arch    gpuarch.SM
	Flags   uint32
	Payload []byte

	// Index is the 1-based position of the element across the whole section
	// (assigned by the parser; ignored by the builder).
	Index int
	// FileRange is the range [Start, End) the element occupies within the
	// fatbin section, header included (assigned by the parser).
	FileRange Range
	// PayloadRange is the range of the payload alone (assigned by the parser).
	PayloadRange Range
}

// Range is a half-open byte range [Start, End).
type Range struct {
	Start int64
	End   int64
}

// Len returns the number of bytes the range covers.
func (r Range) Len() int64 { return r.End - r.Start }

// Contains reports whether off falls within the range.
func (r Range) Contains(off int64) bool { return off >= r.Start && off < r.End }

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

func (r Range) String() string { return fmt.Sprintf("[%#x, %#x)", r.Start, r.End) }

// Region is a list of elements preceded by a region header.
type Region struct {
	Elements []Element
}

// FatBin is a parsed or under-construction .nv_fatbin section.
type FatBin struct {
	Regions []Region
}

// AddRegion appends an empty region and returns a pointer to it.
func (f *FatBin) AddRegion() *Region {
	f.Regions = append(f.Regions, Region{})
	return &f.Regions[len(f.Regions)-1]
}

// AddElement appends an element to the region.
func (r *Region) AddElement(e Element) {
	r.Elements = append(r.Elements, e)
}

// Elements returns all elements across regions in section order, with their
// 1-based indices populated (only meaningful after Parse; on a built FatBin
// the indices reflect what Parse would assign).
func (f *FatBin) Elements() []*Element {
	var out []*Element
	idx := 1
	for ri := range f.Regions {
		for ei := range f.Regions[ri].Elements {
			e := &f.Regions[ri].Elements[ei]
			if e.Index == 0 {
				e.Index = idx
			}
			idx++
			out = append(out, e)
		}
	}
	return out
}

// ElementCount returns the total number of elements.
func (f *FatBin) ElementCount() int {
	n := 0
	for _, r := range f.Regions {
		n += len(r.Elements)
	}
	return n
}

// TotalSize returns the serialized size of the fatbin in bytes.
func (f *FatBin) TotalSize() int64 {
	var n int64
	for _, r := range f.Regions {
		n += regionHeaderSize
		for _, e := range r.Elements {
			n += elementHeaderSize + int64(padTo8(len(e.Payload)))
		}
	}
	return n
}

func padTo8(n int) int {
	if rem := n % 8; rem != 0 {
		return n + 8 - rem
	}
	return n
}

// Marshal serializes the fatbin.
//
// Region header (24B):  magic u32 | version u16 | headerSize u16 |
//
//	payloadSize u64 (bytes of elements that follow) | reserved u64
//
// Element header (48B): magic u32 | kind u16 | version u16 | headerSize u32 |
//
//	payloadSize u64 | paddedSize u64 | arch u32 | flags u32 | reserved u64 | reserved u32
func (f *FatBin) Marshal() ([]byte, error) {
	le := binary.LittleEndian
	buf := make([]byte, 0, f.TotalSize())
	for ri, r := range f.Regions {
		var regionPayload int
		for _, e := range r.Elements {
			regionPayload += elementHeaderSize + padTo8(len(e.Payload))
		}
		rh := make([]byte, regionHeaderSize)
		le.PutUint32(rh[0:], RegionMagic)
		le.PutUint16(rh[4:], 1)
		le.PutUint16(rh[6:], regionHeaderSize)
		le.PutUint64(rh[8:], uint64(regionPayload))
		buf = append(buf, rh...)
		for ei, e := range r.Elements {
			if e.Kind != KindPTX && e.Kind != KindCubin {
				return nil, fmt.Errorf("fatbin: region %d element %d: invalid kind %d", ri, ei, e.Kind)
			}
			if !e.Arch.Valid() {
				return nil, fmt.Errorf("fatbin: region %d element %d: invalid arch %d", ri, ei, e.Arch)
			}
			eh := make([]byte, elementHeaderSize)
			le.PutUint32(eh[0:], ElementMagic)
			le.PutUint16(eh[4:], e.Kind)
			le.PutUint16(eh[6:], 1)
			le.PutUint32(eh[8:], elementHeaderSize)
			le.PutUint64(eh[12:], uint64(len(e.Payload)))
			le.PutUint64(eh[20:], uint64(padTo8(len(e.Payload))))
			le.PutUint32(eh[28:], uint32(e.Arch))
			le.PutUint32(eh[32:], e.Flags)
			buf = append(buf, eh...)
			buf = append(buf, e.Payload...)
			if pad := padTo8(len(e.Payload)) - len(e.Payload); pad > 0 {
				buf = append(buf, make([]byte, pad)...)
			}
		}
	}
	return buf, nil
}

// Parse decodes a .nv_fatbin section. Offsets in the returned elements are
// relative to the start of data (the section), so callers add the section's
// file offset to obtain absolute file ranges.
//
// Element payloads alias data — Parse performs no payload copies. Callers
// that mutate payload bytes in place (the compactor's zeroing paths) are
// mutating the section they parsed, and callers must keep data alive (and
// unrecycled) for as long as any Element is reachable.
//
// Parse is tolerant of *zeroed* regions: if compaction has zeroed a whole
// region (magic destroyed), parsing stops at the first non-region bytes only
// when they are non-zero; runs of zero bytes are skipped. Zeroed elements
// inside an intact region keep their headers (the compactor preserves
// headers) and surface with a nil-equivalent zero payload.
func Parse(data []byte) (*FatBin, error) {
	le := binary.LittleEndian
	f := &FatBin{}
	off := int64(0)
	index := 1
	for off < int64(len(data)) {
		// Skip zero padding / zeroed tails.
		if le.Uint32(pad4(data, off)) == 0 {
			off++
			continue
		}
		if int(off)+regionHeaderSize > len(data) {
			return nil, fmt.Errorf("fatbin: truncated region header at %#x", off)
		}
		if m := le.Uint32(data[off:]); m != RegionMagic {
			return nil, fmt.Errorf("fatbin: bad region magic %#x at %#x", m, off)
		}
		hSize := int64(le.Uint16(data[off+6:]))
		payload := int64(le.Uint64(data[off+8:]))
		if hSize != regionHeaderSize {
			return nil, fmt.Errorf("fatbin: unsupported region header size %d", hSize)
		}
		if payload < 0 {
			return nil, fmt.Errorf("fatbin: negative region payload size at %#x", off)
		}
		regionEnd := off + hSize + payload
		if regionEnd > int64(len(data)) {
			return nil, fmt.Errorf("fatbin: region at %#x overruns section", off)
		}
		region := Region{Elements: make([]Element, 0, countElements(data, off+hSize, regionEnd))}
		eOff := off + hSize
		for eOff < regionEnd {
			if int(eOff)+elementHeaderSize > len(data) {
				return nil, fmt.Errorf("fatbin: truncated element header at %#x", eOff)
			}
			if m := le.Uint32(data[eOff:]); m != ElementMagic {
				return nil, fmt.Errorf("fatbin: bad element magic %#x at %#x", m, eOff)
			}
			kind := le.Uint16(data[eOff+4:])
			ehSize := int64(le.Uint32(data[eOff+8:]))
			pSize := int64(le.Uint64(data[eOff+12:]))
			padded := int64(le.Uint64(data[eOff+20:]))
			arch := gpuarch.SM(le.Uint32(data[eOff+28:]))
			flags := le.Uint32(data[eOff+32:])
			if ehSize != elementHeaderSize || pSize < 0 || padded < pSize {
				return nil, fmt.Errorf("fatbin: malformed element header at %#x", eOff)
			}
			pStart := eOff + ehSize
			pEnd := pStart + pSize
			if pStart+padded > regionEnd {
				return nil, fmt.Errorf("fatbin: element at %#x overruns region", eOff)
			}
			// Zero-copy: the payload aliases the section, capacity-clamped
			// so appends can never scribble past the element.
			payloadBytes := data[pStart:pEnd:pEnd]
			region.AddElement(Element{
				Kind:         kind,
				Arch:         arch,
				Flags:        flags,
				Payload:      payloadBytes,
				Index:        index,
				FileRange:    Range{Start: eOff, End: pStart + padded},
				PayloadRange: Range{Start: pStart, End: pEnd},
			})
			index++
			eOff = pStart + padded
		}
		f.Regions = append(f.Regions, region)
		off = regionEnd
	}
	return f, nil
}

// countElements walks the element headers in [eOff, regionEnd) and returns
// how many elements a well-formed region holds, so Parse can size the
// Elements slice in one allocation. Malformed headers terminate the count
// early — the full parse pass reports the error.
func countElements(data []byte, eOff, regionEnd int64) int {
	le := binary.LittleEndian
	n := 0
	for eOff < regionEnd {
		if int(eOff)+elementHeaderSize > len(data) || le.Uint32(data[eOff:]) != ElementMagic {
			break
		}
		ehSize := int64(le.Uint32(data[eOff+8:]))
		padded := int64(le.Uint64(data[eOff+20:]))
		if ehSize != elementHeaderSize || padded < 0 {
			break
		}
		next := eOff + ehSize + padded
		if next <= eOff {
			break
		}
		n++
		eOff = next
	}
	return n
}

// pad4 returns a 4-byte window at off, zero-padded past the end of data, so
// the zero-skip probe never reads out of bounds.
func pad4(data []byte, off int64) []byte {
	var w [4]byte
	copy(w[:], data[off:min64(off+4, int64(len(data)))])
	return w[:]
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ExtractCubins returns the payloads of all cubin-kind elements keyed by
// their 1-based element index, mirroring `cuobjdump -xelf all` which names
// extracted files with those indices (paper §3.2). Elements whose payload is
// entirely zeroed (removed by compaction) are skipped.
func ExtractCubins(f *FatBin) map[int][]byte {
	out := make(map[int][]byte)
	for _, e := range f.Elements() {
		if e.Kind != KindCubin {
			continue
		}
		if !AnyNonZero(e.Payload) {
			continue
		}
		out[e.Index] = e.Payload
	}
	return out
}

// AnyNonZero reports whether b contains a non-zero byte. The main loop
// scans 64 bytes per iteration as eight uint64 loads OR-combined before a
// single branch — on zeroed payloads (the common scan target after
// compaction) this cuts the branch count 8× versus the old word-at-a-time
// loop and lets the compiler keep the whole stride in registers. Probing
// live payloads still exits on the first live cache line. It lives here —
// the lowest layer owning byte ranges — so elfx and cudasim share one
// implementation. See BenchmarkAnyNonZero for the measured win.
func AnyNonZero(b []byte) bool {
	le := binary.LittleEndian
	for len(b) >= 64 {
		x := le.Uint64(b) | le.Uint64(b[8:]) | le.Uint64(b[16:]) | le.Uint64(b[24:]) |
			le.Uint64(b[32:]) | le.Uint64(b[40:]) | le.Uint64(b[48:]) | le.Uint64(b[56:])
		if x != 0 {
			return true
		}
		b = b[64:]
	}
	for len(b) >= 8 {
		if le.Uint64(b) != 0 {
			return true
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}
