package fatbin

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"negativaml/internal/cubin"
	"negativaml/internal/gpuarch"
)

func cubinBlob(t *testing.T, arch gpuarch.SM, names ...string) []byte {
	t.Helper()
	c := cubin.New(arch)
	for _, n := range names {
		c.AddKernel(cubin.Kernel{Name: n, Code: []byte(n), Flags: cubin.FlagEntry})
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatalf("cubin Marshal: %v", err)
	}
	return blob
}

func sample(t *testing.T) *FatBin {
	f := &FatBin{}
	r1 := f.AddRegion()
	r1.AddElement(Element{Kind: KindCubin, Arch: gpuarch.SM75, Payload: cubinBlob(t, gpuarch.SM75, "matmul")})
	r1.AddElement(Element{Kind: KindCubin, Arch: gpuarch.SM80, Payload: cubinBlob(t, gpuarch.SM80, "matmul")})
	r1.AddElement(Element{Kind: KindPTX, Arch: gpuarch.SM70, Payload: []byte(".ptx matmul")})
	r2 := f.AddRegion()
	r2.AddElement(Element{Kind: KindCubin, Arch: gpuarch.SM75, Payload: cubinBlob(t, gpuarch.SM75, "conv2d", "relu")})
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sample(t)
	blob, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(got.Regions))
	}
	if got.ElementCount() != 4 {
		t.Fatalf("elements = %d, want 4", got.ElementCount())
	}
	els := got.Elements()
	for i, e := range els {
		if e.Index != i+1 {
			t.Errorf("element %d has index %d, want %d (1-based dense)", i, e.Index, i+1)
		}
	}
	if els[0].Arch != gpuarch.SM75 || els[1].Arch != gpuarch.SM80 {
		t.Errorf("arch mismatch: %s, %s", els[0].Arch, els[1].Arch)
	}
	if els[2].Kind != KindPTX {
		t.Errorf("element 3 kind = %d, want PTX", els[2].Kind)
	}
	// Payloads survive.
	want := sample(t)
	wantEls := want.Elements()
	for i := range els {
		if !bytes.Equal(els[i].Payload, wantEls[i].Payload) {
			t.Errorf("element %d payload mismatch", i+1)
		}
	}
}

func TestFileRanges(t *testing.T) {
	f := sample(t)
	blob, _ := f.Marshal()
	got, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, e := range got.Elements() {
		if e.FileRange.Len() <= 0 {
			t.Errorf("element %d has empty file range", e.Index)
		}
		if !e.FileRange.Contains(e.PayloadRange.Start) {
			t.Errorf("element %d payload range not inside file range", e.Index)
		}
		// Payload bytes at the recorded range must equal the payload.
		start, end := e.PayloadRange.Start, e.PayloadRange.End
		if !bytes.Equal(blob[start:end], e.Payload) {
			t.Errorf("element %d: bytes at payload range differ from payload", e.Index)
		}
		// Cubins extracted from the range must parse.
		if e.Kind == KindCubin {
			if _, err := cubin.Parse(blob[start:end]); err != nil {
				t.Errorf("element %d: cubin at range does not parse: %v", e.Index, err)
			}
		}
	}
	// Ranges must not overlap.
	els := got.Elements()
	for i := 0; i < len(els); i++ {
		for j := i + 1; j < len(els); j++ {
			if els[i].FileRange.Overlaps(els[j].FileRange) {
				t.Errorf("elements %d and %d overlap", els[i].Index, els[j].Index)
			}
		}
	}
}

func TestExtractCubins(t *testing.T) {
	f := sample(t)
	blob, _ := f.Marshal()
	got, _ := Parse(blob)
	cubins := ExtractCubins(got)
	if len(cubins) != 3 {
		t.Fatalf("extracted %d cubins, want 3 (PTX excluded)", len(cubins))
	}
	for _, idx := range []int{1, 2, 4} {
		if _, ok := cubins[idx]; !ok {
			t.Errorf("cubin index %d missing", idx)
		}
	}
	if _, ok := cubins[3]; ok {
		t.Error("PTX element should not be extracted as cubin")
	}
	c, err := cubin.Parse(cubins[4])
	if err != nil {
		t.Fatalf("parse extracted cubin: %v", err)
	}
	if c.FindKernel("conv2d") < 0 || c.FindKernel("relu") < 0 {
		t.Error("extracted cubin 4 missing kernels")
	}
}

func TestExtractSkipsZeroedPayloads(t *testing.T) {
	f := sample(t)
	blob, _ := f.Marshal()
	parsed, _ := Parse(blob)
	// Zero element 2's payload in place, as the compactor would.
	e2 := parsed.Elements()[1]
	for i := e2.PayloadRange.Start; i < e2.PayloadRange.End; i++ {
		blob[i] = 0
	}
	re, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse after zeroing: %v", err)
	}
	cubins := ExtractCubins(re)
	if _, ok := cubins[2]; ok {
		t.Error("zeroed element 2 should be skipped")
	}
	if len(cubins) != 2 {
		t.Errorf("extracted %d cubins, want 2", len(cubins))
	}
	// Indices of surviving elements are unchanged.
	if _, ok := cubins[1]; !ok {
		t.Error("element 1 should survive")
	}
	if _, ok := cubins[4]; !ok {
		t.Error("element 4 should survive")
	}
}

func TestParseSkipsZeroedTail(t *testing.T) {
	f := sample(t)
	blob, _ := f.Marshal()
	padded := append(blob, make([]byte, 129)...)
	got, err := Parse(padded)
	if err != nil {
		t.Fatalf("Parse with zero tail: %v", err)
	}
	if got.ElementCount() != 4 {
		t.Errorf("elements = %d, want 4", got.ElementCount())
	}
}

func TestParseErrors(t *testing.T) {
	f := sample(t)
	blob, _ := f.Marshal()

	bad := append([]byte(nil), blob...)
	bad[0] = 0x99 // corrupt region magic with non-zero garbage
	if _, err := Parse(bad); err == nil {
		t.Error("corrupt region magic should fail")
	}

	short := blob[:regionHeaderSize-4]
	if _, err := Parse(short); err == nil {
		t.Error("truncated region header should fail")
	}

	// Region payload overrunning the section.
	overrun := append([]byte(nil), blob...)
	overrun = overrun[:len(overrun)-8]
	if _, err := Parse(overrun); err == nil {
		t.Error("overrunning region should fail")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	f := &FatBin{}
	r := f.AddRegion()
	r.AddElement(Element{Kind: 9, Arch: gpuarch.SM75})
	if _, err := f.Marshal(); err == nil {
		t.Error("invalid kind should fail")
	}
	f2 := &FatBin{}
	r2 := f2.AddRegion()
	r2.AddElement(Element{Kind: KindCubin, Arch: 3})
	if _, err := f2.Marshal(); err == nil {
		t.Error("invalid arch should fail")
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Start: 10, End: 20}
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !r.Overlaps(Range{Start: 19, End: 25}) {
		t.Error("should overlap")
	}
	if r.Overlaps(Range{Start: 20, End: 25}) {
		t.Error("adjacent ranges should not overlap")
	}
}

func TestEmptyFatBin(t *testing.T) {
	f := &FatBin{}
	blob, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal empty: %v", err)
	}
	if len(blob) != 0 {
		t.Errorf("empty fatbin should serialize to 0 bytes, got %d", len(blob))
	}
	got, err := Parse(nil)
	if err != nil {
		t.Fatalf("Parse nil: %v", err)
	}
	if got.ElementCount() != 0 {
		t.Error("parse of empty should have no elements")
	}
}

// Property: build→marshal→parse→marshal is the identity.
func TestQuickRoundTrip(t *testing.T) {
	archs := gpuarch.AllShipped
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fb := &FatBin{}
		nRegions := 1 + r.Intn(4)
		for i := 0; i < nRegions; i++ {
			reg := fb.AddRegion()
			for j := 0; j < r.Intn(6); j++ {
				payload := make([]byte, 1+r.Intn(100))
				r.Read(payload)
				// Ensure first 4 bytes non-zero so it is not skipped as padding.
				payload[0] |= 1
				kind := KindCubin
				if r.Intn(3) == 0 {
					kind = KindPTX
				}
				reg.AddElement(Element{
					Kind:    kind,
					Arch:    archs[r.Intn(len(archs))],
					Flags:   r.Uint32(),
					Payload: payload,
				})
			}
		}
		b1, err := fb.Marshal()
		if err != nil {
			return false
		}
		p, err := Parse(b1)
		if err != nil {
			return false
		}
		if p.ElementCount() != fb.ElementCount() {
			return false
		}
		b2, err := p.Marshal()
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
