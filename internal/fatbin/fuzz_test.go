package fatbin

import (
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/gpuarch"
)

// FuzzParseFatbin is the CI fuzz target for fatbin element decoding: Parse
// must reject malformed sections with an error, never panic, and whatever
// it accepts must expose consistent element geometry. Embedded cubin
// payloads are pushed through the cubin prober/parser too, mirroring what
// the analysis index does with every accepted element.
func FuzzParseFatbin(f *testing.F) {
	blob := func(names ...string) []byte {
		c := cubin.New(gpuarch.SM80)
		for _, n := range names {
			c.AddKernel(cubin.Kernel{Name: n, Code: []byte(n + "-code"), Flags: cubin.FlagEntry})
		}
		b, err := c.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	fb := &FatBin{}
	r := fb.AddRegion()
	r.AddElement(Element{Kind: KindCubin, Arch: gpuarch.SM80, Payload: blob("matmul", "softmax")})
	r.AddElement(Element{Kind: KindPTX, Arch: gpuarch.SM75, Payload: []byte(".ptx matmul")})
	r2 := fb.AddRegion()
	r2.AddElement(Element{Kind: KindCubin, Arch: gpuarch.SM90, Payload: blob("conv2d")})
	good, err := fb.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 64)) // all zeros: a fully compacted section
	f.Add(good[:len(good)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		fb, err := Parse(data)
		if err != nil {
			return
		}
		size := int64(len(data))
		for _, e := range fb.Elements() {
			if e.FileRange.Start < 0 || e.FileRange.End > size || e.FileRange.Start > e.FileRange.End {
				t.Fatalf("element %d file range %v escapes the section", e.Index, e.FileRange)
			}
			if !e.FileRange.Overlaps(e.PayloadRange) && e.PayloadRange.Len() > 0 {
				t.Fatalf("element %d payload range %v outside its element", e.Index, e.PayloadRange)
			}
			if int64(len(e.Payload)) != e.PayloadRange.Len() {
				t.Fatalf("element %d payload %d bytes, range %d", e.Index, len(e.Payload), e.PayloadRange.Len())
			}
			// The downstream consumer path: probe and parse cubin payloads.
			if e.Kind == KindCubin && cubin.IsCubin(e.Payload) {
				cubin.Parse(e.Payload)
			}
		}
		ExtractCubins(fb)
	})
}
