package fatbin

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// anyNonZeroWordWise is the previous implementation — one uint64 load and
// branch per 8 bytes — kept as the benchmark baseline for the unrolled scan.
func anyNonZeroWordWise(b []byte) bool {
	le := binary.LittleEndian
	for len(b) >= 8 {
		if le.Uint64(b) != 0 {
			return true
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

func TestAnyNonZeroMatchesWordWise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(300)
		buf := make([]byte, n)
		// Mostly-zero buffers with an occasional live byte at a random
		// position — including inside the 64-byte stride, the 8-byte tail,
		// and the final byte loop.
		if n > 0 && r.Intn(3) != 0 {
			buf[r.Intn(n)] = byte(1 + r.Intn(255))
		}
		if got, want := AnyNonZero(buf), anyNonZeroWordWise(buf); got != want {
			t.Fatalf("AnyNonZero(%d bytes) = %v, want %v (buf %v)", n, got, want, buf)
		}
	}
}

// The benchmark pair measures the scan over an all-zero page — the common
// case: ResidentBytes walks compacted images page by page, and zeroed pages
// are the ones scanned to the end.
func BenchmarkAnyNonZero(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if AnyNonZero(buf) {
			b.Fatal("zero page scanned as live")
		}
	}
}

func BenchmarkAnyNonZeroWordWise(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if anyNonZeroWordWise(buf) {
			b.Fatal("zero page scanned as live")
		}
	}
}
