package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"negativaml/internal/dserve"
)

// This file enforces the gw--prefixed apidoc blocks in docs/API.md — the
// multi-tenant gateway's slice of the API. internal/dserve's apidoc test
// enforces every other block; it cannot exercise these because the gateway
// wraps dserve (the import points the other way), so the marker parsing and
// shape comparison are mirrored here against a gateway-fronted server.

// gwDocBlock is one annotated JSON example from docs/API.md.
type gwDocBlock struct {
	json   []byte
	subset bool
}

var gwAPIDocMarker = regexp.MustCompile(`<!--\s*apidoc:\s*([a-z0-9-]+)\s+(request|response)(\s+subset)?\s*-->`)

// parseGatewayAPIDoc extracts the gw--prefixed apidoc blocks from
// docs/API.md.
func parseGatewayAPIDoc(t *testing.T) map[string]gwDocBlock {
	t.Helper()
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	blocks := map[string]gwDocBlock{}
	lines := strings.Split(string(raw), "\n")
	for i := 0; i < len(lines); i++ {
		m := gwAPIDocMarker.FindStringSubmatch(lines[i])
		if m == nil || !strings.HasPrefix(m[1], "gw-") {
			continue
		}
		key := m[1] + " " + m[2]
		subset := strings.TrimSpace(m[3]) == "subset"
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || strings.TrimSpace(lines[j]) != "```json" {
			t.Fatalf("docs/API.md: marker %q is not followed by a ```json fence", key)
		}
		var body []string
		for j++; j < len(lines) && strings.TrimSpace(lines[j]) != "```"; j++ {
			body = append(body, lines[j])
		}
		if _, dup := blocks[key]; dup {
			t.Fatalf("docs/API.md: duplicate apidoc block %q", key)
		}
		blocks[key] = gwDocBlock{json: []byte(strings.Join(body, "\n")), subset: subset}
		i = j
	}
	return blocks
}

func gwJSONTypeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	default:
		return "null"
	}
}

// gwShapeDiff mirrors internal/dserve's shapeDiff: every documented key must
// exist in the live value with the same JSON type, recursing into objects
// and first array elements; unless subset, every live key must be documented
// too. null acts as a wildcard.
func gwShapeDiff(path string, doc, live any, subset bool, probs *[]string) {
	if doc == nil || live == nil {
		return
	}
	switch d := doc.(type) {
	case map[string]any:
		l, ok := live.(map[string]any)
		if !ok {
			*probs = append(*probs, fmt.Sprintf("%s: documented as object, live is %s", path, gwJSONTypeName(live)))
			return
		}
		for k, dv := range d {
			lv, ok := l[k]
			if !ok {
				*probs = append(*probs, fmt.Sprintf("%s.%s: documented but absent from the live response", path, k))
				continue
			}
			gwShapeDiff(path+"."+k, dv, lv, subset, probs)
		}
		if !subset {
			for k := range l {
				if _, ok := d[k]; !ok {
					*probs = append(*probs, fmt.Sprintf("%s.%s: present in the live response but undocumented", path, k))
				}
			}
		}
	case []any:
		l, ok := live.([]any)
		if !ok {
			*probs = append(*probs, fmt.Sprintf("%s: documented as array, live is %s", path, gwJSONTypeName(live)))
			return
		}
		if len(d) > 0 && len(l) > 0 {
			gwShapeDiff(path+"[0]", d[0], l[0], subset, probs)
		}
	default:
		if dt, lt := gwJSONTypeName(doc), gwJSONTypeName(live); dt != lt {
			*probs = append(*probs, fmt.Sprintf("%s: documented as %s, live is %s", path, dt, lt))
		}
	}
}

// TestGatewayAPIDocExamples keeps the gateway sections of docs/API.md
// honest: the gw-submit request is replayed verbatim, every gw- response
// example is shape-compared against the live gateway, and a documented
// gw- block the test does not exercise fails.
func TestGatewayAPIDocExamples(t *testing.T) {
	blocks := parseGatewayAPIDoc(t)
	// A single dispatch slot plus a gated blocker holds the queue still so
	// the doc example's duplicate deterministically coalesces while queued;
	// the "limited" tenant's 1-byte result quota makes the shed example
	// deterministic too (charged at its coalesced job's completion).
	ts, g, _, release := newGatedFrontDoor(t, Config{DispatchSlots: 1}, []TenantConfig{
		{Name: "acme", Keys: []string{"key-acme"}},
		{Name: "limited", Keys: []string{"key-limited"},
			Quota: QuotaConfig{MaxResultBytes: 1}},
	})
	actual := map[string][]byte{}

	raw := func(t *testing.T, method, path, key string, body any) (*http.Response, []byte) {
		t.Helper()
		var out json.RawMessage
		resp := doJSON(t, method, ts.URL+path, key, body, &out)
		return resp, []byte(out)
	}

	// ---- authentication ----
	resp, body := raw(t, "GET", "/v1/metrics", "", nil)
	if resp.StatusCode != http.StatusUnauthorized || resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatalf("unauthenticated metrics: status %d, WWW-Authenticate %q", resp.StatusCode, resp.Header.Get("WWW-Authenticate"))
	}
	actual["gw-auth-error response"] = body

	// ---- coalescing setup: a heavy cold batch owns the only slot ----
	resp, body = raw(t, "POST", "/v1/jobs", "key-acme", heavyReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d: %s", resp.StatusCode, body)
	}
	var blockerSt gwStatus
	if err := json.Unmarshal(body, &blockerSt); err != nil {
		t.Fatal(err)
	}

	// ---- gw-submit: replay the documented request verbatim ----
	submitReq, ok := blocks["gw-submit request"]
	if !ok {
		t.Fatal("docs/API.md lacks the gw-submit request example")
	}
	actual["gw-submit request"] = submitReq.json
	var docReq dserve.JobRequest
	if err := json.Unmarshal(submitReq.json, &docReq); err != nil {
		t.Fatalf("gw-submit request example is not a valid job request: %v", err)
	}
	resp, body = raw(t, "POST", "/v1/jobs", "key-acme", docReq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("doc-example submit: status %d: %s", resp.StatusCode, body)
	}
	actual["gw-submit response"] = body
	var st gwStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// The identical batch from the other tenant coalesces onto the queued
	// unit (the blocker still owns the only dispatch slot).
	resp, body = raw(t, "POST", "/v1/jobs", "key-limited", docReq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit: status %d: %s", resp.StatusCode, body)
	}
	var dup gwStatus
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.Coalesced {
		t.Fatal("duplicate of a queued batch did not coalesce")
	}
	release()

	// ---- gw-job-status: the documented job, completed ----
	if done := pollGwDone(t, ts.URL, "key-acme", st.ID); done.State != JobDone {
		t.Fatalf("doc-example job failed: %s", done.Error)
	}
	_, actual["gw-job-status response"] = raw(t, "GET", "/v1/jobs/"+st.ID, "key-acme", nil)

	// ---- gw-events: long-poll envelope of the finished job ----
	_, actual["gw-events response"] = raw(t, "GET", "/v1/jobs/"+st.ID+"/events?after=-1&timeout_ms=100", "key-acme", nil)

	// ---- gw-shed: limited's coalesced rider charged its result bytes,
	// so its next submission exceeds the 1-byte retention quota ----
	pollGwDone(t, ts.URL, "key-limited", dup.ID)
	next := dserve.JobRequest{
		Framework: "tensorflow", TailLibs: 6,
		Workloads: []dserve.WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	}
	resp, body = raw(t, "POST", "/v1/jobs", "key-limited", next)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	actual["gw-shed response"] = body

	// ---- gw-metrics: the storm above touched every documented counter ----
	if got := g.Counters.Get("gateway.coalesced"); got == 0 {
		t.Fatal("gateway.coalesced counter never moved")
	}
	pollGwDone(t, ts.URL, "key-acme", blockerSt.ID)
	_, actual["gw-metrics response"] = raw(t, "GET", "/v1/metrics", "key-acme", nil)

	// ---- shape comparison ----
	var keys []string
	for k := range actual {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var problems []string
	for _, k := range keys {
		blk, ok := blocks[k]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: exercised by the test but has no apidoc example in docs/API.md", k))
			continue
		}
		var docV, liveV any
		if err := json.Unmarshal(blk.json, &docV); err != nil {
			problems = append(problems, fmt.Sprintf("%s: example is not valid JSON: %v", k, err))
			continue
		}
		if err := json.Unmarshal(actual[k], &liveV); err != nil {
			t.Fatalf("%s: live payload is not valid JSON: %v", k, err)
		}
		gwShapeDiff(k, docV, liveV, blk.subset, &problems)
	}
	for k := range blocks {
		if _, ok := actual[k]; !ok {
			problems = append(problems, fmt.Sprintf("%s: documented in docs/API.md but not exercised by this test", k))
		}
	}
	if len(problems) > 0 {
		t.Fatalf("docs/API.md gateway sections are out of sync with the live API:\n  %s", strings.Join(problems, "\n  "))
	}
}
