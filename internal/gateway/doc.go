// Package gateway is the multi-tenant front door of the debloat service:
// the admission, scheduling, and streaming layer that stands between
// untrusted clients and the single shared dserve batch engine.
//
// The gateway owns four concerns the serving plane deliberately does not:
//
//   - Tenancy. Every request authenticates with an API key that maps to a
//     named tenant (see TenantConfig). Tenants carry quotas — concurrent
//     batches in flight, retained result bytes, and analysis stage-seconds
//     per fixed window — and a request that would exceed one is shed with
//     a 429 and a Retry-After hint rather than queued.
//
//   - Priority lanes. Admitted work lands in one of two lanes,
//     interactive or bulk, drained by a weighted round-robin dispatcher
//     into a bounded number of backend submission slots. Under contention
//     the interactive lane receives InteractiveWeight units of service
//     for every BulkWeight the bulk lane gets; an uncontested lane drains
//     at full speed without building up credit.
//
//   - Coalescing. Identical requests (same canonical request JSON, after
//     base translation) submitted while a matching unit is still in
//     flight attach to that unit as followers instead of dispatching
//     again: one backend batch feeds every attached tenant's job, each
//     with its own event stream and accounting. Followers of a failed
//     unit receive its terminal event — they never hang — and a follower
//     or leader cancelled while the unit is still queued simply detaches
//     (the unit is dropped only when its last rider cancels).
//
//   - Live streaming. Each gateway job mirrors its unit's upstream event
//     log (re-sequenced, late attachers get a full replay) and serves it
//     over the same SSE/long-poll renderer the serving plane uses, so
//     both layers speak one wire format.
//
// The gateway talks to the engine through the narrow Backend interface —
// *dserve.Service satisfies it directly, tests substitute fakes — and
// merges its own counters, lane depths, and live accounting into the
// backend's /v1/metrics payload under a "gateway" section, scoped to the
// requesting tenant (one tenant never sees another's names or usage).
//
// The backend's node-to-node /v1/peer/* surface is forwarded key-less
// only when Config.PeerPassthrough marks the node a cluster member —
// peers authenticate with the cluster's shared secret, not API keys —
// and refused with 404 everywhere else, so tenants can never reach it.
package gateway
