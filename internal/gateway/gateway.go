package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"negativaml/internal/dserve"
	"negativaml/internal/metrics"
)

// Lane names. Interactive is the default.
const (
	LaneInteractive = "interactive"
	LaneBulk        = "bulk"
)

// Gateway job states. Queued/running/done/failed mirror the backend's;
// cancelled is gateway-only (the backend never starts cancelled work).
const (
	JobQueued    = dserve.JobQueued
	JobRunning   = dserve.JobRunning
	JobDone      = dserve.JobDone
	JobFailed    = dserve.JobFailed
	JobCancelled = "cancelled"
)

// Shed reasons, reported in 429 bodies and counted under
// gateway.shed.<reason>.
const (
	ShedQueueFull    = "queue_full"
	ShedConcurrency  = "concurrency"
	ShedResultBytes  = "result_bytes"
	ShedStageSeconds = "stage_seconds"
)

// Backend is the slice of the serving plane the gateway drives.
// *dserve.Service satisfies it; tests substitute fakes.
type Backend interface {
	SubmitWith(req dserve.JobRequest, opts dserve.SubmitOptions) (*dserve.Job, error)
	Job(id string) *dserve.Job
	JobEvents(id string, after int) ([]dserve.JobEvent, bool, <-chan struct{}, error)
	MetricsPayload() map[string]any
}

// Config tunes the gateway. Zero values take the documented defaults.
type Config struct {
	// DispatchSlots caps concurrent backend submissions (default 4). Keep
	// it at or below the backend's MaxInFlight so dispatch rarely meets
	// ErrBusy; when it does, the dispatcher holds the slot and retries —
	// admitted work never fails for backend backpressure.
	DispatchSlots int
	// QueueDepth caps each lane's queued units (default 64); admissions
	// beyond it shed with 429 queue_full.
	QueueDepth int
	// InteractiveWeight and BulkWeight set the contested drain ratio
	// (defaults 3 and 1).
	InteractiveWeight int
	BulkWeight        int
	// MaxJobs bounds retained terminal gateway jobs (default 512);
	// eviction releases the jobs' result-byte charges.
	MaxJobs int
	// DefaultQuota fills zero fields of every tenant's quota.
	DefaultQuota QuotaConfig
	// PeerPassthrough forwards /v1/peer/* requests to the backend without
	// tenant authentication — node-to-node traffic authenticates with the
	// cluster's shared peer secret, not an API key. Enable it only on
	// clustered nodes; everywhere else the gateway refuses the peer
	// surface outright (404), so tenants cannot reach the backend's
	// analysis-compute or object-transfer routes.
	PeerPassthrough bool
}

func (c Config) withDefaults() Config {
	if c.DispatchSlots <= 0 {
		c.DispatchSlots = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = 3
	}
	if c.BulkWeight <= 0 {
		c.BulkWeight = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	return c
}

// Typed errors the HTTP layer maps to status codes.
var (
	ErrUnknownJob     = errors.New("gateway: unknown job")
	ErrJobNotReady    = errors.New("gateway: job has no result yet")
	ErrNotCancellable = errors.New("gateway: job is past cancellation")
	ErrUnknownBase    = errors.New("gateway: unknown base job")
	ErrBaseNotReady   = errors.New("gateway: base job has not completed")
	ErrUnknownTenant  = errors.New("gateway: unknown tenant")
	ErrClosed         = errors.New("gateway: shut down")
)

// ShedError is a load-shedding verdict: the request was refused to protect
// the service (or a quota), and the client should retry after RetryAfter
// seconds. The HTTP layer maps it to 429 with a Retry-After header.
type ShedError struct {
	Reason     string
	RetryAfter int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("gateway: overloaded (%s), retry after %ds", e.Reason, e.RetryAfter)
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	cfg   TenantConfig
	quota QuotaConfig // cfg.Quota merged with gateway defaults

	inflight    int   // non-terminal gateway jobs, followers included
	resultBytes int64 // retained result bytes across terminal jobs

	windowStart time.Time // stage-seconds fixed window
	windowUsed  float64
}

// gwJob is one tenant-visible admission. Several jobs may ride one
// workUnit (coalescing); each keeps its own event log and accounting.
type gwJob struct {
	id        string
	tenant    string
	lane      string
	coalesced bool
	submitted time.Time
	req       dserve.JobRequest

	state       string
	err         string
	stagesDone  int
	stagesTotal int
	resultBytes int64

	events *dserve.EventLog
	unit   *workUnit
}

// workUnit is one batch of backend work: the deduplicated form of every
// identical request in flight. jobs[0] is the current leader, whose tenant
// is charged the unit's stage-seconds.
type workUnit struct {
	digest string
	req    dserve.JobRequest
	lane   string
	tenant string

	jobs     []*gwJob
	mirrored []dserve.JobEvent // upstream events, replayed to late attachers

	dispatched  bool
	dsID        string
	state       string
	stagesDone  int
	stagesTotal int
}

// Gateway is the multi-tenant front door. See the package documentation
// for the full model.
type Gateway struct {
	backend Backend
	cfg     Config

	// Counters and Timings hold the gateway's own series, merged into the
	// backend's /v1/metrics payload under "gateway".
	Counters *metrics.CounterSet
	Timings  *metrics.TimingSet

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenantState
	keys    map[string]string // API key -> tenant name

	jobs  map[string]*gwJob
	order []string
	seq   int

	lanes            map[string][]*workUnit
	servedI, servedB int64
	units            map[string]*workUnit // in-flight only, by request digest
	inflightUnits    int

	// stop is closed by Close so dispatched units' pump goroutines and
	// busy-retry loops unblock instead of waiting on the backend forever.
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a gateway over the backend with the given tenant set.
func New(backend Backend, cfg Config, tenants []TenantConfig) (*Gateway, error) {
	g := &Gateway{
		backend:  backend,
		cfg:      cfg.withDefaults(),
		Counters: metrics.NewCounterSet(),
		Timings:  metrics.NewTimingSet(),
		tenants:  map[string]*tenantState{},
		keys:     map[string]string{},
		jobs:     map[string]*gwJob{},
		lanes:    map[string][]*workUnit{LaneInteractive: nil, LaneBulk: nil},
		units:    map[string]*workUnit{},
		stop:     make(chan struct{}),
	}
	if err := g.SetTenants(tenants); err != nil {
		return nil, err
	}
	return g, nil
}

// SetTenants replaces the tenant table (key rotation, quota changes,
// tenant add/remove). Live accounting carries over by tenant name: a
// tenant present before and after the reload keeps its in-flight counts,
// byte charges, and stage-seconds window. Jobs of a removed tenant finish
// but are no longer reachable by any key; the removed tenant's accounting
// is retained (key-less) while any of it is live, so re-adding the tenant
// later resumes from true counts instead of zeroed ones.
func (g *Gateway) SetTenants(cfgs []TenantConfig) error {
	if err := ValidateTenants(cfgs); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	next := make(map[string]*tenantState, len(cfgs))
	keys := make(map[string]string)
	for _, tc := range cfgs {
		ts := g.tenants[tc.Name]
		if ts == nil {
			ts = &tenantState{}
		}
		ts.cfg = tc
		ts.quota = tc.Quota.merge(g.cfg.DefaultQuota)
		next[tc.Name] = ts
		for _, k := range tc.Keys {
			keys[k] = tc.Name
		}
	}
	for name, ts := range g.tenants {
		if _, kept := next[name]; kept {
			continue
		}
		if ts.inflight > 0 || ts.resultBytes > 0 {
			// Removed mid-flight: no key reaches this tenant anymore, but
			// dropping the state would make finishUnit/Cancel decrement a
			// fresh zero (driving inflight negative and over-admitting on a
			// later re-add). Keep it until its charges drain; a future
			// reload re-evaluates.
			ts.cfg.Keys = nil
			next[name] = ts
		}
	}
	g.tenants = next
	g.keys = keys
	g.Counters.Add("gateway.tenant_reloads", 1)
	return nil
}

// Authenticate resolves an API key to its tenant name.
func (g *Gateway) Authenticate(key string) (string, bool) {
	if key == "" {
		return "", false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	name, ok := g.keys[key]
	return name, ok
}

// requestDigest is the coalescing key: SHA-256 over the canonical JSON of
// the validated request (framework resolved, base already translated to a
// backend job ID). Install generation is deterministic from the request
// fields, so equal digests mean byte-identical batches; the key is
// conservative — only logically identical requests coalesce.
func requestDigest(req dserve.JobRequest) string {
	if fw, err := dserve.ResolveFramework(req.Framework); err == nil {
		req.Framework = fw
	}
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Submit admits one request for the tenant: validate, translate the base,
// enforce quotas, coalesce onto an in-flight identical unit or enqueue a
// new one, and return the queued job's snapshot. Shed verdicts come back
// as *ShedError.
func (g *Gateway) Submit(tenantName string, req dserve.JobRequest, laneOverride string) (*JobView, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	ts := g.tenants[tenantName]
	if ts == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	lane := laneOverride
	if lane == "" {
		lane = ts.cfg.Lane
	}
	if lane == "" {
		lane = LaneInteractive
	}
	if lane != LaneInteractive && lane != LaneBulk {
		return nil, fmt.Errorf("gateway: unknown lane %q (want %s or %s)", lane, LaneInteractive, LaneBulk)
	}

	if req.Base != "" {
		// Clients name gateway jobs; the backend knows only its own IDs.
		// Translate (own-tenant, completed) or refuse.
		bj := g.jobs[req.Base]
		if bj == nil || bj.tenant != tenantName {
			return nil, fmt.Errorf("%w: %q", ErrUnknownBase, req.Base)
		}
		if bj.state != JobDone || bj.unit == nil || bj.unit.dsID == "" {
			return nil, fmt.Errorf("%w: %s is %s", ErrBaseNotReady, req.Base, bj.state)
		}
		req.Base = bj.unit.dsID
	}

	if shed := g.quotaShedLocked(ts); shed != nil {
		g.shedLocked(tenantName, lane, shed)
		return nil, shed
	}

	digest := requestDigest(req)
	if u := g.units[digest]; u != nil {
		// Identical work already in flight: attach as a follower. The one
		// backend batch feeds every rider; this tenant still pays its own
		// concurrency slot and result-byte charge.
		job := g.newJobLocked(tenantName, lane, req, u, true)
		job.state = u.state
		job.stagesDone, job.stagesTotal = u.stagesDone, u.stagesTotal
		for _, ev := range u.mirrored {
			job.events.Append(ev)
		}
		u.jobs = append(u.jobs, job)
		ts.inflight++
		g.admitCountersLocked(tenantName, lane)
		g.Counters.Add("gateway.coalesced", 1)
		g.Counters.Add("tenant."+tenantName+".coalesced", 1)
		g.Counters.Add("lane."+lane+".coalesced", 1)
		return g.viewLocked(job), nil
	}

	if len(g.lanes[lane]) >= g.cfg.QueueDepth {
		shed := &ShedError{Reason: ShedQueueFull, RetryAfter: g.wallHintLocked()}
		g.shedLocked(tenantName, lane, shed)
		return nil, shed
	}

	u := &workUnit{digest: digest, req: req, lane: lane, tenant: tenantName, state: JobQueued}
	job := g.newJobLocked(tenantName, lane, req, u, false)
	u.jobs = []*gwJob{job}
	g.units[digest] = u
	g.lanes[lane] = append(g.lanes[lane], u)
	ts.inflight++
	g.admitCountersLocked(tenantName, lane)
	g.dispatchLocked()
	return g.viewLocked(job), nil
}

func (g *Gateway) newJobLocked(tenant, lane string, req dserve.JobRequest, u *workUnit, coalesced bool) *gwJob {
	g.seq++
	job := &gwJob{
		id:        fmt.Sprintf("gw-%04d", g.seq),
		tenant:    tenant,
		lane:      lane,
		coalesced: coalesced,
		submitted: time.Now(),
		req:       req,
		state:     JobQueued,
		events:    dserve.NewEventLog(),
		unit:      u,
	}
	job.events.Append(dserve.JobEvent{Type: dserve.EventState, State: JobQueued})
	g.jobs[job.id] = job
	g.order = append(g.order, job.id)
	return job
}

func (g *Gateway) admitCountersLocked(tenant, lane string) {
	g.Counters.Add("gateway.admitted", 1)
	g.Counters.Add("tenant."+tenant+".admitted", 1)
	g.Counters.Add("lane."+lane+".admitted", 1)
}

func (g *Gateway) shedLocked(tenant, lane string, shed *ShedError) {
	g.Counters.Add("gateway.shed", 1)
	g.Counters.Add("gateway.shed."+shed.Reason, 1)
	g.Counters.Add("tenant."+tenant+".shed", 1)
	g.Counters.Add("lane."+lane+".shed", 1)
}

// quotaShedLocked returns the shed verdict for one more admission under
// the tenant's quotas, or nil to admit.
func (g *Gateway) quotaShedLocked(ts *tenantState) *ShedError {
	q := ts.quota
	if q.MaxConcurrent > 0 && ts.inflight >= q.MaxConcurrent {
		return &ShedError{Reason: ShedConcurrency, RetryAfter: g.wallHintLocked()}
	}
	if q.MaxResultBytes > 0 && ts.resultBytes >= q.MaxResultBytes {
		return &ShedError{Reason: ShedResultBytes, RetryAfter: g.wallHintLocked()}
	}
	if q.StageSeconds > 0 {
		g.rollWindowLocked(ts)
		if ts.windowUsed >= q.StageSeconds {
			rem := time.Until(ts.windowStart.Add(time.Duration(q.WindowSeconds) * time.Second))
			return &ShedError{Reason: ShedStageSeconds, RetryAfter: ceilSeconds(rem)}
		}
	}
	return nil
}

// rollWindowLocked resets an expired stage-seconds window.
func (g *Gateway) rollWindowLocked(ts *tenantState) {
	w := time.Duration(ts.quota.WindowSeconds) * time.Second
	if ts.windowStart.IsZero() || time.Since(ts.windowStart) >= w {
		ts.windowStart = time.Now()
		ts.windowUsed = 0
	}
}

// wallHintLocked estimates seconds until capacity plausibly frees: the
// recent median unit wall time, clamped to [1, 30].
func (g *Gateway) wallHintLocked() int {
	p50 := g.Timings.Summary("gateway.unit_wall").P50 // milliseconds
	return clampSeconds(int((p50 + 999) / 1000))
}

func ceilSeconds(d time.Duration) int {
	return clampSeconds(int((d + time.Second - 1) / time.Second))
}

func clampSeconds(s int) int {
	if s < 1 {
		return 1
	}
	if s > 30 {
		return 30
	}
	return s
}

// stageCharge bills a dispatched unit's per-stage wall time to its
// tenant's stage-seconds window. Called from backend execution goroutines.
type stageCharge struct {
	g      *Gateway
	tenant string
}

func (o stageCharge) StageDone(_ string, _ bool, wall time.Duration) {
	o.g.mu.Lock()
	defer o.g.mu.Unlock()
	ts := o.g.tenants[o.tenant]
	if ts == nil || ts.quota.StageSeconds <= 0 {
		return
	}
	o.g.rollWindowLocked(ts)
	ts.windowUsed += wall.Seconds()
}

// dispatchLocked fills free submission slots from the lane queues.
func (g *Gateway) dispatchLocked() {
	for !g.closed && g.inflightUnits < g.cfg.DispatchSlots {
		u := g.pickLocked()
		if u == nil {
			return
		}
		u.dispatched = true
		g.inflightUnits++
		g.Counters.Add("lane."+u.lane+".dispatched", 1)
		g.wg.Add(1)
		go g.runUnit(u)
	}
}

// pickLocked pops the next unit under weighted round-robin. Served counts
// advance only on contested picks, so a lane idle while the other drains
// does not bank credit for a starvation-sized burst later.
func (g *Gateway) pickLocked() *workUnit {
	qi, qb := g.lanes[LaneInteractive], g.lanes[LaneBulk]
	var lane string
	switch {
	case len(qi) == 0 && len(qb) == 0:
		return nil
	case len(qb) == 0:
		lane = LaneInteractive
	case len(qi) == 0:
		lane = LaneBulk
	case g.servedI*int64(g.cfg.BulkWeight) <= g.servedB*int64(g.cfg.InteractiveWeight):
		lane, g.servedI = LaneInteractive, g.servedI+1
	default:
		lane, g.servedB = LaneBulk, g.servedB+1
	}
	q := g.lanes[lane]
	u := q[0]
	g.lanes[lane] = append(q[:0:0], q[1:]...)
	return u
}

// runUnit submits the unit to the backend (holding its slot through
// transient ErrBusy backpressure) and pumps the upstream event log into
// every attached job until the terminal event.
func (g *Gateway) runUnit(u *workUnit) {
	defer g.wg.Done()
	start := time.Now()
	obs := stageCharge{g: g, tenant: u.tenant}
	var ds *dserve.Job
	var err error
	for backoff := time.Millisecond; ; {
		ds, err = g.backend.SubmitWith(u.req, dserve.SubmitOptions{Observer: obs})
		if !errors.Is(err, dserve.ErrBusy) {
			break
		}
		// The backend's in-flight cap is backpressure, not a verdict:
		// admitted work must not fail for it. Hold the slot and retry.
		g.Counters.Add("gateway.backend_busy_retries", 1)
		select {
		case <-g.stop:
			g.finishUnit(u, dserve.JobEvent{
				Type: dserve.EventState, State: JobFailed, Terminal: true,
				Error: ErrClosed.Error(),
			}, 0, start)
			return
		case <-time.After(backoff):
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
	if err != nil {
		g.finishUnit(u, dserve.JobEvent{
			Type: dserve.EventState, State: JobFailed, Terminal: true,
			Error: fmt.Sprintf("gateway: dispatch: %v", err),
		}, 0, start)
		return
	}
	g.mu.Lock()
	u.dsID = ds.ID
	g.mu.Unlock()
	g.pumpUnit(u, ds.ID, start)
}

// pumpUnit mirrors the backend job's event stream into the unit (and every
// attached gateway job) until its terminal event.
func (g *Gateway) pumpUnit(u *workUnit, dsID string, start time.Time) {
	last := -1
	for {
		evs, done, ch, err := g.backend.JobEvents(dsID, last)
		if err != nil {
			// Evicted mid-flight — cannot happen to a running backend job,
			// but a fake or future backend might: fail the riders rather
			// than hang them.
			g.finishUnit(u, dserve.JobEvent{
				Type: dserve.EventState, State: JobFailed, Terminal: true,
				Error: "gateway: backend job " + dsID + " disappeared mid-flight",
			}, 0, start)
			return
		}
		var term *dserve.JobEvent
		g.mu.Lock()
		for i := range evs {
			ev := evs[i]
			last = ev.Seq
			if ev.Terminal {
				term = &evs[i]
				break
			}
			if ev.Type == dserve.EventState && ev.State == dserve.JobQueued {
				continue // the gateway issued its own queued event at admission
			}
			g.mirrorLocked(u, ev)
		}
		g.mu.Unlock()
		if term != nil {
			// The terminal event carries the job's retained result bytes
			// (JobEvent.ResultBytes); re-fetching the job here would race
			// MaxJobs pruning, which can evict it between its terminal event
			// and the lookup and silently zero the tenant's charge.
			g.finishUnit(u, *term, term.ResultBytes, start)
			return
		}
		if done {
			// Terminally closed with no terminal event — defensive.
			g.finishUnit(u, dserve.JobEvent{
				Type: dserve.EventState, State: JobFailed, Terminal: true,
				Error: "gateway: backend stream for " + dsID + " ended without a terminal event",
			}, 0, start)
			return
		}
		select {
		case <-ch:
		case <-g.stop:
			// Shutdown with the backend job still running: the gateway
			// stops tracking it; riders see a terminal failure.
			g.finishUnit(u, dserve.JobEvent{
				Type: dserve.EventState, State: JobFailed, Terminal: true,
				Error: ErrClosed.Error(),
			}, 0, start)
			return
		}
	}
}

// mirrorLocked records one upstream event on the unit and fans it out to
// every attached job's log (Append re-stamps Seq per log).
func (g *Gateway) mirrorLocked(u *workUnit, ev dserve.JobEvent) {
	switch ev.Type {
	case dserve.EventState:
		u.state = ev.State
	case dserve.EventStage:
		u.stagesDone, u.stagesTotal = ev.StagesDone, ev.StagesTotal
	}
	u.mirrored = append(u.mirrored, ev)
	for _, j := range u.jobs {
		switch ev.Type {
		case dserve.EventState:
			j.state = ev.State
		case dserve.EventStage:
			j.stagesDone, j.stagesTotal = ev.StagesDone, ev.StagesTotal
		}
		j.events.Append(ev)
	}
}

// finishUnit publishes the unit's terminal event to every rider, settles
// accounting (result bytes charged per attached tenant, in-flight slots
// released), frees the dispatch slot, and pulls the next unit.
func (g *Gateway) finishUnit(u *workUnit, term dserve.JobEvent, bytes int64, start time.Time) {
	g.Timings.Observe("gateway.unit_wall", time.Since(start))
	if term.StagesTotal == 0 {
		term.StagesDone, term.StagesTotal = u.stagesDone, u.stagesTotal
	}
	g.mu.Lock()
	delete(g.units, u.digest)
	u.state = term.State
	u.stagesDone, u.stagesTotal = term.StagesDone, term.StagesTotal
	for _, j := range u.jobs {
		j.state = term.State
		j.err = term.Error
		j.stagesDone, j.stagesTotal = term.StagesDone, term.StagesTotal
		j.resultBytes = bytes
		j.events.Append(term)
		if ts := g.tenants[j.tenant]; ts != nil {
			if ts.inflight > 0 { // clamp: a tenant reload may have reset state
				ts.inflight--
			}
			ts.resultBytes += bytes
		}
	}
	if term.State == JobDone {
		g.Counters.Add("gateway.completed", int64(len(u.jobs)))
	} else {
		g.Counters.Add("gateway.failed", int64(len(u.jobs)))
	}
	u.jobs = nil
	if u.dispatched {
		g.inflightUnits--
	}
	g.pruneLocked()
	g.dispatchLocked()
	g.mu.Unlock()
}

// Cancel withdraws a still-queued job. A follower (or a leader with
// followers) detaches without disturbing the unit — the charging tenant is
// promoted to the next rider when the leader leaves — and the unit itself
// is dropped from its lane only when the last rider cancels. Dispatched
// units are past cancellation (the backend owns them): ErrNotCancellable.
func (g *Gateway) Cancel(tenantName, id string) (*JobView, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := g.jobs[id]
	if j == nil || j.tenant != tenantName {
		return nil, ErrUnknownJob
	}
	u := j.unit
	if j.state != JobQueued || u == nil || u.dispatched {
		return nil, ErrNotCancellable
	}
	riders := u.jobs[:0]
	for _, r := range u.jobs {
		if r != j {
			riders = append(riders, r)
		}
	}
	u.jobs = riders
	if len(u.jobs) == 0 {
		delete(g.units, u.digest)
		q := g.lanes[u.lane]
		kept := q[:0]
		for _, qu := range q {
			if qu != u {
				kept = append(kept, qu)
			}
		}
		g.lanes[u.lane] = kept
	} else if u.tenant == tenantName {
		u.tenant = u.jobs[0].tenant
	}
	j.state = JobCancelled
	j.events.Append(dserve.JobEvent{
		Type: dserve.EventState, State: JobCancelled, Terminal: true,
		StagesDone: j.stagesDone, StagesTotal: j.stagesTotal,
	})
	if ts := g.tenants[tenantName]; ts != nil && ts.inflight > 0 {
		ts.inflight--
	}
	g.Counters.Add("gateway.cancelled", 1)
	g.pruneLocked()
	return g.viewLocked(j), nil
}

// pruneLocked evicts the oldest terminal jobs beyond MaxJobs, releasing
// their tenants' result-byte charges.
func (g *Gateway) pruneLocked() {
	var terminal []string
	for _, id := range g.order {
		switch g.jobs[id].state {
		case JobDone, JobFailed, JobCancelled:
			terminal = append(terminal, id)
		}
	}
	excess := len(terminal) - g.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	evict := make(map[string]bool, excess)
	for _, id := range terminal[:excess] {
		evict[id] = true
	}
	kept := g.order[:0]
	for _, id := range g.order {
		if !evict[id] {
			kept = append(kept, id)
			continue
		}
		j := g.jobs[id]
		if ts := g.tenants[j.tenant]; ts != nil {
			if ts.resultBytes -= j.resultBytes; ts.resultBytes < 0 {
				ts.resultBytes = 0 // clamp: a tenant reload may have reset state
			}
		}
		delete(g.jobs, id)
		g.Counters.Add("gateway.evicted", 1)
	}
	g.order = kept
}

// JobView is a tenant-facing job snapshot.
type JobView struct {
	ID          string
	Tenant      string
	Lane        string
	State       string
	Err         string
	Coalesced   bool
	Submitted   time.Time
	Framework   string
	Workloads   int
	Base        string
	StagesDone  int
	StagesTotal int
	// Upstream is the backend job ID once the unit dispatched.
	Upstream string
}

func (g *Gateway) viewLocked(j *gwJob) *JobView {
	v := &JobView{
		ID: j.id, Tenant: j.tenant, Lane: j.lane, State: j.state, Err: j.err,
		Coalesced: j.coalesced, Submitted: j.submitted,
		Framework: j.req.Framework, Workloads: len(j.req.Workloads), Base: j.req.Base,
		StagesDone: j.stagesDone, StagesTotal: j.stagesTotal,
	}
	if j.unit != nil {
		v.Upstream = j.unit.dsID
	}
	return v
}

// Job returns the tenant's job snapshot, or nil when the ID is unknown or
// owned by another tenant (indistinguishable by design).
func (g *Gateway) Job(tenant, id string) *JobView {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := g.jobs[id]
	if j == nil || j.tenant != tenant {
		return nil
	}
	return g.viewLocked(j)
}

// Jobs returns the tenant's jobs in admission order.
func (g *Gateway) Jobs(tenant string) []*JobView {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*JobView
	for _, id := range g.order {
		if j := g.jobs[id]; j.tenant == tenant {
			out = append(out, g.viewLocked(j))
		}
	}
	return out
}

// JobEvents is the tenant-scoped event-stream accessor, shaped for
// dserve.ServeEvents.
func (g *Gateway) JobEvents(tenant, id string, after int) ([]dserve.JobEvent, bool, <-chan struct{}, error) {
	g.mu.Lock()
	j := g.jobs[id]
	if j == nil || j.tenant != tenant {
		g.mu.Unlock()
		return nil, false, nil, ErrUnknownJob
	}
	log := j.events
	g.mu.Unlock()
	evs, done, ch := log.After(after)
	return evs, done, ch, nil
}

// Upstream translates a completed gateway job to its backend job ID, for
// delegated report and library fetches. ErrUnknownJob for missing/foreign
// IDs, ErrJobNotReady before dispatch or after cancellation.
func (g *Gateway) Upstream(tenant, id string) (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := g.jobs[id]
	if j == nil || j.tenant != tenant {
		return "", ErrUnknownJob
	}
	if j.state == JobCancelled || j.unit == nil || j.unit.dsID == "" {
		return "", fmt.Errorf("%w: %s is %s", ErrJobNotReady, id, j.state)
	}
	return j.unit.dsID, nil
}

// RetryAfterHint estimates seconds before a queued/running job's next
// poll is worthwhile.
func (g *Gateway) RetryAfterHint() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.wallHintLocked()
}

// MetricsPayload merges the backend's metrics payload with a "gateway"
// section: counters (admitted/shed/coalesced totals plus per-lane
// breakdowns), unit wall timings, lane depths and weights, and live
// per-tenant accounting. The view is scoped to the requesting tenant —
// other tenants' names, counters, and accounting are withheld, so the
// shared metrics route discloses only gateway-wide aggregates plus the
// caller's own numbers.
func (g *Gateway) MetricsPayload(tenant string) map[string]any {
	out := g.backend.MetricsPayload()
	g.mu.Lock()
	lanes := map[string]any{
		LaneInteractive: map[string]any{"queued": len(g.lanes[LaneInteractive]), "weight": g.cfg.InteractiveWeight},
		LaneBulk:        map[string]any{"queued": len(g.lanes[LaneBulk]), "weight": g.cfg.BulkWeight},
	}
	tenants := make(map[string]any, 1)
	if ts := g.tenants[tenant]; ts != nil {
		g.rollWindowLocked(ts)
		tenants[tenant] = map[string]any{
			"inflight":             ts.inflight,
			"result_bytes":         ts.resultBytes,
			"window_stage_seconds": ts.windowUsed,
		}
	}
	inflight := g.inflightUnits
	g.mu.Unlock()
	counters := g.Counters.Snapshot()
	ownPrefix := "tenant." + tenant + "."
	for k := range counters {
		if strings.HasPrefix(k, "tenant.") && !strings.HasPrefix(k, ownPrefix) {
			delete(counters, k)
		}
	}
	out["gateway"] = map[string]any{
		"counters":       counters,
		"timings":        g.Timings.Snapshot(),
		"lanes":          lanes,
		"inflight_units": inflight,
		"tenants":        tenants,
	}
	return out
}

// Close stops admission, fails every still-queued unit (riders receive a
// terminal failed event rather than hanging), and waits for dispatched
// units to finish pumping.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return
	}
	g.closed = true
	close(g.stop)
	var queued []*workUnit
	for _, lane := range []string{LaneInteractive, LaneBulk} {
		queued = append(queued, g.lanes[lane]...)
		g.lanes[lane] = nil
	}
	g.mu.Unlock()
	for _, u := range queued {
		g.finishUnit(u, dserve.JobEvent{
			Type: dserve.EventState, State: JobFailed, Terminal: true,
			Error: ErrClosed.Error(),
		}, 0, time.Now())
	}
	g.wg.Wait()
}
