package gateway

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"negativaml/internal/dserve"
)

// fakeBackend is a hand-cranked Backend: submissions queue instantly and
// complete only when the test says so, which makes admission, coalescing,
// cancellation, and accounting orderings deterministic.
type fakeBackend struct {
	mu   sync.Mutex
	seq  int
	busy int // ErrBusy verdicts to hand out before accepting
	jobs map[string]*dserve.Job
	logs map[string]*dserve.EventLog
	opts map[string]dserve.SubmitOptions
	ids  []string // submission order
}

func newFake() *fakeBackend {
	return &fakeBackend{
		jobs: map[string]*dserve.Job{},
		logs: map[string]*dserve.EventLog{},
		opts: map[string]dserve.SubmitOptions{},
	}
}

func (f *fakeBackend) SubmitWith(req dserve.JobRequest, opts dserve.SubmitOptions) (*dserve.Job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.busy > 0 {
		f.busy--
		return nil, dserve.ErrBusy
	}
	f.seq++
	id := fmt.Sprintf("job-%04d", f.seq)
	j := &dserve.Job{ID: id, Req: req, State: dserve.JobQueued, Submitted: time.Now()}
	log := dserve.NewEventLog()
	log.Append(dserve.JobEvent{Type: dserve.EventState, State: dserve.JobQueued})
	f.jobs[id], f.logs[id], f.opts[id] = j, log, opts
	f.ids = append(f.ids, id)
	return &dserve.Job{ID: id, Req: req, State: dserve.JobQueued}, nil
}

func (f *fakeBackend) Job(id string) *dserve.Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	j := f.jobs[id]
	if j == nil {
		return nil
	}
	snap := *j
	return &snap
}

func (f *fakeBackend) JobEvents(id string, after int) ([]dserve.JobEvent, bool, <-chan struct{}, error) {
	f.mu.Lock()
	log := f.logs[id]
	f.mu.Unlock()
	if log == nil {
		return nil, false, nil, dserve.ErrUnknownJob
	}
	evs, done, ch := log.After(after)
	return evs, done, ch, nil
}

func (f *fakeBackend) MetricsPayload() map[string]any {
	return map[string]any{"counters": map[string]int64{}}
}

// count returns how many submissions the backend has accepted.
func (f *fakeBackend) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ids)
}

// last returns the most recently accepted backend job ID.
func (f *fakeBackend) last() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ids[len(f.ids)-1]
}

// stage reports one finished stage: event appended, observer charged.
func (f *fakeBackend) stage(id, name string, done, total int, wall time.Duration) {
	f.mu.Lock()
	j, log, opts := f.jobs[id], f.logs[id], f.opts[id]
	j.State = dserve.JobRunning
	j.StagesDone, j.StagesTotal = done, total
	f.mu.Unlock()
	log.Append(dserve.JobEvent{Type: dserve.EventStage, Stage: name, StagesDone: done, StagesTotal: total})
	if opts.Observer != nil {
		opts.Observer.StageDone(name, false, wall)
	}
}

// finish drives the backend job terminal.
func (f *fakeBackend) finish(id string, fail bool, msg string) {
	f.mu.Lock()
	j, log := f.jobs[id], f.logs[id]
	if fail {
		j.State, j.Err = dserve.JobFailed, msg
	} else {
		j.State = dserve.JobDone
	}
	state, opts := j.State, f.opts[id]
	f.mu.Unlock()
	log.Append(dserve.JobEvent{Type: dserve.EventState, State: state, Error: msg, Terminal: true})
	if opts.OnDone != nil {
		opts.OnDone(f.Job(id))
	}
}

// waitFor polls cond to true within two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testReq returns a distinct valid request per variant.
func testReq(v int) dserve.JobRequest {
	return dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  4 + v,
		Workloads: []dserve.WorkloadSpec{{Model: "MobileNetV2", Batch: 1}},
	}
}

func oneTenant(name, key string, q QuotaConfig) []TenantConfig {
	return []TenantConfig{{Name: name, Keys: []string{key}, Quota: q}}
}

func TestRequestDigestCanonical(t *testing.T) {
	a := testReq(0)
	b := testReq(0)
	b.Framework = "PyTorch" // spelling normalizes away
	if requestDigest(a) != requestDigest(b) {
		t.Fatal("framework spelling must not change the digest")
	}
	c := testReq(1)
	if requestDigest(a) == requestDigest(c) {
		t.Fatal("distinct requests must not collide")
	}
}

// TestQuotaExactlyExhausted: a tenant whose concurrency quota is exactly
// consumed by an in-flight batch sheds the next submission, and admits
// again the moment the batch completes.
func TestQuotaExactlyExhausted(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{}, oneTenant("t", "k", QuotaConfig{MaxConcurrent: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	v1, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Submit("t", testReq(1), "")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedConcurrency {
		t.Fatalf("want concurrency shed, got %v", err)
	}
	if shed.RetryAfter < 1 {
		t.Fatalf("Retry-After must be at least 1s, got %d", shed.RetryAfter)
	}
	if got := g.Counters.Get("tenant.t.shed"); got != 1 {
		t.Fatalf("tenant shed counter = %d, want 1", got)
	}

	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })
	fb.finish(fb.last(), false, "")
	waitFor(t, "completion", func() bool { return g.Job("t", v1.ID).State == JobDone })

	if _, err := g.Submit("t", testReq(2), ""); err != nil {
		t.Fatalf("slot freed by completion must admit: %v", err)
	}
}

// TestKeyRotationMidJob: rotating a tenant's keys while its job is in
// flight revokes the old key immediately, keeps the job owned by (and
// visible to) the tenant, and preserves live accounting.
func TestKeyRotationMidJob(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{}, oneTenant("t", "old-key", QuotaConfig{MaxConcurrent: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })

	if err := g.SetTenants(oneTenant("t", "new-key", QuotaConfig{MaxConcurrent: 1})); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Authenticate("old-key"); ok {
		t.Fatal("rotated-out key must stop authenticating")
	}
	name, ok := g.Authenticate("new-key")
	if !ok || name != "t" {
		t.Fatalf("new key must authenticate as t, got %q %v", name, ok)
	}
	if g.Job("t", v.ID) == nil {
		t.Fatal("in-flight job must survive rotation under its tenant")
	}
	// Accounting carried over: the pre-rotation job still occupies the slot.
	if _, err := g.Submit("t", testReq(1), ""); err == nil {
		t.Fatal("rotation must not reset the concurrency charge")
	}

	fb.finish(fb.last(), false, "")
	waitFor(t, "completion", func() bool { return g.Job("t", v.ID).State == JobDone })
	if _, err := g.Submit("t", testReq(2), ""); err != nil {
		t.Fatalf("post-rotation admission: %v", err)
	}
}

// TestCoalescedFollowersSeeLeaderFailure: followers of a failed unit
// receive its terminal failed event — they never hang.
func TestCoalescedFollowersSeeLeaderFailure(t *testing.T) {
	fb := newFake()
	tenants := []TenantConfig{
		{Name: "a", Keys: []string{"ka"}},
		{Name: "b", Keys: []string{"kb"}},
	}
	g, err := New(fb, Config{}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	va, err := g.Submit("a", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })
	vb, err := g.Submit("b", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if !vb.Coalesced {
		t.Fatal("identical in-flight request must coalesce")
	}
	if got := g.Counters.Get("gateway.coalesced"); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
	if fb.count() != 1 {
		t.Fatalf("coalescing must not dispatch again: %d backend submits", fb.count())
	}

	fb.finish(fb.last(), true, "boom")
	waitFor(t, "both terminal", func() bool {
		return g.Job("a", va.ID).State == JobFailed && g.Job("b", vb.ID).State == JobFailed
	})
	if got := g.Job("b", vb.ID).Err; got != "boom" {
		t.Fatalf("follower error = %q, want leader's", got)
	}
	evs, done, _, err := g.JobEvents("b", vb.ID, -1)
	if err != nil || !done {
		t.Fatalf("follower stream must be terminally closed: done=%v err=%v", done, err)
	}
	last := evs[len(evs)-1]
	if !last.Terminal || last.State != JobFailed {
		t.Fatalf("follower terminal event = %+v", last)
	}
}

// TestCancelQueuedLeaderPromotesFollower: cancelling the leader of a
// still-queued coalesced unit detaches only the leader; the follower rides
// the unit to completion.
func TestCancelQueuedLeaderPromotesFollower(t *testing.T) {
	fb := newFake()
	tenants := []TenantConfig{
		{Name: "a", Keys: []string{"ka"}},
		{Name: "b", Keys: []string{"kb"}},
	}
	g, err := New(fb, Config{DispatchSlots: 1}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Occupy the only dispatch slot so the coalesced unit stays queued.
	blocker, err := g.Submit("a", testReq(9), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker dispatch", func() bool { return fb.count() == 1 })
	blockerID := fb.last()

	va, err := g.Submit("a", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	vb, err := g.Submit("b", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if !vb.Coalesced {
		t.Fatal("second rider must coalesce")
	}

	cv, err := g.Cancel("a", va.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cv.State != JobCancelled {
		t.Fatalf("cancelled leader state = %s", cv.State)
	}
	evs, done, _, _ := g.JobEvents("a", va.ID, -1)
	if !done || !evs[len(evs)-1].Terminal || evs[len(evs)-1].State != JobCancelled {
		t.Fatalf("cancelled leader must get a terminal cancelled event: %+v", evs)
	}

	fb.finish(blockerID, false, "")
	waitFor(t, "promoted unit dispatch", func() bool { return fb.count() == 2 })
	fb.finish(fb.last(), false, "")
	waitFor(t, "follower completion", func() bool { return g.Job("b", vb.ID).State == JobDone })
	if got := g.Job("a", va.ID).State; got != JobCancelled {
		t.Fatalf("cancelled leader must stay cancelled, got %s", got)
	}
	if got := g.Job("b", blocker.ID); got != nil {
		t.Fatal("blocker belongs to tenant a; tenant b must not see it")
	}
}

// TestCancelLastRiderDropsUnit: cancelling a queued unit's only rider
// withdraws the unit — the backend never sees it.
func TestCancelLastRiderDropsUnit(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{DispatchSlots: 1}, oneTenant("t", "k", QuotaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Submit("t", testReq(9), ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker dispatch", func() bool { return fb.count() == 1 })
	blockerID := fb.last()
	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Cancel("t", v.ID); err != nil {
		t.Fatal(err)
	}
	fb.finish(blockerID, false, "")
	time.Sleep(20 * time.Millisecond) // give a wrong dispatch a chance to happen
	if fb.count() != 1 {
		t.Fatalf("withdrawn unit must never dispatch: %d backend submits", fb.count())
	}
	// The cancelled rider no longer occupies the queue or any quota; a
	// fresh identical request starts a fresh unit.
	v2, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Coalesced {
		t.Fatal("fresh request after withdrawal must not coalesce onto a ghost")
	}
}

// TestCancelPastDispatch: once a unit dispatched, cancellation is refused.
func TestCancelPastDispatch(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{}, oneTenant("t", "k", QuotaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })
	if _, err := g.Cancel("t", v.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("want ErrNotCancellable, got %v", err)
	}
	fb.finish(fb.last(), false, "")
	waitFor(t, "completion", func() bool { return g.Job("t", v.ID).State == JobDone })
	if _, err := g.Cancel("t", v.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("terminal job cancel: want ErrNotCancellable, got %v", err)
	}
}

// TestWeightedLanes: with both lanes contended, dispatch order follows the
// configured interactive:bulk weight ratio.
func TestWeightedLanes(t *testing.T) {
	fb := newFake()
	tenants := []TenantConfig{{Name: "t", Keys: []string{"k"}}}
	g, err := New(fb, Config{DispatchSlots: 1, InteractiveWeight: 3, BulkWeight: 1}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Submit("t", testReq(99), ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker dispatch", func() bool { return fb.count() == 1 })

	// Queue 6 interactive and 2 bulk units while the slot is held.
	for i := 0; i < 6; i++ {
		if _, err := g.Submit("t", testReq(i), LaneInteractive); err != nil {
			t.Fatal(err)
		}
	}
	for i := 6; i < 8; i++ {
		if _, err := g.Submit("t", testReq(i), LaneBulk); err != nil {
			t.Fatal(err)
		}
	}

	// Drain one at a time, recording each dispatched unit's lane (encoded
	// in TailLibs by testReq's variant).
	var order []string
	for n := 1; n <= 8; n++ {
		fb.finish(fb.last(), false, "")
		waitFor(t, "next dispatch", func() bool { return fb.count() == n+1 })
		if fb.Job(fb.last()).Req.TailLibs >= 4+6 {
			order = append(order, "b")
		} else {
			order = append(order, "i")
		}
	}
	fb.finish(fb.last(), false, "")

	// Contested picks alternate 3:1; bulk must appear by the 2nd pick
	// (no starvation) and interactive must dominate the first 8.
	iCount := 0
	for _, l := range order[:8] {
		if l == "i" {
			iCount++
		}
	}
	if iCount != 6 {
		t.Fatalf("interactive got %d of 8 contested picks, want 6 (order %v)", iCount, order)
	}
	if order[0] != "i" || order[1] != "b" {
		t.Fatalf("weighted order should open i, b — got %v", order)
	}
}

// TestQueueFullShed: lane queues are bounded; overflow sheds queue_full.
func TestQueueFullShed(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{DispatchSlots: 1, QueueDepth: 2}, oneTenant("t", "k", QuotaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Submit("t", testReq(9), ""); err != nil {
		t.Fatal(err) // holds the slot
	}
	waitFor(t, "blocker dispatch", func() bool { return fb.count() == 1 })
	for i := 0; i < 2; i++ {
		if _, err := g.Submit("t", testReq(i), ""); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	_, err = g.Submit("t", testReq(5), "")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("want queue_full shed, got %v", err)
	}
	// A duplicate of queued work still coalesces — riders don't consume
	// queue depth.
	v, err := g.Submit("t", testReq(0), "")
	if err != nil || !v.Coalesced {
		t.Fatalf("duplicate must coalesce past a full queue: %v %+v", err, v)
	}
	fb.finish(fb.last(), false, "")
}

// TestStageSecondsWindow: stage wall time charges the dispatching tenant's
// window; an exhausted window sheds until it rolls over.
func TestStageSecondsWindow(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{}, oneTenant("t", "k", QuotaConfig{StageSeconds: 5, WindowSeconds: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })
	id := fb.last()
	fb.stage(id, "locate", 1, 2, 10*time.Second) // blows the 5s budget
	fb.finish(id, false, "")
	waitFor(t, "completion", func() bool { return g.Job("t", v.ID).State == JobDone })

	_, err = g.Submit("t", testReq(1), "")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedStageSeconds {
		t.Fatalf("want stage_seconds shed, got %v", err)
	}
	if shed.RetryAfter < 1 {
		t.Fatalf("window shed Retry-After = %d", shed.RetryAfter)
	}

	time.Sleep(1100 * time.Millisecond) // window rolls
	if _, err := g.Submit("t", testReq(1), ""); err != nil {
		t.Fatalf("rolled window must admit: %v", err)
	}
}

// TestBackendBusyRetry: ErrBusy from the backend is retried, never
// surfaced as a failure of admitted work.
func TestBackendBusyRetry(t *testing.T) {
	fb := newFake()
	fb.busy = 3
	g, err := New(fb, Config{}, oneTenant("t", "k", QuotaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch after retries", func() bool { return fb.count() == 1 })
	fb.finish(fb.last(), false, "")
	waitFor(t, "completion", func() bool { return g.Job("t", v.ID).State == JobDone })
	if got := g.Counters.Get("gateway.backend_busy_retries"); got != 3 {
		t.Fatalf("busy retries = %d, want 3", got)
	}
}

// TestLateFollowerReplay: a follower that attaches after stages completed
// receives the full mirrored history, not just the suffix.
func TestLateFollowerReplay(t *testing.T) {
	fb := newFake()
	tenants := []TenantConfig{
		{Name: "a", Keys: []string{"ka"}},
		{Name: "b", Keys: []string{"kb"}},
	}
	g, err := New(fb, Config{}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Submit("a", testReq(0), ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })
	id := fb.last()
	fb.stage(id, "detect", 1, 3, time.Millisecond)
	fb.stage(id, "locate", 2, 3, time.Millisecond)
	// Wait until the pump mirrored both stages before attaching.
	waitFor(t, "mirror", func() bool {
		vs := g.Jobs("a")
		return vs[0].StagesDone == 2
	})

	vb, err := g.Submit("b", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if !vb.Coalesced || vb.StagesDone != 2 || vb.StagesTotal != 3 {
		t.Fatalf("late follower snapshot = %+v", vb)
	}
	evs, _, _, _ := g.JobEvents("b", vb.ID, -1)
	stages := 0
	for _, ev := range evs {
		if ev.Type == dserve.EventStage {
			stages++
		}
	}
	if stages != 2 {
		t.Fatalf("late follower replayed %d stage events, want 2", stages)
	}
	fb.finish(id, false, "")
	waitFor(t, "completion", func() bool { return g.Job("b", vb.ID).State == JobDone })
}

// TestEvictionReleasesResultBytes: pruned terminal jobs release their
// tenants' retained-byte charges.
func TestEvictionReleasesResultBytes(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{MaxJobs: 1}, oneTenant("t", "k", QuotaConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 3; i++ {
		v, err := g.Submit("t", testReq(i), "")
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "dispatch", func() bool { return fb.count() == i+1 })
		fb.finish(fb.last(), false, "")
		waitFor(t, "completion", func() bool {
			j := g.Job("t", v.ID)
			return j != nil && j.State == JobDone
		})
	}
	if got := g.Counters.Get("gateway.evicted"); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	if got := len(g.Jobs("t")); got != 1 {
		t.Fatalf("retained jobs = %d, want 1", got)
	}
}

// TestTenantRemoveMidFlight: a tenant removed by a reload while it has
// in-flight work keeps its accounting (key-less) so the eventual
// completion settles against real counts — re-adding the tenant must not
// start from a zeroed state, and inflight must never go negative.
func TestTenantRemoveMidFlight(t *testing.T) {
	fb := newFake()
	g, err := New(fb, Config{}, oneTenant("t", "k", QuotaConfig{MaxConcurrent: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	v, err := g.Submit("t", testReq(0), "")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dispatch", func() bool { return fb.count() == 1 })

	// Reload without "t": its keys stop working, but its live accounting
	// survives the reload.
	if err := g.SetTenants(oneTenant("u", "k2", QuotaConfig{})); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Authenticate("k"); ok {
		t.Fatal("removed tenant's key still authenticates")
	}
	g.mu.Lock()
	ts := g.tenants["t"]
	g.mu.Unlock()
	if ts == nil || ts.inflight != 1 {
		t.Fatalf("removed tenant's live accounting dropped: %+v", ts)
	}

	// Re-add "t" (rotated key): the retained state carries over, so the
	// finishing job decrements the true count instead of a fresh zero.
	if err := g.SetTenants([]TenantConfig{
		{Name: "t", Keys: []string{"k-new"}, Quota: QuotaConfig{MaxConcurrent: 2}},
		{Name: "u", Keys: []string{"k2"}},
	}); err != nil {
		t.Fatal(err)
	}
	fb.finish(fb.last(), false, "")
	waitFor(t, "completion", func() bool {
		j := g.Job("t", v.ID)
		return j != nil && j.State == JobDone
	})
	g.mu.Lock()
	inflight := g.tenants["t"].inflight
	g.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("inflight after completion = %d, want 0", inflight)
	}

	// Fully drained, the next reload drops the tenant for real.
	if err := g.SetTenants(oneTenant("u", "k2", QuotaConfig{})); err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	_, kept := g.tenants["t"]
	g.mu.Unlock()
	if kept {
		t.Fatal("drained removed tenant was retained")
	}
}

func TestTenantValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []TenantConfig
	}{
		{"empty", nil},
		{"no name", []TenantConfig{{Keys: []string{"k"}}}},
		{"no keys", []TenantConfig{{Name: "a"}}},
		{"empty key", []TenantConfig{{Name: "a", Keys: []string{""}}}},
		{"dup name", []TenantConfig{{Name: "a", Keys: []string{"k1"}}, {Name: "a", Keys: []string{"k2"}}}},
		{"shared key", []TenantConfig{{Name: "a", Keys: []string{"k"}}, {Name: "b", Keys: []string{"k"}}}},
		{"bad lane", []TenantConfig{{Name: "a", Keys: []string{"k"}, Lane: "express"}}},
		{"negative quota", []TenantConfig{{Name: "a", Keys: []string{"k"}, Quota: QuotaConfig{MaxConcurrent: -1}}}},
	}
	for _, tc := range cases {
		if err := ValidateTenants(tc.cfgs); err == nil {
			t.Errorf("%s: validation must fail", tc.name)
		}
	}
	good := []byte(`{"tenants": [
		{"name": "acme", "keys": ["k-acme"], "lane": "bulk",
		 "quota": {"max_concurrent": 4, "stage_seconds": 30.5, "window_seconds": 60}},
		{"name": "beta", "keys": ["k-beta-1", "k-beta-2"]}
	]}`)
	cfgs, err := ParseTenants(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Lane != LaneBulk || cfgs[0].Quota.MaxConcurrent != 4 {
		t.Fatalf("parsed %+v", cfgs)
	}
}

func TestQuotaMergeDefaults(t *testing.T) {
	def := QuotaConfig{MaxConcurrent: 8, StageSeconds: 60, WindowSeconds: 120}
	got := QuotaConfig{MaxConcurrent: 2}.merge(def)
	if got.MaxConcurrent != 2 || got.StageSeconds != 60 || got.WindowSeconds != 120 {
		t.Fatalf("merged = %+v", got)
	}
	zero := QuotaConfig{}.merge(QuotaConfig{})
	if zero.WindowSeconds != 60 {
		t.Fatalf("default window = %d, want 60", zero.WindowSeconds)
	}
}
