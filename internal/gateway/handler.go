package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"negativaml/internal/dserve"
)

// maxRequestBytes bounds job-submission bodies, matching the backend's cap.
const maxRequestBytes = 1 << 20

type ctxKey int

const tenantKey ctxKey = iota

func tenantOf(r *http.Request) string {
	name, _ := r.Context().Value(tenantKey).(string)
	return name
}

// apiKey extracts the request's API key: Authorization: Bearer <key>, or
// the X-API-Key header.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
		return ""
	}
	return r.Header.Get("X-API-Key")
}

type handler struct {
	g     *Gateway
	inner http.Handler
	mux   *http.ServeMux
}

// NewHandler wraps the backend's HTTP API with the gateway: every /v1/
// route requires a tenant API key, job routes are served from the
// gateway's own tenant-scoped job table (backend job IDs never appear in
// client URLs), report and library fetches delegate to the inner handler
// after ID translation, and /v1/metrics serves the merged payload scoped
// to the requesting tenant. The node-to-node /v1/peer/* routes are
// forwarded — without tenant auth, since peers authenticate with the
// cluster secret — only when Config.PeerPassthrough is set; otherwise the
// gateway answers 404 so tenants can never reach the peer surface.
func NewHandler(g *Gateway, inner http.Handler) http.Handler {
	h := &handler{g: g, inner: inner}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("POST /v1/submit", h.submit)
	mux.HandleFunc("GET /v1/jobs", h.list)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", h.events)
	mux.HandleFunc("GET /v1/jobs/{id}/report", h.report)
	mux.HandleFunc("GET /v1/jobs/{id}/libs/{name}", h.lib)
	mux.HandleFunc("GET /v1/metrics", h.metrics)
	// Everything else (e.g. /v1/store) passes through, authenticated.
	mux.Handle("/", inner)
	h.mux = mux
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/peer/") {
		// Node-to-node traffic: cluster peers are not tenants and carry no
		// API key — they authenticate with the cluster's shared secret at
		// the backend. Forward only on nodes explicitly configured as
		// cluster members; everywhere else the peer surface (analysis
		// compute, castore object transfer) must be unreachable to clients.
		if !h.g.cfg.PeerPassthrough {
			httpError(w, http.StatusNotFound, errors.New("peer API is not enabled on this node"))
			return
		}
		h.inner.ServeHTTP(w, r)
		return
	}
	tenant, ok := h.g.Authenticate(apiKey(r))
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="negativa"`)
		httpError(w, http.StatusUnauthorized, errors.New("missing or unknown API key"))
		return
	}
	h.mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, tenant)))
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req dserve.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("decode request: %w", err))
		return
	}
	view, err := h.g.Submit(tenantOf(r), req, r.Header.Get("X-Lane"))
	if err != nil {
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": shed.Error(), "reason": shed.Reason, "retry_after": shed.RetryAfter,
			})
		case errors.Is(err, ErrUnknownBase):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrBaseNotReady):
			httpError(w, http.StatusConflict, err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, statusOf(view))
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	views := h.g.Jobs(tenantOf(r))
	out := make([]gwStatus, len(views))
	for i, v := range views {
		out[i] = statusOf(v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view := h.g.Job(tenantOf(r), id)
	if view == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if view.State == JobQueued || view.State == JobRunning {
		w.Header().Set("Retry-After", strconv.Itoa(h.g.RetryAfterHint()))
	}
	writeJSON(w, http.StatusOK, statusOf(view))
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, err := h.g.Cancel(tenantOf(r), id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	case errors.Is(err, ErrNotCancellable):
		httpError(w, http.StatusConflict, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(view))
}

func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	tenant, id := tenantOf(r), r.PathValue("id")
	if h.g.Job(tenant, id) == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	dserve.ServeEvents(w, r, func(after int) ([]dserve.JobEvent, bool, <-chan struct{}) {
		evs, done, ch, err := h.g.JobEvents(tenant, id, after)
		if err != nil {
			// Evicted mid-stream: end the stream rather than hang.
			return nil, true, nil
		}
		return evs, done, ch
	})
}

func (h *handler) report(w http.ResponseWriter, r *http.Request) {
	h.delegate(w, r, func(dsID string) string {
		return "/v1/jobs/" + url.PathEscape(dsID) + "/report"
	})
}

func (h *handler) lib(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h.delegate(w, r, func(dsID string) string {
		return "/v1/jobs/" + url.PathEscape(dsID) + "/libs/" + url.PathEscape(name)
	})
}

// delegate translates the gateway job ID to its backend ID and replays the
// request against the inner handler at the translated path.
func (h *handler) delegate(w http.ResponseWriter, r *http.Request, path func(dsID string) string) {
	id := r.PathValue("id")
	dsID, err := h.g.Upstream(tenantOf(r), id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	case errors.Is(err, ErrJobNotReady):
		httpError(w, http.StatusConflict, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if h.g.backend.Job(dsID) == nil {
		// The gateway still lists the job as done, but the backend's
		// MaxJobs pruning already evicted the result. Distinguish this
		// from "unknown job" so clients know the result existed and is
		// permanently gone (resubmit to recompute).
		httpError(w, http.StatusGone, fmt.Errorf("result for job %q was evicted from the backend; resubmit to recompute", id))
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = path(dsID)
	r2.URL.RawPath = ""
	h.inner.ServeHTTP(w, r2)
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.g.MetricsPayload(tenantOf(r)))
}

// gwStatus is the tenant-facing job view returned by submit/list/status/
// cancel. It mirrors the backend's status shape (state, progress, stage
// counts) plus the gateway's tenancy fields; detail beyond this comes from
// the delegated report route.
type gwStatus struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Lane      string    `json:"lane"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Coalesced bool      `json:"coalesced,omitempty"`
	Submitted time.Time `json:"submitted"`
	Framework string    `json:"framework"`
	Workloads int       `json:"workloads"`
	// Base echoes the request's base as the backend job ID it resolved to.
	Base        string  `json:"base,omitempty"`
	Progress    float64 `json:"progress"`
	StagesDone  int     `json:"stages_done"`
	StagesTotal int     `json:"stages_total"`
	// Upstream is the backend job this one dispatched as, once dispatched.
	Upstream string `json:"upstream,omitempty"`
}

func statusOf(v *JobView) gwStatus {
	return gwStatus{
		ID: v.ID, Tenant: v.Tenant, Lane: v.Lane, State: v.State, Error: v.Err,
		Coalesced: v.Coalesced, Submitted: v.Submitted,
		Framework: v.Framework, Workloads: v.Workloads, Base: v.Base,
		Progress: progressOf(v), StagesDone: v.StagesDone, StagesTotal: v.StagesTotal,
		Upstream: v.Upstream,
	}
}

// progressOf mirrors the backend's monotone progress rule: 1 once done,
// else completed over planned stages (0 before planning). A cancelled or
// failed job keeps its last partial fraction.
func progressOf(v *JobView) float64 {
	if v.State == JobDone {
		return 1
	}
	if v.StagesTotal <= 0 {
		return 0
	}
	p := float64(v.StagesDone) / float64(v.StagesTotal)
	if p > 1 {
		p = 1
	}
	return p
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
