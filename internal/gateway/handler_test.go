package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"negativaml/internal/cluster"
	"negativaml/internal/dserve"
)

// newFrontDoor stands up a real dserve service behind a gateway handler.
func newFrontDoor(t *testing.T, cfg Config, tenants []TenantConfig) (*httptest.Server, *Gateway, *dserve.Service) {
	t.Helper()
	ts, g, svc, _ := newGatedFrontDoor(t, cfg, tenants)
	return ts, g, svc
}

// gatedBackend parks the blocker submission (recognised by heavyReq's tail
// width) until released, so tests that pin the only dispatch slot with a
// blocker hold it deterministically instead of racing the backend's speed.
type gatedBackend struct {
	*dserve.Service
	release chan struct{}
}

func (b *gatedBackend) SubmitWith(req dserve.JobRequest, opts dserve.SubmitOptions) (*dserve.Job, error) {
	if req.TailLibs == heavyTailLibs {
		<-b.release
	}
	return b.Service.SubmitWith(req, opts)
}

// newGatedFrontDoor is newFrontDoor plus a release func that lets a gated
// heavyReq blocker proceed. Cleanup releases too, so a test that fails
// before releasing still shuts down.
func newGatedFrontDoor(t *testing.T, cfg Config, tenants []TenantConfig) (*httptest.Server, *Gateway, *dserve.Service, func()) {
	t.Helper()
	svc := dserve.NewService(dserve.Config{Workers: 4, MaxSteps: 2})
	gb := &gatedBackend{Service: svc, release: make(chan struct{})}
	g, err := New(gb, cfg, tenants)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	release := sync.OnceFunc(func() { close(gb.release) })
	ts := httptest.NewServer(NewHandler(g, dserve.NewHandler(svc)))
	t.Cleanup(func() { release(); ts.Close(); g.Close(); svc.Close() })
	return ts, g, svc, release
}

func twoTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "acme", Keys: []string{"key-acme"}},
		{Name: "beta", Keys: []string{"key-beta"}, Lane: LaneBulk},
	}
}

// heavyTailLibs marks heavyReq batches; gatedBackend keys on it.
const heavyTailLibs = 24

// heavyReq is an expensive cold batch (wide tail, deep steps, training
// epochs) used as a dispatch-slot blocker. Tests that need it to still be
// in flight while other submissions land should hold it with a gated
// front door rather than racing the backend's speed.
func heavyReq() dserve.JobRequest {
	return dserve.JobRequest{
		Framework: "pytorch", TailLibs: heavyTailLibs, MaxSteps: 6,
		Workloads: []dserve.WorkloadSpec{
			{Model: "MobileNetV2", Batch: 1},
			{Model: "Transformer", Batch: 32},
			{Model: "MobileNetV2", Train: true, Batch: 16, Epochs: 8},
			{Model: "Transformer", Train: true, Batch: 128, Epochs: 8},
			{Model: "MobileNetV2", Train: true, Batch: 64, Epochs: 8},
			{Model: "Transformer", Train: true, Batch: 256, Epochs: 8},
		},
	}
}

// doJSON issues an authenticated request and decodes the JSON response.
func doJSON(t *testing.T, method, url, key string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp
}

func pollGwDone(t *testing.T, base, key, id string) gwStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st gwStatus
		resp := doJSON(t, "GET", base+"/v1/jobs/"+id, key, nil, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d", id, resp.StatusCode)
		}
		switch st.State {
		case JobDone, JobFailed, JobCancelled:
			return st
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("non-terminal status for %s must carry Retry-After", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return gwStatus{}
}

func TestAuthRequired(t *testing.T) {
	ts, _, _ := newFrontDoor(t, Config{}, twoTenants())

	for _, key := range []string{"", "wrong-key"} {
		var st gwStatus
		req := LoadRequest(0, 6, 2)
		resp := doJSON(t, "POST", ts.URL+"/v1/jobs", key, req, &st)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatal("401 must carry WWW-Authenticate")
		}
	}

	// X-API-Key is accepted as an alternative to the Bearer header.
	body, _ := json.Marshal(LoadRequest(0, 6, 2))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-API-Key", "key-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("X-API-Key submit: status %d, want 202", resp.StatusCode)
	}

	// Peer routes are node-to-node: a gateway without PeerPassthrough (the
	// non-clustered default) refuses them outright, even with a valid key —
	// tenants must never reach the backend's peer surface.
	for _, key := range []string{"", "key-acme"} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/peer/lookup", strings.NewReader("{}"))
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if presp.StatusCode != http.StatusNotFound {
			t.Fatalf("peer route with key %q: status %d, want 404", key, presp.StatusCode)
		}
	}
}

// TestPeerPassthrough: a clustered gateway forwards /v1/peer/* to the
// backend without tenant auth (peers carry the cluster secret instead of
// an API key) — the backend's own peer handling then answers.
func TestPeerPassthrough(t *testing.T) {
	ts, _, svc := newFrontDoor(t, Config{PeerPassthrough: true}, twoTenants())
	svc.AttachCluster(cluster.New("solo", nil, cluster.Options{}))

	presp, err := http.Post(ts.URL+"/v1/peer/lookup", "application/json",
		strings.NewReader(`{"stage":"compact","hash":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded peer lookup: status %d, want 200", presp.StatusCode)
	}
	var lr struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.Found {
		t.Fatal("lookup invented a result")
	}
}

// TestSubmitStreamReport is the happy-path e2e: submit, watch per-stage
// progress over SSE through the terminal event, then fetch the report via
// the delegated route — all under one tenant key, with backend job IDs
// never leaking into the client's view of URLs.
func TestSubmitStreamReport(t *testing.T) {
	ts, _, _ := newFrontDoor(t, Config{}, twoTenants())

	var st gwStatus
	resp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(1, 8, 2), &st)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(st.ID, "gw-") || st.Tenant != "acme" || st.Lane != LaneInteractive {
		t.Fatalf("submit view = %+v", st)
	}

	// SSE: stages stream with monotone progress and end terminally.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Authorization", "Bearer key-acme")
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("SSE content type = %q", ct)
	}
	var stages, lastDone int
	terminal := false
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev dserve.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE line %q: %v", line, err)
		}
		if ev.Type == dserve.EventStage {
			stages++
			if ev.StagesDone < lastDone {
				t.Fatalf("progress went backwards: %d after %d", ev.StagesDone, lastDone)
			}
			lastDone = ev.StagesDone
		}
		if ev.Terminal {
			terminal = true
			if ev.State != JobDone {
				t.Fatalf("terminal state %s: %s", ev.State, ev.Error)
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !terminal || stages == 0 {
		t.Fatalf("SSE saw %d stages, terminal=%v", stages, terminal)
	}

	final := pollGwDone(t, ts.URL, "key-acme", st.ID)
	if final.Progress != 1 || final.StagesDone != final.StagesTotal || final.StagesTotal == 0 {
		t.Fatalf("final status = %+v", final)
	}
	if final.Upstream == "" {
		t.Fatal("done job must expose its upstream backend ID")
	}

	var report map[string]any
	rresp := doJSON(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/report", "key-acme", nil, &report)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", rresp.StatusCode)
	}
	if _, ok := report["libs"]; !ok {
		t.Fatalf("report missing libs: %v", report)
	}

	// The other tenant sees none of it.
	oresp := doJSON(t, "GET", ts.URL+"/v1/jobs/"+st.ID, "key-beta", nil, nil)
	if oresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant status read: %d, want 404", oresp.StatusCode)
	}
}

// TestCoalescingAcrossTenants: identical concurrent submissions from two
// tenants share one backend execution; both riders complete with results.
func TestCoalescingAcrossTenants(t *testing.T) {
	ts, g, svc, release := newGatedFrontDoor(t, Config{DispatchSlots: 1}, twoTenants())

	// A gated blocker pins the dispatch slot so the two identical requests
	// demonstrably coalesce while queued.
	var blocker gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", heavyReq(), &blocker)

	var a, b gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(0, 6, 2), &a)
	resp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-beta", LoadRequest(0, 6, 2), &b)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("follower submit: %d", resp.StatusCode)
	}
	if !b.Coalesced {
		t.Fatal("identical queued request must coalesce")
	}
	release()

	fa := pollGwDone(t, ts.URL, "key-acme", a.ID)
	fb := pollGwDone(t, ts.URL, "key-beta", b.ID)
	if fa.State != JobDone || fb.State != JobDone {
		t.Fatalf("rider states: %s / %s", fa.State, fb.State)
	}
	if fa.Upstream != fb.Upstream {
		t.Fatalf("riders ran different backend jobs: %s vs %s", fa.Upstream, fb.Upstream)
	}
	if got := g.Counters.Get("gateway.coalesced"); got != 1 {
		t.Fatalf("gateway.coalesced = %d, want 1", got)
	}
	// Exactly two backend jobs ran (blocker + the shared unit).
	if got := svc.Counters.Get("jobs.submitted"); got != 2 {
		t.Fatalf("backend saw %d submissions, want 2", got)
	}

	// The merged metrics payload surfaces the gateway section.
	var m map[string]any
	doJSON(t, "GET", ts.URL+"/v1/metrics", "key-acme", nil, &m)
	gw, ok := m["gateway"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing gateway section: %v", m)
	}
	counters, _ := gw["counters"].(map[string]any)
	if counters["gateway.coalesced"] != 1.0 {
		t.Fatalf("metrics gateway.coalesced = %v", counters["gateway.coalesced"])
	}

	// The payload is scoped to the requesting tenant: acme sees its own
	// counters and accounting but nothing of beta's, even though beta just
	// rode the same unit.
	if n, _ := counters["tenant.acme.admitted"].(float64); n < 1 {
		t.Fatalf("metrics tenant.acme.admitted = %v", counters["tenant.acme.admitted"])
	}
	for k := range counters {
		if strings.HasPrefix(k, "tenant.beta.") {
			t.Fatalf("metrics for acme leak beta counter %q", k)
		}
	}
	tenantsOut, _ := gw["tenants"].(map[string]any)
	if _, ok := tenantsOut["acme"]; !ok {
		t.Fatalf("metrics tenants section missing the requester: %v", tenantsOut)
	}
	if _, ok := tenantsOut["beta"]; ok {
		t.Fatal("metrics for acme leak beta's accounting")
	}
}

// TestShedOverQuota: the second concurrent batch of a MaxConcurrent=1
// tenant is shed with 429 + Retry-After while another tenant stays
// admissible; after the first batch finishes the tenant is admitted again.
func TestShedOverQuota(t *testing.T) {
	tenants := twoTenants()
	tenants[0].Quota = QuotaConfig{MaxConcurrent: 1}
	ts, _, _, release := newGatedFrontDoor(t, Config{}, tenants)

	// The gated blocker stays in flight until released, so the over-quota
	// submission below is guaranteed to land while the tenant is at cap.
	var first gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", heavyReq(), &first)

	var shed struct {
		Error      string `json:"error"`
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after"`
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(1, 6, 2), &shed)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || shed.Reason != ShedConcurrency || shed.RetryAfter < 1 {
		t.Fatalf("shed response: header=%q body=%+v", resp.Header.Get("Retry-After"), shed)
	}

	// The other tenant is unaffected.
	oresp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-beta", LoadRequest(1, 6, 2), nil)
	if oresp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d", oresp.StatusCode)
	}

	release()
	pollGwDone(t, ts.URL, "key-acme", first.ID)
	rresp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(2, 6, 2), nil)
	if rresp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-completion submit: status %d, want 202", rresp.StatusCode)
	}
}

// TestResultBytesQuota: a tenant whose retained results exceed its byte
// quota sheds with reason result_bytes until eviction frees the charge.
func TestResultBytesQuota(t *testing.T) {
	tenants := twoTenants()
	tenants[0].Quota = QuotaConfig{MaxResultBytes: 1}
	ts, _, _ := newFrontDoor(t, Config{}, tenants)

	var first gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(0, 6, 2), &first)
	if st := pollGwDone(t, ts.URL, "key-acme", first.ID); st.State != JobDone {
		t.Fatalf("first job: %s (%s)", st.State, st.Error)
	}

	var shed struct {
		Reason string `json:"reason"`
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(1, 6, 2), &shed)
	if resp.StatusCode != http.StatusTooManyRequests || shed.Reason != ShedResultBytes {
		t.Fatalf("want result_bytes shed, got %d %+v", resp.StatusCode, shed)
	}
}

// TestDelegatedFetchAfterBackendEviction: when the backend's own MaxJobs
// pruning evicts a result the gateway still lists as done, delegated
// report/library fetches answer 410 Gone — the result existed and is
// permanently gone (resubmit recomputes) — not a confusable 404.
func TestDelegatedFetchAfterBackendEviction(t *testing.T) {
	svc := dserve.NewService(dserve.Config{Workers: 4, MaxSteps: 2, MaxJobs: 1})
	g, err := New(svc, Config{}, twoTenants())
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(g, dserve.NewHandler(svc)))
	defer func() { ts.Close(); g.Close(); svc.Close() }()

	var a, b gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(0, 6, 2), &a)
	if st := pollGwDone(t, ts.URL, "key-acme", a.ID); st.State != JobDone {
		t.Fatalf("first job: %s (%s)", st.State, st.Error)
	}
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(1, 6, 2), &b)
	if st := pollGwDone(t, ts.URL, "key-acme", b.ID); st.State != JobDone {
		t.Fatalf("second job: %s (%s)", st.State, st.Error)
	}

	// The second completion pushed the first out of the backend (MaxJobs=1).
	resp := doJSON(t, "GET", ts.URL+"/v1/jobs/"+a.ID+"/report", "key-acme", nil, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted result's report: status %d, want 410", resp.StatusCode)
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/jobs/"+b.ID+"/report", "key-acme", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained result's report: status %d, want 200", resp.StatusCode)
	}
}

// TestBaseTranslation: incremental re-submits name the base by its gateway
// ID; cross-tenant bases are invisible.
func TestBaseTranslation(t *testing.T) {
	ts, _, _ := newFrontDoor(t, Config{}, twoTenants())

	var base gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(0, 8, 2), &base)
	if st := pollGwDone(t, ts.URL, "key-acme", base.ID); st.State != JobDone {
		t.Fatalf("base: %s (%s)", st.State, st.Error)
	}

	inc := LoadRequest(1, 8, 2)
	inc.Base = base.ID
	var incSt gwStatus
	resp := doJSON(t, "POST", ts.URL+"/v1/submit", "key-acme", inc, &incSt)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("incremental submit: status %d", resp.StatusCode)
	}
	if incSt.Base == "" || strings.HasPrefix(incSt.Base, "gw-") {
		t.Fatalf("echoed base must be the resolved backend ID, got %q", incSt.Base)
	}
	if st := pollGwDone(t, ts.URL, "key-acme", incSt.ID); st.State != JobDone {
		t.Fatalf("incremental: %s (%s)", st.State, st.Error)
	}

	// Another tenant cannot use acme's job as a base.
	inc2 := LoadRequest(1, 8, 2)
	inc2.Base = base.ID
	bresp := doJSON(t, "POST", ts.URL+"/v1/submit", "key-beta", inc2, nil)
	if bresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant base: status %d, want 404", bresp.StatusCode)
	}
}

// TestLaneAndCancelSemantics: the X-Lane header overrides the tenant's
// default lane, and DELETE on a finished job is refused with 409.
func TestLaneAndCancelSemantics(t *testing.T) {
	ts, _, _ := newFrontDoor(t, Config{}, twoTenants())

	body, _ := json.Marshal(LoadRequest(0, 6, 2))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer key-beta") // default lane: bulk
	req.Header.Set("X-Lane", LaneInteractive)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st gwStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Lane != LaneInteractive {
		t.Fatalf("X-Lane override ignored: lane %q", st.Lane)
	}

	if fin := pollGwDone(t, ts.URL, "key-beta", st.ID); fin.State != JobDone {
		t.Fatalf("job: %s (%s)", fin.State, fin.Error)
	}
	dresp := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+st.ID, "key-beta", nil, nil)
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done job: status %d, want 409", dresp.StatusCode)
	}
	dresp = doJSON(t, "DELETE", ts.URL+"/v1/jobs/no-such", "key-beta", nil, nil)
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", dresp.StatusCode)
	}
}

// TestLongPollEvents: the long-poll envelope works through the gateway,
// with resumption by seq cursor.
func TestLongPollEvents(t *testing.T) {
	ts, _, _ := newFrontDoor(t, Config{}, twoTenants())

	var st gwStatus
	doJSON(t, "POST", ts.URL+"/v1/jobs", "key-acme", LoadRequest(2, 6, 2), &st)

	after, seen := -1, 0
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var body struct {
			Events []dserve.JobEvent `json:"events"`
			Done   bool              `json:"done"`
		}
		url := fmt.Sprintf("%s/v1/jobs/%s/events?after=%d&timeout_ms=1000", ts.URL, st.ID, after)
		resp := doJSON(t, "GET", url, "key-acme", nil, &body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("long-poll: status %d", resp.StatusCode)
		}
		for _, ev := range body.Events {
			if ev.Seq <= after {
				t.Fatalf("cursor went backwards: seq %d after %d", ev.Seq, after)
			}
			after = ev.Seq
			seen++
		}
		if body.Done {
			if seen < 2 {
				t.Fatalf("stream closed after only %d events", seen)
			}
			return
		}
	}
	t.Fatal("long-poll never reached the terminal event")
}
