package gateway

import (
	"net/http/httptest"
	"testing"
	"time"

	"negativaml/internal/dserve"
)

// TestSustainedLoad is the front door's acceptance storm: a hostile mix of
// duplicate, superset, and garbage submissions from several tenants across
// both lanes, pushed through a gateway whose dispatch width exceeds the
// backend's in-flight cap (so ErrBusy backpressure is exercised). The
// service promise under load: zero accepted batches fail, every shed
// carries Retry-After, garbage never admits, duplicates coalesce instead
// of recomputing analysis. Short mode runs a scaled-down storm as the CI
// smoke test; the root bench harness reuses RunLoad at full scale.
func TestSustainedLoad(t *testing.T) {
	submits, conc := 2000, 64
	if testing.Short() {
		submits, conc = 120, 16
	}

	// Backend in-flight cap below the gateway's dispatch width forces the
	// busy-retry path under storm pressure.
	svc := dserve.NewService(dserve.Config{Workers: 8, MaxSteps: 2, MaxInFlight: 4})
	defer svc.Close()
	tenants := []TenantConfig{
		{Name: "acme", Keys: []string{"key-acme"}},
		{Name: "beta", Keys: []string{"key-beta"}, Lane: LaneBulk},
		{Name: "gamma", Keys: []string{"key-gamma"}},
	}
	g, err := New(svc, Config{DispatchSlots: 8, QueueDepth: 4 * submits, MaxJobs: 4 * submits}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ts := httptest.NewServer(NewHandler(g, dserve.NewHandler(svc)))
	defer ts.Close()

	cfg := LoadConfig{
		BaseURL:      ts.URL,
		Keys:         []string{"key-acme", "key-beta", "key-gamma"},
		Lanes:        []string{"", LaneInteractive, LaneBulk},
		Submits:      submits,
		Concurrency:  conc,
		Distinct:     3,
		GarbageEvery: 10,
		TailLibs:     8,
		MaxSteps:     2,
		JobTimeout:   3 * time.Minute,
	}

	// Warm each distinct variant through once so the storm's duplicates
	// measure coalescing and memoization, not first-run analysis.
	warm := cfg
	warm.Submits, warm.Concurrency, warm.GarbageEvery = cfg.Distinct, cfg.Distinct, 0
	if rep, err := RunLoad(warm); err != nil || rep.Completed != cfg.Distinct {
		t.Fatalf("warmup: %+v err=%v", rep, err)
	}
	computedBefore := svc.Counters.Get("analysis.computed")

	rep, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %d submits → %d accepted, %d completed, %d shed, %d rejected; job p50=%.0fms p99=%.0fms",
		rep.Submits, rep.Accepted, rep.Completed, rep.Shed, rep.Rejected,
		rep.Latency.P50, rep.Latency.P99)

	if rep.FailedAccepted != 0 {
		t.Errorf("%d accepted batches failed — the admission promise is zero", rep.FailedAccepted)
	}
	if rep.Unexpected != 0 {
		t.Errorf("%d responses outside the 202/429/4xx protocol", rep.Unexpected)
	}
	if rep.ShedMissingRetryAfter != 0 {
		t.Errorf("%d sheds arrived without Retry-After", rep.ShedMissingRetryAfter)
	}
	wantGarbage := submits / 10
	if rep.Rejected != wantGarbage {
		t.Errorf("rejected %d, want every garbage submission (%d)", rep.Rejected, wantGarbage)
	}
	if rep.Accepted+rep.Shed+rep.Rejected != rep.Submits {
		t.Errorf("outcome counts don't partition the storm: %+v", rep)
	}

	// Duplicates coalesce: the storm repeats 3 request digests, so the
	// coalesce counter must be large and — critically — analysis compute
	// must not scale with the duplicate count.
	if got := g.Counters.Get("gateway.coalesced"); got == 0 {
		t.Error("storm of duplicates produced zero coalesces")
	}
	if delta := svc.Counters.Get("analysis.computed") - computedBefore; delta != 0 {
		t.Errorf("analysis.computed grew by %d during a duplicate-only storm", delta)
	}
	if got := g.Counters.Get("gateway.backend_busy_retries"); got == 0 {
		t.Log("note: storm never hit the backend in-flight cap")
	}
}
