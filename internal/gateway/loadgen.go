package gateway

// Sustained-load harness for the front door. RunLoad drives a gateway's
// HTTP API with a configurable storm of concurrent submissions in a
// hostile mix — duplicate requests (exercising coalescing), workload
// supersets and subsets (exercising the backend's stage cache), and
// garbage requests (exercising validation) — across several tenant keys
// and lanes, waits each accepted job to its terminal event over the
// long-poll stream, and reports acceptance/shed/latency outcomes. The
// gateway smoke test runs it small in -short CI; the root bench harness
// runs it at full scale and records the serve/gateway/* perf entries.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"negativaml/internal/dserve"
	"negativaml/internal/metrics"
)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// BaseURL is the gateway server root (no trailing slash).
	BaseURL string
	// Keys are the tenant API keys submissions rotate through.
	Keys []string
	// Lanes, when non-empty, rotate an X-Lane header across submissions
	// ("" entries leave the tenant default).
	Lanes []string
	// Submits is the total submission count; Concurrency the worker count.
	Submits     int
	Concurrency int
	// Distinct is the size of the legitimate request pool (default 3);
	// the storm cycles through it, so Submits/Distinct submissions share
	// each digest — the duplicate pressure coalescing must absorb. Pool
	// members are workload prefixes of one list, so they are also mutual
	// subsets/supersets.
	Distinct int
	// GarbageEvery makes every Nth submission invalid (0 = none); these
	// must be rejected with 4xx, never admitted.
	GarbageEvery int
	// TailLibs and MaxSteps shape the generated installs (defaults 8, 2).
	TailLibs int
	MaxSteps int
	// JobTimeout bounds one accepted job's wait to terminal (default 2m).
	JobTimeout time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport is one run's outcome.
type LoadReport struct {
	Submits  int
	Accepted int
	// Completed counts accepted jobs that reached done; FailedAccepted
	// counts accepted jobs that failed or timed out — the service promise
	// is that this stays zero.
	Completed      int
	FailedAccepted int
	// Shed counts 429 responses; ShedMissingRetryAfter the subset that
	// arrived without a Retry-After header (must be zero).
	Shed                  int
	ShedMissingRetryAfter int
	// Rejected counts 4xx validation refusals (the garbage submissions).
	Rejected int
	// Unexpected counts responses outside 202/429/4xx-validation.
	Unexpected int
	// Latency summarizes accepted jobs' submit-to-terminal wall times in
	// milliseconds; SubmitLatency the POST round-trips alone.
	Latency       metrics.Distribution
	SubmitLatency metrics.Distribution
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Distinct <= 0 {
		c.Distinct = 3
	}
	if c.TailLibs <= 0 {
		c.TailLibs = 8
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// loadPool is the workload list request variants prefix.
var loadPool = []dserve.WorkloadSpec{
	{Model: "MobileNetV2", Batch: 1},
	{Model: "Transformer", Batch: 8},
	{Model: "MobileNetV2", Train: true, Batch: 4, Epochs: 1},
	{Model: "Transformer", Train: true, Batch: 16, Epochs: 1},
}

// LoadRequest returns variant v of the harness's legitimate request pool:
// the first 1+(v mod len(pool)) workloads of the shared list, so distinct
// variants are workload subsets/supersets of each other while equal
// variants are byte-identical (and therefore coalescible).
func LoadRequest(v, tailLibs, maxSteps int) dserve.JobRequest {
	n := 1 + v%len(loadPool)
	return dserve.JobRequest{
		Framework: "pytorch",
		TailLibs:  tailLibs,
		MaxSteps:  maxSteps,
		Workloads: loadPool[:n],
	}
}

// RunLoad executes the storm and returns its report. Request/transport
// errors surface as the returned error; protocol-level surprises (a 500,
// a shed without Retry-After) are counted in the report for the caller to
// assert on.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || len(cfg.Keys) == 0 || cfg.Submits <= 0 {
		return nil, fmt.Errorf("gateway: load config needs BaseURL, Keys, and Submits")
	}
	rep := &LoadReport{Submits: cfg.Submits}
	var mu sync.Mutex
	var jobLat, subLat []float64
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := loadOne(cfg, i, rep, &mu, &jobLat, &subLat); err != nil {
					fail(err)
				}
			}
		}()
	}
	for i := 0; i < cfg.Submits; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Latency = metrics.Summarize(jobLat)
	rep.SubmitLatency = metrics.Summarize(subLat)
	return rep, nil
}

func loadOne(cfg LoadConfig, i int, rep *LoadReport, mu *sync.Mutex, jobLat, subLat *[]float64) error {
	req := LoadRequest(i%cfg.Distinct, cfg.TailLibs, cfg.MaxSteps)
	garbage := cfg.GarbageEvery > 0 && i%cfg.GarbageEvery == cfg.GarbageEvery-1
	if garbage {
		req.Workloads = []dserve.WorkloadSpec{{Model: "NoSuchModel"}}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequest("POST", cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Authorization", "Bearer "+cfg.Keys[i%len(cfg.Keys)])
	if len(cfg.Lanes) > 0 {
		if lane := cfg.Lanes[i%len(cfg.Lanes)]; lane != "" {
			hreq.Header.Set("X-Lane", lane)
		}
	}
	start := time.Now()
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return err
	}
	submitMS := float64(time.Since(start)) / float64(time.Millisecond)
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}

	mu.Lock()
	*subLat = append(*subLat, submitMS)
	mu.Unlock()

	switch {
	case resp.StatusCode == http.StatusAccepted:
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			return fmt.Errorf("gateway load: decode submit response: %w", err)
		}
		mu.Lock()
		rep.Accepted++
		mu.Unlock()
		state, err := waitTerminal(cfg, i, st.ID)
		if err != nil {
			return err
		}
		mu.Lock()
		if state == JobDone {
			rep.Completed++
			*jobLat = append(*jobLat, float64(time.Since(start))/float64(time.Millisecond))
		} else {
			rep.FailedAccepted++
		}
		mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		mu.Lock()
		rep.Shed++
		if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
			rep.ShedMissingRetryAfter++
		}
		mu.Unlock()
	case garbage && resp.StatusCode >= 400 && resp.StatusCode < 500:
		mu.Lock()
		rep.Rejected++
		mu.Unlock()
	default:
		mu.Lock()
		rep.Unexpected++
		mu.Unlock()
	}
	return nil
}

// waitTerminal long-polls the job's event stream to its terminal event and
// returns the terminal state ("" on timeout, counted as a failure by the
// caller).
func waitTerminal(cfg LoadConfig, i int, id string) (string, error) {
	deadline := time.Now().Add(cfg.JobTimeout)
	after := -1
	for time.Now().Before(deadline) {
		url := fmt.Sprintf("%s/v1/jobs/%s/events?after=%d&timeout_ms=2000", cfg.BaseURL, id, after)
		hreq, err := http.NewRequest("GET", url, nil)
		if err != nil {
			return "", err
		}
		hreq.Header.Set("Authorization", "Bearer "+cfg.Keys[i%len(cfg.Keys)])
		resp, err := cfg.Client.Do(hreq)
		if err != nil {
			return "", err
		}
		var body struct {
			Events []dserve.JobEvent `json:"events"`
			Done   bool              `json:"done"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return "", fmt.Errorf("gateway load: decode events for %s: %w", id, err)
		}
		for _, ev := range body.Events {
			after = ev.Seq
			if ev.Terminal {
				return ev.State, nil
			}
		}
	}
	return "", nil
}
