package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// QuotaConfig bounds one tenant's use of the shared backend. Zero values
// fall back to the gateway's DefaultQuota; a value that is still zero
// after the merge means unlimited.
type QuotaConfig struct {
	// MaxConcurrent caps the tenant's non-terminal gateway jobs (queued or
	// running, followers included).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxResultBytes caps the debloated-library bytes retained across the
	// tenant's completed jobs; new submissions shed while at or above it
	// (eviction of old jobs releases the charge).
	MaxResultBytes int64 `json:"max_result_bytes,omitempty"`
	// StageSeconds caps analysis stage wall-seconds charged to the tenant
	// per window; WindowSeconds sizes the fixed window (default 60).
	StageSeconds  float64 `json:"stage_seconds,omitempty"`
	WindowSeconds int     `json:"window_seconds,omitempty"`
}

// merge overlays zero fields with defaults.
func (q QuotaConfig) merge(def QuotaConfig) QuotaConfig {
	if q.MaxConcurrent == 0 {
		q.MaxConcurrent = def.MaxConcurrent
	}
	if q.MaxResultBytes == 0 {
		q.MaxResultBytes = def.MaxResultBytes
	}
	if q.StageSeconds == 0 {
		q.StageSeconds = def.StageSeconds
	}
	if q.WindowSeconds == 0 {
		q.WindowSeconds = def.WindowSeconds
	}
	if q.WindowSeconds <= 0 {
		q.WindowSeconds = 60
	}
	return q
}

// TenantConfig declares one tenant: its identity, accepted API keys, the
// lane its requests default into, and its quotas. Key rotation is a config
// reload with a changed key list — jobs in flight are owned by the tenant
// name, not the key, so they survive the rotation and remain visible to
// whichever keys the tenant holds afterwards.
type TenantConfig struct {
	Name string   `json:"name"`
	Keys []string `json:"keys"`
	// Lane is the default lane for this tenant's requests: "interactive"
	// (default) or "bulk". A request may override it with the X-Lane
	// header.
	Lane  string      `json:"lane,omitempty"`
	Quota QuotaConfig `json:"quota"`
}

// tenantsFile is the on-disk shape of the -tenants config.
type tenantsFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// ParseTenants decodes and validates a tenants config document:
//
//	{"tenants": [{"name": "acme", "keys": ["k-..."], "lane": "bulk",
//	              "quota": {"max_concurrent": 4, "stage_seconds": 30}}]}
func ParseTenants(data []byte) ([]TenantConfig, error) {
	var f tenantsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("gateway: parse tenants: %w", err)
	}
	if err := ValidateTenants(f.Tenants); err != nil {
		return nil, err
	}
	return f.Tenants, nil
}

// LoadTenants reads and parses a tenants config file.
func LoadTenants(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: read tenants: %w", err)
	}
	return ParseTenants(data)
}

// ValidateTenants checks a tenant set for internal consistency: at least
// one tenant, unique non-empty names, at least one non-empty key each,
// globally unique keys (a key must identify exactly one tenant), known
// lanes, and non-negative quotas.
func ValidateTenants(cfgs []TenantConfig) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("gateway: tenants config declares no tenants")
	}
	names := make(map[string]bool, len(cfgs))
	keys := make(map[string]string, len(cfgs))
	for i, tc := range cfgs {
		if strings.TrimSpace(tc.Name) == "" {
			return fmt.Errorf("gateway: tenant %d has no name", i)
		}
		if names[tc.Name] {
			return fmt.Errorf("gateway: duplicate tenant %q", tc.Name)
		}
		names[tc.Name] = true
		if len(tc.Keys) == 0 {
			return fmt.Errorf("gateway: tenant %q has no keys", tc.Name)
		}
		for _, k := range tc.Keys {
			if k == "" {
				return fmt.Errorf("gateway: tenant %q has an empty key", tc.Name)
			}
			if owner, dup := keys[k]; dup {
				return fmt.Errorf("gateway: key shared by tenants %q and %q", owner, tc.Name)
			}
			keys[k] = tc.Name
		}
		switch tc.Lane {
		case "", LaneInteractive, LaneBulk:
		default:
			return fmt.Errorf("gateway: tenant %q: unknown lane %q (want %s or %s)", tc.Name, tc.Lane, LaneInteractive, LaneBulk)
		}
		q := tc.Quota
		if q.MaxConcurrent < 0 || q.MaxResultBytes < 0 || q.StageSeconds < 0 || q.WindowSeconds < 0 {
			return fmt.Errorf("gateway: tenant %q: negative quota", tc.Name)
		}
	}
	return nil
}
