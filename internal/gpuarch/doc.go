// Package gpuarch models NVIDIA GPU architectures (SM versions) and the
// device catalog used throughout the simulator.
//
// GPU device code inside a fatbin element is compiled for exactly one SM
// architecture; an element can only be loaded on a device whose architecture
// matches. That matching rule is the paper's "Reason I" for removed elements
// (The Hidden Bloat in Machine Learning Systems, §4.3).
package gpuarch
