package gpuarch

import "fmt"

// SM identifies a GPU compute architecture by its SM (streaming
// multiprocessor) version, e.g. 75 for sm_75 (Turing).
type SM uint32

// Architectures that ML frameworks commonly ship device code for. The paper
// observed a single PyTorch shared library carrying elements for six
// different architectures (§4.3).
const (
	SM50 SM = 50 // Maxwell
	SM60 SM = 60 // Pascal
	SM70 SM = 70 // Volta
	SM75 SM = 75 // Turing (NVIDIA T4)
	SM80 SM = 80 // Ampere (NVIDIA A100)
	SM86 SM = 86 // Ampere (consumer)
	SM90 SM = 90 // Hopper (NVIDIA H100)
)

// AllShipped is the set of architectures the synthetic framework generator
// compiles device code for, mirroring the multi-arch fatbins the paper found.
var AllShipped = []SM{SM50, SM60, SM70, SM75, SM80, SM86, SM90}

// String renders the conventional sm_NN spelling.
func (s SM) String() string { return fmt.Sprintf("sm_%d", uint32(s)) }

// Valid reports whether s is one of the architectures this simulator knows.
func (s SM) Valid() bool {
	for _, a := range AllShipped {
		if a == s {
			return true
		}
	}
	return false
}

// Device describes a GPU model: its architecture and memory capacity.
// Capacities are expressed in the repository's scaled units (1 paper-MB =
// 1 simulated KB; see DESIGN.md §4).
type Device struct {
	Name     string
	Arch     SM
	MemBytes int64
}

// Catalog entries for the GPUs used in the paper's evaluation.
var (
	T4   = Device{Name: "NVIDIA T4", Arch: SM75, MemBytes: 16 << 20}
	A100 = Device{Name: "NVIDIA A100 40GB", Arch: SM80, MemBytes: 40 << 20}
	H100 = Device{Name: "NVIDIA H100", Arch: SM90, MemBytes: 80 << 20}
)

// ByName looks up a catalog device by its short name ("T4", "A100", "H100").
func ByName(name string) (Device, error) {
	switch name {
	case "T4", "t4":
		return T4, nil
	case "A100", "a100":
		return A100, nil
	case "H100", "h100":
		return H100, nil
	}
	return Device{}, fmt.Errorf("gpuarch: unknown device %q", name)
}
