package gpuarch

import "testing"

func TestSMString(t *testing.T) {
	if got := SM75.String(); got != "sm_75" {
		t.Errorf("SM75.String() = %q, want %q", got, "sm_75")
	}
	if got := SM90.String(); got != "sm_90" {
		t.Errorf("SM90.String() = %q, want %q", got, "sm_90")
	}
}

func TestValid(t *testing.T) {
	for _, a := range AllShipped {
		if !a.Valid() {
			t.Errorf("%s should be valid", a)
		}
	}
	if SM(42).Valid() {
		t.Error("SM(42) should not be valid")
	}
	if SM(0).Valid() {
		t.Error("SM(0) should not be valid")
	}
}

func TestAllShippedSortedUnique(t *testing.T) {
	for i := 1; i < len(AllShipped); i++ {
		if AllShipped[i-1] >= AllShipped[i] {
			t.Fatalf("AllShipped not strictly increasing at %d: %v", i, AllShipped)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		in   string
		arch SM
	}{
		{"T4", SM75}, {"t4", SM75},
		{"A100", SM80}, {"a100", SM80},
		{"H100", SM90}, {"h100", SM90},
	}
	for _, c := range cases {
		d, err := ByName(c.in)
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.in, err)
		}
		if d.Arch != c.arch {
			t.Errorf("ByName(%q).Arch = %s, want %s", c.in, d.Arch, c.arch)
		}
	}
	if _, err := ByName("K80"); err == nil {
		t.Error("ByName(K80) should fail")
	}
}

func TestDeviceCatalogArchValid(t *testing.T) {
	for _, d := range []Device{T4, A100, H100} {
		if !d.Arch.Valid() {
			t.Errorf("%s has invalid arch %s", d.Name, d.Arch)
		}
		if d.MemBytes <= 0 {
			t.Errorf("%s has non-positive memory", d.Name)
		}
	}
}
