// Package ingest turns an on-disk tree — an unpacked wheel, a site-packages
// directory, or an install written by mlframework.WriteTo — into a debloatable
// install unit.
//
// Tree walks the directory deterministically, classifies every file by
// content (ELF shared objects by magic sniffing; scripts, data, and the
// install.json manifest are recognized and skipped), parses each shared
// object's dynamic section for DT_SONAME and DT_NEEDED, and resolves the
// dependency graph into a closure rooted at the tree's entry libraries.
// Result.Install materializes the closure as an mlframework.Install whose
// fingerprint derives from the real file bytes, so ingested trees ride the
// detect → locate → compact → verify stage DAG, the memo tiers, and the
// cluster ring exactly like generated installs.
//
// Ingestion is the first code path fed by files this process did not author:
// every anomaly — symlink loops, truncated ELF headers, unreadable files,
// missing dependencies — is classified or rejected with an error, never
// silently skipped.
package ingest
