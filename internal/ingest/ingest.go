package ingest

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"negativaml/internal/elfx"
	"negativaml/internal/mlframework"
)

// Class is the classification assigned to every walked file.
type Class string

// File classes. Every file the walk encounters lands in exactly one.
const (
	// ClassSharedObject is an ELF64 shared library that parsed cleanly.
	ClassSharedObject Class = "shared-object"
	// ClassManifest is the tree root's install.json runtime-metadata file.
	ClassManifest Class = "manifest"
	// ClassScript is a shebang-prefixed text file.
	ClassScript Class = "script"
	// ClassData is anything else readable that is not ELF — including
	// non-ELF files hiding behind .so names.
	ClassData Class = "data"
	// ClassCorruptELF starts with the ELF magic but fails to parse
	// (truncated header, bad section table, hostile dynamic section, …).
	ClassCorruptELF Class = "corrupt-elf"
	// ClassUnreadable could not be read; Err holds the cause.
	ClassUnreadable Class = "unreadable"
	// ClassDanglingSymlink points at a path that does not exist.
	ClassDanglingSymlink Class = "dangling-symlink"
	// ClassSymlinkDir is a symlink to a directory. The walk records it but
	// never descends — that is what makes symlink loops terminate.
	ClassSymlinkDir Class = "symlink-dir"
)

// Walk bounds. Trees beyond these are rejected, not truncated: a silent cap
// would read as "covered everything" when it didn't.
const (
	DefaultMaxFiles = 65536
	DefaultMaxDepth = 64
)

// Options configure a Tree walk.
type Options struct {
	// Entries explicitly roots the dependency closure, by soname or file
	// name. Empty means the roots are the tree's entry libraries: every
	// shared object no other shared object names in DT_NEEDED.
	Entries []string
	// MaxFiles caps the number of walked files (default DefaultMaxFiles).
	MaxFiles int
	// MaxDepth caps directory nesting (default DefaultMaxDepth).
	MaxDepth int
}

// FileReport records one walked file's classification.
type FileReport struct {
	// Path is slash-separated and relative to the ingested root.
	Path  string `json:"path"`
	Class Class  `json:"class"`
	Size  int64  `json:"size,omitempty"`
	// Err is the classification failure for corrupt-elf and unreadable.
	Err string `json:"err,omitempty"`
	// Soname, Needed, and Machine are set for shared objects.
	Soname  string   `json:"soname,omitempty"`
	Needed  []string `json:"needed,omitempty"`
	Machine uint16   `json:"machine,omitempty"`
	// InClosure reports whether the shared object is in the dependency
	// closure of the roots.
	InClosure bool `json:"in_closure,omitempty"`
}

// Result is a classified tree with its resolved dependency closure.
type Result struct {
	// Dir is the ingested root.
	Dir string
	// Files holds one report per walked file, in walk (sorted-path) order.
	Files []FileReport
	// Libs maps each shared object's canonical name (its file name) to the
	// parsed library.
	Libs map[string]*elfx.Library
	// Roots are the closure roots, in closure order.
	Roots []string
	// Closure lists canonical names reachable from the roots, roots first,
	// in deterministic BFS order.
	Closure []string
	// Unresolved maps DT_NEEDED names no tree library provides to the
	// canonical names of the libraries that want them — system libraries
	// like libc live here on real trees.
	Unresolved map[string][]string
	// Manifest is the tree root's parsed install.json, nil when absent.
	Manifest *mlframework.Manifest
}

// readFile is swapped by tests to inject read failures: the suite runs as
// root, where permission bits cannot produce them.
var readFile = os.ReadFile

// Tree walks dir, classifies every file, and resolves the DT_NEEDED
// dependency closure. It returns an error only for defects of the tree as a
// whole (unreadable root, bound overflow, ambiguous sonames, unknown
// explicit entries); per-file anomalies are classified in Result.Files.
func Tree(dir string, opt Options) (*Result, error) {
	if opt.MaxFiles <= 0 {
		opt.MaxFiles = DefaultMaxFiles
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = DefaultMaxDepth
	}
	res := &Result{
		Dir:        dir,
		Libs:       make(map[string]*elfx.Library),
		Unresolved: make(map[string][]string),
	}
	w := &walker{opt: opt, res: res}
	if err := w.dir(dir, "", 0); err != nil {
		return nil, err
	}
	if err := resolve(res, opt.Entries); err != nil {
		return nil, err
	}
	if m, err := loadManifest(dir, res); err != nil {
		return nil, err
	} else {
		res.Manifest = m
	}
	return res, nil
}

type walker struct {
	opt Options
	res *Result
	// aliases maps every name a library answers to — file name and
	// DT_SONAME — to its canonical (file) name, for closure resolution.
	aliases map[string]string
}

func (w *walker) dir(abs, rel string, depth int) error {
	if depth > w.opt.MaxDepth {
		return fmt.Errorf("ingest: %s: directory nesting exceeds %d levels", rel, w.opt.MaxDepth)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		if rel == "" {
			return fmt.Errorf("ingest: %w", err)
		}
		w.record(FileReport{Path: rel, Class: ClassUnreadable, Err: err.Error()})
		return nil
	}
	for _, e := range entries { // ReadDir sorts by name: the walk is deterministic
		childAbs := filepath.Join(abs, e.Name())
		childRel := e.Name()
		if rel != "" {
			childRel = rel + "/" + e.Name()
		}
		switch {
		case e.Type()&fs.ModeSymlink != 0:
			// Resolve through the link. Directories are recorded but never
			// descended: a tree can alias its own ancestors into a loop, and
			// refusing to follow is what keeps the walk finite.
			fi, err := os.Stat(childAbs)
			switch {
			case err != nil:
				w.record(FileReport{Path: childRel, Class: ClassDanglingSymlink, Err: err.Error()})
			case fi.IsDir():
				w.record(FileReport{Path: childRel, Class: ClassSymlinkDir})
			default:
				if err := w.file(childAbs, childRel, fi.Size(), depth == 0); err != nil {
					return err
				}
			}
		case e.IsDir():
			if err := w.dir(childAbs, childRel, depth+1); err != nil {
				return err
			}
		default:
			var size int64
			if fi, err := e.Info(); err == nil {
				size = fi.Size()
			}
			if err := w.file(childAbs, childRel, size, depth == 0); err != nil {
				return err
			}
		}
		if len(w.res.Files) > w.opt.MaxFiles {
			return fmt.Errorf("ingest: tree exceeds %d files", w.opt.MaxFiles)
		}
	}
	return nil
}

// file classifies one regular file (possibly behind a symlink).
func (w *walker) file(abs, rel string, size int64, atRoot bool) error {
	rep := FileReport{Path: rel, Size: size}
	if atRoot && filepath.Base(rel) == mlframework.ManifestName {
		rep.Class = ClassManifest
		w.record(rep)
		return nil
	}
	data, err := readFile(abs)
	if err != nil {
		rep.Class, rep.Err = ClassUnreadable, err.Error()
		w.record(rep)
		return nil
	}
	switch {
	case bytes.HasPrefix(data, []byte{0x7f, 'E', 'L', 'F'}):
		lib, err := elfx.Parse(filepath.Base(rel), data)
		if err != nil {
			rep.Class, rep.Err = ClassCorruptELF, err.Error()
			break
		}
		rep.Class = ClassSharedObject
		rep.Soname, rep.Needed, rep.Machine = lib.Soname, lib.Needed, lib.Machine
		if err := w.register(lib, rel); err != nil {
			return err
		}
	case bytes.HasPrefix(data, []byte("#!")):
		rep.Class = ClassScript
	default:
		rep.Class = ClassData
	}
	w.record(rep)
	return nil
}

func (w *walker) record(rep FileReport) { w.res.Files = append(w.res.Files, rep) }

// register indexes a parsed shared object under its file name and soname.
// Two files answering to the same name make every DT_NEEDED edge to that
// name ambiguous, which would corrupt the closure — that rejects the tree.
func (w *walker) register(lib *elfx.Library, rel string) error {
	if w.aliases == nil {
		w.aliases = make(map[string]string)
	}
	canon := lib.Name // base file name
	if prev, dup := w.aliases[canon]; dup && prev != canon {
		return fmt.Errorf("ingest: %s: name %q already provided by %s", rel, canon, prev)
	}
	if _, dup := w.res.Libs[canon]; dup {
		return fmt.Errorf("ingest: %s: duplicate library file name %q", rel, canon)
	}
	w.res.Libs[canon] = lib
	w.aliases[canon] = canon
	if lib.Soname != "" && lib.Soname != canon {
		if prev, dup := w.aliases[lib.Soname]; dup {
			return fmt.Errorf("ingest: %s: soname %q already provided by %s", rel, lib.Soname, prev)
		}
		w.aliases[lib.Soname] = canon
	}
	return nil
}

// resolve computes closure roots and the reachable set over the DT_NEEDED
// graph, then back-fills InClosure on the file reports.
func resolve(res *Result, entries []string) error {
	aliases := make(map[string]string, len(res.Libs))
	for name, lib := range res.Libs {
		aliases[name] = name
		if lib.Soname != "" {
			aliases[lib.Soname] = name
		}
	}

	var roots []string
	if len(entries) > 0 {
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			canon, ok := aliases[e]
			if !ok {
				return fmt.Errorf("ingest: entry %q names no library in the tree", e)
			}
			if !seen[canon] {
				seen[canon] = true
				roots = append(roots, canon)
			}
		}
	} else {
		// Entry libraries: shared objects nothing else in the tree needs.
		// Python extension modules and a framework's core library are both
		// loader-opened roots, not DT_NEEDED targets.
		wanted := make(map[string]bool)
		for _, lib := range res.Libs {
			for _, n := range lib.Needed {
				if canon, ok := aliases[n]; ok && canon != lib.Name {
					wanted[canon] = true
				}
			}
		}
		for name := range res.Libs {
			if !wanted[name] {
				roots = append(roots, name)
			}
		}
		sort.Strings(roots)
	}

	// BFS from the roots; the visited set makes DT_NEEDED cycles terminate.
	visited := make(map[string]bool, len(res.Libs))
	queue := append([]string(nil), roots...)
	for _, r := range roots {
		visited[r] = true
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		res.Closure = append(res.Closure, name)
		for _, n := range res.Libs[name].Needed {
			canon, ok := aliases[n]
			if !ok {
				res.Unresolved[n] = append(res.Unresolved[n], name)
				continue
			}
			if !visited[canon] {
				visited[canon] = true
				queue = append(queue, canon)
			}
		}
	}
	res.Roots = roots
	for i := range res.Files {
		if res.Files[i].Class == ClassSharedObject {
			res.Files[i].InClosure = visited[filepath.Base(res.Files[i].Path)]
		}
	}
	return nil
}

// loadManifest parses the root install.json when the walk classified one.
func loadManifest(dir string, res *Result) (*mlframework.Manifest, error) {
	for _, f := range res.Files {
		if f.Class == ClassManifest {
			m, err := mlframework.ReadManifest(dir)
			if err != nil {
				return nil, fmt.Errorf("ingest: %w", err)
			}
			return m, nil
		}
	}
	return nil, nil
}

// Install materializes the ingested tree as a debloatable install. The tree
// must carry an install.json manifest: profiling runs workloads against the
// install, and only the manifest knows the load order, init calls, and
// family routing that make the libraries runnable. Every manifest library
// must be a classified shared object inside the dependency closure — a
// manifest naming bytes the closure cannot reach is a broken tree, not a
// smaller install.
func (r *Result) Install() (*mlframework.Install, error) {
	if r.Manifest == nil {
		return nil, fmt.Errorf("ingest: %s: no %s manifest — the tree is classifiable but not runnable", r.Dir, mlframework.ManifestName)
	}
	inClosure := make(map[string]bool, len(r.Closure))
	for _, name := range r.Closure {
		inClosure[name] = true
	}
	for _, name := range r.Manifest.LibNames {
		if _, ok := r.Libs[name]; !ok {
			return nil, fmt.Errorf("ingest: manifest names %s but the tree has no such library", name)
		}
		if !inClosure[name] {
			return nil, fmt.Errorf("ingest: manifest names %s but the dependency closure does not reach it", name)
		}
	}
	return r.Manifest.Install(r.Libs)
}

// SharedObjects counts the classified shared objects.
func (r *Result) SharedObjects() int {
	n := 0
	for _, f := range r.Files {
		if f.Class == ClassSharedObject {
			n++
		}
	}
	return n
}
