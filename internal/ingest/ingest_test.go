package ingest

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// multiArchFatbinLib builds a shared object whose fatbin carries cubins for
// several SM architectures.
func multiArchFatbinLib(t *testing.T, soname string) []byte {
	t.Helper()
	b := elfx.NewBuilder(soname)
	b.AddFunction("launch_kernels", 64)
	fb := &fatbin.FatBin{}
	reg := fb.AddRegion()
	for _, arch := range []gpuarch.SM{gpuarch.SM75, gpuarch.SM80, gpuarch.SM90} {
		c := cubin.New(arch)
		c.AddKernel(cubin.Kernel{Name: fmt.Sprintf("k_%d", arch), Code: []byte{1, 2, 3, 4}, Flags: cubin.FlagEntry})
		blob, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: arch, Payload: blob})
	}
	blob, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b.SetFatbin(blob)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// buildLib assembles a minimal shared object with the given soname and
// DT_NEEDED list.
func buildLib(t *testing.T, soname string, needed ...string) []byte {
	t.Helper()
	b := elfx.NewBuilder(soname)
	b.AddFunction(strings.NewReplacer(".", "_", "-", "_").Replace(soname)+"_fn", 32)
	for _, n := range needed {
		b.AddNeeded(n)
	}
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func write(t *testing.T, dir, rel string, data []byte) {
	t.Helper()
	p := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func report(t *testing.T, res *Result, path string) *FileReport {
	t.Helper()
	for i := range res.Files {
		if res.Files[i].Path == path {
			return &res.Files[i]
		}
	}
	t.Fatalf("no report for %s in %+v", path, res.Files)
	return nil
}

// TestHostileLayouts is the walker's hostile-layout corpus: every way a tree
// we didn't author can be broken, with the exact classification or rejection
// pinned. No case may panic, and no case may be silently skipped — each
// either appears in Result.Files with the expected class or rejects the
// whole tree with an error naming the defect.
func TestHostileLayouts(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, dir string) // materialize the layout
		opt   Options
		// wantErr, when non-empty, pins a whole-tree rejection.
		wantErr string
		// check inspects the successful Result.
		check func(t *testing.T, res *Result)
	}{
		{
			name: "symlink loop back to an ancestor terminates",
			build: func(t *testing.T, dir string) {
				write(t, dir, "pkg/libok.so", buildLib(t, "libok.so"))
				if err := os.Symlink(dir, filepath.Join(dir, "pkg", "loop")); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, res *Result) {
				if got := report(t, res, "pkg/loop").Class; got != ClassSymlinkDir {
					t.Errorf("loop symlink classified %s, want %s", got, ClassSymlinkDir)
				}
				if res.SharedObjects() != 1 {
					t.Errorf("shared objects = %d, want 1", res.SharedObjects())
				}
			},
		},
		{
			name: "mutual symlink-dir loop terminates",
			build: func(t *testing.T, dir string) {
				if err := os.MkdirAll(filepath.Join(dir, "a"), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.Symlink(filepath.Join(dir, "a"), filepath.Join(dir, "a", "self")); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, res *Result) {
				if got := report(t, res, "a/self").Class; got != ClassSymlinkDir {
					t.Errorf("self symlink classified %s, want %s", got, ClassSymlinkDir)
				}
			},
		},
		{
			name: "dangling symlink",
			build: func(t *testing.T, dir string) {
				if err := os.Symlink(filepath.Join(dir, "gone.so"), filepath.Join(dir, "libghost.so")); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, res *Result) {
				rep := report(t, res, "libghost.so")
				if rep.Class != ClassDanglingSymlink || rep.Err == "" {
					t.Errorf("dangling symlink: class %s err %q", rep.Class, rep.Err)
				}
			},
		},
		{
			name: "symlink to a regular file classifies the target",
			build: func(t *testing.T, dir string) {
				write(t, dir, "real/libreal.so", buildLib(t, "libreal.so"))
				if err := os.Symlink(filepath.Join(dir, "real", "libreal.so"), filepath.Join(dir, "liblink.so")); err != nil {
					t.Fatal(err)
				}
			},
			// Both the target and the link resolve to ELF files with soname
			// libreal.so — ambiguous providers reject the tree.
			wantErr: "libreal.so",
		},
		{
			name: "truncated ELF header",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libtrunc.so", []byte("\x7fELF\x02\x01\x01")) // magic + 3 bytes
			},
			check: func(t *testing.T, res *Result) {
				rep := report(t, res, "libtrunc.so")
				if rep.Class != ClassCorruptELF || !strings.Contains(rep.Err, "too short") {
					t.Errorf("truncated header: class %s err %q", rep.Class, rep.Err)
				}
			},
		},
		{
			name: "ELF magic with a garbage section table",
			build: func(t *testing.T, dir string) {
				data := buildLib(t, "libgarbage.so")
				binary.LittleEndian.PutUint64(data[40:], 1<<60) // e_shoff into the void
				write(t, dir, "libgarbage.so", data)
			},
			check: func(t *testing.T, res *Result) {
				rep := report(t, res, "libgarbage.so")
				if rep.Class != ClassCorruptELF || !strings.Contains(rep.Err, "out of range") {
					t.Errorf("garbage sections: class %s err %q", rep.Class, rep.Err)
				}
			},
		},
		{
			name: "hostile dynamic section: DT_NEEDED string offset outside .dynstr",
			build: func(t *testing.T, dir string) {
				data := buildLib(t, "libbadneed.so", "libdep.so")
				lib, err := elfx.Parse("libbadneed.so", data)
				if err != nil {
					t.Fatal(err)
				}
				dyn := lib.Section(".dynamic")
				if dyn == nil {
					t.Fatal("built library has no .dynamic section")
				}
				// Second entry is the DT_NEEDED; point its string at 2^40.
				binary.LittleEndian.PutUint64(data[dyn.Range.Start+24:], 1<<40)
				write(t, dir, "libbadneed.so", data)
			},
			check: func(t *testing.T, res *Result) {
				rep := report(t, res, "libbadneed.so")
				if rep.Class != ClassCorruptELF || !strings.Contains(rep.Err, "outside .dynstr") {
					t.Errorf("hostile dynamic: class %s err %q", rep.Class, rep.Err)
				}
			},
		},
		{
			name: "non-ELF file wearing a .so name",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libfake.so", []byte("just text pretending to be a library, long enough to not be short"))
			},
			check: func(t *testing.T, res *Result) {
				if got := report(t, res, "libfake.so").Class; got != ClassData {
					t.Errorf("fake .so classified %s, want %s", got, ClassData)
				}
				if res.SharedObjects() != 0 {
					t.Error("fake .so counted as a shared object")
				}
			},
		},
		{
			name: "script with shebang",
			build: func(t *testing.T, dir string) {
				write(t, dir, "bin/activate", []byte("#!/bin/sh\necho venv\n"))
			},
			check: func(t *testing.T, res *Result) {
				if got := report(t, res, "bin/activate").Class; got != ClassScript {
					t.Errorf("script classified %s, want %s", got, ClassScript)
				}
			},
		},
		{
			name: "empty directories yield no reports and no error",
			build: func(t *testing.T, dir string) {
				if err := os.MkdirAll(filepath.Join(dir, "a", "b", "c"), 0o755); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, res *Result) {
				if len(res.Files) != 0 || len(res.Closure) != 0 {
					t.Errorf("empty tree produced files %v closure %v", res.Files, res.Closure)
				}
			},
		},
		{
			name: "unreadable file is classified, not dropped",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libsecret.so", buildLib(t, "libsecret.so"))
				orig := readFile
				readFile = func(name string) ([]byte, error) {
					if filepath.Base(name) == "libsecret.so" {
						return nil, fmt.Errorf("open %s: permission denied", name)
					}
					return orig(name)
				}
				t.Cleanup(func() { readFile = orig })
			},
			check: func(t *testing.T, res *Result) {
				rep := report(t, res, "libsecret.so")
				if rep.Class != ClassUnreadable || !strings.Contains(rep.Err, "permission denied") {
					t.Errorf("unreadable: class %s err %q", rep.Class, rep.Err)
				}
			},
		},
		{
			name: "unreadable subdirectory is classified, root stays ingestable",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libok.so", buildLib(t, "libok.so"))
				if err := os.MkdirAll(filepath.Join(dir, "vault"), 0o000); err != nil {
					t.Fatal(err)
				}
				// Running as root ignores permission bits; replace the dir
				// with a file after the walk ordering is fixed? Simpler: a
				// plain file cannot be ReadDir'd, but the walker stats it as
				// a file. Instead simulate via a symlink-dir to a removed
				// target — covered by dangling. Restore perms for cleanup.
				t.Cleanup(func() { os.Chmod(filepath.Join(dir, "vault"), 0o755) })
			},
			check: func(t *testing.T, res *Result) {
				// With euid 0 the 0o000 dir still reads: accept either the
				// unreadable classification or a clean empty walk of it.
				for i := range res.Files {
					if res.Files[i].Path == "vault" && res.Files[i].Class != ClassUnreadable {
						t.Errorf("vault classified %s", res.Files[i].Class)
					}
				}
				if res.SharedObjects() != 1 {
					t.Errorf("shared objects = %d, want 1", res.SharedObjects())
				}
			},
		},
		{
			name: "DT_NEEDED cycle terminates; unreferenced island stays out of the default closure",
			build: func(t *testing.T, dir string) {
				write(t, dir, "liba.so", buildLib(t, "liba.so", "libb.so"))
				write(t, dir, "libb.so", buildLib(t, "libb.so", "liba.so"))
				write(t, dir, "libmain.so", buildLib(t, "libmain.so"))
			},
			check: func(t *testing.T, res *Result) {
				// Nothing roots the a↔b island: both have incoming edges, so
				// neither is an entry library; the closure is just libmain.
				if !reflect.DeepEqual(res.Roots, []string{"libmain.so"}) {
					t.Errorf("roots = %v, want [libmain.so]", res.Roots)
				}
				if !reflect.DeepEqual(res.Closure, []string{"libmain.so"}) {
					t.Errorf("closure = %v, want [libmain.so]", res.Closure)
				}
				if report(t, res, "liba.so").InClosure || report(t, res, "libb.so").InClosure {
					t.Error("cycle island marked in-closure")
				}
			},
		},
		{
			name: "DT_NEEDED cycle rooted explicitly pulls in every member once",
			build: func(t *testing.T, dir string) {
				write(t, dir, "liba.so", buildLib(t, "liba.so", "libb.so"))
				write(t, dir, "libb.so", buildLib(t, "libb.so", "liba.so"))
			},
			opt: Options{Entries: []string{"liba.so"}},
			check: func(t *testing.T, res *Result) {
				if !reflect.DeepEqual(res.Closure, []string{"liba.so", "libb.so"}) {
					t.Errorf("closure = %v, want [liba.so libb.so]", res.Closure)
				}
			},
		},
		{
			name: "missing dependency is reported, never silently dropped",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libneedy.so", buildLib(t, "libneedy.so", "libc.so.6", "libcuda.so.1"))
			},
			check: func(t *testing.T, res *Result) {
				want := map[string][]string{
					"libc.so.6":    {"libneedy.so"},
					"libcuda.so.1": {"libneedy.so"},
				}
				if !reflect.DeepEqual(res.Unresolved, want) {
					t.Errorf("unresolved = %v, want %v", res.Unresolved, want)
				}
			},
		},
		{
			name: "two files providing the same soname reject the tree",
			build: func(t *testing.T, dir string) {
				data := buildLib(t, "libdup.so")
				write(t, dir, "x/libdup.so", data)
				write(t, dir, "y/libdup.so", data)
			},
			wantErr: "libdup.so",
		},
		{
			name: "explicit entry naming no library rejects the tree",
			build: func(t *testing.T, dir string) {
				write(t, dir, "libonly.so", buildLib(t, "libonly.so"))
			},
			opt:     Options{Entries: []string{"libelsewhere.so"}},
			wantErr: "libelsewhere.so",
		},
		{
			name: "nesting beyond MaxDepth rejects the tree",
			build: func(t *testing.T, dir string) {
				deep := dir
				for i := 0; i < 5; i++ {
					deep = filepath.Join(deep, fmt.Sprintf("d%d", i))
				}
				write(t, deep, "libdeep.so", buildLib(t, "libdeep.so"))
			},
			opt:     Options{MaxDepth: 3},
			wantErr: "nesting exceeds",
		},
		{
			name: "more files than MaxFiles rejects the tree",
			build: func(t *testing.T, dir string) {
				for i := 0; i < 5; i++ {
					write(t, dir, fmt.Sprintf("f%d.txt", i), []byte("data"))
				}
			},
			opt:     Options{MaxFiles: 3},
			wantErr: "exceeds 3 files",
		},
		{
			name: "missing root directory",
			build: func(t *testing.T, dir string) {
				os.RemoveAll(dir)
			},
			wantErr: "no such file",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.build(t, dir)
			res, err := Tree(dir, tc.opt)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("tree accepted, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Tree: %v", err)
			}
			tc.check(t, res)
		})
	}
}

// TestClosureResolution pins the happy-path graph semantics: soname aliases
// resolve, entry libraries root the walk, and the closure order is
// deterministic BFS.
func TestClosureResolution(t *testing.T) {
	dir := t.TempDir()
	// libmain needs libz by soname; the file carries a versioned name.
	write(t, dir, "libmain.so", buildLib(t, "libmain.so", "libz.so.1", "liba.so"))
	write(t, dir, "deps/libz.so.1.2.13", buildLib(t, "libz.so.1"))
	write(t, dir, "liba.so", buildLib(t, "liba.so", "libz.so.1", "libm.so.6"))
	write(t, dir, "libtool.so", buildLib(t, "libtool.so")) // standalone root

	res, err := Tree(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"libmain.so", "libtool.so"}; !reflect.DeepEqual(res.Roots, want) {
		t.Errorf("roots = %v, want %v", res.Roots, want)
	}
	// BFS: roots first, then libmain's needs in DT_NEEDED order.
	want := []string{"libmain.so", "libtool.so", "libz.so.1.2.13", "liba.so"}
	if !reflect.DeepEqual(res.Closure, want) {
		t.Errorf("closure = %v, want %v", res.Closure, want)
	}
	if !reflect.DeepEqual(res.Unresolved, map[string][]string{"libm.so.6": {"liba.so"}}) {
		t.Errorf("unresolved = %v", res.Unresolved)
	}
	if rep := report(t, res, "deps/libz.so.1.2.13"); !rep.InClosure || rep.Soname != "libz.so.1" {
		t.Errorf("aliased lib report: %+v", rep)
	}
	// Deterministic: a second walk produces the identical result.
	res2, err := Tree(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Files, res2.Files) || !reflect.DeepEqual(res.Closure, res2.Closure) {
		t.Error("repeated walks disagree")
	}
}

// TestMultiArchInputs drives an aarch64 ELF and a multi-SM fatbin library
// through ingestion: both classify as shared objects, record their machine,
// and flow through the parse-once analysis-index path.
func TestMultiArchInputs(t *testing.T) {
	dir := t.TempDir()

	ab := elfx.NewBuilder("libarm.so")
	ab.SetMachine(elfx.EMAarch64)
	ab.AddFunction("arm_fn", 48)
	armData, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	write(t, dir, "libarm.so", armData)
	write(t, dir, "libfat.so", multiArchFatbinLib(t, "libfat.so"))

	res, err := Tree(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := report(t, res, "libarm.so").Machine; got != elfx.EMAarch64 {
		t.Errorf("aarch64 machine = %d, want %d", got, elfx.EMAarch64)
	}
	if got := report(t, res, "libfat.so").Machine; got != elfx.EMX8664 {
		t.Errorf("x86-64 machine = %d, want %d", got, elfx.EMX8664)
	}
	// Both ride the LibIndex path: the index must see the fatbin's several
	// architectures and the aarch64 lib's functions.
	fatIdx := res.Libs["libfat.so"].Index()
	archs := map[string]bool{}
	for _, e := range fatIdx.Elements {
		archs[e.Arch.String()] = true
	}
	if len(archs) < 2 {
		t.Errorf("fatbin index saw archs %v, want several", archs)
	}
	armIdx := res.Libs["libarm.so"].Index()
	if armIdx.Size() != int64(len(armData)) {
		t.Error("aarch64 index size mismatch")
	}
	if res.Libs["libarm.so"].FindFunction("arm_fn") == nil {
		t.Error("aarch64 function table not recovered")
	}
}
